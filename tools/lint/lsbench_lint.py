#!/usr/bin/env python3
"""lsbench-lint: repo-invariant static checks for LSBench sources.

LSBench's headline claim is reproducibility: the same spec + seed must
produce bit-identical results. The compiler cannot enforce that, so this
linter bans the constructs that silently break it (wall clocks, ambient
randomness, hash-order-dependent output) and flags error-discipline
violations ([[nodiscard]] catches most discarded Status results at compile
time; this catches the rest in code that is not compiled on every platform).

Rules:
  no-random-device      std::random_device is nondeterministic; all
                        randomness must flow from an explicit seed.
  no-libc-rand          rand()/srand()/random() share hidden global state.
  no-wall-clock         time(...)/std::chrono::system_clock read wall time;
                        use Clock (RealClock/VirtualClock) from util/clock.h.
  no-getenv             getenv outside src/util/ makes behavior depend on
                        ambient process state; route through util helpers.
  no-unseeded-mt19937   std::mt19937{,_64} without an explicit seed falls
                        back to a default or random_device seed.
  unordered-iteration   iterating std::unordered_{map,set} in report/metrics
                        code emits hash-order-dependent output.
  discarded-status      a Status/Result-returning call used as a bare
                        expression statement drops the error.
  no-detached-thread    std::thread::detach() leaks a thread past the
                        driver's phase barrier; every thread must be joined.
  no-raw-sleep          this_thread::sleep_for/sleep_until outside util/
                        bypass the Clock abstraction and burn accuracy;
                        use SleepSpinUntil (util/clock.h) or a Pacer.
  no-raw-mutex          std::mutex / std::condition_variable outside
                        util/sync.h (and the tools/sched/ scheduler that
                        implements the machinery beneath it) dodge the
                        Thread Safety Analysis annotations; use
                        lsbench::Mutex / CondVar.
  no-raw-lock           std::lock_guard / unique_lock / scoped_lock outside
                        util/sync.h / tools/sched/ hold locks the analysis
                        cannot see; use lsbench::MutexLock.
  no-bare-atomic        std::atomic / raw memory_order tokens outside
                        util/atomic.h pick ad-hoc orderings and dodge the
                        lsbench-sched preemption points; use
                        lsbench::Atomic<T>.
  unordered-range-for   range-for over std::unordered_{map,set} anywhere
                        visits elements in hash order; anything that feeds
                        events, traces, reports, or serialization must take
                        a sorted snapshot first. Reviewed order-insensitive
                        reductions live on UNORDERED_ALLOWLIST.

Suppress a finding with an inline comment on the offending line or the line
directly above it:

    // lsbench-lint: allow(no-wall-clock)

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
"""

import argparse
import os
import re
import sys

ALL_RULES = (
    "no-random-device",
    "no-libc-rand",
    "no-wall-clock",
    "no-getenv",
    "no-unseeded-mt19937",
    "unordered-iteration",
    "discarded-status",
    "no-detached-thread",
    "no-raw-sleep",
    "no-raw-mutex",
    "no-raw-lock",
    "no-bare-atomic",
    "unordered-range-for",
)

SOURCE_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp")

# Directories scanned by default, relative to --root.
DEFAULT_SCAN_DIRS = ("src", "bench", "tools")

# Paths containing any of these fragments are never linted (fixtures are
# deliberately full of violations; tests may legitimately poke at time, env
# vars, and discarded results).
EXCLUDED_PATH_FRAGMENTS = (
    "tools/lint/testdata",
    "/tests/",
    "third_party",
)

SUPPRESS_RE = re.compile(r"lsbench-lint:\s*allow\(([^)]*)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments, string literals, and char literals.

    Returns text of identical length/line structure so line numbers and
    column positions keep meaning. Suppression comments are parsed from the
    raw text separately, before stripping.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def parse_suppressions(raw_lines):
    """Maps 1-based line number -> set of suppressed rule names.

    A suppression comment covers its own line and the line directly below it
    (so it can sit above the offending statement).
    """
    suppressed = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        for target in (idx, idx + 1):
            suppressed.setdefault(target, set()).update(rules)
    return suppressed


# --- Simple per-line pattern rules -----------------------------------------

RANDOM_DEVICE_RE = re.compile(r"\bstd\s*::\s*random_device\b")
LIBC_RAND_RE = re.compile(r"(?<![\w:])(?:s?rand|random)\s*\(")
WALL_CLOCK_TIME_RE = re.compile(r"(?<![\w:.>])time\s*\(")
SYSTEM_CLOCK_RE = re.compile(r"\bsystem_clock\b")
GETENV_RE = re.compile(r"\bgetenv\s*\(")
UNSEEDED_MT_RE = re.compile(
    r"\bstd\s*::\s*mt19937(?:_64)?\b"
    r"(?:\s+\w+\s*(?:;|\{\s*\})|\s*(?:\(\s*\)|\{\s*\}))"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
RAW_SLEEP_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable(?:_any)?)\b")
RAW_LOCK_RE = re.compile(
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")
BARE_ATOMIC_RE = re.compile(
    r"\bstd\s*::\s*atomic(?:_\w+)?\b|\bmemory_order(?:_\w+)?\b")


def in_util_dir(relpath):
    norm = relpath.replace(os.sep, "/")
    return "src/util/" in norm or norm.startswith("util/")


def is_sanctioned_sync(relpath):
    """Where raw std synchronization may appear: util/sync.h wraps the raw
    types in annotated capabilities, and tools/sched/ implements the
    cooperative scheduler *beneath* those wrappers — a modeled mutex cannot
    be built on the wrapper it models."""
    norm = relpath.replace(os.sep, "/")
    return norm.endswith("util/sync.h") or "tools/sched/" in norm


def is_atomic_header(relpath):
    """util/atomic.h: the one place std::atomic / memory_order may appear —
    it wraps them in the ordering-named, sched-instrumented Atomic<T>."""
    norm = relpath.replace(os.sep, "/")
    return norm.endswith("util/atomic.h")


def in_report_scope(relpath):
    """report/metrics code: where output ordering must be deterministic."""
    norm = relpath.replace(os.sep, "/")
    return "report/" in norm or "metrics" in os.path.basename(norm)


def check_line_rules(relpath, code_lines):
    findings = []
    for idx, line in enumerate(code_lines, start=1):
        if RANDOM_DEVICE_RE.search(line):
            findings.append(Finding(
                relpath, idx, "no-random-device",
                "std::random_device is nondeterministic; derive randomness "
                "from an explicit seed (util/random.h)"))
        if LIBC_RAND_RE.search(line):
            findings.append(Finding(
                relpath, idx, "no-libc-rand",
                "libc rand()/srand()/random() use hidden global state; use "
                "a seeded lsbench::Rng"))
        if WALL_CLOCK_TIME_RE.search(line) or SYSTEM_CLOCK_RE.search(line):
            findings.append(Finding(
                relpath, idx, "no-wall-clock",
                "wall-clock reads (time(), system_clock) are banned; use "
                "Clock from util/clock.h"))
        if GETENV_RE.search(line) and not in_util_dir(relpath):
            findings.append(Finding(
                relpath, idx, "no-getenv",
                "getenv outside src/util/ couples behavior to ambient "
                "process state; use util/env.h"))
        if UNSEEDED_MT_RE.search(line):
            findings.append(Finding(
                relpath, idx, "no-unseeded-mt19937",
                "std::mt19937 without an explicit seed is not reproducible; "
                "pass a seed or use lsbench::Rng"))
        if DETACH_RE.search(line):
            findings.append(Finding(
                relpath, idx, "no-detached-thread",
                "detached threads outlive the driver's phase barrier and "
                "race teardown; join every thread"))
        if RAW_SLEEP_RE.search(line) and not in_util_dir(relpath):
            findings.append(Finding(
                relpath, idx, "no-raw-sleep",
                "raw sleep_for/sleep_until outside util/ bypasses the Clock "
                "abstraction; use SleepSpinUntil (util/clock.h) or a Pacer"))
        if RAW_MUTEX_RE.search(line) and not is_sanctioned_sync(relpath):
            findings.append(Finding(
                relpath, idx, "no-raw-mutex",
                "raw std synchronization primitives outside util/sync.h "
                "are invisible to Thread Safety Analysis; use "
                "lsbench::Mutex / CondVar and annotate guarded fields"))
        if RAW_LOCK_RE.search(line) and not is_sanctioned_sync(relpath):
            findings.append(Finding(
                relpath, idx, "no-raw-lock",
                "raw std lock holders outside util/sync.h are invisible to "
                "Thread Safety Analysis; use lsbench::MutexLock"))
        if BARE_ATOMIC_RE.search(line) and not is_atomic_header(relpath):
            findings.append(Finding(
                relpath, idx, "no-bare-atomic",
                "bare std::atomic / memory_order outside util/atomic.h "
                "picks its own ordering and is invisible to the "
                "lsbench-sched preemption points; use lsbench::Atomic<T> "
                "(util/atomic.h)"))
    return findings


# --- unordered-iteration / unordered-range-for ------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(),]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*\*?([\w.\->]+)\s*\)")
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:map|set)\b")

# Reviewed sorted-snapshot allowlist for unordered-range-for, keyed by
# "path:container". Every entry must be an order-insensitive reduction (the
# loop body commutes: counting, set-membership sums, min/max accumulations)
# or sort its output before anything downstream can observe the order.
# Adding an entry is a reviewed change — justify it here.
UNORDERED_ALLOWLIST = frozenset({
    # WeightedJaccard: accumulates num/den sums over the merged weight map.
    # Floating-point addition order is fixed for a given libstdc++ build +
    # insertion sequence, and both are pinned by the workload seed.
    "src/stats/similarity.cc:merged",
    # Trace fitting: pushes access counts into a vector that is immediately
    # std::sort-ed; hash order never reaches the fitted spec.
    "src/data/synthesizer.cc:access_counts",
})


def iter_unordered_range_fors(code_lines):
    """Yields (line_idx, sequence_expr) for each range-for over a container
    declared unordered in this file (or an inline unordered temporary)."""
    unordered_names = set()
    for line in code_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
    for idx, line in enumerate(code_lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        seq = m.group(1)
        # `for (auto& kv : counts_)` where counts_ was declared unordered in
        # this file, or an inline unordered temporary in the loop header.
        tail = seq.split("->")[-1].split(".")[-1]
        if tail in unordered_names or UNORDERED_TYPE_RE.search(
                line[:m.start(1)]):
            yield idx, seq


def check_unordered_iteration(relpath, code_lines):
    if not in_report_scope(relpath):
        return []
    findings = []
    for idx, seq in iter_unordered_range_fors(code_lines):
        findings.append(Finding(
            relpath, idx, "unordered-iteration",
            f"iteration over unordered container '{seq}' in "
            "report/metrics code is hash-order-dependent; copy into a "
            "sorted vector/map first"))
    return findings


def check_unordered_range_for(relpath, code_lines):
    # Report/metrics scope is covered by the stricter unordered-iteration
    # rule above (no allowlist there: output code must sort, full stop).
    if in_report_scope(relpath):
        return []
    norm = relpath.replace(os.sep, "/")
    findings = []
    for idx, seq in iter_unordered_range_fors(code_lines):
        tail = seq.split("->")[-1].split(".")[-1]
        if f"{norm}:{tail}" in UNORDERED_ALLOWLIST:
            continue
        findings.append(Finding(
            relpath, idx, "unordered-range-for",
            f"range-for over unordered container '{seq}' visits elements "
            "in hash order; take a sorted snapshot before anything feeds "
            "events/traces/reports/serialization, or add the reviewed "
            "order-insensitive site to UNORDERED_ALLOWLIST"))
    return findings


# --- discarded-status -------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)"
    r"(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|friend\s+)*"
    r"(?:::)?(?:lsbench\s*::\s*)?"
    r"(?:Status|Result\s*<[^;{}()]*>)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)?([A-Za-z_]\w*)\s*\(")

# Statement openers that mean the call result is consumed or flow-controlled.
CONSUMED_PREFIX_RE = re.compile(
    r"^(?:return\b|co_return\b|throw\b|if\b|while\b|for\b|switch\b|"
    r"case\b|do\b|else\b|\(void\)|LSBENCH_\w+\s*\(|[A-Z][A-Z0-9_]*\s*\()")

BARE_CALL_RE = re.compile(
    r"^(?:[\w:]+(?:\(\s*\))?(?:\.|->))*([A-Za-z_]\w*)\s*\(")


def collect_status_returning_names(files):
    """Scans the given files for functions/methods declared to return
    Status or Result<...>; returns the set of their names."""
    names = set()
    for _, text in files:
        code = strip_comments_and_strings(text)
        for m in STATUS_DECL_RE.finditer(code):
            names.add(m.group(1))
    # Construction helpers share names with the Status factories; a bare
    # `Status::Internal("x");` is dead code rather than a dropped error, and
    # flagging it produces noise on the factory definitions themselves.
    names.discard("OK")
    return names


def split_statements(code_text):
    """Yields (start_line, statement_text) for top-level-ish statements.

    Statements are separated by ';', '{', or '}' at paren depth zero.
    Preprocessor lines are skipped.
    """
    statements = []
    current = []
    start_line = 1
    line = 1
    depth = 0
    for c in code_text:
        if c == "\n":
            line += 1
        if c in "([":
            depth += 1
        elif c in ")]":
            depth = max(0, depth - 1)
        if c in ";{}" and depth == 0:
            stmt = "".join(current).strip()
            if stmt:
                statements.append((start_line, stmt + (";" if c == ";" else "")))
            current = []
        else:
            if not current:
                if c.isspace():
                    continue
                start_line = line
            current.append(c)
    stmt = "".join(current).strip()
    if stmt:
        statements.append((start_line, stmt))
    return [(ln, s) for (ln, s) in statements if not s.lstrip().startswith("#")]


def check_discarded_status(relpath, code_text, status_names):
    findings = []
    for start_line, stmt in split_statements(code_text):
        stmt = re.sub(r"\s+", " ", stmt).strip()
        if not stmt.endswith(";"):
            continue
        body = stmt[:-1].strip()
        if CONSUMED_PREFIX_RE.match(body):
            continue
        # Assignment or declaration consumes the result.
        if re.search(r"[^=!<>]=[^=]", body):
            continue
        m = BARE_CALL_RE.match(body)
        if not m:
            continue
        callee = m.group(1)
        if callee in status_names:
            findings.append(Finding(
                relpath, start_line, "discarded-status",
                f"result of Status/Result-returning call '{callee}(...)' is "
                "discarded; handle it, return it, or cast to (void) with a "
                "reason"))
    return findings


# --- Driver -----------------------------------------------------------------

def is_excluded(relpath):
    norm = "/" + relpath.replace(os.sep, "/")
    if any(frag in norm for frag in EXCLUDED_PATH_FRAGMENTS):
        return True
    base = os.path.basename(norm)
    return base.endswith(("_test.cc", "_test.h", "_test.cpp"))


def gather_files(root, paths):
    """Returns [(relpath, text)] for every source file to lint."""
    files = []
    targets = paths or [os.path.join(root, d) for d in DEFAULT_SCAN_DIRS]
    seen = set()
    for target in targets:
        if os.path.isfile(target):
            candidates = [target]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames.sort()
                for name in sorted(filenames):
                    candidates.append(os.path.join(dirpath, name))
        for path in candidates:
            if not path.endswith(SOURCE_EXTENSIONS):
                continue
            rel = os.path.relpath(path, root)
            if rel in seen or is_excluded(rel):
                continue
            seen.add(rel)
            try:
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    files.append((rel, f.read()))
            except OSError as e:
                print(f"lsbench-lint: cannot read {path}: {e}", file=sys.stderr)
    return files


def lint_files(files, rules=ALL_RULES):
    """Lints [(relpath, text)] pairs; returns surviving findings."""
    status_names = (collect_status_returning_names(files)
                    if "discarded-status" in rules else set())
    findings = []
    for relpath, text in files:
        raw_lines = text.splitlines()
        suppressed = parse_suppressions(raw_lines)
        code_text = strip_comments_and_strings(text)
        code_lines = code_text.splitlines()

        file_findings = []
        file_findings += check_line_rules(relpath, code_lines)
        file_findings += check_unordered_iteration(relpath, code_lines)
        file_findings += check_unordered_range_for(relpath, code_lines)
        if "discarded-status" in rules:
            file_findings += check_discarded_status(
                relpath, code_text, status_names)

        for f in file_findings:
            if f.rule not in rules:
                continue
            if f.rule in suppressed.get(f.line, set()):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="lsbench_lint",
        description="Determinism & error-discipline lint for LSBench.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated rule subset to run")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             "src, bench, tools under --root)")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"lsbench-lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    files = gather_files(os.path.abspath(args.root), args.paths)
    findings = lint_files(files, rules)
    for f in findings:
        print(f)
    if findings:
        print(f"lsbench-lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
