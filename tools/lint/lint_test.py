#!/usr/bin/env python3
"""Unit tests for lsbench_lint: every rule must fire on its fail fixture,
stay quiet on the pass fixtures, and be silenceable via suppressions."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import layering  # noqa: E402
import lsbench_lint as lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")
LAYERING_DATA = os.path.join(TESTDATA, "layering")
LAYERS = layering.Layers.load(layering.DEFAULT_LAYERS)

# fail/ fixture (relative to testdata/) -> rule that must fire in it, with
# the number of distinct findings expected.
EXPECTED_FAILURES = {
    "fail/random_device.cc": ("no-random-device", 1),
    "fail/libc_rand.cc": ("no-libc-rand", 2),
    "fail/wall_clock.cc": ("no-wall-clock", 2),
    "fail/env_read.cc": ("no-getenv", 1),
    "fail/unseeded_mt19937.cc": ("no-unseeded-mt19937", 2),
    "fail/report/hash_order.cc": ("unordered-iteration", 1),
    "fail/discarded_status.cc": ("discarded-status", 2),
    "fail/detached_thread.cc": ("no-detached-thread", 1),
    "fail/raw_sleep.cc": ("no-raw-sleep", 2),
    "fail/raw_mutex.cc": ("no-raw-mutex", 2),
    "fail/raw_lock.cc": ("no-raw-lock", 2),
    "fail/bare_atomic.cc": ("no-bare-atomic", 2),
    "fail/unordered_range_for.cc": ("unordered-range-for", 1),
}


def lint_dir(subdir):
    """Lints one fixture subtree; returns the findings."""
    root = os.path.join(TESTDATA, subdir)
    files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, TESTDATA)
            with open(path, "r", encoding="utf-8") as f:
                files.append((rel, f.read()))
    return lint.lint_files(files)


class PassFixtures(unittest.TestCase):
    def test_pass_tree_is_clean(self):
        findings = lint_dir("pass")
        self.assertEqual([], [str(f) for f in findings])


class FailFixtures(unittest.TestCase):
    def test_every_rule_fires(self):
        findings = lint_dir("fail")
        by_file = {}
        for f in findings:
            by_file.setdefault(f.path, []).append(f)
        for rel, (rule, count) in EXPECTED_FAILURES.items():
            with self.subTest(fixture=rel):
                got = by_file.get(rel, [])
                self.assertEqual(
                    count, sum(1 for f in got if f.rule == rule),
                    f"{rel}: expected {count} x {rule}, got "
                    f"{[str(f) for f in got]}")
                # No *other* rule may fire on a single-rule fixture: each
                # fixture isolates exactly one invariant.
                self.assertEqual(
                    [], [str(f) for f in got if f.rule != rule])

    def test_no_unexpected_files_flagged(self):
        findings = lint_dir("fail")
        self.assertEqual(set(EXPECTED_FAILURES), {f.path for f in findings})

    def test_every_rule_is_covered_by_a_fixture(self):
        covered = {rule for rule, _ in EXPECTED_FAILURES.values()}
        self.assertEqual(set(lint.ALL_RULES), covered)


class SuppressedFixtures(unittest.TestCase):
    def test_suppressions_silence_every_rule(self):
        findings = lint_dir("suppressed")
        self.assertEqual([], [str(f) for f in findings])

    def test_suppressed_tree_mirrors_fail_tree(self):
        # Guards against a suppression fixture drifting: every fail fixture
        # must have a suppressed twin.
        fail_files = {os.path.relpath(p, "fail") for p in EXPECTED_FAILURES}
        sup_root = os.path.join(TESTDATA, "suppressed")
        sup_files = set()
        for dirpath, _, filenames in os.walk(sup_root):
            for name in filenames:
                sup_files.add(os.path.relpath(
                    os.path.join(dirpath, name), sup_root))
        self.assertEqual(fail_files, sup_files)


class EngineUnitTests(unittest.TestCase):
    def test_strip_comments_and_strings(self):
        code = 'int x = 1; // time(nullptr)\nconst char* s = "rand()";\n'
        stripped = lint.strip_comments_and_strings(code)
        self.assertNotIn("time", stripped)
        self.assertNotIn("rand", stripped)
        self.assertEqual(code.count("\n"), stripped.count("\n"))

    def test_block_comment_preserves_line_numbers(self):
        code = "a /* one\ntwo\nthree */ b\n"
        stripped = lint.strip_comments_and_strings(code)
        self.assertEqual(3, stripped.count("\n"))
        self.assertNotIn("two", stripped)

    def test_suppression_covers_next_line(self):
        sup = lint.parse_suppressions([
            "// lsbench-lint: allow(no-wall-clock, no-getenv)",
            "time(nullptr);",
        ])
        self.assertIn("no-wall-clock", sup[1])
        self.assertIn("no-getenv", sup[2])

    def test_rules_filter(self):
        files = [("x.cc", "#include <ctime>\nlong n = time(nullptr);\n")]
        self.assertEqual(1, len(lint.lint_files(files)))
        self.assertEqual(
            [], lint.lint_files(files, rules=("no-getenv",)))

    def test_raw_mutex_allowed_in_sync_header(self):
        body = "#include <mutex>\nstruct S { std::mutex mu; };\n"
        flagged = lint.lint_files([("src/core/pool.h", body)])
        allowed = lint.lint_files([("src/util/sync.h", body)])
        self.assertEqual(["no-raw-mutex"], [f.rule for f in flagged])
        self.assertEqual([], allowed)

    def test_raw_lock_allowed_in_sync_header(self):
        body = "void F(std::mutex& m) { std::lock_guard<std::mutex> l(m); }\n"
        flagged = lint.lint_files([("src/core/pool.cc", body)])
        allowed = lint.lint_files([("src/util/sync.h", body)])
        self.assertEqual(["no-raw-lock", "no-raw-mutex"],
                         sorted(f.rule for f in flagged))
        self.assertEqual([], allowed)

    def test_raw_sync_allowed_in_sched_tool(self):
        # tools/sched implements the scheduler beneath the wrappers, so the
        # raw primitives are sanctioned there (docs/STATIC_ANALYSIS.md).
        body = ("#include <mutex>\n"
                "struct R { std::mutex m; };\n"
                "void F(R& r) { std::unique_lock<std::mutex> l(r.m); }\n")
        self.assertEqual([], lint.lint_files([("tools/sched/sched.cc", body)]))

    def test_bare_atomic_allowed_in_atomic_header(self):
        body = ("#include <atomic>\n"
                "std::atomic<int> v{0};\n"
                "int Get() { return v.load(std::memory_order_relaxed); }\n")
        flagged = lint.lint_files([("src/obs/counters.h", body)])
        allowed = lint.lint_files([("src/util/atomic.h", body)])
        self.assertEqual(["no-bare-atomic", "no-bare-atomic"],
                         [f.rule for f in flagged])
        self.assertEqual([], allowed)

    def test_unordered_range_for_allowlist_honored(self):
        body = ("#include <unordered_map>\n"
                "int Sum(const std::unordered_map<int, int>& m) {\n"
                "  std::unordered_map<int, int> merged = m;\n"
                "  int s = 0;\n"
                "  for (const auto& kv : merged) s += kv.second;\n"
                "  return s;\n"
                "}\n")
        flagged = lint.lint_files([("src/core/agg.cc", body)])
        allowed = lint.lint_files([("src/stats/similarity.cc", body)])
        self.assertEqual(["unordered-range-for"], [f.rule for f in flagged])
        self.assertEqual([], allowed)

    def test_getenv_allowed_under_util(self):
        body = "#include <cstdlib>\nconst char* v = std::getenv(\"X\");\n"
        flagged = lint.lint_files([("src/core/a.cc", body)])
        allowed = lint.lint_files([("src/util/env.cc", body)])
        self.assertEqual(["no-getenv"], [f.rule for f in flagged])
        self.assertEqual([], allowed)

    def test_discarded_status_consumed_forms_ok(self):
        body = (
            "class Status { public: bool ok() const; };\n"
            "Status Work();\n"
            "Status Caller() {\n"
            "  Status st = Work();\n"
            "  if (!st.ok()) return st;\n"
            "  (void)Work();\n"
            "  return Work();\n"
            "}\n")
        self.assertEqual([], lint.lint_files([("src/a.cc", body)]))

    def test_discarded_status_multiline_call(self):
        body = (
            "class Status { public: bool ok() const; };\n"
            "Status Work(int a, int b);\n"
            "void Caller() {\n"
            "  Work(1,\n"
            "       2);\n"
            "}\n")
        findings = lint.lint_files([("src/a.cc", body)])
        self.assertEqual(["discarded-status"], [f.rule for f in findings])
        self.assertEqual(4, findings[0].line)

    def test_status_names_collected_across_files(self):
        header = "class Status {};\nStatus Work();\n"
        impl = "void Caller() {\n  Work();\n}\n"
        findings = lint.lint_files(
            [("src/a.h", header), ("src/b.cc", impl)])
        self.assertEqual(["discarded-status"], [f.rule for f in findings])


def analyze_fixture(name):
    """Runs the structural layering analysis over one fixture tree."""
    return layering.analyze_tree(
        os.path.join(LAYERING_DATA, name, "src"), LAYERS)


class LayeringFixtures(unittest.TestCase):
    def test_pass_tree_is_clean(self):
        self.assertEqual([], [str(f) for f in analyze_fixture("pass")])

    def test_reversed_core_sut_edge_fires(self):
        findings = analyze_fixture("cross_layer")
        self.assertEqual(["layering"], [f.rule for f in findings])
        finding = findings[0]
        self.assertEqual("src/sut/bad_reversed.h", finding.path)
        self.assertIn("'sut' (band 3) must not include 'core/driver_api.h'",
                      finding.message)

    def test_cycle_fires(self):
        findings = analyze_fixture("cycle")
        self.assertEqual(["include-cycle"], [f.rule for f in findings])
        self.assertIn("core/a.h <-> core/b.h", findings[0].message)

    def test_suppression_silences_layering(self):
        self.assertEqual([], [str(f) for f in analyze_fixture("suppressed")])

    def test_unknown_module_fires(self):
        findings = analyze_fixture("unknown")
        self.assertEqual(["unknown-module"], [f.rule for f in findings])

    def test_real_tree_is_clean(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        findings = layering.analyze_tree(
            os.path.join(repo_root, "src"), LAYERS)
        self.assertEqual([], [str(f) for f in findings])


class LayersTomlTests(unittest.TestCase):
    def test_bands_cover_every_src_module(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        src = os.path.join(repo_root, "src")
        modules = {name for name in os.listdir(src)
                   if os.path.isdir(os.path.join(src, name))}
        self.assertEqual(modules, set(LAYERS.bands))

    def test_band_order_matches_architecture_doc(self):
        ranks = LAYERS.bands
        self.assertLess(ranks["util"], ranks["stats"])
        self.assertLess(ranks["workload"], ranks["index"])
        self.assertLess(ranks["learned"], ranks["sut"])
        self.assertLess(ranks["sut"], ranks["core"])
        self.assertLess(ranks["core"], ranks["report"])


class UnusedEdgeReport(unittest.TestCase):
    def test_flags_contributing_nothing(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "util"))
            os.makedirs(os.path.join(tmp, "core"))
            with open(os.path.join(tmp, "util", "widget.h"), "w") as f:
                f.write("#ifndef W\n#define W\n"
                        "namespace x { struct WidgetFrobnicator {}; }\n"
                        "#endif\n")
            with open(os.path.join(tmp, "core", "user.cc"), "w") as f:
                f.write('#include "util/widget.h"\nint main() { return 0; }\n')
            files = layering.walk_sources(tmp)
            includes, _ = layering.parse_includes(tmp, files)
            report = layering.report_unused_edges(tmp, includes)
            self.assertEqual(1, len(report))
            self.assertEqual("core/user.cc", report[0][0])

    def test_quiet_when_names_are_used(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "util"))
            os.makedirs(os.path.join(tmp, "core"))
            with open(os.path.join(tmp, "util", "widget.h"), "w") as f:
                f.write("namespace x { struct Widget {}; }\n")
            with open(os.path.join(tmp, "core", "user.cc"), "w") as f:
                f.write('#include "util/widget.h"\nx::Widget w;\n')
            files = layering.walk_sources(tmp)
            includes, _ = layering.parse_includes(tmp, files)
            self.assertEqual([], layering.report_unused_edges(tmp, includes))


class SelfSufficiency(unittest.TestCase):
    COMPILER = __import__("shutil").which(os.environ.get("CXX", "c++"))

    @unittest.skipIf(COMPILER is None, "no C++ compiler on PATH")
    def test_good_passes_bad_fails(self):
        src = os.path.join(LAYERING_DATA, "selfsuff", "src")
        failures = layering.check_self_sufficiency(
            src, ["util/good.h", "util/bad.h"], self.COMPILER, "c++20")
        self.assertEqual(["util/bad.h"], [rel for rel, _ in failures])
        self.assertTrue(failures[0][1])  # Carries the compiler diagnostic.


if __name__ == "__main__":
    unittest.main()
