#!/usr/bin/env python3
"""Self-tests for lsbench-deepcheck.

Two layers:

  * unit tests for the pure pieces — name normalization, baseline
    round-trip, budget cross-check, source scanning;
  * fixture tests that run the real tool end-to-end over
    testdata/deepcheck/: every must-flag fixture must produce exactly its
    expected (rule, frontier, category) set, every must-pass fixture must
    come back clean. This is what proves each rule family is live — a
    checker that silently stops finding violations still fails here.

The gcc frontend runs always (the toolchain the repo builds with). The
clang frontend runs too when python3-clang + libclang are importable and
loadable (the CI deepcheck job installs them); otherwise those cases skip.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
DEEPCHECK = os.path.join(HERE, "deepcheck.py")
FIXTURES = os.path.join(HERE, "testdata", "deepcheck")

sys.path.insert(0, HERE)
import deepcheck  # noqa: E402


# (rule, frontier, category) sets each must-flag fixture must produce.
# Must-pass fixtures expect the empty set and exit 0.
EXPECTATIONS = {
    "fail_hot_alloc_direct.cc": {
        ("hot-alloc", "lsbench::HotAllocDirect", "operator-new"),
    },
    "fail_hot_alloc_transitive.cc": {
        ("hot-alloc", "lsbench::LevelThree", "malloc"),
    },
    "fail_hot_alloc_container.cc": {
        ("hot-alloc", "lsbench::HotPush", "operator-new"),
        ("hot-throw", "lsbench::HotPush", "std-throw"),
    },
    "fail_hot_alloc_virtual.cc": {
        ("hot-alloc", "lsbench::VecSink::Push", "operator-new"),
        ("hot-throw", "lsbench::VecSink::Push", "std-throw"),
    },
    "fail_hot_block_mutex.cc": {
        ("hot-block", "lsbench::HotLock", "mutex"),
        ("hot-throw", "lsbench::HotLock", "std-throw"),
    },
    "fail_hot_throw.cc": {
        ("hot-throw", "lsbench::HotThrow", "throw"),
    },
    "fail_determinism_clock.cc": {
        ("determinism", "lsbench::DeterministicStamp", "wall-clock"),
    },
    "pass_wrapper_clock.cc": set(),
    "pass_gated_mutex.cc": set(),
    "pass_clean_math.cc": set(),
    "pass_suppressed_alloc.cc": set(),
}


def run_fixture(fixture, frontend):
    """Copies one fixture into an isolated root and runs deepcheck on it.
    Returns (exit_code, {(rule, frontier, category)}, stdout+stderr)."""
    with tempfile.TemporaryDirectory(prefix="deepcheck_fixture_") as tmp:
        src = os.path.join(tmp, "src")
        os.makedirs(src)
        shutil.copy(os.path.join(FIXTURES, fixture), src)
        shutil.copy(os.path.join(FIXTURES, "fixture_prelude.h"), src)
        tu = os.path.join(src, fixture)
        with open(os.path.join(tmp, "compile_commands.json"), "w",
                  encoding="utf-8") as f:
            json.dump([{
                "directory": tmp,
                "command": f"g++ -std=c++20 -I{src} -c {tu}",
                "file": tu,
            }], f)
        proc = subprocess.run(
            [sys.executable, DEEPCHECK, "--root", tmp, "--baseline", "none",
             "--frontend", frontend],
            capture_output=True, text=True, timeout=300)
        found = set()
        for line in proc.stdout.splitlines():
            m = deepcheck.re.match(
                r"deepcheck: \[(\S+)\] (\S+) -> (\S+) \(root ", line)
            if m:
                found.add((m.group(1), m.group(2), m.group(3)))
        return proc.returncode, found, proc.stdout + proc.stderr


def clang_frontend_available():
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return False
    try:
        deepcheck._configure_libclang()
        clang.cindex.Index.create()
    except Exception:
        return False
    return True


CLANG_OK = clang_frontend_available()


class FixtureTest(unittest.TestCase):
    maxDiff = None

    def check(self, fixture, frontend):
        expected = EXPECTATIONS[fixture]
        code, found, output = run_fixture(fixture, frontend)
        self.assertEqual(found, expected,
                         f"{fixture} [{frontend}]:\n{output}")
        self.assertEqual(code, 1 if expected else 0,
                         f"{fixture} [{frontend}]:\n{output}")


def _add_fixture_cases():
    for fixture in sorted(EXPECTATIONS):
        name = fixture.replace(".cc", "")

        def gcc_case(self, fixture=fixture):
            self.check(fixture, "gcc")

        setattr(FixtureTest, f"test_gcc_{name}", gcc_case)

        def clang_case(self, fixture=fixture):
            if not CLANG_OK:
                self.skipTest("libclang not available")
            self.check(fixture, "clang")

        setattr(FixtureTest, f"test_clang_{name}", clang_case)


_add_fixture_cases()


class NormalizationTest(unittest.TestCase):
    def test_strips_template_args(self):
        self.assertEqual(
            deepcheck.strip_template_args(
                "std::vector<lsbench::OpEvent, "
                "std::allocator<lsbench::OpEvent> >::push_back"),
            "std::vector::push_back")

    def test_protects_operator_symbols(self):
        self.assertEqual(
            deepcheck.strip_template_args(
                "std::operator<< <std::char_traits<char> >"),
            "std::operator<<")
        self.assertEqual(deepcheck.strip_template_args("operator<"),
                         "operator<")

    def test_strips_inline_namespaces(self):
        self.assertEqual(
            deepcheck.strip_template_args(
                "std::__cxx11::basic_string<char>::basic_string"),
            "std::basic_string::basic_string")
        self.assertEqual(
            deepcheck.strip_template_args(
                "std::chrono::_V2::steady_clock::now"),
            "std::chrono::steady_clock::now")

    def test_nested_template_args(self):
        self.assertEqual(
            deepcheck.strip_template_args(
                "std::map<int, std::vector<std::pair<int, int> > >::insert"),
            "std::map::insert")


class BaselineTest(unittest.TestCase):
    def test_round_trip_preserves_comments(self):
        finding = deepcheck.Finding(
            rule="hot-alloc", frontier="lsbench::Foo::Bar",
            category="operator-new", root="lsbench::Foo::Bar",
            path=("lsbench::Foo::Bar", "operator new"))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline")
            old = {("hot-alloc", "lsbench::Foo::Bar", "operator-new"):
                   "reviewed: cold spill"}
            n = deepcheck.write_baseline(path, [finding], old)
            self.assertEqual(n, 1)
            loaded = deepcheck.load_baseline(path)
            self.assertEqual(
                loaded,
                {("hot-alloc", "lsbench::Foo::Bar", "operator-new"):
                 "reviewed: cold spill"})

    def test_rejects_unknown_rule(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "baseline")
            with open(path, "w", encoding="utf-8") as f:
                f.write("1. not-a-rule lsbench::X operator-new\n")
            with self.assertRaises(RuntimeError):
                deepcheck.load_baseline(path)


class BudgetTest(unittest.TestCase):
    def _write(self, tmp, payload):
        path = os.path.join(tmp, "budget.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        return path

    def test_clean_budget(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(tmp, {"per_op_heap_allocs": 0,
                                     "static_hot_alloc_baseline_entries": 1})
            baseline = {("hot-alloc", "lsbench::X", "operator-new"): ""}
            self.assertEqual(deepcheck.check_budget(path, baseline), [])

    def test_detects_divergence(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = self._write(tmp, {"per_op_heap_allocs": 0,
                                     "static_hot_alloc_baseline_entries": 3})
            problems = deepcheck.check_budget(path, {})
            self.assertEqual(len(problems), 1)
            self.assertIn("static_hot_alloc_baseline_entries", problems[0])


class ScannerTest(unittest.TestCase):
    def _scan(self, text):
        result = deepcheck.ScanResult()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "probe.h")
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            deepcheck._scan_file(path, text, result)
        return result

    def test_roots_are_qualified(self):
        result = self._scan(
            "namespace lsbench {\n"
            "class Widget {\n"
            " public:\n"
            "  LSBENCH_HOT_PATH\n"
            "  LSBENCH_DETERMINISTIC\n"
            "  int Spin(int n);\n"
            "};\n"
            "}  // namespace lsbench\n")
        self.assertIn("lsbench::Widget::Spin", result.roots["hot_path"])
        self.assertIn("lsbench::Widget::Spin",
                      result.roots["deterministic"])
        self.assertEqual(result.errors, [])

    def test_suppression_attaches_to_next_function(self):
        result = self._scan(
            "namespace lsbench {\n"
            "// lsbench-deepcheck: allow(hot-alloc, hot-throw)\n"
            "void Widget::GrowSlow(int n) {}\n"
            "}  // namespace lsbench\n")
        self.assertEqual(
            result.suppressions.get("lsbench::Widget::GrowSlow"),
            {"hot-alloc", "hot-throw"})

    def test_unknown_rule_in_suppression_is_error(self):
        result = self._scan(
            "// lsbench-deepcheck: allow(no-such-rule)\n"
            "void Foo() {}\n")
        self.assertEqual(len(result.errors), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
