#!/usr/bin/env python3
"""lsbench-analyze: architecture-layer enforcement for LSBench.

docs/ARCHITECTURE.md describes a layer DAG over the modules under src/:

    util -> {stats, data, workload} -> {index, learned, cache, txn, sched}
         -> sut -> core -> report

This tool turns that prose into a checked contract. The DAG lives in
machine-readable form in tools/lint/layers.toml; this script parses the
quoted-#include graph of src/ (seeded from compile_commands.json when one
is present) and reports:

  layering          an #include edge that points *upward* in the DAG
                    (e.g. a sut/ file including core/driver.h)
  include-cycle     a file-level include cycle (never allowed, even
                    between same-band peers)
  unknown-module    a src/ file or quoted include in a directory the DAG
                    does not declare

Two extra modes:

  --report-unused       advisory (exit 0) heuristic report of includes
                        whose header contributes no identifier used by the
                        includer — candidates for deletion
  --check-unused        the same heuristic, enforced: dead includes are
                        findings (rule unused-include, exit 1). Legitimate
                        exceptions (re-exported types, macro-only use)
                        carry an `allow(unused-include)` suppression on the
                        include line
  --self-sufficiency    compiles every header under src/ standalone via a
                        generated one-line TU (-fsyntax-only), proving each
                        public header carries its own includes

Suppression matches lsbench-lint: an inline comment on the offending
include line or the line directly above it —

    // lsbench-lint: allow(layering)

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lsbench_lint  # noqa: E402  (shared comment-stripper + suppressions)

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".cc", ".cpp", ".cxx") + HEADER_EXTENSIONS

DEFAULT_LAYERS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "layers.toml")


class Layers:
    """The parsed layers.toml contract."""

    def __init__(self, bands, allow_same_band, exceptions):
        self.bands = bands                    # module -> rank (int)
        self.allow_same_band = allow_same_band
        self.exceptions = exceptions          # set of (from_module, to_module)

    @staticmethod
    def load(path):
        if tomllib is None:
            raise RuntimeError("python >= 3.11 (tomllib) required")
        with open(path, "rb") as f:
            data = tomllib.load(f)
        bands = {m: int(r) for m, r in data.get("bands", {}).items()}
        if not bands:
            raise RuntimeError(f"{path}: [bands] is empty")
        options = data.get("options", {})
        exceptions = set()
        for entry in options.get("exceptions", []):
            m = re.fullmatch(r"\s*(\w+)\s*->\s*(\w+)\s*", entry)
            if not m:
                raise RuntimeError(
                    f"{path}: bad exception {entry!r} (want 'a -> b')")
            exceptions.add((m.group(1), m.group(2)))
        return Layers(bands, bool(options.get("allow_same_band", True)),
                      exceptions)


class Include:
    """One quoted include directive: file -> target, with its source line."""

    def __init__(self, src_rel, line, target_rel):
        self.src_rel = src_rel        # includer, relative to src/
        self.line = line              # 1-based line of the directive
        self.target_rel = target_rel  # included path, relative to src/


def module_of(rel):
    """First path component: core/driver.cc -> core. None for flat files."""
    parts = rel.replace(os.sep, "/").split("/")
    return parts[0] if len(parts) > 1 else None


def walk_sources(src_root):
    """Yields paths (relative to src_root) of every source/header file."""
    out = []
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                out.append(os.path.relpath(os.path.join(dirpath, name),
                                           src_root))
    return out


def seed_from_compile_commands(path, src_root):
    """Returns (tu_set, compiler) from a compile database, either possibly
    empty. The TU set confirms coverage; the compiler seeds
    --self-sufficiency when --compiler is not given."""
    tus, compiler = set(), None
    try:
        with open(path, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError):
        return tus, compiler
    for entry in entries:
        file_path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry.get("file", "")))
        rel = os.path.relpath(file_path, src_root)
        if not rel.startswith(".."):
            tus.add(rel)
        if compiler is None:
            argv = (entry.get("arguments")
                    or entry.get("command", "").split())
            if argv:
                compiler = argv[0]
    return tus, compiler


def parse_includes(src_root, files):
    """Returns ([Include], {rel: suppressed-line-map}) over quoted includes
    that resolve inside src_root."""
    existing = set(files)
    includes, suppressions = [], {}
    for rel in files:
        with open(os.path.join(src_root, rel), "r", encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        suppressions[rel] = lsbench_lint.parse_suppressions(raw_lines)
        # Includes are parsed from the raw lines: the shared comment/string
        # stripper would blank the quoted target itself. INCLUDE_RE anchors
        # on '#' at line start, so commented-out includes do not match.
        for idx, line in enumerate(raw_lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if target in existing:
                includes.append(Include(rel, idx, target))
    return includes, suppressions


def check_layering(layers, includes, suppressions):
    findings = []
    for inc in includes:
        src_mod = module_of(inc.src_rel)
        dst_mod = module_of(inc.target_rel)
        if src_mod is None or dst_mod is None:
            continue
        for rel, mod in ((inc.src_rel, src_mod), (inc.target_rel, dst_mod)):
            if mod not in layers.bands:
                findings.append(lsbench_lint.Finding(
                    f"src/{inc.src_rel}", inc.line, "unknown-module",
                    f"'{rel}' is in module '{mod}', which layers.toml does "
                    "not declare; add it to [bands]"))
                break
        if src_mod not in layers.bands or dst_mod not in layers.bands:
            continue
        if src_mod == dst_mod:
            continue
        src_rank = layers.bands[src_mod]
        dst_rank = layers.bands[dst_mod]
        ok = (dst_rank < src_rank
              or (dst_rank == src_rank and layers.allow_same_band)
              or (src_mod, dst_mod) in layers.exceptions)
        if ok:
            continue
        if "layering" in suppressions.get(inc.src_rel, {}).get(inc.line,
                                                               set()):
            continue
        direction = ("upward" if dst_rank > src_rank
                     else "across band")
        findings.append(lsbench_lint.Finding(
            f"src/{inc.src_rel}", inc.line, "layering",
            f"'{src_mod}' (band {src_rank}) must not include "
            f"'{inc.target_rel}' from '{dst_mod}' (band {dst_rank}): the "
            f"edge points {direction} in the layer DAG "
            f"util -> {{stats,data,workload}} -> "
            f"{{index,learned,cache,txn,sched}} -> sut -> core -> report. "
            "Move the shared code down a band, or invert the dependency"))
    return findings


def check_cycles(includes):
    """Tarjan SCC over the file-level include graph; every SCC with more
    than one node (or a self-edge) is one include-cycle finding."""
    graph = {}
    for inc in includes:
        graph.setdefault(inc.src_rel, set()).add(inc.target_rel)
        graph.setdefault(inc.target_rel, set())

    index_of, lowlink, on_stack = {}, {}, set()
    stack, sccs = [], []
    counter = [0]

    for start in sorted(graph):
        if start in index_of:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1 or node in graph.get(node, set()):
                    sccs.append(sorted(scc))

    findings = []
    for scc in sorted(sccs):
        findings.append(lsbench_lint.Finding(
            f"src/{scc[0]}", 1, "include-cycle",
            "include cycle between: " + " <-> ".join(scc) +
            "; break it by extracting the shared declarations into a "
            "lower-band header"))
    return findings


# --- Unused-edge (dead include) report --------------------------------------

PROVIDED_NAME_RES = (
    re.compile(r"\b(?:class|struct|union|enum(?:\s+class)?)\s+"
               r"(?:LSBENCH_\w+\s*\([^)]*\)\s*)?(\w+)"),
    re.compile(r"\busing\s+(\w+)\s*="),
    re.compile(r"^\s*#\s*define\s+(\w+)", re.M),
    re.compile(r"\b(\w+)\s*\("),  # function-ish names (broad on purpose)
)


def provided_names(header_text):
    code = lsbench_lint.strip_comments_and_strings(header_text)
    names = set()
    for pattern in PROVIDED_NAME_RES:
        names.update(pattern.findall(code))
    # Keywords and primitives the broad function-name pattern sweeps up.
    return names - {
        "if", "for", "while", "switch", "return", "sizeof", "defined",
        "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
        "decltype", "alignof", "noexcept", "explicit", "operator",
    }


def report_unused_edges(src_root, includes, suppressions=None):
    """Heuristic: an include whose header provides no identifier that
    appears in the includer. Ran advisory for long enough to tune the
    heuristic; now also enforceable via --check-unused, with legitimate
    exceptions (re-exported types, macros used in disabled branches)
    carrying an allow(unused-include) suppression on the include line."""
    suppressions = suppressions or {}
    texts = {}

    def text_of(rel):
        if rel not in texts:
            with open(os.path.join(src_root, rel), "r", encoding="utf-8",
                      errors="replace") as f:
                texts[rel] = f.read()
        return texts[rel]

    candidates = []
    for inc in includes:
        if not inc.target_rel.endswith(HEADER_EXTENSIONS):
            continue
        # A .cc including its own header is the interface edge; skip.
        base_src = os.path.splitext(inc.src_rel)[0]
        base_dst = os.path.splitext(inc.target_rel)[0]
        if base_src == base_dst:
            continue
        if "unused-include" in suppressions.get(inc.src_rel, {}).get(
                inc.line, set()):
            continue
        names = provided_names(text_of(inc.target_rel))
        if not names:
            continue
        body = lsbench_lint.strip_comments_and_strings(text_of(inc.src_rel))
        body_ids = set(re.findall(r"\b\w+\b", body))
        if names.isdisjoint(body_ids):
            candidates.append(
                (inc.src_rel, inc.line,
                 f"include of '{inc.target_rel}' contributes no identifier "
                 "used here; likely dead"))
    return sorted(candidates)


# --- Header self-sufficiency ------------------------------------------------

def check_self_sufficiency(src_root, headers, compiler, std, jobs=None):
    """Compiles each header standalone: a generated one-line TU with only
    the header, -fsyntax-only. Returns [(header, stderr)] failures."""

    def compile_one(rel, tmpdir):
        tu = os.path.join(
            tmpdir, re.sub(r"[^A-Za-z0-9_]", "_", rel) + "_tu.cc")
        with open(tu, "w", encoding="utf-8") as f:
            f.write(f'#include "{rel}"\n')
        cmd = [compiler, f"-std={std}", "-fsyntax-only",
               "-I", src_root, tu]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        return (rel, proc.returncode, proc.stderr.strip())

    failures = []
    with tempfile.TemporaryDirectory(prefix="lsbench_selfsuff_") as tmpdir:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=jobs or os.cpu_count() or 2) as pool:
            futures = [pool.submit(compile_one, rel, tmpdir)
                       for rel in sorted(headers)]
            for future in futures:
                rel, returncode, stderr = future.result()
                if returncode != 0:
                    failures.append((rel, stderr))
    return sorted(failures)


# --- Driver -----------------------------------------------------------------

def analyze_tree(src_root, layers):
    """Full structural analysis of one src tree; returns sorted findings."""
    files = walk_sources(src_root)
    includes, suppressions = parse_includes(src_root, files)
    findings = (check_layering(layers, includes, suppressions)
                + check_cycles(includes))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="lsbench-analyze",
        description="Architecture-layer enforcement for LSBench.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--layers", default=DEFAULT_LAYERS,
                        help="layer DAG spec (default: tools/lint/layers.toml)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile database (default: "
                             "<root>/compile_commands.json when present)")
    parser.add_argument("--report-unused", action="store_true",
                        help="also print the advisory dead-include report")
    parser.add_argument("--check-unused", action="store_true",
                        help="enforce the dead-include heuristic (findings, "
                             "exit 1); suppress with allow(unused-include)")
    parser.add_argument("--self-sufficiency", action="store_true",
                        help="compile every src/ header standalone")
    parser.add_argument("--compiler", default=None,
                        help="compiler for --self-sufficiency (default: "
                             "compile_commands.json, $CXX, then c++)")
    parser.add_argument("--std", default="c++20",
                        help="-std= for --self-sufficiency")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel compiles for --self-sufficiency")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print(f"lsbench-analyze: no src/ under {root}", file=sys.stderr)
        return 2
    try:
        layers = Layers.load(args.layers)
    except (OSError, RuntimeError) as e:
        print(f"lsbench-analyze: {e}", file=sys.stderr)
        return 2

    cc_path = args.compile_commands or os.path.join(root,
                                                    "compile_commands.json")
    cc_tus, cc_compiler = (seed_from_compile_commands(cc_path, src_root)
                           if os.path.exists(cc_path) else (set(), None))

    files = walk_sources(src_root)
    includes, suppressions = parse_includes(src_root, files)

    # TUs known to the build but missing on disk mean the database is stale;
    # warn (stale databases silently shrink the checked graph).
    missing = sorted(t for t in cc_tus
                     if t not in set(files) and not t.startswith(".."))
    if missing:
        print(f"lsbench-analyze: note: {len(missing)} compile_commands "
              "entries not found under src/ (stale database?)",
              file=sys.stderr)

    findings = (check_layering(layers, includes, suppressions)
                + check_cycles(includes))
    if args.check_unused:
        findings.extend(
            lsbench_lint.Finding(f"src/{rel}", line, "unused-include",
                                 message)
            for rel, line, message in report_unused_edges(
                src_root, includes, suppressions))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)

    if args.report_unused and not args.check_unused:
        for rel, line, message in report_unused_edges(src_root, includes,
                                                      suppressions):
            print(f"src/{rel}:{line}: [unused-include] {message} (advisory)")

    exit_code = 1 if findings else 0

    if args.self_sufficiency:
        compiler = (args.compiler or cc_compiler or os.environ.get("CXX")
                    or "c++")
        if shutil.which(compiler) is None:
            print(f"lsbench-analyze: compiler '{compiler}' not found",
                  file=sys.stderr)
            return 2
        headers = [f for f in files if f.endswith(HEADER_EXTENSIONS)]
        failures = check_self_sufficiency(src_root, headers, compiler,
                                          args.std, args.jobs)
        for rel, stderr in failures:
            first = stderr.splitlines()[0] if stderr else "compile failed"
            print(f"src/{rel}:1: [self-sufficiency] header does not compile "
                  f"standalone: {first}")
        if failures:
            exit_code = 1
        else:
            print(f"lsbench-analyze: {len(headers)} headers compile "
                  "standalone", file=sys.stderr)

    if findings:
        print(f"lsbench-analyze: {len(findings)} finding(s)",
              file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
