// plugins/ is not a band in layers.toml. Must fire: unknown-module.
#ifndef UNKNOWN_PLUGINS_ROGUE_H_
#define UNKNOWN_PLUGINS_ROGUE_H_
#include "util/base.h"
#endif
