#ifndef UNKNOWN_UTIL_BASE_H_
#define UNKNOWN_UTIL_BASE_H_
#endif
