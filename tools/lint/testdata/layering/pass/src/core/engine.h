// core -> util is a downward edge: allowed.
#ifndef PASS_CORE_ENGINE_H_
#define PASS_CORE_ENGINE_H_
#include "util/base.h"
namespace fixture { fixture::Tick Now(); }
#endif
