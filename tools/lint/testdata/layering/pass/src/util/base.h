// Bottom of the DAG: includes nothing.
#ifndef PASS_UTIL_BASE_H_
#define PASS_UTIL_BASE_H_
namespace fixture { using Tick = long; }
#endif
