// Half of a file-level include cycle. Must fire: include-cycle.
#ifndef CYCLE_CORE_A_H_
#define CYCLE_CORE_A_H_
#include "core/b.h"
#endif
