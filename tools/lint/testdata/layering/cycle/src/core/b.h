#ifndef CYCLE_CORE_B_H_
#define CYCLE_CORE_B_H_
#include "core/a.h"
#endif
