// Carries its own includes: compiles standalone.
#ifndef SELFSUFF_UTIL_GOOD_H_
#define SELFSUFF_UTIL_GOOD_H_
#include <string>
namespace fixture { std::string Hello(); }
#endif
