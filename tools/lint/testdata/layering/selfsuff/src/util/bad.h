// Uses std::string without including <string>: fails standalone.
#ifndef SELFSUFF_UTIL_BAD_H_
#define SELFSUFF_UTIL_BAD_H_
namespace fixture { std::string Broken(); }
#endif
