#ifndef CROSS_CORE_DRIVER_API_H_
#define CROSS_CORE_DRIVER_API_H_
namespace fixture { struct DriverApi {}; }
#endif
