// A sut/ header reaching up into core/: the reversed core -> sut edge the
// layer DAG forbids. Must fire: layering.
#ifndef CROSS_SUT_BAD_REVERSED_H_
#define CROSS_SUT_BAD_REVERSED_H_
#include "core/driver_api.h"
namespace fixture { struct BadSut { DriverApi api; }; }
#endif
