// Same reversed edge as cross_layer/, silenced by the shared suppression
// syntax (the reason would face the reviewer in real code).
#ifndef SUP_SUT_TOLERATED_H_
#define SUP_SUT_TOLERATED_H_
// lsbench-lint: allow(layering)
#include "core/driver_api.h"
namespace fixture { struct ToleratedSut { DriverApi api; }; }
#endif
