#ifndef SUP_CORE_DRIVER_API_H_
#define SUP_CORE_DRIVER_API_H_
namespace fixture { struct DriverApi {}; }
#endif
