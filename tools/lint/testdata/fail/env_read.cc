// Must fire: no-getenv (this file is not under src/util/).
#include <cstdlib>

bool QuickMode() {
  const char* env = std::getenv("LSBENCH_QUICK");
  return env != nullptr && env[0] == '1';
}
