// Must fire: no-libc-rand (both the seed call and the draw).
#include <cstdlib>

int Draw() {
  srand(42);
  return rand();
}
