// Must fire: no-detached-thread (a detached worker outlives the barrier).
#include <thread>

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}
