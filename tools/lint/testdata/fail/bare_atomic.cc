// Fixture: no-bare-atomic must fire twice — once on the raw std::atomic
// declaration, once on the explicit memory_order token.
#include <atomic>

struct Stats {
  std::atomic<unsigned long> hits{0};
};

unsigned long Read(const Stats& s) {
  return s.hits.load(std::memory_order_acquire);
}
