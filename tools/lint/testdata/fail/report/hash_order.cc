// Must fire: unordered-iteration (report-scope file emitting rows straight
// out of an unordered_map).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lsbench {

std::vector<std::string> EmitCounts(
    const std::unordered_map<std::string, uint64_t>& counts) {
  std::vector<std::string> out;
  for (const auto& [name, n] : counts) {
    out.push_back(name + "=" + std::to_string(n));
  }
  return out;
}

}  // namespace lsbench
