// Must fire: no-raw-lock (std::lock_guard and std::unique_lock outside
// util/sync.h — the analysis cannot see these lock holders).
#include <mutex>

struct Mutexish {
  void lock() {}
  void unlock() {}
};

void Locked(Mutexish& mu) {
  std::lock_guard<Mutexish> lock(mu);
  (void)lock;
}

void AlsoLocked(Mutexish& mu) {
  std::unique_lock<Mutexish> lock(mu);
  (void)lock;
}
