// Must fire: no-random-device.
#include <random>

unsigned Entropy() {
  std::random_device rd;
  return rd();
}
