// Must fire: no-unseeded-mt19937 (default-constructed engines).
#include <random>

unsigned long A() {
  std::mt19937 gen;
  return gen();
}

unsigned long long B() {
  std::mt19937_64 gen{};
  return gen();
}
