// Must fire: no-wall-clock (libc time() and std::chrono::system_clock).
#include <chrono>
#include <ctime>

long Now() {
  return static_cast<long>(time(nullptr));
}

long long NowChrono() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
