// Must fire: discarded-status (bare-expression calls dropping the result).
namespace lsbench {

class Status {
 public:
  bool ok() const { return true; }
};

class Store {
 public:
  Status Flush();
};

Status Reload(Store* store);

void Tick(Store* store) {
  store->Flush();
  Reload(store);
}

}  // namespace lsbench
