// Must fire: no-raw-mutex (std::mutex and std::condition_variable outside
// util/sync.h — invisible to Thread Safety Analysis).
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;
  std::condition_variable ready;
  int depth = 0;
};
