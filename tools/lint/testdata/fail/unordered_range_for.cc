// Fixture: unordered-range-for must fire on the hash-order loop feeding
// the serialized output (and this site is not on UNORDERED_ALLOWLIST).
#include <string>
#include <unordered_map>

std::string Serialize(const std::unordered_map<int, int>& m) {
  std::unordered_map<int, int> counts = m;
  std::string out;
  for (const auto& kv : counts) {
    out += std::to_string(kv.first) + "=" + std::to_string(kv.second) + "\n";
  }
  return out;
}
