// Must fire: no-raw-sleep (sleep_for and sleep_until outside util/).
#include <chrono>
#include <thread>

void Nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void NapUntil(std::chrono::steady_clock::time_point deadline) {
  std::this_thread::sleep_until(deadline);
}
