// The well-locked twin of bad_guarded_field.cc: every guarded access holds
// the mutex via MutexLock, an internal helper declares REQUIRES, and the
// public API declares EXCLUDES. Must compile warning-free under Clang
// -Wthread-safety -Wthread-safety-beta -Werror (and everywhere else, where
// the annotations are no-ops).
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Add(int n) LSBENCH_EXCLUDES(mu_) {
    lsbench::MutexLock lock(mu_);
    AddLocked(n);
  }

  int Total() const LSBENCH_EXCLUDES(mu_) {
    lsbench::MutexLock lock(mu_);
    return total_;
  }

 private:
  void AddLocked(int n) LSBENCH_REQUIRES(mu_) { total_ += n; }

  mutable lsbench::Mutex mu_;
  int total_ LSBENCH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total();
}
