// Deliberately broken: reads and writes a GUARDED_BY field without holding
// its mutex. Under Clang with -Wthread-safety -Werror this file MUST fail
// to compile — the CTest target thread_safety_fixture_bad asserts exactly
// that (WILL_FAIL). If this ever compiles under the thread-safety flags,
// the proof layer is dead and the build should say so.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Add(int n) {
    total_ += n;  // BAD: mu_ not held.
  }

  int Total() const {
    return total_;  // BAD: mu_ not held.
  }

 private:
  mutable lsbench::Mutex mu_;
  int total_ LSBENCH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Total();
}
