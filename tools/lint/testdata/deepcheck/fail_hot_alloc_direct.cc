// Must-flag: a direct heap allocation in an LSBENCH_HOT_PATH function.
// Expected: (hot-alloc, lsbench::HotAllocDirect, operator-new)
#include "fixture_prelude.h"

namespace lsbench {

LSBENCH_HOT_PATH
int* HotAllocDirect() { return new int(42); }

}  // namespace lsbench
