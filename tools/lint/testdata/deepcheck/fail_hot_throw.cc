// Must-flag: a throw expression on the hot path (lowered to __cxa_throw /
// __cxa_allocate_exception by the front end; both map to the same finding
// key, so exactly one finding is expected).
// Expected: (hot-throw, lsbench::HotThrow, throw)
#include "fixture_prelude.h"

namespace lsbench {

LSBENCH_HOT_PATH
int HotThrow(int v) {
  if (v < 0) throw 42;
  return v;
}

}  // namespace lsbench
