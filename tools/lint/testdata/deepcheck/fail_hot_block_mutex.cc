// Must-flag: unannotated mutex acquisition on the hot path. Only the
// util/sync.h wrappers (lsbench::Mutex et al.) are sanctioned gates; a raw
// std::mutex is a blocking hazard the rule must see. std::mutex::lock can
// also throw system_error, so the hot-throw walk flags it too (mirroring
// the reviewed lsbench::Mutex::Lock entry in the real tree's baseline).
// Expected: (hot-block, lsbench::HotLock, mutex)
//           (hot-throw, lsbench::HotLock, std-throw)
#include <mutex>

#include "fixture_prelude.h"

namespace lsbench {

LSBENCH_HOT_PATH
void HotLock(std::mutex& mu) {
  mu.lock();
  mu.unlock();
}

}  // namespace lsbench
