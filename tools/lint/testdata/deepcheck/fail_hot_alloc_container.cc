// Must-flag: container growth on the hot path. std::vector::push_back is a
// curated primitive (allocates and can throw length_error), so both hot
// rules fire at the root.
// Expected: (hot-alloc, lsbench::HotPush, operator-new)
//           (hot-throw, lsbench::HotPush, std-throw)
#include <vector>

#include "fixture_prelude.h"

namespace lsbench {

LSBENCH_HOT_PATH
void HotPush(std::vector<int>& values, int v) { values.push_back(v); }

}  // namespace lsbench
