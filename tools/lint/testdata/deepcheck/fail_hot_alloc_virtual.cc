// Must-flag: allocation behind virtual dispatch. The call site only sees
// the abstract base; class-hierarchy analysis must resolve the slot to the
// derived override and keep walking. The frontier is the override.
// Expected: (hot-alloc, lsbench::VecSink::Push, operator-new)
//           (hot-throw, lsbench::VecSink::Push, std-throw)
#include <vector>

#include "fixture_prelude.h"

namespace lsbench {

struct Sink {
  virtual ~Sink() = default;
  virtual void Push(int v) = 0;
};

struct VecSink : Sink {
  void Push(int v) override;
  std::vector<int> data_;
};

void VecSink::Push(int v) { data_.push_back(v); }

LSBENCH_HOT_PATH
void HotVirtual(Sink& sink) { sink.Push(7); }

}  // namespace lsbench
