// Must-flag: a wall-clock read inside the reproducibility contract.
// Expected: (determinism, lsbench::DeterministicStamp, wall-clock)
#include <chrono>
#include <cstdint>

#include "fixture_prelude.h"

namespace lsbench {

LSBENCH_DETERMINISTIC
int64_t DeterministicStamp() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace lsbench
