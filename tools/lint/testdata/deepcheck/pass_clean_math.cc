// Must-pass: pure arithmetic on the hot path — nothing reachable
// allocates, blocks, throws, or reads ambient state.
// Expected: no findings.
#include <cstdint>

#include "fixture_prelude.h"

namespace lsbench {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

LSBENCH_HOT_PATH
LSBENCH_DETERMINISTIC
uint64_t HotMix(uint64_t a, uint64_t b) { return Mix(a) ^ Mix(b); }

}  // namespace lsbench
