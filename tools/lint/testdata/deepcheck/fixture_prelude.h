#ifndef LSBENCH_DEEPCHECK_FIXTURE_PRELUDE_H_
#define LSBENCH_DEEPCHECK_FIXTURE_PRELUDE_H_

// Standalone copy of src/util/annotate.h's macros for deepcheck fixtures.
// Fixtures are compiled in an isolated tmpdir with no view of src/, so they
// carry their own definitions. Must stay expansion-identical to the real
// header: the clang frontend reads the attribute strings off the AST, the
// gcc frontend's scanner reads the macro tokens off the source text.

#if defined(__clang__)
#define LSBENCH_ANNOTATE(x) __attribute__((annotate(x)))
#else
#define LSBENCH_ANNOTATE(x)
#endif

#define LSBENCH_HOT_PATH LSBENCH_ANNOTATE("lsbench::hot_path")
#define LSBENCH_DETERMINISTIC LSBENCH_ANNOTATE("lsbench::deterministic")

#endif  // LSBENCH_DEEPCHECK_FIXTURE_PRELUDE_H_
