// Must-pass: lock acquisition through the sanctioned util/sync.h wrapper
// type. lsbench::Mutex:: is a hot-block gate, so the acquisition does not
// flag (unlike the raw std::mutex in fail_hot_block_mutex.cc).
// Expected: no findings.
#include <atomic>

#include "fixture_prelude.h"

namespace lsbench {

class Mutex {
 public:
  void Lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

LSBENCH_HOT_PATH
int HotGated(Mutex& mu) {
  mu.Lock();
  mu.Unlock();
  return 1;
}

}  // namespace lsbench
