// Must-pass: a reviewed one-off exemption. The helper allocates, but the
// allow-comment on its declaration suppresses the finding at the frontier
// (the same mechanism the arena slow paths in src/ use).
// Expected: no findings.
#include "fixture_prelude.h"

namespace lsbench {

// lsbench-deepcheck: allow(hot-alloc, hot-throw)
int* SanctionedSpill() { return new int(7); }

LSBENCH_HOT_PATH
int* HotWithExemptHelper() { return SanctionedSpill(); }

}  // namespace lsbench
