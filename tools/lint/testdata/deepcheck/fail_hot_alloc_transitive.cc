// Must-flag: an allocation three frames below the annotated root — the
// case the regex lint can never see. The finding's frontier is the last
// project frame (LevelThree), not the root.
// Expected: (hot-alloc, lsbench::LevelThree, malloc)
#include <cstdlib>

#include "fixture_prelude.h"

namespace lsbench {

void* LevelThree() { return std::malloc(16); }

void* LevelTwo() { return LevelThree(); }

void* LevelOne() { return LevelTwo(); }

LSBENCH_HOT_PATH
void* HotTransitive() { return LevelOne(); }

}  // namespace lsbench
