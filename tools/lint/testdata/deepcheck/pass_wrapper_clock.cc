// Must-pass: a clock read through the sanctioned wrapper. Traversal stops
// at the lsbench::RealClock::NowNanos gate and never sees the
// steady_clock::now() inside — the wrapper IS the approved route.
// Expected: no findings.
#include <chrono>
#include <cstdint>

#include "fixture_prelude.h"

namespace lsbench {

class RealClock {
 public:
  int64_t NowNanos() const;
};

int64_t RealClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LSBENCH_DETERMINISTIC
int64_t DeterministicTick(const RealClock& clock) { return clock.NowNanos(); }

}  // namespace lsbench
