// Report-scope file that copies unordered data into a sorted container
// before emitting it: the unordered-iteration rule must stay quiet.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lsbench {

std::vector<std::string> EmitCounts(
    const std::unordered_map<std::string, uint64_t>& counts) {
  std::vector<std::pair<std::string, uint64_t>> rows(counts.begin(),
                                                     counts.end());
  std::sort(rows.begin(), rows.end());
  std::vector<std::string> out;
  for (const auto& [name, n] : rows) {
    out.push_back(name + "=" + std::to_string(n));
  }
  return out;
}

}  // namespace lsbench
