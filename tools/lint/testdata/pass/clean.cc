// A deterministic, well-behaved translation unit: every rule stays quiet.
#include <cstdint>
#include <map>
#include <vector>

namespace lsbench {

class Status {
 public:
  bool ok() const { return true; }
};

Status DoWork();
Status DoOther();

// Explicitly seeded randomness and consumed Status results are fine.
Status Run(uint64_t seed) {
  uint64_t state = seed * 0x9e3779b97f4a7c15ULL;
  (void)state;
  Status st = DoWork();
  if (!st.ok()) return st;
  return DoOther();
}

// Mentioning banned names in comments or strings must not fire:
// std::random_device, rand(), time(), system_clock, getenv("X").
const char* kDoc = "never call std::random_device or time() here";

// Ordered iteration in ordinary code is fine.
uint64_t Sum(const std::map<uint64_t, uint64_t>& m) {
  uint64_t total = 0;
  for (const auto& [k, v] : m) total += k + v;
  return total;
}

}  // namespace lsbench
