// Same violations as fail/wall_clock.cc, silenced by suppressions.
#include <chrono>
#include <ctime>

long Now() {
  return static_cast<long>(time(nullptr));  // lsbench-lint: allow(no-wall-clock)
}

long long NowChrono() {
  // lsbench-lint: allow(no-wall-clock)
  return std::chrono::system_clock::now().time_since_epoch().count();
}
