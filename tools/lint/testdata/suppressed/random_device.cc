// Same violation as fail/random_device.cc, silenced by a suppression.
#include <random>

unsigned Entropy() {
  std::random_device rd;  // lsbench-lint: allow(no-random-device)
  return rd();
}
