// Same violations as fail/discarded_status.cc, silenced by suppressions.
namespace lsbench {

class Status {
 public:
  bool ok() const { return true; }
};

class Store {
 public:
  Status Flush();
};

Status Reload(Store* store);

void Tick(Store* store) {
  store->Flush();  // lsbench-lint: allow(discarded-status)
  // lsbench-lint: allow(discarded-status)
  Reload(store);
}

}  // namespace lsbench
