// Same violations as fail/unseeded_mt19937.cc, silenced by suppressions.
#include <random>

unsigned long A() {
  std::mt19937 gen;  // lsbench-lint: allow(no-unseeded-mt19937)
  return gen();
}

unsigned long long B() {
  // lsbench-lint: allow(no-unseeded-mt19937)
  std::mt19937_64 gen{};
  return gen();
}
