// Same violations as fail/raw_mutex.cc, silenced by suppressions.
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;  // lsbench-lint: allow(no-raw-mutex)
  // lsbench-lint: allow(no-raw-mutex)
  std::condition_variable ready;
  int depth = 0;
};
