// Suppressed twin of fail/bare_atomic.cc: both findings silenced inline.
#include <atomic>

struct Stats {
  std::atomic<unsigned long> hits{0};  // lsbench-lint: allow(no-bare-atomic)
};

unsigned long Read(const Stats& s) {
  // lsbench-lint: allow(no-bare-atomic)
  return s.hits.load(std::memory_order_acquire);
}
