// Same violation as fail/report/hash_order.cc, silenced by a suppression
// (and a multi-rule allow list, exercising the comma syntax).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lsbench {

std::vector<std::string> EmitCounts(
    const std::unordered_map<std::string, uint64_t>& counts) {
  std::vector<std::string> out;
  // lsbench-lint: allow(unordered-iteration, no-wall-clock)
  for (const auto& [name, n] : counts) {
    out.push_back(name + "=" + std::to_string(n));
  }
  return out;
}

}  // namespace lsbench
