// Suppressed twin of fail/unordered_range_for.cc.
#include <string>
#include <unordered_map>

std::string Serialize(const std::unordered_map<int, int>& m) {
  std::unordered_map<int, int> counts = m;
  std::string out;
  // lsbench-lint: allow(unordered-range-for)
  for (const auto& kv : counts) {
    out += std::to_string(kv.first) + "=" + std::to_string(kv.second) + "\n";
  }
  return out;
}
