// Same violations as fail/libc_rand.cc, silenced by suppressions — one
// same-line, one on the preceding line.
#include <cstdlib>

int Draw() {
  srand(42);  // lsbench-lint: allow(no-libc-rand)
  // lsbench-lint: allow(no-libc-rand)
  return rand();
}
