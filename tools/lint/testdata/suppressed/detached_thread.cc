// Same violation as fail/detached_thread.cc, silenced by a suppression.
#include <thread>

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // lsbench-lint: allow(no-detached-thread)
}
