// Same violations as fail/raw_lock.cc, silenced by suppressions.
#include <mutex>

struct Mutexish {
  void lock() {}
  void unlock() {}
};

void Locked(Mutexish& mu) {
  std::lock_guard<Mutexish> lock(mu);  // lsbench-lint: allow(no-raw-lock)
  (void)lock;
}

void AlsoLocked(Mutexish& mu) {
  // lsbench-lint: allow(no-raw-lock)
  std::unique_lock<Mutexish> lock(mu);
  (void)lock;
}
