// Same violations as fail/raw_sleep.cc, silenced by suppressions.
#include <chrono>
#include <thread>

void Nap() {
  // lsbench-lint: allow(no-raw-sleep)
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

void NapUntil(std::chrono::steady_clock::time_point deadline) {
  std::this_thread::sleep_until(deadline);  // lsbench-lint: allow(no-raw-sleep)
}
