// Same violation as fail/env_read.cc, silenced by a suppression.
#include <cstdlib>

bool QuickMode() {
  // lsbench-lint: allow(no-getenv)
  const char* env = std::getenv("LSBENCH_QUICK");
  return env != nullptr && env[0] == '1';
}
