#!/usr/bin/env python3
"""lsbench-deepcheck: interprocedural hot-path audit for LSBench.

The regex lint (lsbench-lint) and the include DAG (lsbench-analyze) cannot
see *through calls*: a wall-clock read or heap allocation three frames below
the per-op loop is invisible to both. deepcheck builds an interprocedural
call graph over every src/ TU in compile_commands.json and walks it from
annotated roots (src/util/annotate.h):

  LSBENCH_HOT_PATH       roots for rules hot-alloc / hot-block / hot-throw
  LSBENCH_DETERMINISTIC  roots for rule determinism

Rules
  hot-alloc     no heap allocation (operator new, malloc family, allocating
                container entry points) reachable from a hot-path root.
  hot-block     no sleeps, file/socket I/O, or unsanctioned mutex/condvar
                acquisition reachable from a hot-path root. The util/sync.h
                wrappers (lsbench::Mutex/MutexLock/CondVar) and
                lsbench::SleepSpinUntil are the only sanctioned gates.
  hot-throw     no throw (__cxa_throw / std::__throw_* helpers / throwing
                STL entry points) reachable from a hot-path root.
  determinism   nothing reachable from a deterministic root may read
                ambient nondeterminism (wall clocks, std::random_device,
                rand, getenv, locale) except through the sanctioned util/
                wrappers (lsbench::RealClock::NowNanos, lsbench::Rng,
                lsbench::GetEnv/EnvFlagEnabled).

Frontends
  gcc    (default) compiles each TU with -fdump-tree-original and
         -fdump-lang-class and parses the dumps: every instantiated
         function body (including STL internals) is visible, and virtual
         calls are devirtualized by class-hierarchy analysis over the
         dumped vtables. Roots and suppressions come from a source scanner
         (the macros expand to nothing under GCC).
  clang  clang.cindex over the same compile_commands.json. Template
         instantiation bodies are not exposed by libclang, so a curated
         table of allocating/throwing STL entry points (shared with the
         gcc frontend as primitives) keeps findings keyed identically.

Findings are keyed (rule, frontier, category) where the frontier is the
last lsbench:: frame on the violation path — portable across frontends and
libstdc++ versions. Non-baselined findings fail the run; the committed
numbered baseline is tools/lint/deepcheck_baseline. One-off sanctioned
reaches: `// lsbench-deepcheck: allow(rule[, rule...])` on or above the
frontier function's declaration.

Exit codes: 0 clean, 1 findings, 2 configuration/compile error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

RULES = ("hot-alloc", "hot-block", "hot-throw", "determinism")
HOT_RULES = ("hot-alloc", "hot-block", "hot-throw")
PROJECT_PREFIXES = ("lsbench::",)

# Annotation macro tokens (GCC source scanner) and the attribute strings the
# clang frontend reads off the AST; both resolve to the same root families.
ANNOTATION_TOKENS = {
    "LSBENCH_HOT_PATH": "hot_path",
    "LSBENCH_DETERMINISTIC": "deterministic",
}
CLANG_ANNOTATIONS = {
    "lsbench::hot_path": "hot_path",
    "lsbench::deterministic": "deterministic",
}
ROOT_FAMILY_RULES = {
    "hot_path": HOT_RULES,
    "deterministic": ("determinism",),
}

# ---------------------------------------------------------------------------
# Primitive vocabulary: normalized callee name -> [(rule, category)].
# Shared by both frontends so baseline keys agree. The gcc frontend would
# also find what the curated STL entries expand to by descending into their
# bodies; matching them as primitives keeps the two frontends' categories
# and frontiers identical.
# ---------------------------------------------------------------------------


def _expand(table):
    out = {}
    for names, hits in table:
        for name in names:
            out.setdefault(name, []).extend(hits)
    return out


_ALLOC = ("hot-alloc", "operator-new")
_MALLOC = ("hot-alloc", "malloc")
_THROW = ("hot-throw", "throw")
_STD_THROW = ("hot-throw", "std-throw")
_SLEEP = ("hot-block", "sleep")
_MUTEX = ("hot-block", "mutex")
_CONDWAIT = ("hot-block", "cond-wait")
_IO = ("hot-block", "io")
_SOCKET = ("hot-block", "socket")
_WALLCLOCK = ("determinism", "wall-clock")
_MONOCLOCK = ("determinism", "monotonic-clock")
_LIBC_RAND = ("determinism", "libc-rand")
_RANDOM_DEV = ("determinism", "random-device")
_GETENV = ("determinism", "getenv")
_LOCALE = ("determinism", "locale")

PRIMITIVES = _expand([
    # Raw allocation.
    (("operator new", "operator new []"), [_ALLOC]),
    (("malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
      "strdup", "__builtin_malloc", "__builtin_calloc", "__builtin_realloc",
      "__builtin_strdup"), [_MALLOC]),
    # Allocating (and throwing) STL entry points — the curated table that
    # lets the clang frontend (no template bodies) agree with gcc.
    (("std::vector::push_back", "std::vector::emplace_back",
      "std::vector::resize", "std::vector::reserve", "std::vector::insert",
      "std::deque::push_back", "std::deque::push_front",
      "std::deque::emplace_back", "std::deque::emplace_front",
      "std::basic_string::basic_string", "std::basic_string::append",
      "std::basic_string::push_back", "std::basic_string::operator+=",
      "std::basic_string::reserve", "std::basic_string::resize",
      "std::basic_string::insert", "std::basic_string::replace",
      "std::basic_string::substr", "std::basic_string::operator=",
      "std::basic_string::assign", "std::vector::operator=",
      "std::vector::assign", "std::vector::vector", "std::deque::deque",
      "std::deque::operator=", "std::stable_sort",
      "std::priority_queue::push", "std::priority_queue::emplace",
      "std::function::function", "std::function::operator=",
      "std::make_unique", "std::make_shared", "std::to_string",
      "std::map::insert", "std::map::emplace", "std::map::operator[]",
      "std::set::insert", "std::set::emplace",
      "std::unordered_map::insert", "std::unordered_map::emplace",
      "std::unordered_map::operator[]", "std::unordered_map::rehash",
      "std::unordered_map::reserve", "std::unordered_set::insert",
      "std::unordered_set::emplace"), [_ALLOC, _STD_THROW]),
    # Throw machinery and throwing-only STL entry points.
    (("__cxa_throw", "__cxa_rethrow", "__cxa_allocate_exception"), [_THROW]),
    (("std::vector::at", "std::basic_string::at", "std::optional::value",
      "std::stoi", "std::stol", "std::stoul", "std::stoll", "std::stod",
      "std::stof"), [_STD_THROW]),
    # Sleeps.
    (("nanosleep", "usleep", "sleep", "std::this_thread::sleep_for",
      "std::this_thread::sleep_until"), [_SLEEP]),
    # Unsanctioned lock acquisition (lsbench::Mutex et al. are gates).
    (("pthread_mutex_lock", "__gthread_mutex_lock",
      "__gthread_recursive_mutex_lock", "std::mutex::lock",
      "std::timed_mutex::lock", "std::recursive_mutex::lock",
      "std::shared_mutex::lock", "std::shared_mutex::lock_shared",
      "std::lock_guard::lock_guard", "std::unique_lock::unique_lock",
      "std::unique_lock::lock", "std::scoped_lock::scoped_lock",
      "std::lock"), [_MUTEX]),
    (("pthread_cond_wait", "pthread_cond_timedwait", "__gthread_cond_wait",
      "std::condition_variable::wait", "std::condition_variable::wait_for",
      "std::condition_variable::wait_until", "pthread_join",
      "std::thread::join"), [_CONDWAIT]),
    # File I/O (fprintf on LSBENCH_ASSERT failure paths shows up here; those
    # crash-only reaches are baselined with comments, not exempted).
    (("open", "openat", "read", "write", "pread", "pwrite", "fsync",
      "fdatasync", "fopen", "fclose", "fread", "fwrite", "fputs", "fputc",
      "fprintf", "printf", "puts", "putchar", "fflush", "fscanf", "scanf",
      "__builtin_printf", "__builtin_fprintf", "__builtin_puts",
      "__builtin_putchar", "__builtin_fwrite", "__builtin_fputs",
      "std::getline", "std::operator<<", "std::operator>>"), [_IO]),
    (("send", "recv", "sendto", "recvfrom", "connect", "accept", "select",
      "poll", "epoll_wait"), [_SOCKET]),
    # Ambient nondeterminism.
    (("std::chrono::system_clock::now", "time", "std::time", "gettimeofday",
      "localtime", "localtime_r", "gmtime", "gmtime_r", "strftime"),
     [_WALLCLOCK]),
    (("std::chrono::steady_clock::now",
      "std::chrono::high_resolution_clock::now", "clock_gettime", "clock"),
     [_MONOCLOCK]),
    (("rand", "srand", "random", "srandom", "drand48", "lrand48", "mrand48",
      "rand_r"), [_LIBC_RAND]),
    (("getenv", "secure_getenv", "std::getenv"), [_GETENV]),
    (("setlocale", "std::setlocale", "std::locale::global"), [_LOCALE]),
])

# Prefix-matched primitives (normalized-name startswith).
PREFIX_PRIMITIVES = (
    ("std::__throw_", _STD_THROW),
    ("std::random_device::", _RANDOM_DEV),
    ("std::basic_ostream::", _IO),
    ("std::basic_istream::", _IO),
    ("std::basic_filebuf::", _IO),
    ("std::basic_fstream::", _IO),
    ("std::basic_ifstream::", _IO),
    ("std::basic_ofstream::", _IO),
)

# Sanctioned gates: traversal stops at these names without flagging. Keyed
# by rule; (exact names, prefixes).
# lsbench::Atomic:: is gated under every rule: the wrapper performs exactly
# one std::atomic op plus a call through the lsbench-sched preemption hook
# (util/sched_hooks.h), whose observer is null outside exploration — the
# virtual dispatch must not smear unknown-target taint over every counter
# bump on a proven-hot path. The wrapper itself is the sanctioned boundary,
# exactly like Mutex/CondVar for hot-block (enforced by the no-bare-atomic
# lint rule: nothing outside util/atomic.h can touch std::atomic directly).
GATES = {
    "determinism": (
        frozenset({"lsbench::RealClock::NowNanos", "lsbench::GetEnv",
                   "lsbench::EnvFlagEnabled", "lsbench::SleepSpinUntil"}),
        ("lsbench::Rng::", "lsbench::SplitMix64", "lsbench::Atomic::"),
    ),
    "hot-block": (
        frozenset({"lsbench::SleepSpinUntil"}),
        ("lsbench::Mutex::", "lsbench::MutexLock::", "lsbench::CondVar::",
         "lsbench::Atomic::"),
    ),
    "hot-alloc": (frozenset(), ("lsbench::Atomic::",)),
    "hot-throw": (frozenset(), ("lsbench::Atomic::",)),
}

# Virtual dispatch through these class basenames is a modeled boundary for
# hot rules: the SUT interface is where the harness guarantee ends and the
# measured system begins (its cost IS the measurement). Harness-side SUT
# wrappers re-enter the audit via their own LSBENCH_HOT_PATH roots, and the
# determinism rule has no boundary — SUT implementations must stay
# reproducible too.
VIRTUAL_BOUNDARIES = {
    "hot-alloc": frozenset({"SystemUnderTest"}),
    "hot-block": frozenset({"SystemUnderTest"}),
    "hot-throw": frozenset({"SystemUnderTest"}),
    "determinism": frozenset(),
}

SUPPRESS_RE = re.compile(r"//\s*lsbench-deepcheck:\s*allow\(([^)]*)\)")

# Merged nodes we never descend into. Template stripping merges every
# overload/instantiation of a name into one node, and for these the merge is
# pathological: std::move the cast merges with std::move the range
# algorithm, and vector<bool>'s _Bit_* iterator machinery merges plain
# vector access with bit-reference plumbing (which reaches unrelated
# operator+ overloads). None of them perform banned operations themselves.
# Known limitation: a genuine std::move(first, last, out) range copy is not
# traversed — use std::copy, which is.
NON_DESCEND = frozenset({"std::move", "std::forward"})
NON_DESCEND_PREFIXES = ("std::_Bit_",)


def match_primitives(key):
    """All (rule, category) hits for a normalized callee name."""
    hits = list(PRIMITIVES.get(key, ()))
    for prefix, hit in PREFIX_PRIMITIVES:
        if key.startswith(prefix):
            hits.append(hit)
    return hits


def is_gated(rule, key):
    exact, prefixes = GATES[rule]
    return key in exact or key.startswith(prefixes)


# ---------------------------------------------------------------------------
# Name normalization: qualified names with every template argument list
# stripped, so instantiations/overloads merge and baseline keys are portable
# across frontends and libstdc++ versions.
# ---------------------------------------------------------------------------

_OPERATOR_SYM_RE = re.compile(r"operator\s*([^\w\s(]+)")


def strip_template_args(name):
    out = []
    depth = 0
    i = 0
    n = len(name)
    while i < n:
        if name.startswith("operator", i) and (i == 0 or not (
                name[i - 1].isalnum() or name[i - 1] == "_")):
            m = _OPERATOR_SYM_RE.match(name, i)
            if m and depth == 0:
                out.append("operator" + m.group(1))
                i = m.end()
                continue
        c = name[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
        i += 1
    flat = re.sub(r"\s+", " ", "".join(out)).strip()
    # Drop libstdc++ inline-namespace segments (std::__cxx11::basic_string,
    # std::chrono::_V2::steady_clock) so curated primitive names match
    # regardless of ABI/versioning namespaces.
    return re.sub(r"\b(?:__cxx11|_V2)::", "", flat)


def basename_of(name):
    """Last :: segment of a template-stripped class name."""
    return strip_template_args(name).rsplit("::", 1)[-1]


def is_project(key):
    return key.startswith(PROJECT_PREFIXES)


# ---------------------------------------------------------------------------
# Graph IR (shared by both frontends).
# ---------------------------------------------------------------------------


@dataclass
class Graph:
    edges: dict = field(default_factory=dict)    # key -> set(callee key)
    vedges: dict = field(default_factory=dict)   # key -> set((class, target))
    defined: set = field(default_factory=set)

    def add_edge(self, caller, callee):
        self.edges.setdefault(caller, set()).add(callee)

    def add_vedge(self, caller, cls, target):
        self.vedges.setdefault(caller, set()).add((cls, target))


@dataclass
class Finding:
    rule: str
    frontier: str
    category: str
    root: str
    path: tuple

    def key(self):
        return (self.rule, self.frontier, self.category)

    def render(self):
        lines = [f"deepcheck: [{self.rule}] {self.frontier} -> "
                 f"{self.category} (root {self.root})"]
        lines.append("  path: " + " -> ".join(self.path))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Source scanner: annotation roots + suppressions, with namespace/class
# scope tracking so names come out fully qualified. Used by both frontends
# (under GCC the macros expand to nothing, so the source text is the truth;
# under clang the AST attributes are unioned in as a cross-check).
# ---------------------------------------------------------------------------

_SCOPE_RE = re.compile(
    r"\b(namespace|class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^;{]*)?\{")
_DECL_NAME_RE = re.compile(
    r"((?:[A-Za-z_~]\w*::)*(?:operator\s*(?:\(\)|\[\]|new\s*\[\]|"
    r"delete\s*\[\]|new|delete|[^\s(]+)|[A-Za-z_~]\w*))\s*\(")
_DECL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignas", "alignof",
    "decltype", "noexcept", "static_assert", "catch", "defined", "assert",
    "LSBENCH_ANNOTATE", "LSBENCH_GUARDED_BY", "LSBENCH_REQUIRES",
    "LSBENCH_EXCLUDES", "LSBENCH_ACQUIRE", "LSBENCH_RELEASE",
})


def _strip_comments_and_strings(text):
    """Blanks comments/string contents, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * (max(0, j - i - 1)) + c)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _declared_name_after(stripped_lines, line_idx, scopes_at_line):
    """Qualified name of the function declared at/just after line_idx."""
    window = " ".join(stripped_lines[line_idx:line_idx + 6])
    for m in _DECL_NAME_RE.finditer(window):
        name = m.group(1)
        last = name.rsplit("::", 1)[-1]
        if last in _DECL_KEYWORDS or name in _DECL_KEYWORDS:
            continue
        if last.startswith("LSBENCH_"):
            continue
        scope = scopes_at_line.get(line_idx, ())
        qualified = "::".join(list(scope) + [name])
        return strip_template_args(qualified)
    return None


@dataclass
class ScanResult:
    roots: dict = field(default_factory=lambda: {"hot_path": {},
                                                 "deterministic": {}})
    suppressions: dict = field(default_factory=dict)  # name -> set(rule)
    errors: list = field(default_factory=list)


def scan_sources(scan_dirs):
    """Collects annotation roots and suppressions from .h/.cc files."""
    result = ScanResult()
    files = []
    for d in scan_dirs:
        if os.path.isfile(d):
            files.append(d)
            continue
        for dirpath, _, names in os.walk(d):
            for name in sorted(names):
                if name.endswith((".h", ".hpp", ".cc", ".cpp")):
                    files.append(os.path.join(dirpath, name))
    for path in sorted(set(files)):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError as e:
            result.errors.append(f"{path}: unreadable: {e}")
            continue
        _scan_file(path, raw, result)
    return result


def _scan_file(path, raw, result):
    raw_lines = raw.splitlines()
    stripped = _strip_comments_and_strings(raw)
    stripped_lines = stripped.splitlines()

    # Scope stack per line: walk the stripped text tracking braces and the
    # namespace/class names that opened them.
    scopes_at_line = {}
    stack = []  # (name or None, brace depth it owns)
    depth = 0
    for idx, line in enumerate(stripped_lines):
        scopes_at_line[idx] = tuple(n for n, _ in stack if n)
        pos = 0
        while pos < len(line):
            m = _SCOPE_RE.search(line, pos)
            next_scope_start = m.start() if m else len(line)
            for j in range(pos, next_scope_start):
                if line[j] == "{":
                    depth += 1
                    stack.append((None, depth))
                elif line[j] == "}":
                    if stack and stack[-1][1] == depth:
                        stack.pop()
                    depth = max(0, depth - 1)
            if not m:
                break
            depth += 1
            stack.append((m.group(2), depth))
            pos = m.end()

    for idx, line in enumerate(stripped_lines):
        if line.lstrip().startswith("#"):
            continue  # the macro definitions themselves are not roots
        for token, family in ANNOTATION_TOKENS.items():
            if re.search(rf"\b{token}\b", line):
                name = _declared_name_after(stripped_lines, idx,
                                            scopes_at_line)
                if name is None:
                    result.errors.append(
                        f"{path}:{idx + 1}: {token} not followed by a "
                        "parseable function declaration")
                else:
                    result.roots[family].setdefault(name,
                                                    f"{path}:{idx + 1}")
    for idx, line in enumerate(raw_lines):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        bad = rules - set(RULES)
        if bad:
            result.errors.append(
                f"{path}:{idx + 1}: unknown deepcheck rule(s) in "
                f"suppression: {', '.join(sorted(bad))}")
            continue
        name = _declared_name_after(stripped_lines, idx, scopes_at_line)
        if name is None:
            result.errors.append(
                f"{path}:{idx + 1}: lsbench-deepcheck: allow(...) not "
                "attached to a parseable function declaration")
        else:
            result.suppressions.setdefault(name, set()).update(rules)


# ---------------------------------------------------------------------------
# GCC frontend: -fdump-tree-original (all instantiated bodies, named call
# sites) + -fdump-lang-class (vtables + base-class lists for CHA).
# ---------------------------------------------------------------------------

_FUNC_HEADER_RE = re.compile(r"^;; Function (.+?) \((?:null|[*\w.]+)\)\s*$")
_OBJ_TYPE_REF_RE = re.compile(
    r";\((?:const |volatile )*struct ([\w:]+)\)[^;]*?->(\d+)B\)")
_CTOR_STRUCT_RE = re.compile(r"\((?:const )?struct ([\w:]+) \*\)")
_VTABLE_HEADER_RE = re.compile(r"^Vtable for (.+)$")
_VTABLE_ENTRY_RE = re.compile(
    r"^(\d+)\s+(?:\(int \(\*\)\(\.\.\.\)\))?\s*(.*)$")
_CLASS_HEADER_RE = re.compile(r"^Class (.+)$")
# Hierarchy lines are flush-left for direct bases (indentation only grows
# for nested/virtual bases); the class's own line matches too and is
# discarded by the base != cls guard below.
_CLASS_BASE_RE = re.compile(r"^\s*([\w:]+(?:<[^(]*>)?) \(0x")

_CALL_KEYWORDS = frozenset({
    "if", "while", "for", "switch", "return", "sizeof", "catch", "new",
    "delete", "else", "do", "goto", "try", "finally", "expr",
    "cleanup_point", "void_cst", "aggr_init_expr", "predictor",
})


def _trailing_qualified(text):
    """Qualified name ending at text's end (handles templates, operators)."""
    s = text.rstrip()
    if not s:
        return None
    # Operator forms first: the symbol chars would derail the backward scan.
    m = re.search(
        r"operator\s*(?:\(\)|\[\]|new\s*\[\]|delete\s*\[\]|new|delete|"
        r"\s[\w:]+|[^\w\s(]+)$", s)
    suffix = ""
    if m:
        suffix = re.sub(r"\s+", " ", s[m.start():])
        s = s[:m.start()]
    i = len(s) - 1
    depth = 0
    while i >= 0:
        c = s[i]
        if c == ">":
            depth += 1
        elif c == "<":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and not (c.isalnum() or c in "_:~"):
            break
        i -= 1
    name = s[i + 1:] + suffix
    name = name.strip(":").strip()
    if not name:
        return None
    return name


def _parse_signature(sig):
    """Normalized node key from a ';; Function <sig>' header."""
    idx = sig.find(" [with ")
    if idx != -1:
        sig = sig[:idx]
    sig = sig.strip()
    changed = True
    while changed:
        changed = False
        for suf in (" const", " volatile", " noexcept", " &&", " &",
                    " override", " [[noreturn]]"):
            if sig.endswith(suf):
                sig = sig[:-len(suf)]
                changed = True
    if not sig.endswith(")"):
        return None
    depth = 0
    i = len(sig) - 1
    while i >= 0:
        if sig[i] == ")":
            depth += 1
        elif sig[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        return None
    name = _trailing_qualified(sig[:i])
    if not name:
        return None
    return strip_template_args(name)


def _extract_calls(line, graph, caller, ctor_pending):
    """Named call sites + virtual dispatches + ctor nodes on one body line."""
    for m in _OBJ_TYPE_REF_RE.finditer(line):
        graph.add_vedge(caller, basename_of(m.group(1)), int(m.group(2)))
    if "__ct_comp" in line or "__ct_base" in line:
        ctor_pending.append(3)  # look for (struct X *) in next few lines
    if ctor_pending:
        m = _CTOR_STRUCT_RE.search(line)
        if m:
            graph.add_edge(caller, "__CTOR__:" + basename_of(m.group(1)))
            ctor_pending.clear()
        else:
            ctor_pending[:] = [t - 1 for t in ctor_pending if t > 1]
    pos = 0
    while True:
        pos = line.find(" (", pos)
        if pos < 0:
            break
        name = _trailing_qualified(line[:pos])
        pos += 2
        if not name:
            continue
        last = name.rsplit("::", 1)[-1]
        if (name in _CALL_KEYWORDS or last in _CALL_KEYWORDS
                or name[0].isdigit() or re.fullmatch(r"_\d+", name)
                or name.isupper()):
            continue
        key = strip_template_args(name)
        if key.startswith("operator new"):
            # Placement new (multiple top-level args) constructs, does not
            # allocate. (Caveat: nothrow new also has two args and WOULD be
            # skipped; the tree does not use it.)
            tail = line[pos:]
            d, topcommas = 0, 0
            for ch in tail:
                if ch == "(":
                    d += 1
                elif ch == ")":
                    if d == 0:
                        break
                    d -= 1
                elif ch == "," and d == 0:
                    topcommas += 1
            if topcommas >= 1:
                continue
        graph.add_edge(caller, key)


def _parse_original_dump(text, graph):
    caller = None
    ctor_pending = []
    for line in text.splitlines():
        m = _FUNC_HEADER_RE.match(line)
        if m:
            caller = _parse_signature(m.group(1))
            ctor_pending = []
            if caller:
                graph.defined.add(caller)
            continue
        if caller and ("(" in line or ctor_pending):
            _extract_calls(line, graph, caller, ctor_pending)


def _parse_class_dump(text, vtables, bases):
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = _VTABLE_HEADER_RE.match(lines[i])
        if m:
            cls = basename_of(m.group(1))
            slot_map = vtables.setdefault(cls, {})
            i += 1
            while i < len(lines) and lines[i].strip():
                em = _VTABLE_ENTRY_RE.match(lines[i])
                if em:
                    offset, target = int(em.group(1)), em.group(2).strip()
                    if (offset >= 16 and target and target != "0"
                            and not target.startswith("(& _ZTI")
                            and "__cxa_pure_virtual" not in target
                            and "::_ZT" not in target):
                        slot = (offset - 16) // 8
                        slot_map.setdefault(slot, set()).add(
                            strip_template_args(target))
                i += 1
            continue
        m = _CLASS_HEADER_RE.match(lines[i])
        if m:
            cls = basename_of(m.group(1))
            i += 1
            while i < len(lines) and lines[i].strip():
                bm = _CLASS_BASE_RE.match(lines[i])
                if bm:
                    base = basename_of(bm.group(1))
                    if base != cls:
                        bases.setdefault(cls, set()).add(base)
                i += 1
            continue
        i += 1


def _tu_compile_args(entry):
    toks = entry.get("arguments") or shlex.split(entry["command"])
    keep = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if t in ("-I", "-D", "-U", "-isystem", "-include"):
            keep.extend(toks[i:i + 2])
            i += 2
            continue
        if t.startswith(("-I", "-D", "-U")) or t.startswith("-std="):
            keep.append(t)
        i += 1
    return keep


def _gcc_compile_one(entry, compiler):
    src = entry["file"]
    directory = entry.get("directory", ".")
    if not os.path.isabs(src):
        src = os.path.join(directory, src)
    graph = Graph()
    vtables, bases = {}, {}
    with tempfile.TemporaryDirectory(prefix="deepcheck-") as tmp:
        orig = os.path.join(tmp, "tu.orig")
        cls = os.path.join(tmp, "tu.class")
        cmd = ([compiler] + _tu_compile_args(entry) +
               ["-O0", "-w", "-S", "-o", os.devnull,
                f"-fdump-tree-original={orig}", f"-fdump-lang-class={cls}",
                src])
        proc = subprocess.run(cmd, cwd=directory, capture_output=True,
                              text=True, timeout=300)
        if proc.returncode != 0:
            raise RuntimeError(
                f"{src}: compile failed:\n{proc.stderr.strip()[:2000]}")
        with open(orig, encoding="utf-8", errors="replace") as f:
            _parse_original_dump(f.read(), graph)
        if os.path.exists(cls):
            with open(cls, encoding="utf-8", errors="replace") as f:
                _parse_class_dump(f.read(), vtables, bases)
    return graph, vtables, bases


def build_graph_gcc(entries, compiler, jobs):
    graph = Graph()
    vtables, bases = {}, {}
    errors = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_gcc_compile_one, e, compiler): e["file"]
                   for e in entries}
        for fut in concurrent.futures.as_completed(futures):
            try:
                g, vt, bs = fut.result()
            except Exception as e:  # compile or parse failure is fatal
                errors.append(str(e))
                continue
            graph.defined |= g.defined
            for k, v in g.edges.items():
                graph.edges.setdefault(k, set()).update(v)
            for k, v in g.vedges.items():
                graph.vedges.setdefault(k, set()).update(v)
            for c, slots in vt.items():
                dst = vtables.setdefault(c, {})
                for s, targets in slots.items():
                    dst.setdefault(s, set()).update(targets)
            for c, b in bs.items():
                bases.setdefault(c, set()).update(b)
    if errors:
        raise RuntimeError("\n".join(errors))
    _resolve_graph(graph, vtables, bases)
    return graph


def _resolve_graph(graph, vtables, bases):
    """Devirtualize (CHA) and resolve constructor pseudo-edges in place."""
    derived_of = {}
    for cls in set(vtables) | set(bases):
        derived_of.setdefault(cls, set()).add(cls)
    for cls, bs in bases.items():
        for b in bs:
            derived_of.setdefault(b, set()).add(cls)
    ctors_by_base = {}
    for key in graph.defined:
        parts = key.split("::")
        if len(parts) >= 2 and parts[-1] == parts[-2]:
            ctors_by_base.setdefault(parts[-1], set()).add(key)
    resolved_vedges = {}
    for caller, calls in graph.vedges.items():
        out = resolved_vedges.setdefault(caller, set())
        for cls, slot in calls:
            if isinstance(slot, str):  # already a concrete target (clang)
                out.add((cls, slot))
                continue
            for d in derived_of.get(cls, ()):
                for target in vtables.get(d, {}).get(slot, ()):
                    out.add((cls, target))
    graph.vedges = resolved_vedges
    for caller, callees in graph.edges.items():
        add, drop = set(), set()
        for c in callees:
            if c.startswith("__CTOR__:"):
                drop.add(c)
                add.update(ctors_by_base.get(c[len("__CTOR__:"):], ()))
        callees -= drop
        callees |= add


# ---------------------------------------------------------------------------
# Clang frontend (clang.cindex). Not importable in every environment; the
# CI job installs python3-clang + libclang and runs the self-tests with it.
# Template instantiation bodies are invisible to libclang, so coverage for
# containers comes from the shared curated PRIMITIVES table.
# ---------------------------------------------------------------------------


def _configure_libclang():
    import clang.cindex as ci  # noqa: deferred import by design
    override = os.environ.get("LSBENCH_LIBCLANG")
    if override:
        ci.Config.set_library_file(override)
        return ci
    try:
        ci.Index.create()
        return ci
    except Exception:
        pass
    import glob
    candidates = (glob.glob("/usr/lib/llvm-*/lib/libclang*.so*") +
                  glob.glob("/usr/lib/x86_64-linux-gnu/libclang*.so*"))
    for cand in sorted(candidates, reverse=True):
        try:
            ci.Config.set_library_file(cand)
            ci.Index.create()
            return ci
        except Exception:
            ci.Config.loaded = False
    raise RuntimeError("libclang not found (set LSBENCH_LIBCLANG)")


def _clang_qualified(cursor, ci):
    parts = []
    c = cursor
    while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return strip_template_args("::".join(reversed(parts)))


def build_graph_clang(entries, jobs, scan_result):
    del jobs  # libclang parsing is done serially; TU count is small.
    ci = _configure_libclang()
    graph = Graph()
    bases = {}
    vmethods = {}  # class basename -> {method name -> set(key)}
    index = ci.Index.create()
    func_kinds = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                  ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                  ci.CursorKind.CONVERSION_FUNCTION}
    for entry in entries:
        args = _tu_compile_args(entry) + ["-std=c++20"]
        src = entry["file"]
        directory = entry.get("directory", ".")
        if not os.path.isabs(src):
            src = os.path.join(directory, src)
        tu = index.parse(src, args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= d.Error]
        if fatal:
            raise RuntimeError(f"{src}: clang parse failed: "
                               f"{fatal[0].spelling}")
        _clang_walk(tu.cursor, ci, func_kinds, graph, bases, vmethods,
                    scan_result)
    vtables = {
        cls: {name: targets for name, targets in methods.items()}
        for cls, methods in vmethods.items()
    }
    # Reuse CHA by mapping method names instead of slots.
    derived_of = {}
    for cls in set(vtables) | set(bases):
        derived_of.setdefault(cls, set()).add(cls)
    for cls, bs in bases.items():
        for b in bs:
            derived_of.setdefault(b, set()).add(cls)
    resolved = {}
    for caller, calls in graph.vedges.items():
        out = resolved.setdefault(caller, set())
        for cls, method in calls:
            for d in derived_of.get(cls, ()):
                for target in vtables.get(d, {}).get(method, ()):
                    out.add((cls, target))
    graph.vedges = resolved
    return graph


def _clang_walk(cursor, ci, func_kinds, graph, bases, vmethods, scan_result):
    for c in cursor.walk_preorder():
        if c.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
            parent = c.semantic_parent or c.lexical_parent
            if parent is not None:
                bases.setdefault(basename_of(parent.spelling or ""),
                                 set()).add(basename_of(c.spelling or c.type
                                                        .spelling))
            continue
        if c.kind not in func_kinds or not c.is_definition():
            continue
        caller = _clang_qualified(c, ci)
        graph.defined.add(caller)
        if (c.kind == ci.CursorKind.CXX_METHOD and c.is_virtual_method()
                and c.semantic_parent is not None):
            cls = basename_of(c.semantic_parent.spelling)
            vmethods.setdefault(cls, {}).setdefault(c.spelling,
                                                    set()).add(caller)
        for child in c.get_children():
            if child.kind == ci.CursorKind.ANNOTATE_ATTR:
                family = CLANG_ANNOTATIONS.get(child.spelling)
                if family:
                    loc = f"{c.location.file}:{c.location.line}"
                    scan_result.roots[family].setdefault(caller, loc)
        for node in c.walk_preorder():
            if node.kind == ci.CursorKind.CALL_EXPR:
                ref = node.referenced
                if ref is None:
                    continue
                key = _clang_qualified(ref, ci)
                if (ref.kind == ci.CursorKind.CXX_METHOD
                        and ref.is_virtual_method()
                        and ref.semantic_parent is not None):
                    graph.add_vedge(
                        caller, basename_of(ref.semantic_parent.spelling),
                        ref.spelling)
                    # Also record the interface key so gates on the base
                    # name keep working.
                    graph.add_vedge(
                        caller, basename_of(ref.semantic_parent.spelling),
                        key)
                elif key:
                    graph.add_edge(caller, key)
            elif node.kind == ci.CursorKind.CXX_NEW_EXPR:
                graph.add_edge(caller, "operator new")
            elif node.kind == ci.CursorKind.CXX_THROW_EXPR:
                graph.add_edge(caller, "__cxa_throw")


# ---------------------------------------------------------------------------
# Analysis: per-rule BFS from roots with gates, boundaries, primitives.
# ---------------------------------------------------------------------------


def run_rules(graph, scan_result):
    findings = []
    for family, rules in ROOT_FAMILY_RULES.items():
        roots = scan_result.roots[family]
        for name, loc in sorted(roots.items()):
            if name not in graph.defined:
                findings.append(Finding(
                    rule="unresolved-root", frontier=name,
                    category="scanner", root=name,
                    path=(f"{loc}: annotated function has no definition in "
                          "any analyzed TU", name)))
        resolved = [n for n in sorted(roots) if n in graph.defined]
        for rule in rules:
            findings.extend(_walk_rule(graph, rule, resolved))
    deduped = {}
    for f in findings:
        deduped.setdefault(f.key(), f)
    return list(deduped.values())


def _walk_rule(graph, rule, roots):
    from collections import deque
    parent = {}
    rootof = {}
    findings = {}
    q = deque()
    boundary = VIRTUAL_BOUNDARIES[rule]
    for r in roots:
        if r not in parent:
            parent[r] = None
            rootof[r] = r
            q.append(r)

    def path_to(node):
        out = []
        while node is not None:
            out.append(node)
            node = parent[node]
        return tuple(reversed(out))

    def handle(node, target):
        if is_gated(rule, target):
            return
        # Template-stripped node keys merge every instantiation of a std::
        # helper (std::construct_at, std::move, __copy_move_a, ...) into one
        # node, so an edge from a merged std:: node back into project code is
        # usually an artifact of some *other* instantiation and would
        # misattribute the frontier. Block std->project edges; real callback
        # flows (comparators, deleters) must carry their own root
        # annotations to be audited.
        if not is_project(node) and is_project(target):
            return
        hits = [cat for r, cat in match_primitives(target) if r == rule]
        for cat in hits:
            path = path_to(node) + (target,)
            frontier = next((p for p in reversed(path[:-1])
                             if is_project(p)), rootof[node])
            key = (rule, frontier, cat)
            if key not in findings:
                findings[key] = Finding(rule=rule, frontier=frontier,
                                        category=cat, root=rootof[node],
                                        path=path)
        if hits:
            return
        if target in NON_DESCEND or target.startswith(NON_DESCEND_PREFIXES):
            return
        if target in graph.defined and target not in parent:
            parent[target] = node
            rootof[target] = rootof[node]
            q.append(target)

    while q:
        node = q.popleft()
        for target in sorted(graph.edges.get(node, ())):
            handle(node, target)
        for cls, target in sorted(graph.vedges.get(node, ())):
            if cls in boundary:
                continue
            handle(node, target)
    return findings.values()


# ---------------------------------------------------------------------------
# Baseline, suppression filtering, budget cross-check.
# ---------------------------------------------------------------------------

_BASELINE_RE = re.compile(
    r"^\s*(\d+)\.\s+(\S+)\s+(\S+)\s+(\S+)\s*(?:—\s*(.*))?$")


def load_baseline(path):
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip()
            if not line or line.lstrip().startswith("#"):
                continue
            m = _BASELINE_RE.match(line)
            if not m:
                raise RuntimeError(
                    f"{path}:{lineno}: unparseable baseline entry: {line}")
            rule = m.group(2)
            if rule not in RULES:
                raise RuntimeError(
                    f"{path}:{lineno}: unknown rule '{rule}'")
            entries[(rule, m.group(3), m.group(4))] = m.group(5) or ""
    return entries


def write_baseline(path, findings, old_entries):
    keys = sorted({f.key() for f in findings})
    with open(path, "w", encoding="utf-8") as f:
        f.write("# lsbench-deepcheck baseline — reviewed, numbered "
                "findings.\n")
        f.write("# Format: N. <rule> <frontier> <category> [— comment]\n")
        f.write("# Regenerate with: tools/lint/deepcheck.py "
                "--write-baseline (keeps comments).\n")
        for i, key in enumerate(keys, 1):
            comment = old_entries.get(key, "")
            suffix = f" — {comment}" if comment else ""
            f.write(f"{i}. {key[0]} {key[1]} {key[2]}{suffix}\n")
    return len(keys)


def check_budget(path, baseline_entries):
    """The reviewed budget file pins both the runtime per-op allocation
    count (asserted by tests/hotpath_alloc_test.cc) and the number of
    hot-alloc baseline entries, so the static and dynamic claims cannot
    silently diverge."""
    with open(path, encoding="utf-8") as f:
        budget = json.load(f)
    want = budget.get("static_hot_alloc_baseline_entries")
    have = sum(1 for (rule, _, _) in baseline_entries if rule == "hot-alloc")
    problems = []
    if want is None:
        problems.append(f"{path}: missing static_hot_alloc_baseline_entries")
    elif want != have:
        problems.append(
            f"{path}: static_hot_alloc_baseline_entries={want} but the "
            f"baseline holds {have} hot-alloc entries — update the budget "
            "file (and tests/hotpath_alloc_test.cc expectations) in the "
            "same reviewed change")
    if "per_op_heap_allocs" not in budget:
        problems.append(f"{path}: missing per_op_heap_allocs")
    return problems


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


def load_entries(cc_path, only, root):
    with open(cc_path, encoding="utf-8") as f:
        entries = json.load(f)
    prefixes = tuple(os.path.abspath(os.path.join(root, o)) + os.sep
                     for o in only)
    selected = []
    for e in entries:
        src = e["file"]
        if not os.path.isabs(src):
            src = os.path.join(e.get("directory", "."), src)
        src = os.path.abspath(src)
        if src.startswith(prefixes) and src.endswith((".cc", ".cpp")):
            selected.append(e)
    return selected


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="lsbench-deepcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (default: "
                             "<root>/compile_commands.json)")
    parser.add_argument("--only", action="append", default=None,
                        help="restrict TUs + scanning to these dirs "
                             "(relative to root; default: src)")
    parser.add_argument("--frontend", choices=("gcc", "clang"),
                        default="gcc")
    parser.add_argument("--compiler", default="g++",
                        help="compiler driver for the gcc frontend")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "tools/lint/deepcheck_baseline next to this "
                             "script; 'none' disables)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "(preserves comments on retained entries)")
    parser.add_argument("--budget", default=None,
                        help="hotpath_budget.json to cross-check against "
                             "the baseline")
    parser.add_argument("--list-roots", action="store_true",
                        help="print resolved roots and exit")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    cc_path = args.compile_commands or os.path.join(root,
                                                    "compile_commands.json")
    only = args.only or ["src"]
    if args.baseline == "none":
        baseline_path = None
    else:
        baseline_path = args.baseline or os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "deepcheck_baseline")

    try:
        entries = load_entries(cc_path, only, root)
    except (OSError, json.JSONDecodeError) as e:
        print(f"deepcheck: cannot load {cc_path}: {e}", file=sys.stderr)
        return 2
    if not entries:
        print(f"deepcheck: no TUs under {only} in {cc_path} — configure "
              "the build first (cmake -B build -S .)", file=sys.stderr)
        return 2

    scan_dirs = [os.path.join(root, o) for o in only]
    scan = scan_sources(scan_dirs)
    if scan.errors:
        for e in scan.errors:
            print(f"deepcheck: {e}", file=sys.stderr)
        return 2

    if args.list_roots:
        for family in ("hot_path", "deterministic"):
            for name, loc in sorted(scan.roots[family].items()):
                print(f"{family}: {name}  ({loc})")
        return 0

    try:
        if args.frontend == "gcc":
            graph = build_graph_gcc(entries, args.compiler, args.jobs)
        else:
            graph = build_graph_clang(entries, args.jobs, scan)
    except RuntimeError as e:
        print(f"deepcheck: {e}", file=sys.stderr)
        return 2

    findings = run_rules(graph, scan)

    # Suppressions apply at the frontier.
    kept = []
    for f in findings:
        if f.rule in scan.suppressions.get(f.frontier, ()):
            continue
        kept.append(f)
    kept.sort(key=lambda f: f.key())

    if baseline_path and args.write_baseline:
        old = load_baseline(baseline_path) if os.path.exists(
            baseline_path) else {}
        n = write_baseline(baseline_path, kept, old)
        print(f"deepcheck: wrote {n} baseline entries to {baseline_path}")
        return 0

    baseline = {}
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except RuntimeError as e:
            print(f"deepcheck: {e}", file=sys.stderr)
            return 2

    new = [f for f in kept if f.key() not in baseline]
    stale = sorted(set(baseline) - {f.key() for f in kept})
    problems = []
    if args.budget:
        try:
            problems = check_budget(args.budget, baseline)
        except (OSError, json.JSONDecodeError) as e:
            print(f"deepcheck: cannot load {args.budget}: {e}",
                  file=sys.stderr)
            return 2

    for f in new:
        print(f.render())
    for key in stale:
        print(f"deepcheck: warning: stale baseline entry (no longer "
              f"found): {key[0]} {key[1]} {key[2]}", file=sys.stderr)
    for p in problems:
        print(f"deepcheck: {p}")

    nodes = len(graph.defined)
    print(f"deepcheck: {len(entries)} TUs, {nodes} functions, "
          f"{sum(len(r) for r in scan.roots.values())} roots, "
          f"{len(kept)} findings ({len(new)} not baselined)",
          file=sys.stderr)
    return 1 if (new or problems) else 0


if __name__ == "__main__":
    sys.exit(main())
