// lsbench_cli — run an LSBench spec file against a chosen system under test
// and print the paper's metric suite.
//
// Usage:
//   lsbench_cli <spec-file> [--sut=btree|lsm|rmi|pgm|adaptive|stdcmp]
//               [--no-holdout-enforcement] [--csv] [--html=PATH]
//               [--faults=RATE] [--no-faults] [--op-timeout-us=N]
//               [--retries=N] [--workers=N] [--trace-out=PATH] [--sim]
//               [--drift-csv=PATH]
//
//   --sut               system under test (default btree). "stdcmp" runs
//                       btree + rmi + adaptive through the comparison
//                       harness instead of a single system.
//   --no-holdout-enforcement
//                       allow re-running specs that contain hold-out phases
//   --csv               also print CSV blocks for downstream plotting
//   --html=PATH         additionally write a self-contained HTML report
//                       with inline SVG charts to PATH
//   --faults=RATE       inject transient Execute failures in every phase at
//                       the given rate (adds a wildcard fault window on top
//                       of whatever the spec declares)
//   --no-faults         strip all fault windows from the spec (run the
//                       healthy baseline of a faulted spec)
//   --op-timeout-us=N   override the per-op timeout budget (0 disables)
//   --retries=N         override the max retry count for transient errors
//   --workers=N         override the execution fan-out ([execution] workers;
//                       1 reproduces the historical serial driver exactly)
//   --trace-out=PATH    write the merged observability trace (spans, stage
//                       breakdown, metrics snapshot) to PATH; forces the
//                       spec's [observability] trace/profile/metrics on
//   --sim               run on a virtual clock (simulation mode): fully
//                       deterministic timestamps, so two identical --sim
//                       runs produce byte-identical --trace-out files
//   --drift-csv=PATH    write the per-transition drift-trajectory CSV to
//                       PATH (measured factor + components, declared
//                       targets, verdicts)
//
// See src/core/spec_text.h for the spec file format; sample specs live in
// specs/.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/comparison.h"
#include "core/drift.h"
#include "core/driver.h"
#include "core/spec_text.h"
#include "core/specialization.h"
#include "report/html.h"
#include "report/report.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

/// `clock` (may be null → RealClock) times SUT-internal retraining; passing
/// the simulation clock keeps every exported duration virtual, so --sim
/// --trace-out files stay byte-identical run to run.
std::unique_ptr<SystemUnderTest> MakeSut(const std::string& kind,
                                         const Clock* clock) {
  if (kind == "btree") return std::make_unique<BTreeSystem>();
  if (kind == "lsm") return std::make_unique<LsmKvSystem>();
  if (kind == "rmi") {
    return std::make_unique<LearnedKvSystem>(LearnedSystemOptions(), clock);
  }
  if (kind == "pgm") {
    LearnedSystemOptions options;
    options.index_kind = LearnedSystemOptions::IndexKind::kPgm;
    return std::make_unique<LearnedKvSystem>(options, clock);
  }
  if (kind == "adaptive") return std::make_unique<AdaptiveKvSystem>();
  return nullptr;
}

int Run(int argc, char** argv) {
  std::string spec_path;
  std::string sut_kind = "btree";
  bool enforce_holdout = true;
  bool emit_csv = false;
  bool strip_faults = false;
  double fault_rate = -1.0;
  int64_t op_timeout_us = -1;
  int retries = -1;
  int workers = -1;
  std::string html_path;
  std::string trace_path;
  std::string drift_csv_path;
  bool simulate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sut=", 0) == 0) {
      sut_kind = arg.substr(6);
    } else if (arg == "--no-holdout-enforcement") {
      enforce_holdout = false;
    } else if (arg == "--csv") {
      emit_csv = true;
    } else if (arg.rfind("--html=", 0) == 0) {
      html_path = arg.substr(7);
    } else if (arg == "--no-faults") {
      strip_faults = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_rate = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--op-timeout-us=", 0) == 0) {
      op_timeout_us = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else if (arg.rfind("--drift-csv=", 0) == 0) {
      drift_csv_path = arg.substr(12);
    } else if (arg == "--sim") {
      simulate = true;
    } else if (!arg.empty() && arg[0] != '-') {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr,
                 "usage: lsbench_cli <spec-file> "
                 "[--sut=btree|lsm|rmi|pgm|adaptive|stdcmp] "
                 "[--no-holdout-enforcement] [--csv]\n");
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RunSpec> parsed = ParseRunSpecText(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "spec error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  RunSpec spec = std::move(parsed).value();
  std::printf("parsed spec '%s': %zu dataset(s), %zu phase(s)\n",
              spec.name.c_str(), spec.datasets.size(), spec.phases.size());

  // Fault / resilience overrides on top of the spec.
  if (strip_faults) spec.faults = FaultPlan();
  if (fault_rate >= 0.0) {
    FaultWindow window;
    window.execute_fail_rate = fault_rate;
    spec.faults.windows.push_back(window);
  }
  if (op_timeout_us >= 0) spec.resilience.op_timeout_nanos = op_timeout_us * 1000;
  if (retries >= 0) spec.resilience.max_retries = static_cast<uint32_t>(retries);
  if (workers >= 0) spec.execution.workers = static_cast<uint32_t>(workers);
  if (!trace_path.empty()) {
    spec.observability.trace = true;
    spec.observability.profile = true;
    spec.observability.metrics = true;
  }
  if (const Status st = spec.Validate(); !st.ok()) {
    std::fprintf(stderr, "spec error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!spec.faults.Empty()) {
    std::printf("fault plan: %zu window(s), seed %llu\n",
                spec.faults.windows.size(),
                static_cast<unsigned long long>(spec.faults.seed));
  }

  // Offline measurement over throwaway generators — runs before execution
  // and is identical in --sim and real-time mode.
  const DriftTrajectoryReport drift = MeasureDriftTrajectory(spec);
  if (!drift_csv_path.empty()) {
    std::ofstream drift_out(drift_csv_path,
                            std::ios::binary | std::ios::trunc);
    if (!drift_out || !(drift_out << DriftCsv(drift))) {
      std::fprintf(stderr, "cannot write drift csv to %s\n",
                   drift_csv_path.c_str());
      return 1;
    }
    std::printf("wrote drift trajectory to %s\n", drift_csv_path.c_str());
  }

  DriverOptions driver_options;
  driver_options.enforce_holdout_once = enforce_holdout;
  VirtualClock virtual_clock;
  const Clock* clock = nullptr;
  if (simulate) {
    driver_options.virtual_clock = &virtual_clock;
    clock = &virtual_clock;
    std::printf("simulation mode: virtual clock, deterministic timestamps\n");
  }

  if (sut_kind == "stdcmp") {
    BTreeSystem btree;
    LearnedKvSystem rmi;
    AdaptiveKvSystem adaptive;
    const Result<ComparisonReport> report = CompareSystems(
        spec, {&btree, &rmi, &adaptive}, clock, driver_options);
    if (!report.ok()) {
      std::fprintf(stderr, "run error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", RenderComparison(report.value()).c_str());
    if (!drift.transitions.empty()) {
      std::printf("%s\n", RenderDriftReport(drift).c_str());
    }
    return 0;
  }

  const std::unique_ptr<SystemUnderTest> sut = MakeSut(sut_kind, clock);
  if (sut == nullptr) {
    std::fprintf(stderr, "unknown --sut: %s\n", sut_kind.c_str());
    return 2;
  }
  BenchmarkDriver driver(clock, driver_options);
  const Result<RunResult> result = driver.Run(spec, sut.get());
  if (!result.ok()) {
    std::fprintf(stderr, "run error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const RunResult& run = result.value();
  std::printf("%s\n", RenderRunSummary(run).c_str());
  if (!run.observability.empty()) {
    std::printf("%s\n", RenderObservability(run.observability).c_str());
  }
  if (!trace_path.empty()) {
    const std::string payload = RenderTraceFile(
        run.observability, run.run_name, run.sut_name, spec.execution.workers);
    std::ofstream trace_out(trace_path, std::ios::binary | std::ios::trunc);
    if (!trace_out || !(trace_out << payload)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    trace_out.close();
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  const SpecializationReport specialization =
      BuildSpecializationReport(spec, run);
  std::printf("%s\n", RenderSpecializationReport(specialization).c_str());
  std::printf("%s\n",
              RenderSlaBands(run.metrics.bands, run.metrics.sla_nanos)
                  .c_str());
  if (!drift.transitions.empty()) {
    std::printf("%s\n", RenderDriftReport(drift).c_str());
  }
  if (!html_path.empty()) {
    const Status st = WriteHtmlReport(run, specialization, html_path, &drift);
    if (!st.ok()) {
      std::fprintf(stderr, "html report: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote HTML report to %s\n", html_path.c_str());
  }
  if (emit_csv) {
    std::printf("## specialization.csv\n%s\n",
                SpecializationCsv(specialization).c_str());
    std::printf("## cumulative.csv\n%s\n",
                CumulativeCsv(run.metrics.cumulative).c_str());
    std::printf("## bands.csv\n%s\n",
                SlaBandsCsv(run.metrics.bands).c_str());
    std::printf("## phases.csv\n%s\n", PhaseMetricsCsv(run.metrics).c_str());
    std::printf("## op_types.csv\n%s\n", OpTypeCsv(run.metrics).c_str());
    if (run.metrics.service.enabled ||
        run.metrics.service.open_loop_operations > 0) {
      std::printf("## service.csv\n%s\n", ServiceCsv(run.metrics).c_str());
    }
    if (!run.observability.stages.empty()) {
      std::printf("## stages.csv\n%s\n",
                  StageBreakdownCsv(run.observability.stages).c_str());
    }
    if (!drift.transitions.empty()) {
      std::printf("## drift.csv\n%s\n", DriftCsv(drift).c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace lsbench

int main(int argc, char** argv) { return lsbench::Run(argc, argv); }
