#ifndef LSBENCH_TOOLS_SCHED_SCHED_H_
#define LSBENCH_TOOLS_SCHED_SCHED_H_

// lsbench-sched: deterministic schedule exploration for the concurrent core.
//
// TSan proves the absence of data races *on the schedules a test happens to
// run*. This checker proves invariants on EVERY schedule of a small model:
// it serializes N logical tasks onto a cooperative scheduler (only one task
// ever runs; everyone else is parked), intercepts each visible operation at
// the sanctioned primitives — lsbench::Mutex / CondVar (util/sync.h) and
// lsbench::Atomic (util/atomic.h), via the util/sched_hooks.h preemption
// points — and drives a depth-first search over every scheduling decision,
// re-executing the model once per schedule (stateless model checking, in
// the style of Godefroid's VeriSoft / CDSChecker / loom).
//
// Reduction. Full enumeration is factorial; two layers keep it tractable:
//
//  * Sleep-set dynamic partial-order reduction. At each decision point the
//    controller knows every runnable task's *pending* operation (announced
//    before executing). Two schedules differing only in the order of
//    adjacent independent operations (different objects, or two atomic
//    loads of one object) are equivalent; sleep sets prune all but one
//    member of each such class. With per-task-private pipelines that share
//    a handful of counters and one mutex, this cuts the space by orders of
//    magnitude while still visiting every Mazurkiewicz trace — the result
//    is exhaustive over behaviors, not merely over sampled interleavings.
//
//  * Bounded preemption (fallback for deep states). With
//    `preemption_bound >= 0`, schedules using more than that many
//    *involuntary* context switches (switching away from a task that could
//    have continued) are skipped. Most concurrency bugs manifest within 2
//    preemptions (CHESS); the 3-worker model tests use this mode, and
//    ExploreResult::complete reports that the guarantee is bounded.
//
// Modeled primitives. A parked task must never hold a real lock, so under
// exploration the wrappers defer to the model: mutex ownership, condvar
// wait-sets, and blocking live in the controller's state table, and a task
// whose pending operation cannot proceed (lock held, no signal yet) is
// simply not enabled — the scheduler runs someone else. A state where no
// task is enabled and not everyone finished is reported as a deadlock,
// with the schedule that reached it. CondVar::Signal wakes every waiter
// (SignalAll semantics): spurious wakeups are already part of CondVar's
// contract, so waking more waiters than strictly necessary is a sound
// over-approximation for predicate-loop users — and it keeps the wake-set
// choice out of the branching factor.
//
// Memory model. Exploration serializes tasks, so the explored semantics is
// sequential consistency. LSBench's Atomic wrapper only exposes relaxed /
// acquire / release tallies that are never used for cross-thread
// publication (see util/atomic.h); weak-memory reorderings are out of
// scope here and delegated to TSan.
//
// Replay. Every violation carries a compact decision string ("2.0.1.1...":
// the task id chosen at each decision point). Explorer::Replay re-executes
// exactly that schedule — same decisions, same model, deterministic
// components — so a counterexample found in CI reproduces locally with
// `sched_model_test --sched-model=<name> --sched-replay=<string>`.
//
// Determinism requirement. Re-execution only works when the model is a
// pure function of its schedule: bodies must draw randomness from fixed
// seeds and time from explicit values or private VirtualClocks (LSBench
// core components already satisfy this; it is exactly the repo's
// reproducibility contract, which is why they can be model-checked
// unmocked).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/sched_hooks.h"

namespace lsbench {
namespace sched {

/// What to explore: per-schedule fresh state, task bodies, and an
/// end-of-schedule invariant check. `setup` runs on the controller thread
/// before the tasks start; `check` after every task finished. Bodies and
/// `check` report invariant violations via sched::Check — gtest macros
/// would abort the wrong thread and lose the replay string.
struct Model {
  std::function<void()> setup;
  std::vector<std::function<void()>> tasks;
  std::function<void()> check;
};

struct Options {
  /// Involuntary-context-switch budget per schedule; -1 = unbounded
  /// (exhaustive over traces, via sleep sets).
  int preemption_bound = -1;
  /// Exploration budget: stop after this many schedules even if the state
  /// space is not exhausted (complete=false in the result).
  uint64_t max_schedules = 1000000;
  /// Per-schedule decision limit; tripping it means a livelock (or a model
  /// far bigger than intended) and is reported as a violation.
  uint64_t max_steps = 100000;
};

/// One invariant violation, with the schedule that produced it.
struct Violation {
  std::string message;
  /// Decision string: task id chosen at each decision point, '.'-joined.
  std::string schedule;
};

struct ExploreResult {
  uint64_t schedules = 0;        ///< Schedules actually executed.
  bool complete = false;         ///< State space exhausted within budget.
  std::optional<Violation> violation;  ///< First violation found, if any.

  bool ok() const { return !violation.has_value(); }
};

/// In-model assertion. Records the first failure (with the current
/// schedule prefix) and lets the schedule run to completion — tasks are
/// never unwound mid-lock, so teardown stays orderly. Callable from task
/// bodies and from Model::check.
void Check(bool condition, const std::string& message);

/// Explores every schedule of `model` (subject to options). Runs
/// setup -> tasks (under one interleaving) -> check, repeatedly, branching
/// the DFS at each decision point, until the space is exhausted, the
/// budget is spent, or a violation is found.
ExploreResult Explore(const Model& model, const Options& options = {});

/// Re-executes exactly one schedule from a decision string (as printed in
/// Violation::schedule). Decisions beyond the string's end — replaying a
/// prefix is legal — follow the default policy deterministically.
ExploreResult Replay(const Model& model, const std::string& schedule);

}  // namespace sched
}  // namespace lsbench

#endif  // LSBENCH_TOOLS_SCHED_SCHED_H_
