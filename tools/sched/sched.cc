#include "sched/sched.h"

// The machinery beneath the sanctioned primitives. Like util/sync.h, this
// file is allowed to touch raw std synchronization: it implements the
// cooperative scheduler the wrappers defer to, so it cannot itself be built
// on the wrappers (a modeled mutex modeling itself would recurse). The
// raw-primitive lint rules carve out tools/sched/ for exactly this reason.
//
// Threading model: one schedule = one Runner. The controller (the thread
// that called Explore) and every task thread share one std::mutex `m_` and
// one condition variable; `token_` says who may run. Exactly one thread is
// ever outside a cv wait: the token holder. Task threads park inside
// AnnounceAndWait at each visible operation; the controller parks in
// GrantAndWait while a task runs. This is what makes exploration
// deterministic — the OS scheduler has no say in anything the model can
// observe.

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/assert.h"

namespace lsbench {
namespace sched {
namespace {

/// Thrown out of a modeled CondVar::Wait when the schedule is abandoned
/// (deadlock, livelock, prune): a drained task re-entering a predicate loop
/// would spin forever, so the wait must unwind the body. This is the ONLY
/// place the engine throws through model code — a parked mutex *unlock* sits
/// inside a noexcept RAII destructor where any exception is std::terminate,
/// which is why abandonment otherwise uses the drain protocol (see Poison)
/// instead of exceptions.
struct SchedAbort {};

constexpr int kController = -1;
constexpr int kPrune = -2;

/// One announced-but-not-yet-executed visible operation.
struct PendingOp {
  SchedOp kind = SchedOp::kYield;
  const void* obj = nullptr;   ///< Primary object (atomic, mutex, condvar).
  const void* obj2 = nullptr;  ///< CondWait: the mutex it releases.
  bool try_lock = false;       ///< kMutexLock that never blocks.
  bool reacquire = false;      ///< Post-wait condvar reacquire of `obj`.
};

const char* KindName(SchedOp op) {
  switch (op) {
    case SchedOp::kAtomicLoad: return "atomic-load";
    case SchedOp::kAtomicStore: return "atomic-store";
    case SchedOp::kAtomicRmw: return "atomic-rmw";
    case SchedOp::kMutexLock: return "mutex-lock";
    case SchedOp::kMutexUnlock: return "mutex-unlock";
    case SchedOp::kCondWait: return "cond-wait";
    case SchedOp::kCondSignal: return "cond-signal";
    case SchedOp::kYield: return "yield";
  }
  return "?";
}

/// Dependence relation for the sleep-set reduction. Conservative: any two
/// operations sharing an object conflict unless both are atomic loads.
/// CondWait carries the mutex it releases as a second object, so its
/// enabling effect on pending lockers is covered; MutexUnlock conflicts
/// with pending locks of the same mutex for the same reason. Over-
/// approximating dependence only costs exploration time, never soundness.
bool Conflicts(const PendingOp& a, const PendingOp& b) {
  const auto share = [](const void* x, const void* y) {
    return x != nullptr && x == y;
  };
  if (!share(a.obj, b.obj) && !share(a.obj, b.obj2) &&
      !share(a.obj2, b.obj) && !share(a.obj2, b.obj2)) {
    return false;
  }
  return !(a.kind == SchedOp::kAtomicLoad && b.kind == SchedOp::kAtomicLoad);
}

class Runner;

/// The util-layer hook target for one task thread: forwards to the Runner
/// with the task id baked in.
class TaskObserver : public SchedObserver {
 public:
  void SchedPoint(SchedOp op, const void* obj) override;
  void MutexLock(void* mu) override;
  bool MutexTryLock(void* mu) override;
  void MutexUnlock(void* mu) override;
  void CondWait(void* cv, void* mu) override;
  void CondSignal(void* cv, bool all) override;

  Runner* runner = nullptr;
  int id = -1;
};

/// Executes ONE schedule of a model: spawns the task threads, serializes
/// them, asks `decide` which enabled task runs at each decision point, and
/// reports the outcome. Fresh per schedule — model state is rebuilt by
/// Model::setup each time, so re-execution is a pure function of the
/// decisions.
class Runner {
 public:
  struct DecideCtx {
    std::vector<int> enabled;        ///< Task ids runnable now, ascending.
    std::vector<PendingOp> pending;  ///< Pending op per task id.
    int last_running = kController;  ///< Task granted at the previous step.
  };

  struct Outcome {
    std::vector<int> path;  ///< Decision string actually taken.
    bool pruned = false;    ///< Abandoned by the reduction, not a real run.
  };

  explicit Runner(const Model& model) : model_(model) {
    tasks_.resize(model.tasks.size());
    for (size_t i = 0; i < tasks_.size(); ++i) {
      tasks_[i].observer.runner = this;
      tasks_[i].observer.id = static_cast<int>(i);
    }
  }

  /// Runs the schedule. `decide` may return kPrune to abandon it.
  Outcome Run(const std::function<int(const DecideCtx&)>& decide,
              uint64_t max_steps);

  /// First violation recorded by sched::Check / the controller, if any.
  const std::optional<Violation>& violation() const { return violation_; }

  /// Records a violation with the current decision prefix (first wins).
  void RecordViolation(const std::string& message) {
    std::lock_guard<std::mutex> lock(violation_m_);
    if (!violation_) violation_ = Violation{message, PathString(path_)};
  }

  static std::string PathString(const std::vector<int>& path) {
    std::ostringstream out;
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) out << '.';
      out << path[i];
    }
    return out.str();
  }

 private:
  friend class TaskObserver;

  struct Task {
    TaskObserver observer;
    bool done = false;
    bool has_pending = false;
    PendingOp pending;
    const void* waiting_cv = nullptr;  ///< Parked on this condvar.
  };

  void TaskMain(int id) {
    SetSchedHook(&tasks_[static_cast<size_t>(id)].observer);
    bool run_body = true;
    {
      std::unique_lock<std::mutex> l(m_);
      cv_.wait(l, [&] { return token_ == id; });
      run_body = !poison_;
    }
    if (run_body) {
      try {
        model_.tasks[static_cast<size_t>(id)]();
      } catch (const SchedAbort&) {
      }
    }
    SetSchedHook(nullptr);
    std::unique_lock<std::mutex> l(m_);
    tasks_[static_cast<size_t>(id)].done = true;
    tasks_[static_cast<size_t>(id)].has_pending = false;
    token_ = kController;
    cv_.notify_all();
  }

  /// Publishes the task's next visible op and parks until granted again.
  /// Called with `l` held; returns with `l` held and the token owned.
  /// Returns false when the grant is a drain grant (schedule abandoned):
  /// the caller must skip its model updates — and, crucially, must NOT
  /// throw, because an unlock announce sits inside a noexcept destructor.
  bool AnnounceAndWait(std::unique_lock<std::mutex>& l, int id,
                       const PendingOp& op) {
    Task& task = tasks_[static_cast<size_t>(id)];
    task.pending = op;
    task.has_pending = true;
    token_ = kController;
    cv_.notify_all();
    cv_.wait(l, [&] { return token_ == id; });
    task.has_pending = false;
    return !poison_;
  }

  /// Hands the token to `id` and parks the controller until it comes back
  /// (next announcement or task completion).
  void GrantAndWait(int id) {
    std::unique_lock<std::mutex> l(m_);
    if (tasks_[static_cast<size_t>(id)].done) return;
    token_ = id;
    cv_.notify_all();
    cv_.wait(l, [&] { return token_ == kController; });
  }

  /// Whether task `t` could execute its pending op right now.
  bool EnabledLocked(size_t t) const {
    const Task& task = tasks_[t];
    if (task.done || !task.has_pending) return false;
    if (task.waiting_cv != nullptr) return false;  // Awaiting a signal.
    const PendingOp& p = task.pending;
    const bool blocking_acquire =
        (p.kind == SchedOp::kMutexLock && !p.try_lock) || p.reacquire;
    if (blocking_acquire && mutex_owner_.count(p.obj) != 0) return false;
    return true;
  }

  /// Abandons the schedule: the drain protocol. Every parked task is
  /// granted the token ONE AT A TIME (Run's drain loop) and runs its body
  /// to completion with the hooks in no-op mode — modeled locks are
  /// bypassed, nothing announces, nothing parks. Serialized draining means
  /// the bypassed locks cannot race; the (now meaningless) model state is
  /// discarded with the schedule. No exceptions are involved except inside
  /// CondVar::Wait, whose predicate loop would otherwise spin.
  void Poison() {
    std::unique_lock<std::mutex> l(m_);
    poison_ = true;
  }

  // --- Observer entry points (run on task threads, id = the caller). ---

  // Each entry checks poison_ twice: once on entry (the task is already in
  // drain mode and must not announce) and once on the grant that woke it
  // (AnnounceAndWait returning false — the wake IS the drain). Both paths
  // return without touching the model and, except for CondVar::Wait, never
  // throw: MutexUnlock runs inside a noexcept RAII destructor.

  void OnSchedPoint(int id, SchedOp op, const void* obj) {
    std::unique_lock<std::mutex> l(m_);
    if (poison_) return;
    (void)AnnounceAndWait(l, id, PendingOp{op, obj, nullptr, false, false});
    // The caller performs the atomic op / yield itself, token in hand.
    // A drain grant changes nothing: the real operation is still safe to
    // run, since drained tasks execute one at a time.
  }

  void OnMutexLock(int id, void* mu) {
    std::unique_lock<std::mutex> l(m_);
    if (poison_) return;
    if (!AnnounceAndWait(l, id, PendingOp{SchedOp::kMutexLock, mu, nullptr,
                                          false, false})) {
      return;  // Drain: lock bypassed, no ownership recorded.
    }
    // Granted only when free (EnabledLocked); a relock by the owner is a
    // self-deadlock and surfaces via the deadlock detector.
    mutex_owner_[mu] = id;
  }

  bool OnMutexTryLock(int id, void* mu) {
    std::unique_lock<std::mutex> l(m_);
    if (poison_) return false;
    if (!AnnounceAndWait(l, id, PendingOp{SchedOp::kMutexLock, mu, nullptr,
                                          true, false})) {
      return false;  // Drain: report contention; the caller skips the CS.
    }
    if (mutex_owner_.count(mu) != 0) return false;
    mutex_owner_[mu] = id;
    return true;
  }

  void OnMutexUnlock(int id, void* mu) {
    std::unique_lock<std::mutex> l(m_);
    if (poison_) return;
    if (!AnnounceAndWait(l, id, PendingOp{SchedOp::kMutexUnlock, mu, nullptr,
                                          false, false})) {
      return;  // Drain: ownership table is already meaningless.
    }
    auto it = mutex_owner_.find(mu);
    if (it == mutex_owner_.end() || it->second != id) {
      RecordViolation("model: task " + std::to_string(id) +
                      " unlocked a mutex it does not hold");
      return;
    }
    mutex_owner_.erase(it);
  }

  void OnCondWait(int id, void* cvp, void* mu) {
    std::unique_lock<std::mutex> l(m_);
    // Drain must unwind here, not return: a no-op Wait inside a predicate
    // loop whose condition will never flip is an infinite spin.
    if (poison_) throw SchedAbort{};
    if (!AnnounceAndWait(l, id,
                         PendingOp{SchedOp::kCondWait, cvp, mu, false,
                                   false})) {
      throw SchedAbort{};
    }
    // Scheduled: atomically release the mutex and join the wait set.
    mutex_owner_.erase(mu);
    tasks_[static_cast<size_t>(id)].waiting_cv = cvp;
    PendingOp reacquire;
    reacquire.kind = SchedOp::kMutexLock;
    reacquire.obj = mu;
    reacquire.reacquire = true;
    // Parks until signaled + mutex free. On a drain grant the task leaves
    // its Wait without the (modeled) lock — harmless, state is discarded —
    // and a re-entered predicate loop hits the poison check above.
    if (!AnnounceAndWait(l, id, reacquire)) return;
    mutex_owner_[mu] = id;
  }

  void OnCondSignal(int id, void* cvp, bool /*all*/) {
    std::unique_lock<std::mutex> l(m_);
    if (poison_) return;
    if (!AnnounceAndWait(l, id, PendingOp{SchedOp::kCondSignal, cvp, nullptr,
                                          false, false})) {
      return;
    }
    // SignalAll semantics either way (sound under predicate loops; keeps
    // the wake-set choice out of the branching factor — see sched.h).
    for (Task& t : tasks_) {
      if (t.waiting_cv == cvp) t.waiting_cv = nullptr;
    }
  }

  const Model& model_;
  std::vector<Task> tasks_;

  std::mutex m_;
  std::condition_variable cv_;
  int token_ = kController;
  bool poison_ = false;
  /// Modeled mutex table: address -> owning task.
  std::map<const void*, int> mutex_owner_;

  std::vector<int> path_;
  int last_running_ = kController;
  std::mutex violation_m_;
  std::optional<Violation> violation_;
};

void TaskObserver::SchedPoint(SchedOp op, const void* obj) {
  runner->OnSchedPoint(id, op, obj);
}
void TaskObserver::MutexLock(void* mu) { runner->OnMutexLock(id, mu); }
bool TaskObserver::MutexTryLock(void* mu) {
  return runner->OnMutexTryLock(id, mu);
}
void TaskObserver::MutexUnlock(void* mu) { runner->OnMutexUnlock(id, mu); }
void TaskObserver::CondWait(void* cv, void* mu) {
  runner->OnCondWait(id, cv, mu);
}
void TaskObserver::CondSignal(void* cv, bool all) {
  runner->OnCondSignal(id, cv, all);
}

/// The active runner, reachable from sched::Check on any thread. One
/// exploration at a time (asserted in Explore).
Runner* g_runner = nullptr;

Runner::Outcome Runner::Run(
    const std::function<int(const DecideCtx&)>& decide, uint64_t max_steps) {
  Outcome out;
  if (model_.setup) model_.setup();

  std::vector<std::thread> threads;
  threads.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    threads.emplace_back(&Runner::TaskMain, this, static_cast<int>(i));
  }

  // Initialization: march each task to its first visible operation (or to
  // completion). Everything before the first announcement is invisible to
  // other tasks, so this phase carries no scheduling decisions and the
  // order is irrelevant — and fixed, for determinism.
  for (size_t i = 0; i < tasks_.size(); ++i) {
    GrantAndWait(static_cast<int>(i));
  }

  bool aborted = false;
  for (;;) {
    DecideCtx ctx;
    bool all_done = true;
    {
      std::unique_lock<std::mutex> l(m_);
      ctx.pending.resize(tasks_.size());
      for (size_t t = 0; t < tasks_.size(); ++t) {
        if (tasks_[t].done) continue;
        all_done = false;
        LSBENCH_ASSERT(tasks_[t].has_pending);
        ctx.pending[t] = tasks_[t].pending;
        if (EnabledLocked(t)) ctx.enabled.push_back(static_cast<int>(t));
      }
      ctx.last_running = last_running_;
    }
    if (all_done) break;
    if (ctx.enabled.empty()) {
      std::ostringstream msg;
      msg << "deadlock: no task can run;";
      {
        std::unique_lock<std::mutex> l(m_);
        for (size_t t = 0; t < tasks_.size(); ++t) {
          if (tasks_[t].done) continue;
          msg << " task " << t << " blocked at "
              << KindName(tasks_[t].pending.kind)
              << (tasks_[t].waiting_cv != nullptr ? " (awaiting signal)"
                                                  : "");
        }
      }
      RecordViolation(msg.str());
      aborted = true;
      break;
    }
    if (path_.size() >= max_steps) {
      RecordViolation("livelock: schedule exceeded " +
                      std::to_string(max_steps) + " decisions");
      aborted = true;
      break;
    }
    const int choice = decide(ctx);
    if (choice == kPrune) {
      out.pruned = true;
      aborted = true;
      break;
    }
    path_.push_back(choice);
    last_running_ = choice;
    GrantAndWait(choice);
  }

  if (aborted) {
    // Drain protocol (see Poison): wake the parked tasks one at a time and
    // let each run to completion before the next — serial, so the bypassed
    // locks cannot race.
    Poison();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      GrantAndWait(static_cast<int>(i));
    }
  }
  for (std::thread& t : threads) t.join();
  if (!aborted && model_.check) model_.check();
  out.path = path_;
  return out;
}

/// Default scheduling preference: keep running the last task (fewest
/// context switches — the first schedule is near-sequential and cheap),
/// then ascending task id.
std::vector<int> OrderedCandidates(const std::vector<int>& enabled,
                                   int last_running) {
  std::vector<int> order;
  order.reserve(enabled.size());
  if (last_running >= 0 &&
      std::find(enabled.begin(), enabled.end(), last_running) !=
          enabled.end()) {
    order.push_back(last_running);
  }
  for (int t : enabled) {
    if (t != last_running) order.push_back(t);
  }
  return order;
}

/// One DFS node: the state observed at a decision point plus the sleep set
/// and the choice currently being explored beneath it.
struct Frame {
  std::vector<int> enabled;
  std::vector<PendingOp> pending;
  int last_running = kController;
  int preemptions = 0;  ///< Involuntary switches consumed before this node.
  std::set<int> sleep;  ///< Tasks whose exploration here is redundant.
  int choice = -1;
};

/// Cost of choosing `candidate` at this node: 1 if it preempts a task that
/// could have continued, else 0.
int PreemptionCost(const Frame& f, int candidate) {
  if (f.last_running < 0 || candidate == f.last_running) return 0;
  return std::find(f.enabled.begin(), f.enabled.end(), f.last_running) !=
                 f.enabled.end()
             ? 1
             : 0;
}

/// First allowed candidate at `f` (not asleep, within the preemption
/// bound), or kPrune when every continuation is redundant or over budget.
int PickChoice(const Frame& f, int preemption_bound) {
  for (int t : OrderedCandidates(f.enabled, f.last_running)) {
    if (f.sleep.count(t) != 0) continue;
    if (preemption_bound >= 0 &&
        f.preemptions + PreemptionCost(f, t) > preemption_bound) {
      continue;
    }
    return t;
  }
  return kPrune;
}

}  // namespace

void Check(bool condition, const std::string& message) {
  if (condition) return;
  LSBENCH_ASSERT(g_runner != nullptr &&
                 "sched::Check outside an exploration");
  g_runner->RecordViolation(message);
}

ExploreResult Explore(const Model& model, const Options& options) {
  LSBENCH_ASSERT(!model.tasks.empty());
  LSBENCH_ASSERT(g_runner == nullptr && "nested exploration");

  ExploreResult result;
  std::vector<Frame> stack;  // Persists across schedules: the DFS spine.

  for (;;) {
    if (result.schedules >= options.max_schedules) {
      result.complete = false;
      break;
    }

    Runner runner(model);
    g_runner = &runner;
    size_t depth = 0;
    bool diverged_model = false;

    const auto decide = [&](const Runner::DecideCtx& ctx) -> int {
      if (depth < stack.size()) {
        // Replaying the committed prefix. The model must present the same
        // state it did last time — catch drift loudly, because a
        // nondeterministic model voids every guarantee this tool makes.
        if (stack[depth].enabled != ctx.enabled) {
          runner.RecordViolation(
              "model is not schedule-deterministic: enabled set changed "
              "across re-execution at depth " +
              std::to_string(depth));
          diverged_model = true;
          return kPrune;
        }
        return stack[depth++].choice;
      }
      Frame f;
      f.enabled = ctx.enabled;
      f.pending = ctx.pending;
      f.last_running = ctx.last_running;
      if (!stack.empty()) {
        const Frame& parent = stack.back();
        f.preemptions =
            parent.preemptions + PreemptionCost(parent, parent.choice);
        // Sleep-set inheritance: a task asleep at the parent stays asleep
        // here unless the parent's executed operation conflicts with it.
        const PendingOp& executed =
            parent.pending[static_cast<size_t>(parent.choice)];
        for (int t : parent.sleep) {
          if (!Conflicts(parent.pending[static_cast<size_t>(t)], executed)) {
            f.sleep.insert(t);
          }
        }
      }
      f.choice = PickChoice(f, options.preemption_bound);
      if (f.choice == kPrune) return kPrune;
      stack.push_back(std::move(f));
      ++depth;
      return stack.back().choice;
    };

    const Runner::Outcome outcome = runner.Run(decide, options.max_steps);
    g_runner = nullptr;
    ++result.schedules;

    if (runner.violation() && !outcome.pruned) {
      result.violation = runner.violation();
      result.complete = false;
      break;
    }
    if (diverged_model) {
      result.violation = runner.violation();
      result.complete = false;
      break;
    }

    // Backtrack: deepest frame with an unexplored, allowed alternative.
    bool advanced = false;
    while (!stack.empty()) {
      Frame& f = stack.back();
      f.sleep.insert(f.choice);  // This subtree is fully explored.
      const int next = PickChoice(f, options.preemption_bound);
      if (next != kPrune) {
        f.choice = next;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) {
      result.complete = true;
      break;
    }
  }
  g_runner = nullptr;
  return result;
}

ExploreResult Replay(const Model& model, const std::string& schedule) {
  std::vector<int> decisions;
  std::istringstream in(schedule);
  std::string tok;
  while (std::getline(in, tok, '.')) {
    if (!tok.empty()) decisions.push_back(std::stoi(tok));
  }

  ExploreResult result;
  Runner runner(model);
  LSBENCH_ASSERT(g_runner == nullptr && "nested exploration");
  g_runner = &runner;
  size_t depth = 0;
  const auto decide = [&](const Runner::DecideCtx& ctx) -> int {
    if (depth < decisions.size()) {
      const int choice = decisions[depth++];
      if (std::find(ctx.enabled.begin(), ctx.enabled.end(), choice) ==
          ctx.enabled.end()) {
        runner.RecordViolation(
            "replay: decision " + std::to_string(depth - 1) + " chose task " +
            std::to_string(choice) + ", which is not enabled");
        return kPrune;
      }
      return choice;
    }
    // Past the recorded prefix: deterministic default policy.
    return OrderedCandidates(ctx.enabled, ctx.last_running).front();
  };
  (void)runner.Run(decide, /*max_steps=*/1000000);
  result.schedules = 1;
  result.complete = false;
  result.violation = runner.violation();
  g_runner = nullptr;
  return result;
}

}  // namespace sched
}  // namespace lsbench
