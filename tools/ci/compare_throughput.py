#!/usr/bin/env python3
"""CI gate for the batch-dispatch throughput bench.

Compares a freshly generated bench/throughput_gate JSON against the
committed BENCH_throughput.json and fails (exit 1) when:

  * the configuration grids differ (someone changed the bench without
    regenerating the committed file), or
  * any fresh *scalar* config regressed by more than --tolerance
    (default 10%) below its committed ops/s — the tracked "don't slow
    down the per-op dispatch path" rule, or
  * the fresh btree workers=4 batch-over-scalar speedup dropped below
    --min-speedup (default 3.0) — the monomorphized batch loop must
    keep earning its keep.

Batch absolute throughput is reported but not gated on machine-to-machine
absolute numbers beyond the speedup ratio: ratios are stable across
hosts, absolutes are not, and the scalar tolerance is deliberately loose
for the same reason.

Usage: compare_throughput.py COMMITTED_JSON FRESH_JSON
         [--tolerance 0.10] [--min-speedup 3.0]
"""

import argparse
import json
import sys


def config_key(config):
    return (config["sut"], config["workers"], config["mode"])


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"FAIL: cannot load {path}: {err}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("committed", help="tracked BENCH_throughput.json")
    parser.add_argument("fresh", help="freshly generated bench output")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional scalar ops/s regression")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required btree workers=4 batch/scalar ratio")
    args = parser.parse_args()

    committed = load(args.committed)
    fresh = load(args.fresh)
    failures = []

    # Grid / schema match: same bench, same knobs, same config set.
    for field in ("bench", "elements_per_config", "batch_size", "repeats"):
        if committed.get(field) != fresh.get(field):
            failures.append(
                f"config mismatch: {field} committed={committed.get(field)} "
                f"fresh={fresh.get(field)} — regenerate the committed file "
                f"with bench/throughput_gate")
    committed_configs = {config_key(c): c for c in committed.get("configs", [])}
    fresh_configs = {config_key(c): c for c in fresh.get("configs", [])}
    if set(committed_configs) != set(fresh_configs):
        failures.append(
            f"config grid mismatch: committed={sorted(committed_configs)} "
            f"fresh={sorted(fresh_configs)}")

    # Scalar regression gate.
    for key in sorted(set(committed_configs) & set(fresh_configs)):
        if key[2] != "scalar":
            continue
        old = committed_configs[key]["ops_per_sec"]
        new = fresh_configs[key]["ops_per_sec"]
        ratio = new / old if old > 0 else 0.0
        line = (f"scalar {key[0]} workers={key[1]}: committed {old:,.0f} "
                f"fresh {new:,.0f} ops/s ({ratio:.2f}x)")
        if ratio < 1.0 - args.tolerance:
            failures.append(f"scalar regression >{args.tolerance:.0%}: {line}")
        else:
            print(f"ok    {line}")

    # Speedup floor on the acceptance config.
    fresh_speedups = {(s["sut"], s["workers"]): s["batch_over_scalar"]
                      for s in fresh.get("speedups", [])}
    gate = fresh_speedups.get(("btree", 4))
    if gate is None:
        failures.append("fresh JSON is missing the btree workers=4 speedup")
    elif gate < args.min_speedup:
        failures.append(
            f"batch speedup below floor: btree workers=4 is {gate:.2f}x, "
            f"requires >= {args.min_speedup:.1f}x")
    else:
        print(f"ok    speedup btree workers=4: {gate:.2f}x "
              f"(floor {args.min_speedup:.1f}x)")
    for key, value in sorted(fresh_speedups.items()):
        if key != ("btree", 4):
            print(f"info  speedup {key[0]} workers={key[1]}: {value:.2f}x")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("throughput gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
