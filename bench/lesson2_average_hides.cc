// Lesson 2 of the paper: "Average metrics do not capture adaptability."
// Two systems with similar average throughput over a run with a shift can
// behave very differently during the transition: one stalls (retraining
// bursts, SLA violations), the other degrades smoothly. Only the paper's
// proposed metrics — throughput box plots, SLA bands, adjustment speed,
// area vs ideal — expose the difference.

#include <cstdio>

#include "bench/bench_common.h"
#include "report/report.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "lesson2_average_hides";
  spec.datasets = datasets;
  spec.seed = 99;
  spec.interval_nanos = 50000000;
  spec.boxplot_sample_nanos = 2000000;  // 2 ms throughput samples.
  spec.adjustment_window_ops = 5000;

  PhaseSpec steady;
  steady.name = "steady";
  steady.dataset_index = 0;
  steady.mix.get = 0.7;
  steady.mix.insert = 0.3;
  steady.access = AccessPattern::kZipfian;
  steady.num_operations = bench::ScaledOps(250000);
  spec.phases.push_back(steady);

  PhaseSpec shifted = steady;
  shifted.name = "shifted";
  shifted.dataset_index = 4;
  spec.phases.push_back(shifted);
  return spec;
}

struct Row {
  std::string name;
  double mean_tput;
  double p99_latency_ns;
  double box_iqr;
  uint64_t sla_violations;
  double adjustment_excess;
  double area_vs_ideal;
};

Row Evaluate(const RunSpec& spec, SystemUnderTest* sut) {
  const RunResult r = bench::MustRun(spec, sut);
  Row row;
  row.name = r.sut_name;
  row.mean_tput = r.metrics.mean_throughput;
  row.p99_latency_ns = r.metrics.overall_latency.P99();
  row.box_iqr = 0.0;
  row.adjustment_excess = 0.0;
  for (const PhaseMetrics& pm : r.metrics.phases) {
    row.box_iqr = std::max(row.box_iqr, pm.throughput_box.Iqr());
    row.adjustment_excess += pm.adjustment_excess_seconds;
  }
  row.sla_violations = r.metrics.total_sla_violations;
  row.area_vs_ideal = r.metrics.area_vs_ideal;
  return row;
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(200000), 6);
  const RunSpec spec = BuildSpec(datasets);

  // System A: never retrains — no stalls, but throughput decays after the
  // shift as its delta buffer grows.
  LearnedSystemOptions frozen;
  frozen.retrain_policy = RetrainPolicy::kNever;
  LearnedKvSystem system_a(frozen);

  // System B: retrains synchronously on a delta threshold — occasional
  // stalls (latency spikes, SLA bursts) buy a recovered steady state. Over
  // the whole run the two means come out close; the dynamics do not.
  LearnedSystemOptions retraining;
  retraining.retrain_policy = RetrainPolicy::kDeltaThreshold;
  retraining.delta_threshold_fraction = 0.05;
  LearnedKvSystem system_b(retraining);

  const Row a = Evaluate(spec, &system_a);
  const Row b = Evaluate(spec, &system_b);

  bench::Header("Lesson 2 — averages hide adaptability");
  std::printf("%-44s %12s %12s %12s %10s %12s %12s\n", "system",
              "mean_tput", "p99_lat_us", "tput_IQR", "sla_viol",
              "adj_excess_s", "area_ideal");
  for (const Row& row : {a, b}) {
    std::printf("%-44s %12.0f %12.1f %12.0f %10llu %12.4f %12.1f\n",
                row.name.c_str(), row.mean_tput, row.p99_latency_ns / 1000.0,
                row.box_iqr,
                static_cast<unsigned long long>(row.sla_violations),
                row.adjustment_excess, row.area_vs_ideal);
  }
  std::printf(
      "\nmean throughput differs by %.1f%%, but p99 latency differs by "
      "%.1fx and\nSLA violations by %.1fx — the dynamic metrics, not the "
      "average, separate the systems (Lesson 2).\n",
      100.0 * std::abs(a.mean_tput - b.mean_tput) /
          std::max(a.mean_tput, b.mean_tput),
      std::max(a.p99_latency_ns, b.p99_latency_ns) /
          std::max(1.0, std::min(a.p99_latency_ns, b.p99_latency_ns)),
      static_cast<double>(std::max(a.sla_violations, b.sla_violations)) /
          static_cast<double>(std::max<uint64_t>(
              1, std::min(a.sla_violations, b.sla_violations))));
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
