#ifndef LSBENCH_BENCH_BENCH_COMMON_H_
#define LSBENCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "sut/systems.h"
#include "util/env.h"

namespace lsbench {
namespace bench {

/// Scale knob honored by every figure bench: LSBENCH_QUICK=1 shrinks
/// datasets and op counts ~10x so the full suite stays fast on CI.
inline bool QuickMode() { return EnvFlagEnabled("LSBENCH_QUICK"); }

inline size_t ScaledKeys(size_t full) { return QuickMode() ? full / 10 : full; }
inline uint64_t ScaledOps(uint64_t full) {
  return QuickMode() ? full / 10 : full;
}

/// The standard dataset family used by the figure benches: a drift from
/// uniform toward a tight clustered distribution, plus a lognormal used as
/// the out-of-sample hold-out.
inline std::vector<Dataset> StandardDriftDatasets(size_t num_keys,
                                                  uint64_t seed) {
  DatasetOptions options;
  options.num_keys = num_keys;
  options.seed = seed;
  const UniformUnit uniform;
  const ClusteredUnit clustered(6, 0.004, seed + 1);
  std::vector<Dataset> datasets =
      GenerateDriftSequence(uniform, clustered, 5, options);
  DatasetOptions holdout_options = options;
  holdout_options.seed = seed + 99;
  datasets.push_back(
      GenerateDataset(LognormalUnit(0.0, 1.5), holdout_options));
  datasets.back().name = "holdout_" + datasets.back().name;
  return datasets;
}

/// Runs `spec` against `sut` with a real clock and returns the result,
/// aborting the process on error (benches have no error recovery story).
inline RunResult MustRun(const RunSpec& spec, SystemUnderTest* sut) {
  DriverOptions options;
  options.enforce_holdout_once = false;  // Benches rerun specs freely.
  BenchmarkDriver driver(nullptr, options);
  Result<RunResult> result = driver.Run(spec, sut);
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Loads `pairs` into `sut`, aborting the process on failure: a silently
/// failed load would make every downstream number meaningless.
inline void MustLoad(SystemUnderTest* sut, const std::vector<KeyValue>& pairs) {
  const Status st = sut->Load(pairs);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

/// Prints a section header for bench output.
inline void Header(const std::string& title) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", title.c_str());
  std::printf("################################################################\n");
}

}  // namespace bench
}  // namespace lsbench

#endif  // LSBENCH_BENCH_BENCH_COMMON_H_
