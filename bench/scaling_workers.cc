// Worker-scaling sweep: the same closed-loop workload driven at
// [execution] workers = 1, 2, 4 against a thread-safe partitioned store
// and, as the serialization baseline, a single-lock B-tree (the driver
// wraps serial SUTs in SerializingSut, so its "scaling" curve is the cost
// of the lock).
//
// Expected shape on a multi-core machine: the partitioned store scales
// near-linearly to the core count (>= 2x from 1 -> 4 workers) while the
// serialized B-tree stays flat or degrades slightly from lock handoff.
// On a single hardware thread both curves are flat — the sweep prints the
// detected core count so the numbers can be read honestly.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "sut/concurrent_kv.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const Dataset& dataset, uint32_t workers) {
  RunSpec spec;
  spec.name = "scaling_workers_w" + std::to_string(workers);
  spec.seed = 4242;
  spec.datasets.push_back(dataset);
  spec.interval_nanos = 100000000;  // 100 ms.

  PhaseSpec reads;
  reads.name = "read_heavy";
  reads.dataset_index = 0;
  reads.mix.get = 0.9;
  reads.mix.scan = 0.1;
  reads.access = AccessPattern::kZipfian;
  reads.num_operations = bench::ScaledOps(400000);
  spec.phases.push_back(reads);

  PhaseSpec mixed;
  mixed.name = "mixed";
  mixed.dataset_index = 0;
  mixed.mix.get = 0.6;
  mixed.mix.insert = 0.25;
  mixed.mix.update = 0.1;
  mixed.mix.del = 0.05;
  mixed.num_operations = bench::ScaledOps(400000);
  spec.phases.push_back(mixed);

  spec.execution.workers = workers;
  return spec;
}

struct SweepPoint {
  uint32_t workers = 0;
  double throughput = 0.0;
  double p99_us = 0.0;
};

template <typename MakeSut>
std::vector<SweepPoint> Sweep(const Dataset& dataset, MakeSut make_sut) {
  std::vector<SweepPoint> points;
  for (const uint32_t workers : {1u, 2u, 4u}) {
    auto sut = make_sut();
    const RunResult run = bench::MustRun(BuildSpec(dataset, workers), &sut);
    SweepPoint point;
    point.workers = workers;
    point.throughput = run.metrics.mean_throughput;
    point.p99_us = run.metrics.overall_latency.P99() / 1000.0;
    points.push_back(point);
  }
  return points;
}

void PrintSweep(const char* label, const std::vector<SweepPoint>& points) {
  std::printf("\n%s\n", label);
  std::printf("| workers | throughput (ops/s) | speedup vs 1 | p99 (us) |\n");
  std::printf("|---------|--------------------|--------------|----------|\n");
  for (const SweepPoint& p : points) {
    std::printf("| %7u | %18.0f | %12.2f | %8.1f |\n", p.workers,
                p.throughput, p.throughput / points.front().throughput,
                p.p99_us);
  }
  std::printf("\ncsv: workers,throughput,speedup,p99_us\n");
  for (const SweepPoint& p : points) {
    std::printf("csv: %u,%.0f,%.3f,%.1f\n", p.workers, p.throughput,
                p.throughput / points.front().throughput, p.p99_us);
  }
}

int Main() {
  bench::Header("Worker scaling: thread-safe vs serialized SUT");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n", cores,
              cores < 4 ? "  (expect flat curves below 4 cores)" : "");

  DatasetOptions options;
  options.num_keys = bench::ScaledKeys(200000);
  options.seed = 7;
  const Dataset dataset = GenerateDataset(UniformUnit(), options);

  PrintSweep("partitioned_kv_system (thread-safe, per-shard locks)",
             Sweep(dataset, [] { return PartitionedKvSystem(16); }));
  PrintSweep("btree_system (serial, driver-side SerializingSut lock)",
             Sweep(dataset, [] { return BTreeSystem(); }));
  return 0;
}

}  // namespace
}  // namespace lsbench

int main() { return lsbench::Main(); }
