// Resilience under injected faults: reruns the Fig. 1c SLA comparison with
// an active FaultPlan and the resilient driver enabled (per-op timeout
// budgets, retry-with-backoff, circuit breaker).
//
// Both systems face the *same* deterministic fault schedule: background
// transient failures throughout, plus a heavier storm correlated with the
// abrupt distribution shift. Expected shape: the statically-retrained
// learned system stalls synchronously right when the storm hits, so queued
// operations blow their timeout budgets on top of the injected errors; the
// adaptive system absorbs the shift incrementally and keeps availability
// high. The traditional B-tree is the fault-only baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "report/report.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "resilience_faults";
  spec.datasets = datasets;
  spec.seed = 555;
  spec.interval_nanos = 20000000;  // 20 ms bands.
  spec.sla.threshold_nanos = 0;    // Calibrate from phase 0 (p99 x 2).
  spec.sla.auto_percentile = 0.99;
  spec.sla.auto_margin = 2.0;
  spec.adjustment_window_ops = 20000;

  // Open-loop arrivals, as in fig1c: during a synchronous retraining stall
  // the offered load keeps arriving, so queueing delay pushes queued ops
  // past their deadline — the stall becomes a visible availability dip.
  PhaseSpec before;
  before.name = "steady_state";
  before.dataset_index = 0;
  before.mix.get = 0.95;
  before.mix.insert = 0.05;
  before.access = AccessPattern::kZipfian;
  before.arrival = ArrivalPattern::kPoisson;
  before.arrival_rate_qps = 400000.0;
  before.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(before);

  PhaseSpec shift;
  shift.name = "abrupt_shift_storm";
  shift.dataset_index = 4;
  shift.mix.get = 0.7;
  shift.mix.insert = 0.3;
  shift.access = AccessPattern::kZipfian;
  shift.arrival = ArrivalPattern::kPoisson;
  shift.arrival_rate_qps = 400000.0;
  shift.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(shift);

  // The shared fault schedule: rare background hiccups, then a storm of
  // transient failures and latency spikes during the shift phase.
  FaultWindow background;
  background.phase = 0;
  background.execute_fail_rate = 0.002;
  spec.faults.windows.push_back(background);

  FaultWindow storm;
  storm.phase = 1;
  storm.execute_fail_rate = 0.02;
  storm.latency_spike_rate = 0.001;
  storm.latency_spike_nanos = 200000;  // 200 us spikes.
  spec.faults.windows.push_back(storm);

  // The resilient driver: a 1 ms budget per op (measured from intended
  // arrival), three retries with jittered backoff, and a circuit breaker.
  spec.resilience.op_timeout_nanos = 1000000;
  spec.resilience.max_retries = 3;
  spec.resilience.backoff_initial_nanos = 20000;
  spec.resilience.backoff_multiplier = 2.0;
  spec.resilience.backoff_max_nanos = 200000;
  spec.resilience.backoff_jitter = 0.2;
  spec.resilience.breaker_enabled = true;
  spec.resilience.breaker_window_ops = 500;
  spec.resilience.breaker_failure_threshold = 0.8;
  spec.resilience.breaker_cooldown_nanos = 2000000;
  spec.resilience.breaker_half_open_probes = 20;
  return spec;
}

struct Outcome {
  std::string name;
  double availability = 0.0;
  ResilienceMetrics resilience;
  FaultStats faults;
};

Outcome RunSystem(const RunSpec& spec, SystemUnderTest* sut) {
  const RunResult result = bench::MustRun(spec, sut);
  bench::Header("Resilience under faults — " + sut->name());
  std::printf("%s\n", RenderRunSummary(result).c_str());
  std::printf(
      "fault injector: failures=%llu spikes=%llu stalls=%llu\n",
      static_cast<unsigned long long>(result.fault_stats.injected_failures),
      static_cast<unsigned long long>(result.fault_stats.injected_spikes),
      static_cast<unsigned long long>(result.fault_stats.injected_stalls));
  for (const PhaseMetrics& pm : result.metrics.phases) {
    const double phase_avail =
        pm.operations > 0
            ? 1.0 - static_cast<double>(pm.failed_operations) /
                        static_cast<double>(pm.operations)
            : 1.0;
    std::printf("phase %d (%s): availability=%.3f%% errors=%llu\n", pm.phase,
                pm.phase == 0 ? "steady" : "storm+shift",
                100.0 * phase_avail,
                static_cast<unsigned long long>(pm.failed_operations));
  }
  Outcome outcome;
  outcome.name = sut->name();
  outcome.availability = result.metrics.resilience.availability;
  outcome.resilience = result.metrics.resilience;
  outcome.faults = result.fault_stats;
  return outcome;
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(200000), 3);
  const RunSpec spec = BuildSpec(datasets);

  // Static policy: drift-triggered synchronous retraining — the stall
  // lands exactly when the fault storm does.
  LearnedSystemOptions learned_options;
  learned_options.retrain_policy = RetrainPolicy::kDriftTriggered;
  LearnedKvSystem learned(learned_options);
  const Outcome static_learned = RunSystem(spec, &learned);

  AdaptiveKvSystem adaptive;
  const Outcome adaptive_learned = RunSystem(spec, &adaptive);

  BTreeSystem btree;
  const Outcome traditional = RunSystem(spec, &btree);

  bench::Header("Availability under the same fault plan");
  for (const Outcome* o :
       {&static_learned, &adaptive_learned, &traditional}) {
    std::printf(
        "%-24s availability=%7.3f%%  errors=%-7llu timeouts=%-7llu "
        "retries=%-7llu shed=%llu\n",
        o->name.c_str(), 100.0 * o->availability,
        static_cast<unsigned long long>(o->resilience.failed_operations),
        static_cast<unsigned long long>(o->resilience.timeouts),
        static_cast<unsigned long long>(o->resilience.total_retries),
        static_cast<unsigned long long>(o->resilience.shed_operations));
  }
  std::printf(
      "\nadaptive vs static learned: %+.3f%% availability under identical "
      "faults\n",
      100.0 * (adaptive_learned.availability - static_learned.availability));
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
