// Lesson 3 of the paper: "Training must be a first-class result." The
// benchmark reports training time next to execution performance: this
// experiment sweeps offline training effort and shows the throughput the
// budget buys, for both learned index flavors — the curve a benchmark must
// publish instead of hiding training in the setup phase.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/clock.h"

namespace lsbench {
namespace {

void Main() {
  DatasetOptions options;
  options.num_keys = bench::ScaledKeys(400000);
  options.seed = 21;
  const Dataset ds = GenerateDataset(ClusteredUnit(30, 0.002, 23), options);

  RunSpec spec;
  spec.name = "lesson3_training";
  spec.datasets.push_back(ds);
  spec.seed = 3;
  spec.offline_training = false;
  PhaseSpec reads;
  reads.name = "reads";
  reads.mix.get = 1.0;
  reads.access = AccessPattern::kZipfian;
  reads.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(reads);

  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }

  bench::Header("Lesson 3 — training as a first-class result");
  std::printf("%-8s %-12s %-12s %-12s %-14s %-12s\n", "models",
              "sample_every", "fit_points", "train_s", "throughput",
              "model_err");

  struct Budget {
    int models;
    int sample_every;
  };
  const Budget budgets[] = {
      {8, 256}, {64, 64}, {512, 8}, {4096, 1}, {16384, 1}};
  RealClock clock;
  for (const Budget& budget : budgets) {
    LearnedSystemOptions sys_options;
    sys_options.retrain_policy = RetrainPolicy::kNever;
    sys_options.rmi.num_leaf_models = budget.models;
    sys_options.rmi.train_sample_every = budget.sample_every;
    LearnedKvSystem sut(sys_options);
    bench::MustLoad(&sut, pairs);
    Stopwatch watch(&clock);
    const TrainReport report = sut.Train();
    const double train_seconds = watch.ElapsedSeconds();
    const double throughput =
        bench::MustRun(spec, &sut).metrics.mean_throughput;
    std::printf("%-8d %-12d %-12llu %-12.4f %-14.0f %-12.1f\n",
                budget.models, budget.sample_every,
                static_cast<unsigned long long>(report.work_items),
                train_seconds, throughput, sut.GetStats().model_error);
  }
  std::printf(
      "\n=> throughput is a function of training effort; a benchmark that\n"
      "   omits the training column cannot compare these systems "
      "(Lesson 3).\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
