// Lesson 1 of the paper: "Abstain from fixed workloads and databases as
// their characteristics are easy to learn." This experiment quantifies the
// claim on the cache substrate, where specialization is crisp: a learned
// admission/eviction cache is compared against LRU on (a) the classic fixed
// benchmark — one stable zipfian working set for the whole run — and (b)
// the dynamic benchmark the paper calls for — the same total accesses, but
// the working set shifts several times mid-run.
//
// Expected: the learned policy's advantage over LRU is clearly larger on
// the fixed benchmark (it can overfit a stable working set) than on the
// varying one (every shift invalidates its learned reuse statistics), i.e.
// a fixed benchmark overstates the learned component's advantage.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "cache/cache.h"
#include "workload/access_distribution.h"

namespace lsbench {
namespace {

struct Outcome {
  double learned_hit_rate;
  double lru_hit_rate;

  double Advantage() const { return learned_hit_rate / lru_hit_rate; }
};

/// Streams `total` zipfian accesses; every `accesses_per_epoch` the hot set
/// jumps to a disjoint key region (epochs = 1 reproduces the fixed
/// benchmark).
Outcome RunStream(size_t universe, size_t capacity, int total, int epochs) {
  LearnedCache learned(capacity);
  LruCache lru(capacity);
  ZipfianAccess access(0.99, /*scramble=*/false);
  Rng rng(77);
  const int per_epoch = total / epochs;
  for (int i = 0; i < total; ++i) {
    const Key epoch_base =
        static_cast<Key>(i / per_epoch) * universe * 10;
    const Key key = epoch_base + access.NextRank(&rng, universe);
    learned.Access(key);
    lru.Access(key);
  }
  return {learned.HitRate(), lru.HitRate()};
}

void Main() {
  const size_t universe = bench::ScaledKeys(200000);
  const size_t capacity = universe / 20;
  const int total = static_cast<int>(bench::ScaledOps(2000000));

  bench::Header("Lesson 1 — fixed vs varying workloads and data");
  const Outcome fixed = RunStream(universe, capacity, total, /*epochs=*/1);
  const Outcome varying = RunStream(universe, capacity, total, /*epochs=*/8);

  std::printf("  %-28s learned=%.4f  lru=%.4f  advantage=%.3fx\n",
              "fixed (1 working set)", fixed.learned_hit_rate,
              fixed.lru_hit_rate, fixed.Advantage());
  std::printf("  %-28s learned=%.4f  lru=%.4f  advantage=%.3fx\n",
              "varying (8 shifts)", varying.learned_hit_rate,
              varying.lru_hit_rate, varying.Advantage());

  const double ratio = fixed.Advantage() / varying.Advantage();
  std::printf("\nspecialization-gain gap: fixed %.3fx vs varying %.3fx "
              "(overstatement ratio %.2f)\n",
              fixed.Advantage(), varying.Advantage(), ratio);
  if (ratio > 1.02) {
    std::printf(
        "=> the fixed benchmark overstates the learned component's "
        "advantage;\n   varying the workload within a run is required "
        "(Lesson 1).\n");
  } else {
    std::printf(
        "=> no overstatement detected at this scale — rerun at full scale "
        "(unset LSBENCH_QUICK).\n");
  }
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
