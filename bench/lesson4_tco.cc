// Lesson 4 of the paper: "We cannot ignore the human cost anymore." A
// three-year total-cost-of-ownership comparison: the traditional system's
// hardware cost plus recurring DBA tuning vs the learned system's hardware
// plus (re)training compute on different hardware profiles. Reports the
// classic cost-per-performance with the cost *decomposed* into execution,
// training, and human components, as the paper requires.

#include <cstdio>

#include "bench/bench_common.h"
#include "sut/cost_model.h"
#include "sut/tco.h"
#include "util/clock.h"

namespace lsbench {
namespace {

void Main() {
  DatasetOptions options;
  options.num_keys = bench::ScaledKeys(300000);
  options.seed = 41;
  const Dataset ds = GenerateDataset(ClusteredUnit(25, 0.002, 43), options);

  RunSpec spec;
  spec.name = "lesson4_tco";
  spec.datasets.push_back(ds);
  spec.seed = 4;
  // Tuned-steady-state comparison (the Fig. 1d framing): each plan keeps
  // its system specialized to the live distribution — the DBA by recurring
  // manual tuning, the learned system by weekly retraining — so the
  // measured quantity is the specialized read throughput of each.
  PhaseSpec reads;
  reads.name = "reads";
  reads.mix.get = 1.0;
  reads.access = AccessPattern::kZipfian;
  reads.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(reads);

  BTreeSystem btree;
  const RunResult btree_run = bench::MustRun(spec, &btree);
  LearnedSystemOptions learned_options;
  learned_options.retrain_policy = RetrainPolicy::kNever;
  learned_options.rmi.num_leaf_models = 4096;
  LearnedKvSystem learned(learned_options);
  const RunResult learned_run = bench::MustRun(spec, &learned);

  // TCO model over 3 years (sut/tco.h): one server at $1.0/h for every
  // plan; the traditional plan pays quarterly tier-2 DBA passes, the
  // learned plans pay weekly retraining pipelines (10^6 x one measured
  // fit, as in fig1d) on CPU or GPU.
  const DbaCostModel dba = DbaCostModel::Default();
  const TcoAssumptions assumptions;  // 3y, $1/h, 4 DBA passes/y, 52 retrains/y.
  const double fit_cpu_seconds = learned_run.OfflineTrainSeconds();

  std::vector<TcoPlan> plans;
  plans.push_back(MakeTraditionalPlan("btree + DBA (tier2 quarterly)",
                                      btree_run.metrics.mean_throughput, dba,
                                      assumptions));
  for (const HardwareProfile& hw :
       {HardwareProfile::Cpu(), HardwareProfile::Gpu()}) {
    plans.push_back(MakeLearnedPlan("learned, weekly retrain on " + hw.name,
                                    learned_run.metrics.mean_throughput,
                                    fit_cpu_seconds, hw, assumptions));
  }

  bench::Header("Lesson 4 — 3-year TCO with the human cost included");
  std::printf("%s", RenderTcoTable(plans).c_str());
  std::printf(
      "\n=> the decomposed TCO makes the trade visible: the learned system\n"
      "   replaces recurring DBA dollars with (much cheaper) training\n"
      "   compute — invisible under a cost-blind average (Lesson 4).\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
