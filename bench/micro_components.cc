// Micro-benchmarks for the learned components beyond indexing: learned sort
// vs std::sort, cardinality estimators (latency and accuracy), the
// similarity statistics powering the phi axis, and the drift detector.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "data/dataset.h"
#include "learned/cardinality.h"
#include "learned/join.h"
#include "learned/drift_detector.h"
#include "learned/learned_sort.h"
#include "stats/similarity.h"
#include "util/random.h"

namespace lsbench {
namespace {

std::vector<Key> SortInput(size_t n, uint64_t seed) {
  Rng rng(seed);
  const LognormalUnit dist(0.0, 1.5);
  std::vector<Key> keys(n);
  for (Key& k : keys) k = static_cast<Key>(dist.Sample(&rng) * 9e18);
  return keys;
}

void BM_StdSort(benchmark::State& state) {
  const auto input = SortInput(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto data = input;
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(100000)->Arg(1000000);

void BM_LearnedSort(benchmark::State& state) {
  const auto input = SortInput(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto data = input;
    LearnedSort(&data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LearnedSort)->Arg(100000)->Arg(1000000);

const std::vector<Key>& EstimatorKeys() {
  static const auto& keys = *new std::vector<Key>(
      GenerateDataset(ClusteredUnit(20, 0.003, 3),
                      {200000, uint64_t{1} << 44, 5})
          .keys);
  return keys;
}

void BM_EquiDepthEstimate(benchmark::State& state) {
  const EquiDepthHistogram hist(EstimatorKeys(), 128);
  Rng rng(7);
  for (auto _ : state) {
    const Key lo = rng.Next() % (uint64_t{1} << 44);
    benchmark::DoNotOptimize(
        hist.EstimateRange(lo, lo + (uint64_t{1} << 36)));
  }
}
BENCHMARK(BM_EquiDepthEstimate);

void BM_LearnedEstimate(benchmark::State& state) {
  const LearnedCardinalityEstimator est(EstimatorKeys(), {});
  Rng rng(9);
  for (auto _ : state) {
    const Key lo = rng.Next() % (uint64_t{1} << 44);
    benchmark::DoNotOptimize(
        est.EstimateRange(lo, lo + (uint64_t{1} << 36)));
  }
}
BENCHMARK(BM_LearnedEstimate);

void BM_LearnedEstimatorFeedback(benchmark::State& state) {
  LearnedCardinalityEstimator est(EstimatorKeys(), {});
  Rng rng(11);
  for (auto _ : state) {
    const Key lo = rng.Next() % (uint64_t{1} << 44);
    est.Feedback(lo, lo + (uint64_t{1} << 36), 1000.0);
  }
  benchmark::DoNotOptimize(est.feedback_count());
}
BENCHMARK(BM_LearnedEstimatorFeedback);

void BM_KolmogorovSmirnov(benchmark::State& state) {
  Rng rng(13);
  std::vector<double> a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KolmogorovSmirnov(a, b).statistic);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KolmogorovSmirnov)->Arg(1024)->Arg(16384);

void BM_MmdSquared(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MmdSquared(a, b));
  }
}
BENCHMARK(BM_MmdSquared)->Arg(256)->Arg(1024);

// Join kernels: a 1:16 probe:build size ratio where learned skipping pays.
struct JoinInputs {
  std::vector<Key> small;
  std::vector<Key> large;
};

const JoinInputs& JoinData() {
  static const JoinInputs& inputs = *new JoinInputs([] {
    JoinInputs in;
    Rng rng(21);
    Key k = 0;
    for (int i = 0; i < 1000000; ++i) {
      k += 1 + rng.NextBounded(20);
      in.large.push_back(k);
      if (i % 16 == 0) in.small.push_back(k);
    }
    return in;
  }());
  return inputs;
}

void BM_MergeJoin(benchmark::State& state) {
  const JoinInputs& in = JoinData();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeJoin(in.small, in.large).matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.large.size()));
}
BENCHMARK(BM_MergeJoin);

void BM_HashJoin(benchmark::State& state) {
  const JoinInputs& in = JoinData();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashJoin(in.small, in.large).matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.large.size()));
}
BENCHMARK(BM_HashJoin);

void BM_LearnedJoin(benchmark::State& state) {
  const JoinInputs& in = JoinData();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnedJoin(in.small, in.large).matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(in.large.size()));
}
BENCHMARK(BM_LearnedJoin);

void BM_DriftDetectorObserve(benchmark::State& state) {
  DriftDetector detector;
  Rng rng(19);
  for (int i = 0; i < 3000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (auto _ : state) {
    detector.Observe(rng.NextDouble());
  }
  benchmark::DoNotOptimize(detector.window_size());
}
BENCHMARK(BM_DriftDetectorObserve);

void BM_DriftDetectorCheck(benchmark::State& state) {
  DriftDetector detector;
  Rng rng(23);
  for (int i = 0; i < 3000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (int i = 0; i < 1024; ++i) detector.Observe(rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.CurrentDistance());
  }
}
BENCHMARK(BM_DriftDetectorCheck);

}  // namespace
}  // namespace lsbench

BENCHMARK_MAIN();
