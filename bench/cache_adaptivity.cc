// Learned-cache experiment (§II lists "learning-based caches" among learned
// components): hit rate per policy under a stable zipfian working set, a
// scan-pollution episode, and an abrupt working-set shift. The learned
// admission policy specializes to the hot set (best steady-state hit rate,
// scan-resistant) but must re-learn after the shift — the cache-shaped
// instance of the paper's specialization/adaptability trade-off.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "cache/cache.h"
#include "workload/access_distribution.h"

namespace lsbench {
namespace {

struct PhaseResult {
  double hit_rate[4];
};

void Main() {
  const size_t universe = bench::ScaledKeys(200000);
  const size_t capacity = universe / 20;
  const int ops_per_phase = static_cast<int>(bench::ScaledOps(400000));

  std::vector<std::unique_ptr<Cache>> caches;
  for (const CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::kLfu, CachePolicy::kFifo,
        CachePolicy::kLearned}) {
    caches.push_back(MakeCache(policy, capacity));
  }

  bench::Header("Learned cache — hit rate across phases");
  std::printf("%-22s %8s %8s %8s %8s\n", "phase", "lru", "lfu", "fifo",
              "learned");

  auto run_phase = [&](const std::string& label, auto&& next_key) {
    for (auto& cache : caches) cache->ResetCounters();
    for (int i = 0; i < ops_per_phase; ++i) {
      const Key key = next_key(i);
      for (auto& cache : caches) cache->Access(key);
    }
    std::printf("%-22s", label.c_str());
    for (auto& cache : caches) std::printf(" %8.4f", cache->HitRate());
    std::printf("\n");
  };

  // Phase 1: steady zipfian working set.
  {
    ZipfianAccess access(0.99, /*scramble=*/false);
    Rng rng(1);
    run_phase("steady_zipf", [&](int) {
      return static_cast<Key>(access.NextRank(&rng, universe));
    });
  }
  // Phase 2: same hot set + interleaved one-pass scan (pollution).
  {
    ZipfianAccess access(0.99, /*scramble=*/false);
    Rng rng(2);
    Key scan_cursor = 10 * universe;
    run_phase("zipf_plus_scan", [&](int i) -> Key {
      if (i % 2 == 1) return scan_cursor++;
      return static_cast<Key>(access.NextRank(&rng, universe));
    });
  }
  // Phase 3: abrupt working-set shift (hot ids offset by universe).
  {
    ZipfianAccess access(0.99, /*scramble=*/false);
    Rng rng(3);
    run_phase("shifted_zipf", [&](int) {
      return static_cast<Key>(universe + access.NextRank(&rng, universe));
    });
  }
  // Phase 4: shifted set again — adaptation completed.
  {
    ZipfianAccess access(0.99, /*scramble=*/false);
    Rng rng(4);
    run_phase("shifted_zipf_settled", [&](int) {
      return static_cast<Key>(universe + access.NextRank(&rng, universe));
    });
  }

  std::printf(
      "\n=> the learned policy matches LFU under stable skew and on scan\n"
      "   resistance, dips during the shift while its reuse statistics\n"
      "   re-learn, then leads once settled — whereas LFU's stale\n"
      "   frequencies keep it broken after the shift. Average hit rate\n"
      "   alone would hide the transition (Lessons 1 and 2, cache\n"
      "   edition).\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
