// Open-loop overload sweep: the same workload offered at 0.5x, 1x, 2x and
// 4x the sustainable service rate, through the [service] admission queue
// with the SLO-aware shedder. Reports offered vs achieved QPS, the
// coordinated-omission-correct intended-arrival p99 next to the
// measured-issue (service-time) p99, and the realized shed fraction.
//
// Expected shape: below saturation the two p99 columns agree and nothing
// sheds; past saturation the intended p99 grows with the queue while the
// service p99 stays flat, and the shedder holds goodput near the
// sustainable rate by dropping the excess.
//
// Runs entirely on a virtual clock (simulation mode), so the emitted JSON
// is byte-identical run to run and machine to machine — CI regenerates
// BENCH_service_mode.json and diffs it against the committed copy.
//
// Usage: service_overload [output.json]   (default BENCH_service_mode.json)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace lsbench {
namespace {

// The simulated executor serves one operation per 100 us of virtual time,
// so one worker sustains exactly 10k qps.
constexpr double kSustainableQps = 10000.0;
constexpr uint64_t kOpsPerPoint = 20000;

RunSpec BuildSpec(const Dataset& dataset, double multiplier) {
  RunSpec spec;
  spec.name = "service_overload_x" + std::to_string(multiplier);
  spec.seed = 4242;
  spec.datasets.push_back(dataset);
  spec.interval_nanos = 100000000;  // 100 ms.
  spec.boxplot_sample_nanos = 10000000;

  PhaseSpec phase;
  phase.name = "offered";
  phase.dataset_index = 0;
  phase.mix.get = 0.9;
  phase.mix.update = 0.1;
  phase.access = AccessPattern::kZipfian;
  phase.access_param = 0.99;
  phase.arrival = ArrivalPattern::kConstant;
  phase.arrival_rate_qps = kSustainableQps * multiplier;
  phase.num_operations = kOpsPerPoint;
  spec.phases.push_back(phase);

  spec.service.enabled = true;
  spec.service.queue_capacity = 64;
  spec.service.policy = OverloadPolicy::kSloShed;
  spec.service.slo_p99_nanos = 2000000;  // 2 ms response target.
  spec.service.max_shed_fraction = 0.9;
  return spec;
}

struct SweepPoint {
  double multiplier = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double intended_p99_us = 0.0;  ///< Response time from the intended arrival.
  double service_p99_us = 0.0;   ///< Service time from the actual issue.
  double shed_fraction = 0.0;
};

SweepPoint RunPoint(const Dataset& dataset, double multiplier) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.enforce_holdout_once = false;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = BuildSpec(dataset, multiplier);
  Result<RunResult> result = driver.Run(spec, &sut);
  if (!result.ok()) {
    std::fprintf(stderr, "benchmark run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  const ServiceMetrics& sm = result.value().metrics.service;
  SweepPoint point;
  point.multiplier = multiplier;
  point.offered_qps = sm.offered_qps;
  point.achieved_qps = sm.achieved_qps;
  point.intended_p99_us = sm.response_latency.P99() / 1000.0;
  point.service_p99_us = sm.service_latency.P99() / 1000.0;
  point.shed_fraction = sm.shed_fraction;
  return point;
}

int Main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_service_mode.json";
  bench::Header("Open-loop service mode: offered load vs goodput");
  std::printf("virtual service time 100 us => sustainable %.0f qps; "
              "slo_shed, queue 64, SLO 2 ms, shed budget 0.9\n",
              kSustainableQps);

  DatasetOptions dataset_options;
  dataset_options.num_keys = 20000;
  dataset_options.seed = 7;
  const Dataset dataset = GenerateDataset(UniformUnit(), dataset_options);

  std::vector<SweepPoint> points;
  for (const double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    points.push_back(RunPoint(dataset, multiplier));
  }

  std::printf(
      "\n| offered | offered qps | goodput qps | intended p99 (us) | "
      "service p99 (us) | shed %% |\n");
  std::printf(
      "|---------|-------------|-------------|-------------------|"
      "------------------|--------|\n");
  for (const SweepPoint& p : points) {
    std::printf("| %6.1fx | %11.0f | %11.0f | %17.1f | %16.1f | %5.1f%% |\n",
                p.multiplier, p.offered_qps, p.achieved_qps,
                p.intended_p99_us, p.service_p99_us,
                p.shed_fraction * 100.0);
  }
  std::printf("\ncsv: multiplier,offered_qps,achieved_qps,intended_p99_us,"
              "service_p99_us,shed_fraction\n");
  for (const SweepPoint& p : points) {
    std::printf("csv: %.1f,%.1f,%.1f,%.1f,%.1f,%.4f\n", p.multiplier,
                p.offered_qps, p.achieved_qps, p.intended_p99_us,
                p.service_p99_us, p.shed_fraction);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"service_overload\",\n");
  std::fprintf(out, "  \"sustainable_qps\": %.1f,\n", kSustainableQps);
  std::fprintf(out, "  \"ops_per_point\": %llu,\n",
               static_cast<unsigned long long>(kOpsPerPoint));
  std::fprintf(out, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"multiplier\": %.1f, \"offered_qps\": %.1f, "
                 "\"achieved_qps\": %.1f, \"intended_p99_us\": %.1f, "
                 "\"service_p99_us\": %.1f, \"shed_fraction\": %.4f}%s\n",
                 p.multiplier, p.offered_qps, p.achieved_qps,
                 p.intended_p99_us, p.service_p99_us, p.shed_fraction,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace lsbench

int main(int argc, char** argv) { return lsbench::Main(argc, argv); }
