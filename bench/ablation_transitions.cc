// Ablation: transition shape. §V-B of the paper: "a workload can slowly
// transition to another or transition abruptly. The type of transition can
// impact performance and adaptability in non-obvious ways." Runs the same
// two-phase shift with abrupt / linear / cosine blend-ins of varying length
// and reports adjustment-speed and SLA-violation metrics per shape.

#include <cstdio>

#include "bench/bench_common.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets, TransitionKind kind,
                  uint64_t transition_ops) {
  RunSpec spec;
  spec.name = "ablation_transition_" + TransitionKindToString(kind) + "_" +
              std::to_string(transition_ops);
  spec.datasets = datasets;
  spec.seed = 23;
  spec.adjustment_window_ops = 5000;

  PhaseSpec steady;
  steady.name = "steady";
  steady.dataset_index = 0;
  steady.mix.get = 0.7;
  steady.mix.insert = 0.3;
  steady.access = AccessPattern::kZipfian;
  steady.num_operations = bench::ScaledOps(150000);
  spec.phases.push_back(steady);

  PhaseSpec shifted = steady;
  shifted.name = "shifted";
  shifted.dataset_index = 4;
  shifted.transition_in = kind;
  shifted.transition_operations = transition_ops;
  spec.phases.push_back(shifted);
  return spec;
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(150000), 9);

  bench::Header("Ablation — transition shape vs adaptability metrics");
  std::printf("%-10s %-12s %12s %12s %12s %12s\n", "shape", "length",
              "mean_tput", "sla_viol", "adj_excess_s", "retrains");

  struct Config {
    TransitionKind kind;
    uint64_t ops;
  };
  const std::vector<Config> configs = {
      {TransitionKind::kAbrupt, 0},
      {TransitionKind::kLinear, bench::ScaledOps(20000)},
      {TransitionKind::kLinear, bench::ScaledOps(80000)},
      {TransitionKind::kCosine, bench::ScaledOps(20000)},
      {TransitionKind::kCosine, bench::ScaledOps(80000)},
  };
  for (const Config& config : configs) {
    const RunSpec spec = BuildSpec(datasets, config.kind, config.ops);
    LearnedSystemOptions options;
    options.retrain_policy = RetrainPolicy::kDriftTriggered;
    LearnedKvSystem sut(options);
    const RunResult run = bench::MustRun(spec, &sut);
    double adjust = 0.0;
    for (const PhaseMetrics& pm : run.metrics.phases) {
      adjust += pm.adjustment_excess_seconds;
    }
    std::printf("%-10s %-12llu %12.0f %12llu %12.4f %12llu\n",
                TransitionKindToString(config.kind).c_str(),
                static_cast<unsigned long long>(config.ops),
                run.metrics.mean_throughput,
                static_cast<unsigned long long>(
                    run.metrics.total_sla_violations),
                adjust,
                static_cast<unsigned long long>(
                    run.final_sut_stats.retrain_events));
  }
  std::printf(
      "\n=> gradual transitions give drift detection time to fire before\n"
      "   the workload is fully shifted, smoothing the adjustment.\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
