// Reproduces Figure 1d of "Towards a Benchmark for Learned Systems":
// throughput achieved per training cost, for CPU/GPU/TPU training hardware
// profiles, against the step function of a traditional system tuned by a
// paid DBA. Reports the paper's headline metric: the training cost needed
// to outperform the manually tuned system.
//
// Training budget is swept through the RMI's model count and training
// subsampling; training time is measured on the CPU and converted to other
// hardware via the profile's speedup and hourly rate.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "report/report.h"
#include "sut/cost_model.h"
#include "util/clock.h"

namespace lsbench {
namespace {

struct TrainingBudget {
  int num_leaf_models;
  int train_sample_every;
};

/// Measured steady-state read throughput of `sut` on a zipfian workload.
double MeasureThroughput(const RunSpec& spec, SystemUnderTest* sut) {
  const RunResult result = bench::MustRun(spec, sut);
  return result.metrics.mean_throughput;
}

void Main() {
  DatasetOptions data_options;
  data_options.num_keys = bench::ScaledKeys(400000);
  data_options.seed = 11;
  // A hard distribution where model capacity matters.
  const Dataset ds =
      GenerateDataset(ClusteredUnit(40, 0.0015, 13), data_options);

  RunSpec spec;
  spec.name = "fig1d_cost";
  spec.datasets.push_back(ds);
  spec.seed = 2024;
  spec.offline_training = false;  // We time training ourselves below.
  PhaseSpec reads;
  reads.name = "zipf_reads";
  reads.mix.get = 1.0;
  reads.access = AccessPattern::kZipfian;
  reads.num_operations = bench::ScaledOps(400000);
  spec.phases.push_back(reads);

  // Baseline: untuned traditional system.
  BTreeSystem btree;
  const double base_throughput = MeasureThroughput(spec, &btree);
  const DbaCostModel dba = DbaCostModel::Default();

  // Sweep training budgets: longer training = more leaf models fitted on
  // more of the data.
  const std::vector<TrainingBudget> budgets = {
      {16, 256}, {64, 64}, {256, 16}, {1024, 4}, {4096, 1}, {16384, 1}};
  RealClock clock;
  struct Sweep {
    double cpu_seconds;
    double throughput;
    double mean_error;
    uint64_t fit_points;
  };
  std::vector<Sweep> sweeps;
  for (const TrainingBudget& budget : budgets) {
    LearnedSystemOptions options;
    options.retrain_policy = RetrainPolicy::kNever;
    options.rmi.num_leaf_models = budget.num_leaf_models;
    options.rmi.train_sample_every = budget.train_sample_every;
    LearnedKvSystem learned(options);
    // Load, then time the explicit training pass (repeated to de-noise).
    std::vector<KeyValue> pairs;
    pairs.reserve(ds.keys.size());
    for (size_t i = 0; i < ds.keys.size(); ++i) {
      pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
    }
    bench::MustLoad(&learned, pairs);
    const int reps = 3;
    Stopwatch watch(&clock);
    for (int r = 0; r < reps; ++r) {
      const TrainReport report = learned.Train();
      if (!report.status.ok()) {
        std::fprintf(stderr, "train failed: %s\n",
                     report.status.ToString().c_str());
        std::abort();
      }
    }
    const double cpu_seconds = watch.ElapsedSeconds() / reps;
    const double throughput = MeasureThroughput(spec, &learned);
    sweeps.push_back({cpu_seconds, throughput,
                      learned.GetStats().model_error,
                      learned.GetStats().offline_train_items});
  }

  bench::Header("Fig. 1d — throughput per training cost");
  std::printf("traditional baseline (untuned btree): %.0f ops/s\n",
              base_throughput);
  std::printf("DBA model: %s$%.0f/h, tiers to x%.1f at $%.0f total\n", "",
              dba.hourly_rate(), dba.tiers().back().multiplier,
              dba.TotalDollars());
  std::printf("\n%-10s %-14s %-14s %-14s %-14s\n", "budget", "train_cpu_s",
              "throughput", "model_err", "fit_points");
  for (size_t i = 0; i < budgets.size(); ++i) {
    std::printf("%-10d %-14.4f %-14.0f %-14.1f %-14llu\n",
                budgets[i].num_leaf_models, sweeps[i].cpu_seconds,
                sweeps[i].throughput, sweeps[i].mean_error,
                static_cast<unsigned long long>(sweeps[i].fit_points));
  }

  // Scale the cost axis so the sweep spans the DBA tiers: the paper's chart
  // compares *dollar* budgets, and our measured seconds are tiny next to
  // human hours, so we model a production-scale retraining pipeline as
  // 10^6 x the single-index fit (many indexes/partitions/reruns).
  constexpr double kPipelineScale = 1e6;
  std::vector<std::pair<std::string, std::vector<CostPoint>>> curves;
  for (const HardwareProfile& hw :
       {HardwareProfile::Cpu(), HardwareProfile::Gpu(),
        HardwareProfile::Tpu()}) {
    std::vector<CostPoint> points;
    for (const Sweep& s : sweeps) {
      points.push_back(
          {hw.TrainingDollars(s.cpu_seconds * kPipelineScale),
           s.throughput});
    }
    curves.emplace_back("learned_" + hw.name, std::move(points));
  }
  std::printf("\n%s\n",
              RenderCostReport(curves, base_throughput, dba).c_str());
  std::printf("CSV:\n%s\n", CostCurveCsv(curves).c_str());
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
