// Observability overhead: the same driver run with observability fully off
// and fully on (tracing + profiling + metrics), printed as throughput and
// the relative slowdown. The contract the obs layer is held to: hooks are
// cheap enough that turning everything on costs a few percent, and a
// LSBENCH_NO_TRACING build compiles every hook out entirely (use
// bench/micro_index on such a build to confirm the zero-cost claim).

#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/clock.h"

namespace lsbench {
namespace bench {
namespace {

RunSpec MakeSpec(bool observe) {
  RunSpec spec;
  spec.name = observe ? "obs_on" : "obs_off";
  spec.seed = 42;
  spec.interval_nanos = 100'000'000;

  DatasetSourceSpec source;
  source.kind = "uniform";
  source.num_keys = ScaledKeys(200000);
  source.seed = 7;
  spec.dataset_sources.push_back(source);
  DatasetOptions options;
  options.num_keys = source.num_keys;
  options.seed = source.seed;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec phase;
  phase.name = "mixed";
  phase.dataset_index = 0;
  phase.num_operations = ScaledOps(400000);
  phase.mix.get = 0.7;
  phase.mix.insert = 0.2;
  phase.mix.scan = 0.1;
  phase.access = AccessPattern::kZipfian;
  spec.phases.push_back(phase);

  spec.observability.trace = observe;
  spec.observability.profile = observe;
  spec.observability.metrics = observe;
  return spec;
}

double RunAndTime(bool observe, uint64_t* out_ops) {
  RunSpec spec = MakeSpec(observe);
  BTreeSystem sut;
  RealClock clock;
  const int64_t start = clock.NowNanos();
  const RunResult result = MustRun(spec, &sut);
  const int64_t elapsed = clock.NowNanos() - start;
  *out_ops = result.events.size();
  return static_cast<double>(elapsed) / 1e9;
}

int Main() {
  std::printf("# obs_overhead: identical run, observability off vs on\n");
  uint64_t ops_off = 0;
  uint64_t ops_on = 0;
  // Warm-up run to stabilize allocator + cache state before timing.
  uint64_t warmup_ops = 0;
  (void)RunAndTime(false, &warmup_ops);

  const double secs_off = RunAndTime(false, &ops_off);
  const double secs_on = RunAndTime(true, &ops_on);
  const double tput_off = static_cast<double>(ops_off) / secs_off;
  const double tput_on = static_cast<double>(ops_on) / secs_on;
  const double overhead = (secs_on - secs_off) / secs_off * 100.0;

  std::printf("mode,ops,seconds,ops_per_sec\n");
  std::printf("off,%" PRIu64 ",%.4f,%.0f\n", ops_off, secs_off, tput_off);
  std::printf("on,%" PRIu64 ",%.4f,%.0f\n", ops_on, secs_on, tput_on);
  std::printf("# overhead with tracing+profiling+metrics on: %+.2f%%\n",
              overhead);
#if defined(LSBENCH_NO_TRACING)
  std::printf("# built with LSBENCH_NO_TRACING: hooks compiled out; both "
              "modes run the identical instruction stream\n");
#endif
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace lsbench

int main() { return lsbench::bench::Main(); }
