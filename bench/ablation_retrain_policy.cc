// Ablation: the retraining-policy design space of the learned SUT. DESIGN.md
// calls out "when to retrain" as the central design choice behind the
// adaptability results; this bench runs the same shift workload under all
// four policies (never / on-phase-start / delta-threshold / drift-triggered)
// and reports the paper's metric suite for each, via the comparison harness.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/comparison.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "ablation_retrain_policy";
  spec.datasets = datasets;
  spec.seed = 17;
  spec.interval_nanos = 50000000;
  spec.adjustment_window_ops = 5000;

  PhaseSpec steady;
  steady.name = "steady";
  steady.dataset_index = 0;
  steady.mix.get = 0.7;
  steady.mix.insert = 0.3;
  steady.access = AccessPattern::kZipfian;
  steady.num_operations = bench::ScaledOps(200000);
  spec.phases.push_back(steady);

  PhaseSpec shifted = steady;
  shifted.name = "shifted";
  shifted.dataset_index = 4;
  spec.phases.push_back(shifted);
  return spec;
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(150000), 8);
  const RunSpec spec = BuildSpec(datasets);

  std::vector<std::unique_ptr<LearnedKvSystem>> systems;
  for (const RetrainPolicy policy :
       {RetrainPolicy::kNever, RetrainPolicy::kOnPhaseStart,
        RetrainPolicy::kDeltaThreshold, RetrainPolicy::kDriftTriggered}) {
    LearnedSystemOptions options;
    options.retrain_policy = policy;
    options.delta_threshold_fraction = 0.05;
    systems.push_back(std::make_unique<LearnedKvSystem>(options));
  }
  std::vector<SystemUnderTest*> suts;
  for (const auto& s : systems) suts.push_back(s.get());

  DriverOptions driver_options;
  driver_options.enforce_holdout_once = false;
  const Result<ComparisonReport> report =
      CompareSystems(spec, suts, nullptr, driver_options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::abort();
  }

  bench::Header("Ablation — retraining policies under an abrupt shift");
  std::printf("%s\n", RenderComparison(report.value()).c_str());
  std::printf(
      "=> 'never' avoids retraining cost but decays after the shift;\n"
      "   frequent small retrains trade average throughput for smoother\n"
      "   transitions (fewer SLA violations, lower adjustment excess).\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
