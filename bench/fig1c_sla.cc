// Reproduces Figure 1c of "Towards a Benchmark for Learned Systems":
// query-latency bands per reporting interval, split into completions within
// the SLA and violations, plus the adjustment-speed metric (sum of excess
// latency over the first N queries after a distribution change).
//
// The SLA threshold is calibrated from the first phase's latency statistics
// (p99 x 2), as the paper recommends. Expected shape: a burst of violations
// right after the abrupt shift for the retraining learned system, decaying
// as the models adapt; the traditional system shows few violations
// throughout.

#include <cstdio>

#include "bench/bench_common.h"
#include "stats/ascii_chart.h"
#include "report/report.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "fig1c_sla";
  spec.datasets = datasets;
  spec.seed = 555;
  spec.interval_nanos = 20000000;  // 20 ms bands.
  spec.sla.threshold_nanos = 0;    // Calibrate from phase 0 (p99 x 2).
  spec.sla.auto_percentile = 0.99;
  spec.sla.auto_margin = 2.0;
  spec.adjustment_window_ops = 20000;

  // Open-loop arrivals are essential here: during a synchronous retraining
  // stall the offered load keeps arriving, so queueing delay turns the
  // stall into a visible burst of SLA violations (the paper's Fig. 1c).
  PhaseSpec before;
  before.name = "steady_state";
  before.dataset_index = 0;
  before.mix.get = 0.95;
  before.mix.insert = 0.05;
  before.access = AccessPattern::kZipfian;
  before.arrival = ArrivalPattern::kPoisson;
  before.arrival_rate_qps = 400000.0;
  before.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(before);

  PhaseSpec shift;
  shift.name = "abrupt_shift";
  shift.dataset_index = 4;
  shift.mix.get = 0.7;
  shift.mix.insert = 0.3;
  shift.access = AccessPattern::kZipfian;
  shift.arrival = ArrivalPattern::kPoisson;
  shift.arrival_rate_qps = 400000.0;
  shift.num_operations = bench::ScaledOps(300000);
  spec.phases.push_back(shift);
  return spec;
}

void RunSystem(const RunSpec& spec, SystemUnderTest* sut) {
  const RunResult result = bench::MustRun(spec, sut);
  bench::Header("Fig. 1c — " + sut->name());
  std::printf("%s\n", RenderRunSummary(result).c_str());
  std::printf("%s\n", RenderSlaBands(result.metrics.bands,
                                     result.metrics.sla_nanos)
                          .c_str());
  for (const PhaseMetrics& pm : result.metrics.phases) {
    std::printf(
        "phase %d: sla_violations=%llu adjustment_excess=%.4fs\n", pm.phase,
        static_cast<unsigned long long>(pm.sla_violations),
        pm.adjustment_excess_seconds);
  }
  // The SV-D2 extension: more bands, color-coded (here glyph-coded) into
  // <=SLA/2, <=SLA, <=4xSLA, above.
  const int64_t sla = result.metrics.sla_nanos;
  const std::vector<MultiBand> multi = BuildMultiBands(
      result.events, spec.interval_nanos, {sla / 2, sla, 4 * sla});
  std::vector<std::vector<double>> columns;
  for (const MultiBand& band : multi) {
    std::vector<double> col;
    for (uint64_t c : band.counts) col.push_back(static_cast<double>(c));
    columns.push_back(std::move(col));
  }
  std::printf("multi-threshold bands (<=SLA/2, <=SLA, <=4xSLA, above):\n%s",
              RenderMultiBandChart(columns).c_str());
  std::printf("\nCSV:\n%s\n", SlaBandsCsv(result.metrics.bands).c_str());
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(200000), 3);
  const RunSpec spec = BuildSpec(datasets);

  // Drift-triggered retraining: quiet through the steady phase, then
  // synchronous retraining stalls right after the shift.
  LearnedSystemOptions learned_options;
  learned_options.retrain_policy = RetrainPolicy::kDriftTriggered;
  LearnedKvSystem learned(learned_options);
  RunSystem(spec, &learned);

  BTreeSystem btree;
  RunSystem(spec, &btree);
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
