// Reproduces Figure 1a of "Towards a Benchmark for Learned Systems":
// throughput per workload/data distribution, reported as box plots sorted by
// the dissimilarity function phi, with a hold-out (out-of-sample) phase.
//
// Expected shape: the learned system's boxes sit high and tight on phases
// similar to its training distribution (low phi) and degrade as phi grows;
// the hold-out phase shows the out-of-sample gap; the B+-tree's boxes stay
// comparatively flat across phi.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/specialization.h"
#include "report/report.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "fig1a_specialization";
  spec.datasets = datasets;
  spec.seed = 4242;
  spec.interval_nanos = 100000000;      // 100 ms.
  spec.boxplot_sample_nanos = 2000000;  // 2 ms sampling: ~dozens of box
                                        // samples per phase even at speed.

  // Phases 0..4 walk the drift sequence away from the trained distribution;
  // phase 5 is the lognormal hold-out with a different workload mix.
  for (int i = 0; i < 5; ++i) {
    PhaseSpec phase;
    phase.name = "drift" + std::to_string(i);
    phase.dataset_index = i;
    // Reads plus a steady insert stream: the stored data drifts toward the
    // phase's distribution, so a never-retrained learned system accumulates
    // an ever-larger delta as phi grows while the B+-tree absorbs the
    // inserts natively.
    phase.mix.get = 0.7;
    phase.mix.insert = 0.3;
    phase.access = AccessPattern::kZipfian;
    phase.num_operations = bench::ScaledOps(200000);
    spec.phases.push_back(phase);
  }
  PhaseSpec holdout;
  holdout.name = "holdout_lognormal";
  holdout.dataset_index = 5;
  holdout.mix = OperationMix::ScanHeavy();
  holdout.access = AccessPattern::kUniform;
  holdout.num_operations = bench::ScaledOps(50000);
  holdout.holdout = true;
  holdout.scan_length = 50;
  spec.phases.push_back(holdout);
  return spec;
}

void RunSystem(const RunSpec& spec, SystemUnderTest* sut) {
  const RunResult result = bench::MustRun(spec, sut);
  const SpecializationReport report = BuildSpecializationReport(spec, result);
  bench::Header("Fig. 1a — " + sut->name());
  std::printf("%s\n", RenderRunSummary(result).c_str());
  std::printf("%s\n", RenderSpecializationReport(report).c_str());
  std::printf("CSV:\n%s\n", SpecializationCsv(report).c_str());
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(200000), 1);
  const RunSpec spec = BuildSpec(datasets);

  // The learned system trains on the phase-0 distribution and keeps its
  // models (kNever) so specialization vs phi is visible undiluted.
  LearnedSystemOptions learned_options;
  learned_options.retrain_policy = RetrainPolicy::kNever;
  LearnedKvSystem learned(learned_options);
  RunSystem(spec, &learned);

  BTreeSystem btree;
  RunSystem(spec, &btree);
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
