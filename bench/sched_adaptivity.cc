// Learned-scheduler experiment (§II cites RL-based scheduling for data
// processing clusters): mean flow time / slowdown of FIFO, oracle SJF, and
// learned SJF on an overloaded server, before and after an execution-
// environment change (analytics queries suddenly 10x more expensive). The
// learned policy approaches the oracle once trained, mispredicts through
// the shift, and recovers with feedback.

#include <cstdio>

#include "bench/bench_common.h"
#include "sched/scheduler.h"

namespace lsbench {
namespace {

void PrintRow(const std::string& policy, const std::string& phase,
              const ScheduleMetrics& m) {
  std::printf("%-12s %-14s %10.4f %12.4f %12.1f %12.4f\n", policy.c_str(),
              phase.c_str(), m.mean_flow_seconds, m.p99_flow_seconds,
              m.mean_slowdown, m.makespan_seconds);
}

void Main() {
  const size_t jobs_per_phase = bench::ScaledOps(40000);
  // Offered load slightly above capacity so queueing discipline matters.
  const double qps = 18000.0;
  const double base_scale = 20.0;

  bench::Header("Learned scheduling — flow time under an environment shift");
  std::printf("%-12s %-14s %10s %12s %12s %12s\n", "policy", "phase",
              "mean_flow_s", "p99_flow_s", "slowdown", "makespan_s");

  // Phase 1 jobs (training distribution) and phase 2 jobs (analytics 10x).
  const auto phase1 = GenerateJobs(jobs_per_phase, qps, base_scale, 31);
  const double phase2_start =
      phase1.empty() ? 0.0 : phase1.back().arrival_seconds + 0.001;
  auto phase2 = GenerateJobs(jobs_per_phase, qps, base_scale, 32,
                             phase2_start);
  for (Job& job : phase2) {
    if (job.query_class == 2) job.true_service_seconds *= 10.0;
  }

  FifoPolicy fifo;
  OracleSjfPolicy oracle;
  LearnedSjfPolicy learned;

  PrintRow("fifo", "steady", SimulateSchedule(phase1, &fifo));
  PrintRow("sjf_oracle", "steady", SimulateSchedule(phase1, &oracle));
  PrintRow("sjf_learned", "steady", SimulateSchedule(phase1, &learned));

  PrintRow("fifo", "shifted", SimulateSchedule(phase2, &fifo));
  PrintRow("sjf_oracle", "shifted", SimulateSchedule(phase2, &oracle));
  // The learned policy carries its phase-1 model into the shifted phase
  // (stale analytics estimates), then keeps learning within the phase.
  PrintRow("sjf_learned", "shifted", SimulateSchedule(phase2, &learned));
  // A second pass over the shifted distribution: fully re-learned.
  const auto phase3 = GenerateJobs(jobs_per_phase, qps, base_scale, 33);
  auto phase3_shifted = phase3;
  for (Job& job : phase3_shifted) {
    if (job.query_class == 2) job.true_service_seconds *= 10.0;
  }
  PrintRow("sjf_learned", "re-learned", SimulateSchedule(phase3_shifted,
                                                         &learned));

  std::printf(
      "\n=> learned SJF sits between FIFO and the oracle; its gap to the\n"
      "   oracle widens right after the shift and closes again with\n"
      "   execution feedback — the scheduling instance of Fig. 1b/1c.\n");
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
