// The dataset/workload quality tool of paper §V-C: "this tool could
// attribute low marks to uniform data distributions and workloads while
// favoring datasets exhibiting skew or varying query load." Scores the
// library's dataset generators, a drifting sequence, and several workload
// traces, demonstrating the scoring rubric end to end.

#include <cstdio>

#include "bench/bench_common.h"
#include "data/quality.h"

namespace lsbench {
namespace {

void Main() {
  DatasetOptions options;
  options.num_keys = bench::ScaledKeys(100000);
  options.seed = 61;

  bench::Header("Dataset quality scores (0-100, higher = better input)");
  std::printf("%-26s %8s %8s %8s %8s  %s\n", "dataset", "skew", "spacing",
              "drift", "overall", "verdict");

  struct Entry {
    std::string name;
    DataQualityReport report;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"uniform", ScoreDataset(GenerateDataset(UniformUnit(), options))});
  entries.push_back(
      {"gaussian",
       ScoreDataset(GenerateDataset(GaussianUnit(0.5, 0.1), options))});
  entries.push_back(
      {"lognormal",
       ScoreDataset(GenerateDataset(LognormalUnit(0, 2), options))});
  entries.push_back(
      {"pareto",
       ScoreDataset(GenerateDataset(ParetoUnit(1.1), options))});
  entries.push_back(
      {"clustered",
       ScoreDataset(GenerateDataset(ClusteredUnit(8, 0.003, 5), options))});
  entries.push_back({"emails", ScoreDataset(GenerateEmailDataset(
                                   bench::ScaledKeys(30000), 7))});

  const UniformUnit uniform;
  const ClusteredUnit clustered(6, 0.004, 9);
  entries.push_back(
      {"drift(uniform->clustered)",
       ScoreDatasetSequence(
           GenerateDriftSequence(uniform, clustered, 5, options))});
  entries.push_back(
      {"static(uniform x5)",
       ScoreDatasetSequence(
           GenerateDriftSequence(uniform, uniform, 5, options))});

  for (const Entry& e : entries) {
    std::printf("%-26s %8.1f %8.1f %8.1f %8.1f  %s\n", e.name.c_str(),
                e.report.skew_score, e.report.spacing_score,
                e.report.drift_score, e.report.overall,
                e.report.summary.c_str());
  }

  bench::Header("Workload trace quality scores");
  std::printf("%-26s %10s %10s %8s  %s\n", "trace", "load_var",
              "acc_skew", "overall", "verdict");
  struct Trace {
    std::string name;
    std::vector<double> arrivals;
    std::vector<double> access;
  };
  std::vector<Trace> traces;
  traces.push_back({"flat+uniform", std::vector<double>(60, 100.0),
                    std::vector<double>(5000, 1.0)});
  std::vector<double> diurnal;
  for (int i = 0; i < 60; ++i) {
    diurnal.push_back(100.0 * (1.0 + 0.8 * std::sin(i * 0.2)));
  }
  std::vector<double> zipfish;
  for (int i = 0; i < 5000; ++i) {
    zipfish.push_back(1000.0 / (1 + i));
  }
  traces.push_back({"diurnal+zipf", diurnal, zipfish});
  std::vector<double> bursty;
  for (int i = 0; i < 60; ++i) bursty.push_back(i % 12 == 0 ? 2000.0 : 60.0);
  traces.push_back({"bursty+zipf", bursty, zipfish});

  for (const Trace& t : traces) {
    const WorkloadQualityReport r = ScoreWorkloadTrace(t.arrivals, t.access);
    std::printf("%-26s %10.1f %10.1f %8.1f  %s\n", t.name.c_str(),
                r.load_variation_score, r.access_skew_score, r.overall,
                r.summary.c_str());
  }
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
