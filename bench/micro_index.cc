// Micro-benchmarks (google-benchmark) for every KvIndex implementation:
// point lookups, inserts, and scans on a lognormal key set. Supporting data
// for the figure benches — the per-operation costs whose aggregate the
// driver-level metrics report.

#include <benchmark/benchmark.h>

#include <memory>

#include "data/dataset.h"
#include "index/btree.h"
#include "index/lsm.h"
#include "index/skiplist.h"
#include "index/sorted_array.h"
#include "learned/adaptive.h"
#include "learned/pgm.h"
#include "learned/rmi.h"
#include "util/random.h"

namespace lsbench {
namespace {

constexpr size_t kNumKeys = 200000;

const Dataset& BenchDataset() {
  static const Dataset& ds = *new Dataset(GenerateDataset(
      LognormalUnit(0.0, 1.2), {kNumKeys, uint64_t{1} << 44, 97}));
  return ds;
}

std::vector<KeyValue> BenchPairs() {
  const Dataset& ds = BenchDataset();
  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  return pairs;
}

template <typename IndexT>
std::unique_ptr<KvIndex> MakeLoaded() {
  auto index = std::make_unique<IndexT>();
  index->BulkLoad(BenchPairs());
  return index;
}

template <typename IndexT>
void BM_Get(benchmark::State& state) {
  const auto index = MakeLoaded<IndexT>();
  const Dataset& ds = BenchDataset();
  Rng rng(1);
  for (auto _ : state) {
    const Key key = ds.keys[rng.NextBounded(ds.keys.size())];
    benchmark::DoNotOptimize(index->Get(key));
  }
}

template <typename IndexT>
void BM_GetAbsent(benchmark::State& state) {
  const auto index = MakeLoaded<IndexT>();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Get(rng.Next()));
  }
}

template <typename IndexT>
void BM_Insert(benchmark::State& state) {
  auto index = MakeLoaded<IndexT>();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Insert(rng.Next(), 1));
  }
}

template <typename IndexT>
void BM_Scan100(benchmark::State& state) {
  const auto index = MakeLoaded<IndexT>();
  const Dataset& ds = BenchDataset();
  Rng rng(4);
  std::vector<KeyValue> out;
  out.reserve(128);
  for (auto _ : state) {
    out.clear();
    const Key key = ds.keys[rng.NextBounded(ds.keys.size())];
    benchmark::DoNotOptimize(index->Scan(key, 100, &out));
  }
}

#define LSBENCH_INDEX_BENCHES(IndexT)                       \
  BENCHMARK_TEMPLATE(BM_Get, IndexT);                       \
  BENCHMARK_TEMPLATE(BM_GetAbsent, IndexT);                 \
  BENCHMARK_TEMPLATE(BM_Insert, IndexT);                    \
  BENCHMARK_TEMPLATE(BM_Scan100, IndexT)

LSBENCH_INDEX_BENCHES(BTree);
LSBENCH_INDEX_BENCHES(SortedArrayIndex);
LSBENCH_INDEX_BENCHES(SkipList);
LSBENCH_INDEX_BENCHES(RmiIndex);
LSBENCH_INDEX_BENCHES(PgmIndex);
LSBENCH_INDEX_BENCHES(AdaptiveLearnedIndex);
LSBENCH_INDEX_BENCHES(LsmTree);

// Learned-run LSM (Bourbon-style) vs the plain LSM on point reads.
void BM_LsmLearnedGet(benchmark::State& state) {
  LsmOptions options;
  options.learned_runs = true;
  LsmTree lsm(options);
  lsm.BulkLoad(BenchPairs());
  const Dataset& ds = BenchDataset();
  Rng rng(5);
  for (auto _ : state) {
    const Key key = ds.keys[rng.NextBounded(ds.keys.size())];
    benchmark::DoNotOptimize(lsm.Get(key));
  }
}
BENCHMARK(BM_LsmLearnedGet);

void BM_RmiTrain(benchmark::State& state) {
  const auto pairs = BenchPairs();
  RmiOptions options;
  options.num_leaf_models = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RmiIndex rmi(options);
    rmi.BulkLoad(pairs);
    benchmark::DoNotOptimize(rmi.MaxLeafError());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_RmiTrain)->Arg(64)->Arg(1024);

void BM_PgmBuild(benchmark::State& state) {
  const auto pairs = BenchPairs();
  for (auto _ : state) {
    PgmIndex pgm(static_cast<uint32_t>(state.range(0)));
    pgm.BulkLoad(pairs);
    benchmark::DoNotOptimize(pgm.segment_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_PgmBuild)->Arg(16)->Arg(256);

}  // namespace
}  // namespace lsbench

BENCHMARK_MAIN();
