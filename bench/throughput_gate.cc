// Throughput gate for the monomorphized batch executor: sweeps
// scalar-vs-batch op classes across workers {1, 4} and the btree/learned
// SUTs, all driving the same number of *elements* through the stack, and
// writes the tracked BENCH_throughput.json that CI diffs against the
// committed copy (>10% scalar ops/s regression fails the job; the batch
// loop must stay >= 3x scalar ops/s on the btree SUT at workers=4).
//
// Measurement: real clock, closed loop, sequential access over a
// cache-resident dataset — the configuration that minimizes SUT-side cache
// noise, so the numbers isolate harness dispatch cost (what this gate
// tracks) rather than index performance (micro_index's job) and stay
// stable across CI runs. The measured window is the phase-boundary span
// of the run — dataset load before the first boundary and the post-run
// shard merge + metrics pass after the last are excluded, so ops/s is the
// throughput of the dispatch loop itself (generator -> executor -> SUT ->
// event sink). Scalar configs pay the full per-op stack; batch configs
// draw kBatchGet/kBatchPut request units of `batch_size` elements, so the
// per-request costs (stream bookkeeping, retry/breaker/deadline logic,
// engine dispatch) amortize across the batch. Each config reports the best
// of `kRepeats` runs to damp scheduler noise.
//
// Engines: every swept config runs monomorphized — the bare btree/learned
// SUT at workers=1, and the driver's SerializingSut wrapper (itself in the
// monomorphization chain) at workers=4.
//
// Usage: throughput_gate [output.json]   (default BENCH_throughput.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace lsbench {
namespace {

constexpr uint32_t kBatchSize = 256;
constexpr int kRepeats = 3;
// Elements per configuration: scalar runs issue this many ops, batch runs
// issue (elements / kBatchSize) request units of kBatchSize elements.
constexpr uint64_t kElements = 1 << 20;
constexpr size_t kNumKeys = 4096;  // Cache-resident: index cost stays flat.

RunSpec BuildSpec(const Dataset& dataset, bool batch, uint32_t workers) {
  RunSpec spec;
  spec.name = std::string("throughput_gate_") + (batch ? "batch" : "scalar") +
              "_w" + std::to_string(workers);
  spec.seed = 20260808;
  spec.datasets.push_back(dataset);
  spec.offline_training = true;
  spec.interval_nanos = 1000000000;
  spec.execution.workers = workers;

  PhaseSpec phase;
  phase.name = batch ? "batch" : "scalar";
  phase.dataset_index = 0;
  if (batch) {
    phase.mix.get = 0.0;
    phase.mix.batch_get = 0.9;
    phase.mix.batch_put = 0.1;
    phase.batch_size = kBatchSize;
    phase.num_operations = kElements / kBatchSize;
  } else {
    phase.mix.get = 0.9;
    phase.mix.update = 0.1;
    phase.num_operations = kElements;
  }
  phase.access = AccessPattern::kSequential;
  phase.arrival = ArrivalPattern::kClosedLoop;
  spec.phases.push_back(phase);
  return spec;
}

std::unique_ptr<SystemUnderTest> MakeSut(const std::string& kind) {
  if (kind == "btree") return std::make_unique<BTreeSystem>();
  LearnedSystemOptions options;
  return std::make_unique<LearnedKvSystem>(options);
}

struct ConfigResult {
  std::string sut;
  uint32_t workers = 0;
  std::string mode;  ///< "scalar" or "batch".
  uint32_t batch_size = 1;
  uint64_t elements = 0;  ///< Per-element operation count (from metrics).
  double ops_per_sec = 0.0;
  double window_seconds = 0.0;
};

/// Phase-boundary span of the run in real seconds: excludes load before the
/// first phase and merge/metrics after the last.
double BoundaryWindowSeconds(const RunResult& result) {
  int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (const PhaseBoundary& b : result.boundaries) {
    lo = std::min(lo, b.start_nanos);
    hi = std::max(hi, b.end_nanos);
  }
  return lo < hi ? static_cast<double>(hi - lo) * 1e-9 : 0.0;
}

ConfigResult RunConfig(const Dataset& dataset, const std::string& sut_kind,
                       uint32_t workers, bool batch) {
  ConfigResult out;
  out.sut = sut_kind;
  out.workers = workers;
  out.mode = batch ? "batch" : "scalar";
  out.batch_size = batch ? kBatchSize : 1;
  const RunSpec spec = BuildSpec(dataset, batch, workers);
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::unique_ptr<SystemUnderTest> sut = MakeSut(sut_kind);
    const RunResult result = bench::MustRun(spec, sut.get());
    const double window = BoundaryWindowSeconds(result);
    if (window <= 0.0) continue;
    const double ops_per_sec =
        static_cast<double>(result.metrics.total_operations) / window;
    if (ops_per_sec > out.ops_per_sec) {
      out.ops_per_sec = ops_per_sec;
      out.window_seconds = window;
      out.elements = result.metrics.total_operations;
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  bench::Header("Throughput gate: scalar vs monomorphized batch dispatch");
  std::printf("%llu elements/config, batch_size %u, best of %d, "
              "sequential over %zu keys\n",
              static_cast<unsigned long long>(kElements), kBatchSize,
              kRepeats, kNumKeys);

  DatasetOptions dataset_options;
  dataset_options.num_keys = kNumKeys;
  dataset_options.seed = 11;
  const Dataset dataset = GenerateDataset(UniformUnit(), dataset_options);

  std::vector<ConfigResult> configs;
  for (const char* sut_kind : {"btree", "learned"}) {
    for (const uint32_t workers : {1u, 4u}) {
      for (const bool batch : {false, true}) {
        configs.push_back(RunConfig(dataset, sut_kind, workers, batch));
      }
    }
  }

  std::printf("\n| sut     | workers | mode   | batch | elements | Mops/s |\n");
  std::printf("|---------|---------|--------|-------|----------|--------|\n");
  for (const ConfigResult& c : configs) {
    std::printf("| %-7s | %7u | %-6s | %5u | %8llu | %6.2f |\n",
                c.sut.c_str(), c.workers, c.mode.c_str(), c.batch_size,
                static_cast<unsigned long long>(c.elements),
                c.ops_per_sec * 1e-6);
  }

  // Batch-over-scalar speedups per (sut, workers) — the gated ratios.
  struct Speedup {
    std::string sut;
    uint32_t workers = 0;
    double batch_over_scalar = 0.0;
  };
  std::vector<Speedup> speedups;
  for (const ConfigResult& c : configs) {
    if (c.mode != "batch") continue;
    for (const ConfigResult& s : configs) {
      if (s.mode == "scalar" && s.sut == c.sut && s.workers == c.workers &&
          s.ops_per_sec > 0.0) {
        speedups.push_back(
            {c.sut, c.workers, c.ops_per_sec / s.ops_per_sec});
      }
    }
  }
  std::printf("\n| sut     | workers | batch/scalar |\n");
  std::printf("|---------|---------|--------------|\n");
  for (const Speedup& s : speedups) {
    std::printf("| %-7s | %7u | %11.2fx |\n", s.sut.c_str(), s.workers,
                s.batch_over_scalar);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"throughput_gate\",\n");
  std::fprintf(out, "  \"elements_per_config\": %llu,\n",
               static_cast<unsigned long long>(kElements));
  std::fprintf(out, "  \"batch_size\": %u,\n", kBatchSize);
  std::fprintf(out, "  \"repeats\": %d,\n", kRepeats);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < configs.size(); ++i) {
    const ConfigResult& c = configs[i];
    std::fprintf(out,
                 "    {\"sut\": \"%s\", \"workers\": %u, \"mode\": \"%s\", "
                 "\"batch_size\": %u, \"elements\": %llu, "
                 "\"ops_per_sec\": %.1f}%s\n",
                 c.sut.c_str(), c.workers, c.mode.c_str(), c.batch_size,
                 static_cast<unsigned long long>(c.elements), c.ops_per_sec,
                 i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"speedups\": [\n");
  for (size_t i = 0; i < speedups.size(); ++i) {
    const Speedup& s = speedups[i];
    std::fprintf(out,
                 "    {\"sut\": \"%s\", \"workers\": %u, "
                 "\"batch_over_scalar\": %.2f}%s\n",
                 s.sut.c_str(), s.workers, s.batch_over_scalar,
                 i + 1 < speedups.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace lsbench

int main(int argc, char** argv) { return lsbench::Main(argc, argv); }
