// Reproduces Figure 1b of "Towards a Benchmark for Learned Systems":
// cumulative queries completed over time, for a run with an abrupt data/
// workload shift in the middle. The paper's single-value summaries — area
// difference vs an ideal constant-throughput system, and area between two
// systems — are reported alongside the curves.
//
// Expected shape: the drift-triggered learned system stalls briefly after
// the shift (retraining) and then recovers to a steeper slope than the
// traditional system; the never-retrained learned system's slope keeps
// flattening as its delta buffer grows.

#include <cstdio>
#include <utility>

#include "bench/bench_common.h"
#include "report/report.h"

namespace lsbench {
namespace {

RunSpec BuildSpec(const std::vector<Dataset>& datasets) {
  RunSpec spec;
  spec.name = "fig1b_cumulative";
  spec.datasets = datasets;
  spec.seed = 777;
  spec.interval_nanos = 10000000;  // 10 ms resolution for the curve.

  PhaseSpec before;
  before.name = "trained_distribution";
  before.dataset_index = 0;
  before.mix.get = 0.9;
  before.mix.insert = 0.1;
  before.access = AccessPattern::kZipfian;
  before.num_operations = bench::ScaledOps(400000);
  spec.phases.push_back(before);

  PhaseSpec after;
  after.name = "shifted_distribution";
  after.dataset_index = 4;  // Far end of the drift family: abrupt shift.
  after.mix.get = 0.6;
  after.mix.insert = 0.4;  // Insert-heavy after the shift: the frozen
                           // system's delta buffer balloons to a large
                           // fraction of the static data.
  after.access = AccessPattern::kZipfian;
  after.num_operations = bench::ScaledOps(800000);
  after.transition_in = TransitionKind::kAbrupt;
  spec.phases.push_back(after);
  return spec;
}

void Main() {
  const std::vector<Dataset> datasets =
      bench::StandardDriftDatasets(bench::ScaledKeys(200000), 2);
  const RunSpec spec = BuildSpec(datasets);

  LearnedSystemOptions adaptive_options;
  adaptive_options.retrain_policy = RetrainPolicy::kDeltaThreshold;
  adaptive_options.delta_threshold_fraction = 0.05;
  LearnedKvSystem adaptive(adaptive_options);
  const RunResult adaptive_run = bench::MustRun(spec, &adaptive);

  LearnedSystemOptions frozen_options;
  frozen_options.retrain_policy = RetrainPolicy::kNever;
  LearnedKvSystem frozen(frozen_options);
  const RunResult frozen_run = bench::MustRun(spec, &frozen);

  BTreeSystem btree;
  const RunResult btree_run = bench::MustRun(spec, &btree);

  bench::Header("Fig. 1b — cumulative queries over time");
  std::printf("%s\n", RenderRunSummary(adaptive_run).c_str());
  std::printf("%s\n", RenderRunSummary(frozen_run).c_str());
  std::printf("%s\n", RenderRunSummary(btree_run).c_str());

  const std::vector<std::pair<std::string, std::vector<CumulativePoint>>>
      curves = {{adaptive.name(), adaptive_run.metrics.cumulative},
                {frozen.name(), frozen_run.metrics.cumulative},
                {btree.name(), btree_run.metrics.cumulative}};
  std::printf("%s\n", RenderCumulativeComparison(curves).c_str());
  std::printf("area vs ideal (%s): %.3f q-s\n", adaptive.name().c_str(),
              adaptive_run.metrics.area_vs_ideal);
  std::printf("area vs ideal (%s): %.3f q-s\n", frozen.name().c_str(),
              frozen_run.metrics.area_vs_ideal);
  std::printf("area vs ideal (%s): %.3f q-s\n", btree.name().c_str(),
              btree_run.metrics.area_vs_ideal);
  std::printf("area between systems (retraining - frozen): %.3f q-s\n",
              AreaBetweenCurves(adaptive_run.metrics.cumulative,
                                frozen_run.metrics.cumulative));
  std::printf("\nCSV (%s):\n%s\n", adaptive.name().c_str(),
              CumulativeCsv(adaptive_run.metrics.cumulative).c_str());
}

}  // namespace
}  // namespace lsbench

int main() {
  lsbench::Main();
  return 0;
}
