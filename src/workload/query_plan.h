#ifndef LSBENCH_WORKLOAD_QUERY_PLAN_H_
#define LSBENCH_WORKLOAD_QUERY_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "workload/operation.h"

namespace lsbench {

/// Minimal logical plan tree. The paper (§V-D1) proposes estimating
/// workload similarity as the Jaccard similarity "between the sets of all
/// subtrees of the query tree for all queries in the workload"; these trees
/// exist so that similarity is computed on real plan structure instead of
/// opaque operation labels.
struct PlanNode {
  enum class Kind {
    kTableScan,
    kIndexProbe,
    kIndexRange,
    kFilter,
    kLimit,
    kAggregateCount,
    kMutatePut,
    kMutateDelete,
  };

  Kind kind;
  /// Coarse parameter bucket (key-space decile, log2 of scan length, ...)
  /// so that structurally identical queries over very different parameters
  /// hash differently, but nearby parameters collide.
  int param_bucket = 0;
  std::vector<std::unique_ptr<PlanNode>> children;

  PlanNode(Kind k, int bucket) : kind(k), param_bucket(bucket) {}
};

std::string PlanNodeKindToString(PlanNode::Kind kind);

/// Builds the canonical plan tree for an operation. `domain_max` is used to
/// bucket keys into deciles of the key space.
std::unique_ptr<PlanNode> BuildPlan(const Operation& op, Key domain_max);

/// Structural hash of a subtree (kind, bucket, children hashes in order).
uint64_t HashPlanSubtree(const PlanNode& node);

/// Appends the hash of every subtree of `node` (including itself) to `out`.
void CollectSubtreeHashes(const PlanNode& node,
                          std::unordered_set<uint64_t>* out);

/// The Jaccard fingerprint of a workload: the set of all plan-subtree hashes
/// over a sample of its operations.
class WorkloadSignature {
 public:
  void AddOperation(const Operation& op, Key domain_max);

  const std::unordered_set<uint64_t>& subtree_hashes() const {
    return hashes_;
  }
  size_t size() const { return hashes_.size(); }

  /// Jaccard similarity with another signature, in [0, 1].
  double Similarity(const WorkloadSignature& other) const;

 private:
  std::unordered_set<uint64_t> hashes_;
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_QUERY_PLAN_H_
