#include "workload/operation.h"

namespace lsbench {

std::string OpTypeToString(OpType type) {
  switch (type) {
    case OpType::kGet:
      return "get";
    case OpType::kScan:
      return "scan";
    case OpType::kInsert:
      return "insert";
    case OpType::kUpdate:
      return "update";
    case OpType::kDelete:
      return "delete";
    case OpType::kRangeCount:
      return "range_count";
    case OpType::kBatchGet:
      return "batch_get";
    case OpType::kBatchPut:
      return "batch_put";
  }
  return "unknown";
}

OperationMix OperationMix::ReadMostly() {
  OperationMix mix;
  mix.get = 0.95;
  mix.update = 0.05;
  return mix;
}

OperationMix OperationMix::ReadWrite() {
  OperationMix mix;
  mix.get = 0.5;
  mix.update = 0.5;
  return mix;
}

OperationMix OperationMix::ScanHeavy() {
  OperationMix mix;
  mix.get = 0.0;
  mix.scan = 0.95;
  mix.insert = 0.05;
  return mix;
}

OperationMix OperationMix::InsertHeavy() {
  OperationMix mix;
  mix.get = 0.2;
  mix.insert = 0.8;
  return mix;
}

OperationMix OperationMix::Analytic() {
  OperationMix mix;
  mix.get = 0.1;
  mix.range_count = 0.85;
  mix.insert = 0.05;
  return mix;
}

}  // namespace lsbench
