#ifndef LSBENCH_WORKLOAD_GENERATOR_H_
#define LSBENCH_WORKLOAD_GENERATOR_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "workload/operation.h"
#include "workload/query_plan.h"
#include "workload/spec.h"

namespace lsbench {

/// Produces the operation stream for one phase: operation types follow the
/// phase mix, target records follow the access distribution, inserts create
/// fresh keys near the phase's data distribution (so the stored data drifts
/// toward the phase's distribution — the paper's "changing data
/// distributions"). Deterministic given the seed.
class OperationGenerator {
 public:
  /// `dataset` must outlive the generator. `batch_arena_slots` sizes the
  /// ring of batch-payload slots handed out by Next(): a kBatchGet/kBatchPut
  /// op's key/value pointers stay valid until `batch_arena_slots` further
  /// batch draws have occurred. Callers that buffer draws (the admission
  /// queue) must pass their buffering depth + in-flight headroom.
  OperationGenerator(const Dataset* dataset, const PhaseSpec& spec,
                     uint64_t seed, size_t batch_arena_slots = 4);

  OperationGenerator(const OperationGenerator&) = delete;
  OperationGenerator& operator=(const OperationGenerator&) = delete;
  OperationGenerator(OperationGenerator&&) = default;

  /// The next operation in the stream.
  Operation Next();

  const PhaseSpec& spec() const { return spec_; }
  const Dataset* dataset() const { return dataset_; }
  uint64_t generated_count() const { return generated_; }
  size_t inserted_key_count() const { return inserted_count_; }

 private:
  OpType PickType();
  Key PickExistingKey();
  Key MakeFreshKey();

  /// Fills one batch's keys: population hoisted once, ranks drawn through a
  /// single AccessDistribution::FillRanks call (one virtual dispatch per
  /// batch, not per element), then mapped to keys. Draw-for-draw identical
  /// to spec_.batch_size PickExistingKey calls.
  void FillBatchKeys(Key* keys);

  /// Claims the next ring slot and returns its key array; when `values` is
  /// non-null also hands out the parallel value array (kBatchPut). Pure
  /// index arithmetic over the pre-sized ring — never allocates.
  Key* NextBatchSlot(Value** values);

  /// Appends to the inserted-key arena; allocation-free while the slots
  /// sized from the phase's expected insert count hold out.
  void AppendInsertedKey(Key key) {
    if (inserted_count_ < inserted_keys_.size()) {
      inserted_keys_[inserted_count_++] = key;
    } else {
      AppendInsertedKeySlow(key);
    }
  }

  /// Cold path: insert draws exceeded the arena sizing. Grows (allocates);
  /// out of line so the hot-alloc frontier is this function, not Next.
  void AppendInsertedKeySlow(Key key);

  const Dataset* dataset_;
  PhaseSpec spec_;
  Rng rng_;
  std::unique_ptr<AccessDistribution> access_;
  double cumulative_mix_[kNumOpTypes];
  /// Arena: slots [0, inserted_count_) hold keys created by kInsert ops;
  /// the rest is headroom sized in the constructor.
  std::vector<Key> inserted_keys_;
  size_t inserted_count_ = 0;
  /// Batch-payload ring: `batch_arena_slots` slots of `spec.batch_size`
  /// keys (and values, when kBatchPut is in the mix), recycled round-robin.
  /// Sized once in the constructor; Next() never allocates for batches.
  std::vector<Key> batch_keys_;
  std::vector<Value> batch_values_;
  /// Scratch for FillBatchKeys' rank draws (one batch wide; reused).
  std::vector<uint64_t> batch_ranks_;
  size_t batch_arena_slots_ = 0;
  size_t batch_slot_ = 0;
  uint64_t generated_ = 0;
  uint64_t value_counter_ = 0;
};

/// The Jaccard fingerprint of a phase, computed over `sample_ops` sampled
/// operations from a throwaway generator (independent of the live stream).
WorkloadSignature ComputePhaseSignature(const Dataset& dataset,
                                        const PhaseSpec& spec,
                                        size_t sample_ops, uint64_t seed);

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_GENERATOR_H_
