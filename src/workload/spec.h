#ifndef LSBENCH_WORKLOAD_SPEC_H_
#define LSBENCH_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

#include "workload/access_distribution.h"
#include "workload/arrival.h"
#include "workload/operation.h"

namespace lsbench {

/// How a phase takes over from its predecessor (§V-B: "a workload can slowly
/// transition to another or transition abruptly").
enum class TransitionKind {
  kAbrupt,  ///< Next phase starts at full intensity immediately.
  kLinear,  ///< Mixing probability ramps linearly over the transition ops.
  kCosine,  ///< Smooth ease-in/ease-out ramp.
};

std::string TransitionKindToString(TransitionKind kind);

/// Fraction of operations drawn from the *new* phase, given transition
/// progress in [0, 1].
double TransitionMixFraction(TransitionKind kind, double progress);

/// One benchmark phase: a (workload, data distribution) combination plus
/// how it is entered. The run spec (core/) sequences these.
struct PhaseSpec {
  std::string name;
  /// Index into the run's dataset list — the data distribution this phase
  /// queries (and drifts toward, for inserts).
  int dataset_index = 0;
  OperationMix mix;
  AccessPattern access = AccessPattern::kZipfian;
  double access_param = 0.0;  ///< Pattern-specific (theta / hot fraction).
  /// Second pattern-specific parameter: for hotspot, the hot region's start
  /// as a fraction of the rank space — the "hotspot location" knob the drift
  /// synthesizer moves between phases. 0 (the default) keeps the hot region
  /// at the low ranks, matching historical behaviour bit-for-bit.
  double access_param2 = 0.0;
  ArrivalPattern arrival = ArrivalPattern::kClosedLoop;
  double arrival_rate_qps = 0.0;
  /// Diurnal sinusoid shape (ignored by other arrival patterns).
  double arrival_amplitude = 0.8;
  double arrival_period_seconds = 20.0;
  uint64_t num_operations = 10000;
  /// Blend-in from the previous phase (ignored for the first phase).
  TransitionKind transition_in = TransitionKind::kAbrupt;
  uint64_t transition_operations = 0;
  /// Hold-out phases are out-of-sample: the driver never exposes them to
  /// the SUT for training and refuses to run them twice (§V-A).
  bool holdout = false;
  uint32_t scan_length = 100;
  /// Width of kRangeCount predicates as a fraction of the key domain.
  double range_selectivity = 0.001;
  /// Element count of kBatchGet / kBatchPut ops. `1` degrades batch draws
  /// to their scalar equivalents (kGet / kUpdate) with identical RNG
  /// consumption, so a batch_size=1 run is bit-identical to a scalar run.
  uint32_t batch_size = 64;
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_SPEC_H_
