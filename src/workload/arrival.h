#ifndef LSBENCH_WORKLOAD_ARRIVAL_H_
#define LSBENCH_WORKLOAD_ARRIVAL_H_

#include <memory>
#include <string>

#include "util/random.h"
#include "util/status.h"

namespace lsbench {

/// When do queries arrive? Closed-loop issues the next query as soon as the
/// previous finished (classic benchmark mode); the open-loop processes model
/// the paper's "fluctuations in query load", diurnal patterns, and bursts.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  virtual std::string name() const = 0;

  /// Seconds until the next arrival, given the current (virtual) time.
  /// Returns 0 for closed-loop (no think time).
  virtual double NextInterarrivalSeconds(Rng* rng, double now_seconds) = 0;
};

/// Back-to-back issue — throughput is limited only by the SUT.
class ClosedLoopArrival final : public ArrivalProcess {
 public:
  std::string name() const override { return "closed_loop"; }
  double NextInterarrivalSeconds(Rng* rng, double now_seconds) override {
    (void)rng;
    (void)now_seconds;
    return 0.0;
  }
};

/// Fixed-interval arrivals at exactly `rate_qps`: every interarrival is
/// 1/rate seconds, no randomness. The deterministic open-loop process —
/// overload schedules against it are exactly hand-computable, which the
/// service-mode tests rely on.
class ConstantArrival final : public ArrivalProcess {
 public:
  explicit ConstantArrival(double rate_qps);
  std::string name() const override;
  double NextInterarrivalSeconds(Rng* rng, double now_seconds) override;

 private:
  double rate_qps_;
};

/// Poisson arrivals at a constant rate (queries/second).
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double rate_qps);
  std::string name() const override;
  double NextInterarrivalSeconds(Rng* rng, double now_seconds) override;

 private:
  double rate_qps_;
};

/// Sinusoidal rate: rate(t) = base * (1 + amplitude * sin(2*pi*t/period)) —
/// the diurnal pattern, compressed to benchmark time scales.
class DiurnalArrival final : public ArrivalProcess {
 public:
  DiurnalArrival(double base_qps, double amplitude, double period_seconds);
  std::string name() const override;
  double NextInterarrivalSeconds(Rng* rng, double now_seconds) override;

 private:
  double base_qps_;
  double amplitude_;
  double period_seconds_;
};

/// Poisson base load with exponentially-distributed burst episodes at
/// `burst_multiplier` times the base rate.
class BurstyArrival final : public ArrivalProcess {
 public:
  struct Options {
    double base_qps = 1000.0;
    double burst_multiplier = 10.0;
    double mean_burst_seconds = 0.5;
    double mean_gap_seconds = 5.0;
  };

  explicit BurstyArrival(Options options);
  std::string name() const override;
  double NextInterarrivalSeconds(Rng* rng, double now_seconds) override;

 private:
  Options options_;
  double burst_until_ = -1.0;
  double next_burst_at_ = -1.0;
};

enum class ArrivalPattern {
  kClosedLoop,
  kPoisson,
  kDiurnal,
  kBursty,
  kConstant
};

std::string ArrivalPatternToString(ArrivalPattern pattern);

/// Checks the parameters MakeArrivalProcess would run with, without
/// constructing anything: open-loop patterns need a positive finite rate,
/// diurnal needs amplitude in [0, 1) and a positive period. Both the spec
/// parser (which prefixes the offending line) and RunSpec::Validate route
/// through this, so a bad rate is an error Status at parse/validate time
/// instead of a NaN/infinite interarrival at run time.
Status ValidateArrivalParams(ArrivalPattern pattern, double rate_qps,
                             double amplitude, double period_seconds);

/// `rate_qps` ignored for closed loop (0 falls back to 1000 qps for the
/// other patterns — spec-driven runs reject that case in validation).
/// `amplitude`/`period_seconds` shape the diurnal sinusoid and are ignored
/// by every other pattern; bursty uses 10x bursts (defaults suited to
/// benchmark timescales).
std::unique_ptr<ArrivalProcess> MakeArrivalProcess(
    ArrivalPattern pattern, double rate_qps = 0.0, double amplitude = 0.8,
    double period_seconds = 20.0);

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_ARRIVAL_H_
