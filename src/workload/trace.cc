#include "workload/trace.h"

#include <cstdlib>
#include <sstream>

#include "util/csv.h"

namespace lsbench {

std::vector<uint64_t> OperationTrace::TypeHistogram() const {
  std::vector<uint64_t> counts(kNumOpTypes, 0);
  for (const Operation& op : operations_) {
    ++counts[static_cast<int>(op.type)];
  }
  return counts;
}

std::string OperationTrace::ToCsv() const {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"type", "key", "range_end", "scan_length", "value"});
  for (const Operation& op : operations_) {
    csv.WriteRow({OpTypeToString(op.type), CsvWriter::Field(op.key),
                  CsvWriter::Field(op.range_end),
                  CsvWriter::Field(static_cast<uint64_t>(op.scan_length)),
                  CsvWriter::Field(op.value)});
  }
  return out.str();
}

namespace {

Result<OpType> ParseOpType(const std::string& name) {
  for (int i = 0; i < kNumOpTypes; ++i) {
    const OpType type = static_cast<OpType>(i);
    if (OpTypeToString(type) == name) return type;
  }
  return Status::InvalidArgument("unknown op type: " + name);
}

Result<uint64_t> ParseU64(const std::string& field) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: " + field);
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

Result<OperationTrace> OperationTrace::FromCsv(const std::string& csv) {
  const Result<std::vector<std::vector<std::string>>> rows = ParseCsv(csv);
  if (!rows.ok()) return rows.status();
  const auto& parsed = rows.value();
  if (parsed.empty() || parsed[0].size() != 5 || parsed[0][0] != "type") {
    return Status::InvalidArgument("missing trace header");
  }
  OperationTrace trace;
  for (size_t i = 1; i < parsed.size(); ++i) {
    const auto& row = parsed[i];
    if (row.size() != 5) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has wrong arity");
    }
    const Result<OpType> type = ParseOpType(row[0]);
    if (!type.ok()) return type.status();
    Operation op;
    op.type = type.value();
    for (int f = 1; f <= 4; ++f) {
      const Result<uint64_t> v = ParseU64(row[f]);
      if (!v.ok()) return v.status();
      switch (f) {
        case 1:
          op.key = v.value();
          break;
        case 2:
          op.range_end = v.value();
          break;
        case 3:
          op.scan_length = static_cast<uint32_t>(v.value());
          break;
        case 4:
          op.value = v.value();
          break;
      }
    }
    trace.Append(op);
  }
  return trace;
}

}  // namespace lsbench
