#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

OperationGenerator::OperationGenerator(const Dataset* dataset,
                                       const PhaseSpec& spec, uint64_t seed)
    : dataset_(dataset),
      spec_(spec),
      rng_(seed),
      access_(MakeAccessDistribution(spec.access, spec.access_param)) {
  LSBENCH_ASSERT(dataset_ != nullptr);
  LSBENCH_ASSERT(!dataset_->empty());
  const double total = spec_.mix.Total();
  LSBENCH_ASSERT(total > 0.0);
  const double fractions[kNumOpTypes] = {spec_.mix.get,    spec_.mix.scan,
                                         spec_.mix.insert, spec_.mix.update,
                                         spec_.mix.del,    spec_.mix.range_count};
  double acc = 0.0;
  for (int i = 0; i < kNumOpTypes; ++i) {
    acc += fractions[i] / total;
    cumulative_mix_[i] = acc;
  }
  cumulative_mix_[kNumOpTypes - 1] = 1.0;
  // Size the inserted-key arena for the expected number of kInsert draws
  // (binomial mean + ~4 sigma of slack) so steady-state generation never
  // allocates; overshoot spills to the cold slow path.
  const double insert_frac = spec_.mix.insert / total;
  const double expected =
      insert_frac * static_cast<double>(spec_.num_operations +
                                        spec_.transition_operations);
  inserted_keys_.resize(static_cast<size_t>(
      expected + 4.0 * std::sqrt(expected + 1.0) + 16.0));
}

// lsbench-deepcheck: allow(hot-alloc, hot-throw)
void OperationGenerator::AppendInsertedKeySlow(Key key) {
  inserted_keys_.reserve(
      std::max<size_t>(inserted_keys_.size() * 2, 64));
  inserted_keys_.push_back(key);
  inserted_count_ = inserted_keys_.size();
}

OpType OperationGenerator::PickType() {
  const double u = rng_.NextDouble();
  for (int i = 0; i < kNumOpTypes; ++i) {
    if (u < cumulative_mix_[i]) return static_cast<OpType>(i);
  }
  return OpType::kGet;
}

Key OperationGenerator::PickExistingKey() {
  const uint64_t population =
      dataset_->keys.size() + inserted_count_;
  const uint64_t rank = access_->NextRank(&rng_, population);
  if (rank < dataset_->keys.size()) return dataset_->keys[rank];
  return inserted_keys_[rank - dataset_->keys.size()];
}

Key OperationGenerator::MakeFreshKey() {
  // Fresh keys are planted near an existing key of this phase's dataset so
  // that the *stored* distribution drifts toward the phase's data
  // distribution as the phase runs.
  const Key base = dataset_->keys[rng_.NextBounded(dataset_->keys.size())];
  const uint64_t jitter = rng_.NextBounded(1 << 16);
  const Key key = base + jitter;  // Wraps harmlessly on overflow.
  return key;
}

Operation OperationGenerator::Next() {
  ++generated_;
  Operation op;
  op.type = PickType();
  switch (op.type) {
    case OpType::kGet:
      op.key = PickExistingKey();
      break;
    case OpType::kScan:
      op.key = PickExistingKey();
      // Vary scan length geometrically around the configured typical value.
      op.scan_length = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 static_cast<double>(spec_.scan_length) *
                 (0.5 + rng_.NextDouble())));
      break;
    case OpType::kInsert:
      op.key = MakeFreshKey();
      op.value = ++value_counter_;
      AppendInsertedKey(op.key);
      break;
    case OpType::kUpdate:
      op.key = PickExistingKey();
      op.value = ++value_counter_;
      break;
    case OpType::kDelete:
      op.key = PickExistingKey();
      break;
    case OpType::kRangeCount: {
      op.key = PickExistingKey();
      const double width_frac =
          spec_.range_selectivity * (0.5 + rng_.NextDouble());
      const Key domain =
          dataset_->domain_max > 0 ? dataset_->domain_max : ~Key{0};
      const Key width = static_cast<Key>(
          width_frac * static_cast<double>(domain));
      op.range_end =
          op.key > ~Key{0} - width ? ~Key{0} : op.key + width;
      break;
    }
  }
  return op;
}

WorkloadSignature ComputePhaseSignature(const Dataset& dataset,
                                        const PhaseSpec& spec,
                                        size_t sample_ops, uint64_t seed) {
  OperationGenerator gen(&dataset, spec, seed);
  WorkloadSignature sig;
  const Key domain = dataset.domain_max > 0 ? dataset.domain_max : ~Key{0};
  for (size_t i = 0; i < sample_ops; ++i) {
    sig.AddOperation(gen.Next(), domain);
  }
  return sig;
}

}  // namespace lsbench
