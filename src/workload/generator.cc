#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

OperationGenerator::OperationGenerator(const Dataset* dataset,
                                       const PhaseSpec& spec, uint64_t seed,
                                       size_t batch_arena_slots)
    : dataset_(dataset),
      spec_(spec),
      rng_(seed),
      access_(MakeAccessDistribution(spec.access, spec.access_param,
                                     spec.access_param2)),
      batch_arena_slots_(batch_arena_slots) {
  LSBENCH_ASSERT(dataset_ != nullptr);
  LSBENCH_ASSERT(!dataset_->empty());
  if (spec_.batch_size == 0) spec_.batch_size = 1;
  const double total = spec_.mix.Total();
  LSBENCH_ASSERT(total > 0.0);
  const double fractions[kNumOpTypes] = {
      spec_.mix.get,    spec_.mix.scan,        spec_.mix.insert,
      spec_.mix.update, spec_.mix.del,         spec_.mix.range_count,
      spec_.mix.batch_get, spec_.mix.batch_put};
  double acc = 0.0;
  for (int i = 0; i < kNumOpTypes; ++i) {
    acc += fractions[i] / total;
    cumulative_mix_[i] = acc;
  }
  cumulative_mix_[kNumOpTypes - 1] = 1.0;
  // Size the inserted-key arena for the expected number of kInsert draws
  // (binomial mean + ~4 sigma of slack) so steady-state generation never
  // allocates; overshoot spills to the cold slow path.
  const double insert_frac = spec_.mix.insert / total;
  const double expected =
      insert_frac * static_cast<double>(spec_.num_operations +
                                        spec_.transition_operations);
  inserted_keys_.resize(static_cast<size_t>(
      expected + 4.0 * std::sqrt(expected + 1.0) + 16.0));
  // Pre-size the batch-payload ring only when batch ops can actually be
  // drawn at batch_size > 1 (batch_size == 1 degrades to scalar draws and
  // never touches the ring).
  if ((spec_.mix.batch_get > 0.0 || spec_.mix.batch_put > 0.0) &&
      spec_.batch_size > 1) {
    LSBENCH_ASSERT(batch_arena_slots_ > 0);
    batch_keys_.resize(batch_arena_slots_ * spec_.batch_size);
    if (spec_.mix.batch_put > 0.0) {
      batch_values_.resize(batch_arena_slots_ * spec_.batch_size);
    }
    batch_ranks_.resize(spec_.batch_size);
  }
}

// lsbench-deepcheck: allow(hot-alloc, hot-throw)
void OperationGenerator::AppendInsertedKeySlow(Key key) {
  inserted_keys_.reserve(
      std::max<size_t>(inserted_keys_.size() * 2, 64));
  inserted_keys_.push_back(key);
  inserted_count_ = inserted_keys_.size();
}

Key* OperationGenerator::NextBatchSlot(Value** values) {
  LSBENCH_ASSERT(!batch_keys_.empty());
  const size_t slot = batch_slot_;
  batch_slot_ = (batch_slot_ + 1) % batch_arena_slots_;
  const size_t offset = slot * spec_.batch_size;
  if (values != nullptr) {
    LSBENCH_ASSERT(!batch_values_.empty());
    *values = &batch_values_[offset];
  }
  return &batch_keys_[offset];
}

OpType OperationGenerator::PickType() {
  const double u = rng_.NextDouble();
  for (int i = 0; i < kNumOpTypes; ++i) {
    if (u < cumulative_mix_[i]) return static_cast<OpType>(i);
  }
  return OpType::kGet;
}

void OperationGenerator::FillBatchKeys(Key* keys) {
  const uint64_t population = dataset_->keys.size() + inserted_count_;
  const uint32_t count = spec_.batch_size;
  access_->FillRanks(&rng_, population, batch_ranks_.data(), count);
  const Key* base = dataset_->keys.data();
  const uint64_t base_size = dataset_->keys.size();
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t rank = batch_ranks_[i];
    keys[i] = rank < base_size ? base[rank]
                               : inserted_keys_[rank - base_size];
  }
}

Key OperationGenerator::PickExistingKey() {
  const uint64_t population =
      dataset_->keys.size() + inserted_count_;
  const uint64_t rank = access_->NextRank(&rng_, population);
  if (rank < dataset_->keys.size()) return dataset_->keys[rank];
  return inserted_keys_[rank - dataset_->keys.size()];
}

Key OperationGenerator::MakeFreshKey() {
  // Fresh keys are planted near an existing key of this phase's dataset so
  // that the *stored* distribution drifts toward the phase's data
  // distribution as the phase runs.
  const Key base = dataset_->keys[rng_.NextBounded(dataset_->keys.size())];
  const uint64_t jitter = rng_.NextBounded(1 << 16);
  const Key key = base + jitter;  // Wraps harmlessly on overflow.
  return key;
}

Operation OperationGenerator::Next() {
  ++generated_;
  Operation op;
  op.type = PickType();
  switch (op.type) {
    case OpType::kGet:
      op.key = PickExistingKey();
      break;
    case OpType::kScan:
      op.key = PickExistingKey();
      // Vary scan length geometrically around the configured typical value.
      op.scan_length = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 static_cast<double>(spec_.scan_length) *
                 (0.5 + rng_.NextDouble())));
      break;
    case OpType::kInsert:
      op.key = MakeFreshKey();
      op.value = ++value_counter_;
      AppendInsertedKey(op.key);
      break;
    case OpType::kUpdate:
      op.key = PickExistingKey();
      op.value = ++value_counter_;
      break;
    case OpType::kDelete:
      op.key = PickExistingKey();
      break;
    case OpType::kRangeCount: {
      op.key = PickExistingKey();
      const double width_frac =
          spec_.range_selectivity * (0.5 + rng_.NextDouble());
      const Key domain =
          dataset_->domain_max > 0 ? dataset_->domain_max : ~Key{0};
      const Key width = static_cast<Key>(
          width_frac * static_cast<double>(domain));
      op.range_end =
          op.key > ~Key{0} - width ? ~Key{0} : op.key + width;
      break;
    }
    case OpType::kBatchGet: {
      if (spec_.batch_size <= 1) {
        // Degrade to the scalar equivalent with identical RNG consumption
        // (one type draw + one rank draw) so batch_size=1 runs are
        // bit-identical to scalar runs.
        op.type = OpType::kGet;
        op.key = PickExistingKey();
        break;
      }
      Key* keys = NextBatchSlot(nullptr);
      FillBatchKeys(keys);
      op.key = keys[0];
      op.batch_keys = keys;
      op.batch_size = spec_.batch_size;
      break;
    }
    case OpType::kBatchPut: {
      if (spec_.batch_size <= 1) {
        op.type = OpType::kUpdate;
        op.key = PickExistingKey();
        op.value = ++value_counter_;
        break;
      }
      Value* values = nullptr;
      Key* keys = NextBatchSlot(&values);
      FillBatchKeys(keys);
      for (uint32_t i = 0; i < spec_.batch_size; ++i) {
        values[i] = ++value_counter_;
      }
      op.key = keys[0];
      op.batch_keys = keys;
      op.batch_values = values;
      op.batch_size = spec_.batch_size;
      break;
    }
  }
  return op;
}

WorkloadSignature ComputePhaseSignature(const Dataset& dataset,
                                        const PhaseSpec& spec,
                                        size_t sample_ops, uint64_t seed) {
  OperationGenerator gen(&dataset, spec, seed);
  WorkloadSignature sig;
  const Key domain = dataset.domain_max > 0 ? dataset.domain_max : ~Key{0};
  for (size_t i = 0; i < sample_ops; ++i) {
    sig.AddOperation(gen.Next(), domain);
  }
  return sig;
}

}  // namespace lsbench
