#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

ConstantArrival::ConstantArrival(double rate_qps) : rate_qps_(rate_qps) {
  LSBENCH_ASSERT(rate_qps_ > 0.0);
}

std::string ConstantArrival::name() const {
  return "constant(" + FormatDouble(rate_qps_, 0) + "qps)";
}

double ConstantArrival::NextInterarrivalSeconds(Rng* rng,
                                                double now_seconds) {
  (void)rng;
  (void)now_seconds;
  return 1.0 / rate_qps_;
}

PoissonArrival::PoissonArrival(double rate_qps) : rate_qps_(rate_qps) {
  LSBENCH_ASSERT(rate_qps_ > 0.0);
}

std::string PoissonArrival::name() const {
  return "poisson(" + FormatDouble(rate_qps_, 0) + "qps)";
}

double PoissonArrival::NextInterarrivalSeconds(Rng* rng, double now_seconds) {
  (void)now_seconds;
  return rng->NextExponential(rate_qps_);
}

DiurnalArrival::DiurnalArrival(double base_qps, double amplitude,
                               double period_seconds)
    : base_qps_(base_qps),
      amplitude_(amplitude),
      period_seconds_(period_seconds) {
  LSBENCH_ASSERT(base_qps_ > 0.0);
  LSBENCH_ASSERT(amplitude_ >= 0.0 && amplitude_ < 1.0);
  LSBENCH_ASSERT(period_seconds_ > 0.0);
}

std::string DiurnalArrival::name() const {
  return "diurnal(" + FormatDouble(base_qps_, 0) + "qps,amp=" +
         FormatDouble(amplitude_, 2) + ")";
}

double DiurnalArrival::NextInterarrivalSeconds(Rng* rng, double now_seconds) {
  const double phase = 2.0 * M_PI * now_seconds / period_seconds_;
  const double rate = base_qps_ * (1.0 + amplitude_ * std::sin(phase));
  return rng->NextExponential(std::max(rate, 1e-6));
}

BurstyArrival::BurstyArrival(Options options) : options_(options) {
  LSBENCH_ASSERT(options_.base_qps > 0.0);
  LSBENCH_ASSERT(options_.burst_multiplier >= 1.0);
  LSBENCH_ASSERT(options_.mean_burst_seconds > 0.0);
  LSBENCH_ASSERT(options_.mean_gap_seconds > 0.0);
}

std::string BurstyArrival::name() const {
  return "bursty(" + FormatDouble(options_.base_qps, 0) + "qps,x" +
         FormatDouble(options_.burst_multiplier, 1) + ")";
}

double BurstyArrival::NextInterarrivalSeconds(Rng* rng, double now_seconds) {
  if (next_burst_at_ < 0.0) {
    next_burst_at_ =
        now_seconds + rng->NextExponential(1.0 / options_.mean_gap_seconds);
  }
  if (now_seconds >= next_burst_at_ && now_seconds >= burst_until_) {
    burst_until_ =
        now_seconds + rng->NextExponential(1.0 / options_.mean_burst_seconds);
    next_burst_at_ = burst_until_ + rng->NextExponential(
                                        1.0 / options_.mean_gap_seconds);
  }
  const bool in_burst = now_seconds < burst_until_;
  const double rate = in_burst
                          ? options_.base_qps * options_.burst_multiplier
                          : options_.base_qps;
  return rng->NextExponential(rate);
}

std::string ArrivalPatternToString(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kClosedLoop:
      return "closed_loop";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kConstant:
      return "constant";
  }
  return "unknown";
}

Status ValidateArrivalParams(ArrivalPattern pattern, double rate_qps,
                             double amplitude, double period_seconds) {
  if (pattern == ArrivalPattern::kClosedLoop) return Status::OK();
  if (!std::isfinite(rate_qps) || rate_qps <= 0.0) {
    return Status::InvalidArgument(
        "open-loop arrival '" + ArrivalPatternToString(pattern) +
        "' requires a positive arrival rate (arrival_qps), got " +
        FormatDouble(rate_qps, 6));
  }
  if (pattern == ArrivalPattern::kDiurnal) {
    if (!std::isfinite(amplitude) || amplitude < 0.0 || amplitude >= 1.0) {
      return Status::InvalidArgument(
          "diurnal arrival amplitude must be in [0, 1), got " +
          FormatDouble(amplitude, 6));
    }
    if (!std::isfinite(period_seconds) || period_seconds <= 0.0) {
      return Status::InvalidArgument(
          "diurnal arrival period_seconds must be > 0, got " +
          FormatDouble(period_seconds, 6));
    }
  }
  return Status::OK();
}

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(ArrivalPattern pattern,
                                                   double rate_qps,
                                                   double amplitude,
                                                   double period_seconds) {
  switch (pattern) {
    case ArrivalPattern::kClosedLoop:
      return std::make_unique<ClosedLoopArrival>();
    case ArrivalPattern::kPoisson:
      return std::make_unique<PoissonArrival>(rate_qps > 0 ? rate_qps : 1000);
    case ArrivalPattern::kDiurnal:
      return std::make_unique<DiurnalArrival>(rate_qps > 0 ? rate_qps : 1000,
                                              amplitude, period_seconds);
    case ArrivalPattern::kBursty: {
      BurstyArrival::Options options;
      if (rate_qps > 0) options.base_qps = rate_qps;
      return std::make_unique<BurstyArrival>(options);
    }
    case ArrivalPattern::kConstant:
      return std::make_unique<ConstantArrival>(rate_qps > 0 ? rate_qps
                                                            : 1000);
  }
  return std::make_unique<ClosedLoopArrival>();
}

}  // namespace lsbench
