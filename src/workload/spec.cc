#include "workload/spec.h"

#include <algorithm>
#include <cmath>

namespace lsbench {

std::string TransitionKindToString(TransitionKind kind) {
  switch (kind) {
    case TransitionKind::kAbrupt:
      return "abrupt";
    case TransitionKind::kLinear:
      return "linear";
    case TransitionKind::kCosine:
      return "cosine";
  }
  return "unknown";
}

double TransitionMixFraction(TransitionKind kind, double progress) {
  progress = std::clamp(progress, 0.0, 1.0);
  switch (kind) {
    case TransitionKind::kAbrupt:
      return 1.0;
    case TransitionKind::kLinear:
      return progress;
    case TransitionKind::kCosine:
      return 0.5 * (1.0 - std::cos(M_PI * progress));
  }
  return 1.0;
}

}  // namespace lsbench
