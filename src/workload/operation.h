#ifndef LSBENCH_WORKLOAD_OPERATION_H_
#define LSBENCH_WORKLOAD_OPERATION_H_

#include <cstdint>
#include <string>

#include "util/key_value.h"

namespace lsbench {

/// The operation vocabulary of LSBench workloads: YCSB-style point/write ops
/// plus two range flavors that exercise scans and analytic aggregation
/// (where cardinality estimation and access-path choice matter).
enum class OpType {
  kGet = 0,
  kScan,        ///< Ordered scan of `scan_length` entries from `key`.
  kInsert,      ///< Insert a (usually new) key.
  kUpdate,      ///< Overwrite an existing key.
  kDelete,      ///< Remove an existing key.
  kRangeCount,  ///< Analytic: count keys in [key, range_end].
  kBatchGet,    ///< Multi-get of `batch_size` keys (UCSB-style batch class).
  kBatchPut,    ///< Multi-put of `batch_size` key/value pairs.
};

constexpr int kNumOpTypes = 8;

std::string OpTypeToString(OpType type);

/// True for the multi-key op classes that carry a batch payload.
constexpr bool IsBatchOp(OpType type) {
  return type == OpType::kBatchGet || type == OpType::kBatchPut;
}

/// One generated operation. Batch op classes (kBatchGet / kBatchPut) carry
/// their payload as pointers into the generator's pre-sized batch arena;
/// the pointed-to slots stay valid until the generator recycles the slot,
/// which is sized to outlive the admission queue plus in-flight draws (see
/// OperationGenerator). Scalar ops leave the batch fields null/zero.
struct Operation {
  OpType type = OpType::kGet;
  Key key = 0;
  Key range_end = 0;      ///< For kRangeCount.
  uint32_t scan_length = 0;  ///< For kScan.
  Value value = 0;        ///< For kInsert / kUpdate.
  const Key* batch_keys = nullptr;      ///< For kBatchGet / kBatchPut.
  const Value* batch_values = nullptr;  ///< For kBatchPut.
  uint32_t batch_size = 0;              ///< Element count of the batch.
};

/// Number of per-key results an op produces: batch ops expand to one result
/// (and one recorded event) per batch element, scalar ops to one.
constexpr uint32_t OpResultCount(const Operation& op) {
  return IsBatchOp(op.type) && op.batch_size > 0 ? op.batch_size : 1;
}

/// The i-th scalar view of a batch op: kBatchGet elements behave as kGet,
/// kBatchPut elements as kUpdate (upsert). Used by the default scalar-loop
/// ExecuteBatch fallback and by oracles that replay batches element-wise.
inline Operation ScalarViewOf(const Operation& op, uint32_t i) {
  Operation scalar;
  scalar.type = op.type == OpType::kBatchPut ? OpType::kUpdate : OpType::kGet;
  scalar.key = op.batch_keys[i];
  if (op.type == OpType::kBatchPut) scalar.value = op.batch_values[i];
  return scalar;
}

/// Relative frequencies of each operation type. Need not sum to 1; they are
/// normalized. The classic YCSB mixes are provided as factories.
struct OperationMix {
  double get = 1.0;
  double scan = 0.0;
  double insert = 0.0;
  double update = 0.0;
  double del = 0.0;
  double range_count = 0.0;
  double batch_get = 0.0;
  double batch_put = 0.0;

  double Total() const {
    return get + scan + insert + update + del + range_count + batch_get +
           batch_put;
  }

  /// 95% reads / 5% updates (YCSB-B-like).
  static OperationMix ReadMostly();
  /// 50/50 reads and updates (YCSB-A-like).
  static OperationMix ReadWrite();
  /// 95% scans / 5% inserts (YCSB-E-like).
  static OperationMix ScanHeavy();
  /// Insert-dominated ingest with occasional reads.
  static OperationMix InsertHeavy();
  /// Range-count analytics with light writes.
  static OperationMix Analytic();
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_OPERATION_H_
