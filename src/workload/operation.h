#ifndef LSBENCH_WORKLOAD_OPERATION_H_
#define LSBENCH_WORKLOAD_OPERATION_H_

#include <cstdint>
#include <string>

#include "util/key_value.h"

namespace lsbench {

/// The operation vocabulary of LSBench workloads: YCSB-style point/write ops
/// plus two range flavors that exercise scans and analytic aggregation
/// (where cardinality estimation and access-path choice matter).
enum class OpType {
  kGet = 0,
  kScan,        ///< Ordered scan of `scan_length` entries from `key`.
  kInsert,      ///< Insert a (usually new) key.
  kUpdate,      ///< Overwrite an existing key.
  kDelete,      ///< Remove an existing key.
  kRangeCount,  ///< Analytic: count keys in [key, range_end].
};

constexpr int kNumOpTypes = 6;

std::string OpTypeToString(OpType type);

/// One generated operation.
struct Operation {
  OpType type = OpType::kGet;
  Key key = 0;
  Key range_end = 0;      ///< For kRangeCount.
  uint32_t scan_length = 0;  ///< For kScan.
  Value value = 0;        ///< For kInsert / kUpdate.
};

/// Relative frequencies of each operation type. Need not sum to 1; they are
/// normalized. The classic YCSB mixes are provided as factories.
struct OperationMix {
  double get = 1.0;
  double scan = 0.0;
  double insert = 0.0;
  double update = 0.0;
  double del = 0.0;
  double range_count = 0.0;

  double Total() const {
    return get + scan + insert + update + del + range_count;
  }

  /// 95% reads / 5% updates (YCSB-B-like).
  static OperationMix ReadMostly();
  /// 50/50 reads and updates (YCSB-A-like).
  static OperationMix ReadWrite();
  /// 95% scans / 5% inserts (YCSB-E-like).
  static OperationMix ScanHeavy();
  /// Insert-dominated ingest with occasional reads.
  static OperationMix InsertHeavy();
  /// Range-count analytics with light writes.
  static OperationMix Analytic();
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_OPERATION_H_
