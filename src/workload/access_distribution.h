#ifndef LSBENCH_WORKLOAD_ACCESS_DISTRIBUTION_H_
#define LSBENCH_WORKLOAD_ACCESS_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"

namespace lsbench {

/// Chooses *which* record a query touches: a distribution over ranks
/// [0, population). Orthogonal to the data distribution (which decides
/// where keys live in the key space). Population may grow between draws
/// (inserts), so it is a parameter of NextRank rather than of the object.
class AccessDistribution {
 public:
  virtual ~AccessDistribution() = default;

  virtual std::string name() const = 0;

  /// A rank in [0, population). Requires population > 0.
  virtual uint64_t NextRank(Rng* rng, uint64_t population) = 0;

  /// Draws `count` ranks — the batch generator's one-virtual-call-per-batch
  /// draw path. MUST be observably identical to `count` successive NextRank
  /// calls (same RNG consumption, same values); overrides exist purely to
  /// devirtualize the inner loop, and the batch determinism tests pin the
  /// equivalence.
  virtual void FillRanks(Rng* rng, uint64_t population, uint64_t* ranks,
                         uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      ranks[i] = NextRank(rng, population);
    }
  }
};

/// Every record equally likely.
class UniformAccess final : public AccessDistribution {
 public:
  std::string name() const override { return "uniform"; }
  uint64_t NextRank(Rng* rng, uint64_t population) override;
  void FillRanks(Rng* rng, uint64_t population, uint64_t* ranks,
                 uint32_t count) override;
};

/// YCSB-style Zipfian over ranks with parameter theta in (0, 1); rank
/// popularity is scrambled via a hash so hot items are spread across the key
/// space (set scramble=false to keep rank 0 hottest — "latest"-like skew).
class ZipfianAccess final : public AccessDistribution {
 public:
  explicit ZipfianAccess(double theta = 0.99, bool scramble = true);

  std::string name() const override;
  uint64_t NextRank(Rng* rng, uint64_t population) override;

 private:
  /// Recomputes zeta(n, theta) incrementally as the population grows.
  void ExtendZeta(uint64_t n);

  double theta_;
  bool scramble_;
  uint64_t zeta_n_ = 0;
  double zeta_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  double zeta2_ = 0.0;
};

/// `hot_fraction` of the records receive `hot_probability` of the accesses;
/// the rest are uniform over the cold set. `hot_start` places the hot
/// region: the hot ranks are [hot_start * population, hot_start * population
/// + hot_fraction * population), wrapping around the rank space — the
/// "hotspot location" knob the drift synthesizer searches over. The default
/// of 0 reproduces the historical hot-ranks-first behaviour draw-for-draw.
class HotSpotAccess final : public AccessDistribution {
 public:
  HotSpotAccess(double hot_fraction, double hot_probability,
                double hot_start = 0.0);

  std::string name() const override;
  uint64_t NextRank(Rng* rng, uint64_t population) override;

 private:
  double hot_fraction_;
  double hot_probability_;
  double hot_start_;
};

/// Favors the most recently inserted records: rank = population - 1 - Z
/// where Z is Zipfian-distributed — the YCSB "latest" distribution.
class LatestAccess final : public AccessDistribution {
 public:
  explicit LatestAccess(double theta = 0.99);

  std::string name() const override { return "latest"; }
  uint64_t NextRank(Rng* rng, uint64_t population) override;

 private:
  ZipfianAccess zipf_;
};

/// Round-robin sequential sweep (cursor persists across draws).
class SequentialAccess final : public AccessDistribution {
 public:
  std::string name() const override { return "sequential"; }
  uint64_t NextRank(Rng* rng, uint64_t population) override;

 private:
  uint64_t cursor_ = 0;
};

/// Named factory used by workload specs.
enum class AccessPattern {
  kUniform,
  kZipfian,
  kHotSpot,
  kLatest,
  kSequential,
};

std::string AccessPatternToString(AccessPattern pattern);

/// `param` meaning: zipfian/latest -> theta (<=0 selects 0.99);
/// hotspot -> hot_fraction (hot_probability fixed at 0.9); else unused.
/// `param2` meaning: hotspot -> hot region start as a fraction of the rank
/// space (values outside (0, 1) select 0); else unused.
std::unique_ptr<AccessDistribution> MakeAccessDistribution(
    AccessPattern pattern, double param = 0.0, double param2 = 0.0);

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_ACCESS_DISTRIBUTION_H_
