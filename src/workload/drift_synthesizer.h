#ifndef LSBENCH_WORKLOAD_DRIFT_SYNTHESIZER_H_
#define LSBENCH_WORKLOAD_DRIFT_SYNTHESIZER_H_

#include <vector>

#include "data/dataset.h"
#include "stats/drift.h"
#include "util/status.h"
#include "workload/spec.h"

namespace lsbench {

/// Search configuration for the drift-targeted synthesizer.
struct DriftSynthesizerOptions {
  /// Measurement configuration; the synthesizer optimizes the factor this
  /// meter reports, so fitting and verification use the same yardstick.
  DriftMeterOptions meter;
  /// Accept a dial setting once |achieved - target| <= tolerance.
  double tolerance = 0.05;
  /// Stagnation guard: the bisection gives up with a diagnostic after this
  /// many meter evaluations per transition instead of spinning on an
  /// infeasible or non-converging target.
  int max_iterations_per_transition = 32;
};

/// One fitted phase sequence: phases[0] is the (normalized) base phase and
/// phases[i+1] realizes transitions[i]. Parallel vectors carry what each
/// transition actually measured and how hard the search worked.
struct SynthesizedTrajectory {
  std::vector<PhaseSpec> phases;
  std::vector<DriftComponents> achieved;  ///< One per transition.
  std::vector<double> dials;              ///< Search dial in [0, 1].
  std::vector<int> iterations;            ///< Meter evaluations used.
};

/// Fits phase parameters to a requested drift trajectory: given a base
/// phase and targets (e.g. 0.0, 0.3, 0.6), searches a one-dimensional dial
/// per transition — jointly moving the hotspot location (access_param2),
/// the hot fraction, and the operation mix — until the DriftMeter factor
/// between consecutive phases matches each target within tolerance.
///
/// Deterministic: the search is pure bisection and the meter is seeded, so
/// the same inputs always produce the same phases. Fitting happens entirely
/// offline (spec-construction time); the synthesized phases are ordinary
/// PhaseSpecs with zero hot-path cost beyond any other phase.
class DriftSynthesizer {
 public:
  explicit DriftSynthesizer(const DriftSynthesizerOptions& options = {});

  const DriftSynthesizerOptions& options() const { return options_; }

  /// Synthesizes phases.size() == targets.size() + 1 phases over `dataset`.
  /// Errors:
  ///  - InvalidArgument if a target is outside [0, 1] or exceeds the dial's
  ///    maximum achievable drift for its transition (infeasible trajectory);
  ///  - FailedPrecondition if the bisection stagnates (bracket collapsed or
  ///    iteration budget exhausted) before reaching tolerance — the message
  ///    carries the target, best achieved factor, and iterations used.
  Result<SynthesizedTrajectory> Synthesize(
      const Dataset& dataset, const PhaseSpec& base,
      const std::vector<double>& targets) const;

  /// The dial: a copy of `prev` whose hotspot location, hot fraction, and
  /// mix have moved by `t` in [0, 1]. t = 0 returns `prev` unchanged (drift
  /// exactly 0); larger t moves further. Exposed for tests.
  PhaseSpec ApplyDial(const PhaseSpec& prev, double t) const;

 private:
  DriftSynthesizerOptions options_;
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_DRIFT_SYNTHESIZER_H_
