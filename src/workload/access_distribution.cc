#include "workload/access_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

uint64_t UniformAccess::NextRank(Rng* rng, uint64_t population) {
  LSBENCH_ASSERT(population > 0);
  return rng->NextBounded(population);
}

void UniformAccess::FillRanks(Rng* rng, uint64_t population, uint64_t* ranks,
                              uint32_t count) {
  LSBENCH_ASSERT(population > 0);
  // Same draws as `count` NextRank calls, with the virtual dispatch and the
  // per-draw assert hoisted out of the loop.
  for (uint32_t i = 0; i < count; ++i) {
    ranks[i] = rng->NextBounded(population);
  }
}

ZipfianAccess::ZipfianAccess(double theta, bool scramble)
    : theta_(theta), scramble_(scramble) {
  LSBENCH_ASSERT(theta_ > 0.0 && theta_ < 1.0);
  zeta2_ = 1.0 + std::pow(0.5, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
}

std::string ZipfianAccess::name() const {
  return std::string("zipfian(") + FormatDouble(theta_, 2) + ")";
}

void ZipfianAccess::ExtendZeta(uint64_t n) {
  for (uint64_t i = zeta_n_ + 1; i <= n; ++i) {
    zeta_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zeta_n_ = std::max(zeta_n_, n);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(zeta_n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zeta_);
}

uint64_t ZipfianAccess::NextRank(Rng* rng, uint64_t population) {
  LSBENCH_ASSERT(population > 0);
  if (population == 1) return 0;
  if (population > zeta_n_) ExtendZeta(population);
  // Populations can shrink under deletes; the draw below uses the constants
  // of the largest population seen and folds into range, a negligible skew
  // distortion that keeps every draw O(1).
  const double u = rng->NextDouble();
  const double uz = u * zeta_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < zeta2_) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(
        static_cast<double>(zeta_n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }
  rank %= population;
  if (scramble_) {
    // Spread the popularity ranking across the rank space. Fold into the
    // largest power of two <= population rather than population itself:
    // a modulo by the live population would remap every hot rank on every
    // insert, smearing the skew whenever the key set grows.
    SplitMix64 mixer(rank * 0x9e3779b97f4a7c15ULL + 0x1234);
    uint64_t pow2 = population;
    pow2 |= pow2 >> 1;
    pow2 |= pow2 >> 2;
    pow2 |= pow2 >> 4;
    pow2 |= pow2 >> 8;
    pow2 |= pow2 >> 16;
    pow2 |= pow2 >> 32;
    pow2 = (pow2 >> 1) + 1;  // Largest power of two <= population.
    rank = mixer.Next() & (pow2 - 1);
  }
  return rank;
}

HotSpotAccess::HotSpotAccess(double hot_fraction, double hot_probability,
                             double hot_start)
    : hot_fraction_(hot_fraction),
      hot_probability_(hot_probability),
      hot_start_(hot_start) {
  LSBENCH_ASSERT(hot_fraction_ > 0.0 && hot_fraction_ <= 1.0);
  LSBENCH_ASSERT(hot_probability_ >= 0.0 && hot_probability_ <= 1.0);
  LSBENCH_ASSERT(hot_start_ >= 0.0 && hot_start_ < 1.0);
}

std::string HotSpotAccess::name() const {
  std::string out = "hotspot(" + FormatDouble(hot_fraction_, 2) + "," +
                    FormatDouble(hot_probability_, 2);
  if (hot_start_ > 0.0) out += "," + FormatDouble(hot_start_, 2);
  return out + ")";
}

uint64_t HotSpotAccess::NextRank(Rng* rng, uint64_t population) {
  LSBENCH_ASSERT(population > 0);
  const uint64_t hot_count = std::max<uint64_t>(
      1, static_cast<uint64_t>(hot_fraction_ *
                               static_cast<double>(population)));
  // The start offset rotates both the hot and the cold region by the same
  // amount, so the RNG consumption (one NextBool + one NextBounded with the
  // same bound) is identical for every hot_start — and a hot_start of 0
  // reproduces the historical hot-ranks-first draws bit-for-bit.
  const uint64_t start =
      static_cast<uint64_t>(hot_start_ * static_cast<double>(population)) %
      population;
  if (rng->NextBool(hot_probability_)) {
    return (start + rng->NextBounded(hot_count)) % population;
  }
  if (hot_count >= population) return rng->NextBounded(population);
  return (start + hot_count + rng->NextBounded(population - hot_count)) %
         population;
}

LatestAccess::LatestAccess(double theta) : zipf_(theta, /*scramble=*/false) {}

uint64_t LatestAccess::NextRank(Rng* rng, uint64_t population) {
  LSBENCH_ASSERT(population > 0);
  const uint64_t z = zipf_.NextRank(rng, population);
  return population - 1 - z;
}

uint64_t SequentialAccess::NextRank(Rng* rng, uint64_t population) {
  (void)rng;
  LSBENCH_ASSERT(population > 0);
  const uint64_t rank = cursor_ % population;
  ++cursor_;
  return rank;
}

std::string AccessPatternToString(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kUniform:
      return "uniform";
    case AccessPattern::kZipfian:
      return "zipfian";
    case AccessPattern::kHotSpot:
      return "hotspot";
    case AccessPattern::kLatest:
      return "latest";
    case AccessPattern::kSequential:
      return "sequential";
  }
  return "unknown";
}

std::unique_ptr<AccessDistribution> MakeAccessDistribution(
    AccessPattern pattern, double param, double param2) {
  switch (pattern) {
    case AccessPattern::kUniform:
      return std::make_unique<UniformAccess>();
    case AccessPattern::kZipfian:
      return std::make_unique<ZipfianAccess>(param > 0.0 ? param : 0.99);
    case AccessPattern::kHotSpot:
      return std::make_unique<HotSpotAccess>(
          param > 0.0 ? param : 0.1, 0.9,
          param2 > 0.0 && param2 < 1.0 ? param2 : 0.0);
    case AccessPattern::kLatest:
      return std::make_unique<LatestAccess>(param > 0.0 ? param : 0.99);
    case AccessPattern::kSequential:
      return std::make_unique<SequentialAccess>();
  }
  return std::make_unique<UniformAccess>();
}

}  // namespace lsbench
