#include "workload/query_plan.h"

#include <cmath>

#include "stats/similarity.h"

namespace lsbench {

namespace {

int KeyDecile(Key key, Key domain_max) {
  if (domain_max == 0) return 0;
  const double frac =
      static_cast<double>(key) / static_cast<double>(domain_max);
  int decile = static_cast<int>(frac * 10.0);
  if (decile > 9) decile = 9;
  if (decile < 0) decile = 0;
  return decile;
}

int Log2Bucket(uint64_t v) {
  int b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::string PlanNodeKindToString(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kTableScan:
      return "TableScan";
    case PlanNode::Kind::kIndexProbe:
      return "IndexProbe";
    case PlanNode::Kind::kIndexRange:
      return "IndexRange";
    case PlanNode::Kind::kFilter:
      return "Filter";
    case PlanNode::Kind::kLimit:
      return "Limit";
    case PlanNode::Kind::kAggregateCount:
      return "AggregateCount";
    case PlanNode::Kind::kMutatePut:
      return "MutatePut";
    case PlanNode::Kind::kMutateDelete:
      return "MutateDelete";
  }
  return "Unknown";
}

std::unique_ptr<PlanNode> BuildPlan(const Operation& op, Key domain_max) {
  const int key_bucket = KeyDecile(op.key, domain_max);
  switch (op.type) {
    case OpType::kGet: {
      return std::make_unique<PlanNode>(PlanNode::Kind::kIndexProbe,
                                        key_bucket);
    }
    case OpType::kScan: {
      auto range = std::make_unique<PlanNode>(PlanNode::Kind::kIndexRange,
                                              key_bucket);
      auto limit = std::make_unique<PlanNode>(
          PlanNode::Kind::kLimit,
          Log2Bucket(std::max<uint64_t>(1, op.scan_length)));
      limit->children.push_back(std::move(range));
      return limit;
    }
    case OpType::kInsert:
    case OpType::kUpdate: {
      auto probe = std::make_unique<PlanNode>(PlanNode::Kind::kIndexProbe,
                                              key_bucket);
      auto put =
          std::make_unique<PlanNode>(PlanNode::Kind::kMutatePut, key_bucket);
      put->children.push_back(std::move(probe));
      return put;
    }
    case OpType::kDelete: {
      auto probe = std::make_unique<PlanNode>(PlanNode::Kind::kIndexProbe,
                                              key_bucket);
      auto del = std::make_unique<PlanNode>(PlanNode::Kind::kMutateDelete,
                                            key_bucket);
      del->children.push_back(std::move(probe));
      return del;
    }
    case OpType::kRangeCount: {
      // Count(Filter(range, TableScan)) — the shape an optimizer would
      // rewrite into an IndexRange when selective.
      const int width_bucket =
          op.range_end >= op.key
              ? Log2Bucket(std::max<uint64_t>(1, op.range_end - op.key))
              : 0;
      auto scan =
          std::make_unique<PlanNode>(PlanNode::Kind::kTableScan, 0);
      auto filter = std::make_unique<PlanNode>(PlanNode::Kind::kFilter,
                                               width_bucket / 8);
      filter->children.push_back(std::move(scan));
      auto agg = std::make_unique<PlanNode>(PlanNode::Kind::kAggregateCount,
                                            key_bucket);
      agg->children.push_back(std::move(filter));
      return agg;
    }
    case OpType::kBatchGet: {
      // Limit(batch-size bucket) over a probe: a multi-get's plan shape is
      // a bounded set of point lookups.
      auto probe = std::make_unique<PlanNode>(PlanNode::Kind::kIndexProbe,
                                              key_bucket);
      auto limit = std::make_unique<PlanNode>(
          PlanNode::Kind::kLimit,
          Log2Bucket(std::max<uint64_t>(1, op.batch_size)));
      limit->children.push_back(std::move(probe));
      return limit;
    }
    case OpType::kBatchPut: {
      auto probe = std::make_unique<PlanNode>(PlanNode::Kind::kIndexProbe,
                                              key_bucket);
      auto put = std::make_unique<PlanNode>(
          PlanNode::Kind::kMutatePut,
          Log2Bucket(std::max<uint64_t>(1, op.batch_size)));
      put->children.push_back(std::move(probe));
      return put;
    }
  }
  return std::make_unique<PlanNode>(PlanNode::Kind::kTableScan, 0);
}

uint64_t HashPlanSubtree(const PlanNode& node) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = MixHash(h, static_cast<uint64_t>(node.kind) + 1);
  h = MixHash(h, static_cast<uint64_t>(node.param_bucket) + 0x51);
  for (const auto& child : node.children) {
    h = MixHash(h, HashPlanSubtree(*child));
  }
  return h;
}

void CollectSubtreeHashes(const PlanNode& node,
                          std::unordered_set<uint64_t>* out) {
  out->insert(HashPlanSubtree(node));
  for (const auto& child : node.children) {
    CollectSubtreeHashes(*child, out);
  }
}

void WorkloadSignature::AddOperation(const Operation& op, Key domain_max) {
  const std::unique_ptr<PlanNode> plan = BuildPlan(op, domain_max);
  CollectSubtreeHashes(*plan, &hashes_);
}

double WorkloadSignature::Similarity(const WorkloadSignature& other) const {
  return JaccardSimilarity(hashes_, other.hashes_);
}

}  // namespace lsbench
