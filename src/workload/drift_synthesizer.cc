#include "workload/drift_synthesizer.h"

#include <cmath>
#include <string>

#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

namespace {

/// How far the hot region travels across the rank space at full dial.
constexpr double kHotStartTravel = 0.6;
/// Bisection bracket below this width cannot move the measured factor:
/// treat it as stagnation rather than looping to the iteration cap.
constexpr double kMinBracket = 1e-6;

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// The mix the dial steers toward: chosen opposite the phase's current
/// leaning so op-mix divergence grows monotonically with t.
OperationMix OppositeMixAnchor(const OperationMix& mix) {
  const double total = mix.Total();
  const bool read_heavy = total <= 0.0 || mix.get / total >= 0.5;
  OperationMix anchor;
  if (read_heavy) {
    anchor.get = 0.2;
    anchor.update = 0.5;
    anchor.insert = 0.2;
    anchor.scan = 0.1;
  } else {
    anchor.get = 0.9;
    anchor.update = 0.05;
    anchor.insert = 0.05;
    anchor.scan = 0.0;
  }
  return anchor;
}

}  // namespace

DriftSynthesizer::DriftSynthesizer(const DriftSynthesizerOptions& options)
    : options_(options) {
  LSBENCH_ASSERT(options_.tolerance > 0.0 && options_.tolerance <= 1.0);
  LSBENCH_ASSERT(options_.max_iterations_per_transition > 0);
}

PhaseSpec DriftSynthesizer::ApplyDial(const PhaseSpec& prev, double t) const {
  LSBENCH_ASSERT(t >= 0.0 && t <= 1.0);
  PhaseSpec out = prev;
  if (t == 0.0) return out;

  // Hotspot location: the strongest key-distribution mover. Wraps around
  // the rank space so repeated transitions keep making progress.
  double start = prev.access_param2 + kHotStartTravel * t;
  start -= std::floor(start);
  out.access_param2 = start;

  // Hot fraction: widen a narrow hotspot / narrow a wide one, so the shape
  // of the access CDF changes along with its location.
  const double fraction = prev.access_param > 0.0 ? prev.access_param : 0.1;
  const double fraction_anchor = fraction < 0.25 ? 0.5 : 0.05;
  out.access_param = Lerp(fraction, fraction_anchor, t);

  // Operation mix: lerp toward the opposite leaning.
  const OperationMix anchor = OppositeMixAnchor(prev.mix);
  out.mix.get = Lerp(prev.mix.get, anchor.get, t);
  out.mix.scan = Lerp(prev.mix.scan, anchor.scan, t);
  out.mix.insert = Lerp(prev.mix.insert, anchor.insert, t);
  out.mix.update = Lerp(prev.mix.update, anchor.update, t);
  out.mix.del = Lerp(prev.mix.del, anchor.del, t);
  out.mix.range_count = Lerp(prev.mix.range_count, anchor.range_count, t);
  out.mix.batch_get = Lerp(prev.mix.batch_get, anchor.batch_get, t);
  out.mix.batch_put = Lerp(prev.mix.batch_put, anchor.batch_put, t);
  return out;
}

Result<SynthesizedTrajectory> DriftSynthesizer::Synthesize(
    const Dataset& dataset, const PhaseSpec& base,
    const std::vector<double>& targets) const {
  if (dataset.empty()) {
    return Status::InvalidArgument("drift synthesizer: empty dataset");
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!(targets[i] >= 0.0 && targets[i] <= 1.0)) {
      return Status::InvalidArgument(
          "drift synthesizer: target " + std::to_string(i) + " (" +
          FormatDouble(targets[i], 3) + ") outside [0, 1]");
    }
  }

  // The dial only moves hotspot parameters, so normalize the base phase to
  // the hotspot access family; everything else (ops, arrival, batch shape)
  // is preserved.
  SynthesizedTrajectory out;
  PhaseSpec first = base;
  first.access = AccessPattern::kHotSpot;
  if (first.access_param <= 0.0) first.access_param = 0.1;
  out.phases.push_back(first);

  const DriftMeter meter(options_.meter);
  for (size_t i = 0; i < targets.size(); ++i) {
    const PhaseSpec& prev = out.phases.back();
    const PhaseDistributionSample prev_sample =
        meter.SamplePhase(dataset, prev);
    const double target = targets[i];
    int evals = 0;
    auto factor_at = [&](double t) {
      ++evals;
      return meter
          .Measure(prev_sample,
                   meter.SamplePhase(dataset, ApplyDial(prev, t)))
          .factor;
    };

    double best_dial = 0.0;
    DriftComponents best;
    if (target > options_.tolerance) {
      // Feasibility first: the dial's range is [f(0) = 0, f(1)]. A target
      // beyond the reachable maximum fails fast with the measured ceiling
      // instead of bisecting toward a limit it can never reach.
      const double max_factor = factor_at(1.0);
      if (target > max_factor + options_.tolerance) {
        return Status::InvalidArgument(
            "drift synthesizer: transition " + std::to_string(i) +
            " target " + FormatDouble(target, 3) +
            " infeasible; dial maximum is " + FormatDouble(max_factor, 3));
      }
      double lo = 0.0, hi = 1.0;
      double best_err = target;  // f(0) = 0, so the starting error.
      bool converged = std::fabs(max_factor - target) <= options_.tolerance;
      if (converged) {
        best_dial = 1.0;
      } else {
        while (evals < options_.max_iterations_per_transition) {
          if (hi - lo < kMinBracket) break;  // Stagnated: bracket collapsed.
          const double mid = 0.5 * (lo + hi);
          const double f = factor_at(mid);
          const double err = std::fabs(f - target);
          if (err < best_err) {
            best_err = err;
            best_dial = mid;
          }
          if (err <= options_.tolerance) {
            converged = true;
            break;
          }
          (f < target ? lo : hi) = mid;
        }
      }
      if (!converged) {
        return Status::FailedPrecondition(
            "drift synthesizer: transition " + std::to_string(i) +
            " stagnated after " + std::to_string(evals) +
            " evaluations; target " + FormatDouble(target, 3) +
            ", best |error| " + FormatDouble(best_err, 4));
      }
    }
    // Re-measure at the chosen dial so `achieved` reflects the phase that
    // is actually emitted (for target <= tolerance the dial stays at 0 and
    // the transition is a declared-identical repeat).
    PhaseSpec next = ApplyDial(prev, best_dial);
    next.name = first.name.empty()
                    ? "drift_" + std::to_string(i + 1)
                    : first.name + "_d" + std::to_string(i + 1);
    out.achieved.push_back(
        meter.Measure(prev_sample, meter.SamplePhase(dataset, next)));
    out.dials.push_back(best_dial);
    out.iterations.push_back(evals);
    out.phases.push_back(next);
  }
  return out;
}

}  // namespace lsbench
