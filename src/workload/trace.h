#ifndef LSBENCH_WORKLOAD_TRACE_H_
#define LSBENCH_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/operation.h"

namespace lsbench {

/// A recorded operation stream. Traces serve two benchmark needs the paper
/// raises: (1) *reproducibility* — the exact stream a SUT saw can be
/// archived next to the results and replayed against another system, and
/// (2) *benchmark-as-a-service* — a hidden hold-out trace can be shipped to
/// the evaluator without shipping its generator.
class OperationTrace {
 public:
  void Append(const Operation& op) { operations_.push_back(op); }

  const std::vector<Operation>& operations() const { return operations_; }
  size_t size() const { return operations_.size(); }
  bool empty() const { return operations_.empty(); }
  void Clear() { operations_.clear(); }

  /// Per-type counts (indexed by OpType).
  std::vector<uint64_t> TypeHistogram() const;

  /// Serializes to CSV: type,key,range_end,scan_length,value.
  std::string ToCsv() const;

  /// Parses a trace produced by ToCsv (header required).
  static Result<OperationTrace> FromCsv(const std::string& csv);

 private:
  std::vector<Operation> operations_;
};

}  // namespace lsbench

#endif  // LSBENCH_WORKLOAD_TRACE_H_
