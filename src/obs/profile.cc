#include "obs/profile.h"

#include <algorithm>

namespace lsbench {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kLoad:
      return "load";
    case Stage::kTrain:
      return "train";
    case Stage::kGenerate:
      return "generate";
    case Stage::kPace:
      return "pace";
    case Stage::kExecute:
      return "execute";
    case Stage::kBackoff:
      return "backoff";
    case Stage::kRecord:
      return "record";
    case Stage::kMerge:
      return "merge";
    case Stage::kMetrics:
      return "metrics";
  }
  return "unknown";
}

void MergeStageBreakdown(StageBreakdown* target, const StageBreakdown& shard) {
  for (const PhaseStageBreakdown& phase : shard) {
    auto it = std::lower_bound(
        target->begin(), target->end(), phase.phase,
        [](const PhaseStageBreakdown& entry, int32_t key) {
          return entry.phase < key;
        });
    if (it == target->end() || it->phase != phase.phase) {
      it = target->insert(it, PhaseStageBreakdown{});
      it->phase = phase.phase;
    }
    for (size_t i = 0; i < kNumStages; ++i) {
      it->stages[i].total_nanos += phase.stages[i].total_nanos;
      it->stages[i].samples += phase.stages[i].samples;
    }
  }
}

PhaseStageBreakdown& StageProfiler::AccumFor(int32_t phase) {
  // Phases arrive monotonically (run-level, then 0, 1, ...), so the match
  // is almost always the last entry.
  if (!phases_.empty() && phases_.back().phase == phase) {
    return phases_.back();
  }
  for (PhaseStageBreakdown& entry : phases_) {
    if (entry.phase == phase) return entry;
  }
  phases_.emplace_back();
  phases_.back().phase = phase;
  return phases_.back();
}

StageBreakdown StageProfiler::Breakdown() const {
  StageBreakdown sorted = phases_;
  std::sort(sorted.begin(), sorted.end(),
            [](const PhaseStageBreakdown& a, const PhaseStageBreakdown& b) {
              return a.phase < b.phase;
            });
  // Drop phases where nothing was charged — keeps exports stable across
  // set_phase calls that saw no instrumented work. Samples, not nanos: a
  // virtual-clock stage can legitimately charge zero time to real samples.
  sorted.erase(std::remove_if(sorted.begin(), sorted.end(),
                              [](const PhaseStageBreakdown& entry) {
                                uint64_t samples = 0;
                                for (const StageAccum& accum : entry.stages) {
                                  samples += accum.samples;
                                }
                                return samples == 0;
                              }),
               sorted.end());
  return sorted;
}

}  // namespace lsbench
