#ifndef LSBENCH_OBS_METRICS_REGISTRY_H_
#define LSBENCH_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/atomic.h"
#include "util/status.h"
#include "util/sync.h"

namespace lsbench {

/// Monotone event tally. Increments are lock-free (relaxed atomics): a
/// counter is a pure accumulator, never used for cross-thread ordering, and
/// per-shard counters are merged deterministically after the run.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.Add(delta); }
  uint64_t value() const { return value_.Load(); }

 private:
  Atomic<uint64_t> value_{0};
};

/// Last-written signed level (queue depth, resident bytes, breaker state).
/// Shard merge sums gauges, which is the right semantics for per-worker
/// levels (total in-flight = sum of per-worker in-flight).
class Gauge {
 public:
  void Set(int64_t value) { value_.Store(value); }
  void Add(int64_t delta) { value_.Add(delta); }
  int64_t value() const { return value_.Load(); }

 private:
  Atomic<int64_t> value_{0};
};

/// Plain-data snapshot of a fixed-bucket histogram. `bounds` are ascending
/// inclusive upper bounds; `counts` has bounds.size()+1 entries, the last
/// being the saturation bucket (samples above the largest bound). Unlike
/// util/histogram.h's log-bucketed Histogram, bucket layout is part of the
/// identity: shards merge only when their bounds match exactly, so a merged
/// histogram is bit-identical to recording all samples into one.
struct HistogramSnapshot {
  std::vector<int64_t> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< Meaningful only when count > 0.
  int64_t max = 0;  ///< Meaningful only when count > 0.

  /// Accumulates `other` into this snapshot. Empty shards merge into
  /// anything (their bounds don't matter); otherwise the bucket layouts
  /// must match or the merge is refused with InvalidArgument — silently
  /// summing misaligned buckets is exactly the Fig. 1b-skewing bug class
  /// the tests pin.
  Status MergeFrom(const HistogramSnapshot& other);

  /// Upper bound of the bucket holding quantile q in [0, 1]; min/max exact
  /// at the extremes. Returns 0 when empty.
  int64_t Quantile(double q) const;

  bool empty() const { return count == 0; }
};

/// Default latency bucket layout: 1us..~16s in power-of-two microsecond
/// steps. Shared by every registry so shards always merge.
std::vector<int64_t> DefaultLatencyBoundsNanos();

/// Thread-safe fixed-bucket histogram recorder. Record() takes a Mutex —
/// histograms are for coarse events (retrain durations, backoff waits),
/// not the per-op hot path, where the driver already has the log-bucketed
/// util/histogram.h accumulators.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<int64_t> bounds);

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  mutable Mutex mu_;
  HistogramSnapshot snap_ LSBENCH_GUARDED_BY(mu_);
};

/// Plain-data export of a registry: sorted name→value vectors, so report
/// iteration order is deterministic by construction.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Accumulates another shard's snapshot: counters and gauges sum,
  /// histograms bucket-merge (refused on bound mismatch). Names present in
  /// only one shard pass through — workers need not register identical
  /// metric sets.
  Status MergeFrom(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Owner of named instruments. One registry per worker (plus one for the
/// driver), merged after the run like event shards. Get* registers on first
/// use and returns a stable pointer — instruments never move once created —
/// so components hold raw Counter*/Gauge* across the run and increment
/// without ever touching the registry lock again. Lookup itself is
/// Mutex-guarded so Get* is safe from any thread, but the intended
/// discipline is: resolve instruments at bind time, increment on the hot
/// path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Uses DefaultLatencyBoundsNanos() when `bounds` is empty. The layout is
  /// fixed on first registration; later calls with a different layout get
  /// the existing instrument (layouts are identity, not configuration).
  FixedHistogram* GetHistogram(const std::string& name,
                               std::vector<int64_t> bounds = {});

  /// Deterministic (name-sorted) export of every registered instrument.
  MetricsSnapshot Snapshot() const;

 private:
  mutable Mutex mu_;
  // std::map: pointer-stable values and sorted iteration for Snapshot().
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LSBENCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      LSBENCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_
      LSBENCH_GUARDED_BY(mu_);
};

/// Merges per-worker snapshots into one. Shards may carry disjoint metric
/// name sets; histogram bound mismatches surface as InvalidArgument.
Result<MetricsSnapshot> MergeMetricsShards(
    const std::vector<MetricsSnapshot>& shards);

}  // namespace lsbench

#endif  // LSBENCH_OBS_METRICS_REGISTRY_H_
