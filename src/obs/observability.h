#ifndef LSBENCH_OBS_OBSERVABILITY_H_
#define LSBENCH_OBS_OBSERVABILITY_H_

#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace lsbench {

/// Per-run observability configuration, settable from the [observability]
/// spec section and forced on by --trace-out. Deliberately excluded from
/// RunSpec::StructuralHash and pinned by test to never perturb the op
/// stream: observing a run must not change it.
struct ObservabilitySpec {
  bool trace = false;    ///< Record LSBENCH_TRACE_SPAN shards.
  bool profile = false;  ///< Record per-phase stage-time breakdown.
  bool metrics = true;   ///< Export the metrics registry snapshot.

  bool Enabled() const { return trace || profile || metrics; }
};

inline bool operator==(const ObservabilitySpec& a,
                       const ObservabilitySpec& b) {
  return a.trace == b.trace && a.profile == b.profile &&
         a.metrics == b.metrics;
}

/// One worker's observability instruments, sharded exactly like its
/// EventSink: single-writer during the run, merged deterministically after.
/// Tracer and profiler stay disabled (no-op) unless the driver arms them.
struct WorkerObs {
  explicit WorkerObs(uint32_t worker) : tracer(worker) {}

  Tracer tracer;
  StageProfiler profiler;
  MetricsRegistry registry;
};

/// Merged post-run observability output, attached to RunResult.
struct ObsReport {
  ObservabilitySpec spec;
  TraceStream trace;         ///< Merged, (start, worker, seq)-ordered.
  MetricsSnapshot metrics;   ///< Shard-merged registry export.
  StageBreakdown stages;     ///< Shard-merged per-phase stage times.

  bool empty() const {
    return trace.empty() && metrics.empty() && stages.empty();
  }
};

/// Canonical --trace-out payload: a header, the merged span stream, the
/// stage breakdown, and the metrics snapshot, all in deterministic order.
/// Byte-identical across runs whenever the underlying streams are — the
/// file the CI trace-determinism job diffs.
std::string RenderTraceFile(const ObsReport& report,
                            const std::string& run_name,
                            const std::string& sut_name, uint32_t workers);

}  // namespace lsbench

#endif  // LSBENCH_OBS_OBSERVABILITY_H_
