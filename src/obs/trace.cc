#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace lsbench {
namespace {

/// Strict weak ordering by (start, worker, seq) — the event-shard merge
/// discipline. Names deliberately do not participate: provenance alone
/// determines the order, names are payload.
bool SpanBefore(const TraceSpan& a, const TraceSpan& b) {
  if (a.start_nanos != b.start_nanos) return a.start_nanos < b.start_nanos;
  if (a.worker != b.worker) return a.worker < b.worker;
  return a.seq < b.seq;
}

}  // namespace

// lsbench-deepcheck: allow(hot-alloc, hot-throw)
void Tracer::RecordSlow(const TraceSpan& span) {
  // Only reached when Reserve undersized the arena. Doubling keeps repeat
  // spills amortized.
  spans_.reserve(std::max<size_t>(spans_.size() * 2, 64));
  spans_.push_back(span);
  used_ = spans_.size();
}

TraceStream MergeTraceShards(std::vector<TraceStream> shards) {
  if (shards.empty()) return {};
  if (shards.size() == 1) return std::move(shards[0]);
  size_t total = 0;
  for (const TraceStream& shard : shards) total += shard.size();
  TraceStream merged;
  merged.reserve(total);
  for (TraceStream& shard : shards) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  // Each shard is already in (start, seq) order for its single worker, so a
  // k-way merge would do; stable_sort keeps the code aligned with
  // MergeEventShards and the cost is off the hot path.
  std::stable_sort(merged.begin(), merged.end(), SpanBefore);
  return merged;
}

std::string SerializeTrace(const TraceStream& trace) {
  std::ostringstream out;
  out << "# lsbench-trace v1 spans=" << trace.size() << "\n";
  for (const TraceSpan& span : trace) {
    out << "span " << span.start_nanos << ' ' << span.end_nanos << ' '
        << span.phase << ' ' << span.worker << ' ' << span.seq << ' '
        << span.name << '\n';
  }
  return out.str();
}

uint64_t HashTrace(const TraceStream& trace) {
  const std::string text = SerializeTrace(trace);
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;  // FNV-1a prime.
  }
  return hash;
}

}  // namespace lsbench
