#ifndef LSBENCH_OBS_PROFILE_H_
#define LSBENCH_OBS_PROFILE_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/annotate.h"
#include "util/clock.h"

namespace lsbench {

/// The instrumented pipeline stages. Per-phase stage-time totals are the
/// report's "where did the time go" breakdown — the paper's Lesson-1 point
/// that a single throughput number hides generation vs execution vs
/// retraining time.
enum class Stage : uint8_t {
  kLoad = 0,      ///< Dataset load into the SUT (run-level).
  kTrain,         ///< Offline training before phase 0 (run-level).
  kGenerate,      ///< WorkloadStream::Next — operation generation.
  kPace,          ///< Arrival pacing (virtual jump or spin-wait).
  kExecute,       ///< SUT execute attempts inside ResilientExecutor.
  kBackoff,       ///< Retry backoff waits.
  kRecord,        ///< EventSink::Record append.
  kMerge,         ///< Post-run shard merge (run-level).
  kMetrics,       ///< Post-run metrics computation (run-level).
};

inline constexpr size_t kNumStages = 9;

std::string_view StageName(Stage stage);

/// Accumulated wall (or virtual) time for one stage within one phase.
struct StageAccum {
  int64_t total_nanos = 0;
  uint64_t samples = 0;
};

/// One phase's stage-time totals. Phase kRunLevelPhase holds run-scoped
/// stages (load/train/merge/metrics) that precede or follow all phases.
struct PhaseStageBreakdown {
  static constexpr int32_t kRunLevelPhase = -1;

  int32_t phase = kRunLevelPhase;
  std::array<StageAccum, kNumStages> stages{};

  int64_t TotalNanos() const {
    int64_t total = 0;
    for (const StageAccum& accum : stages) total += accum.total_nanos;
    return total;
  }
};

/// Per-phase breakdowns sorted by phase (run-level entry first).
using StageBreakdown = std::vector<PhaseStageBreakdown>;

/// Accumulates `shard` into `target`, summing stage totals phase-by-phase.
/// Both inputs and the output are sorted by phase.
void MergeStageBreakdown(StageBreakdown* target, const StageBreakdown& shard);

/// One worker's (or the driver's) stage-time accumulator. Single-writer,
/// no synchronization — same sharding discipline as EventSink/Tracer.
/// Disabled until Bind(); when disabled, Add() and timers are no-ops, and
/// under LSBENCH_NO_TRACING the LSBENCH_PROFILE_STAGE macro removes the
/// hook entirely.
class StageProfiler {
 public:
  StageProfiler() = default;

  /// Arms the profiler against `clock` (the worker's private virtual clock
  /// in simulation mode). `clock` must outlive the profiler. Creates the
  /// current phase's accumulator eagerly so Add never has to.
  void Bind(const Clock* clock) {
    clock_ = clock;
    current_ = &AccumFor(phase_);
  }

  bool enabled() const { return clock_ != nullptr; }
  int64_t NowNanos() const { return clock_->NowNanos(); }

  /// Phase charged by subsequent Add() calls; kRunLevelPhase for run-scoped
  /// work outside any phase. Phase transitions are cold: the accumulator
  /// entry (the only allocation in this class) is created here, keeping
  /// Add allocation-free.
  void set_phase(int32_t phase) {
    phase_ = phase;
    if (enabled()) current_ = &AccumFor(phase);
  }
  int32_t phase() const { return phase_; }

  /// Charges `nanos` to `stage` in the current phase. No-op while disabled.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void Add(Stage stage, int64_t nanos) {
    if (current_ == nullptr) return;
    StageAccum& accum = current_->stages[static_cast<size_t>(stage)];
    accum.total_nanos += nanos;
    accum.samples++;
  }

  /// Sorted-by-phase export (run-level entry first when present).
  StageBreakdown Breakdown() const;

 private:
  PhaseStageBreakdown& AccumFor(int32_t phase);

  const Clock* clock_ = nullptr;
  int32_t phase_ = PhaseStageBreakdown::kRunLevelPhase;
  /// Accumulator for the current phase; null until Bind. Refreshed on every
  /// phase transition — AccumFor may reallocate phases_, so this is the
  /// only cached pointer into it.
  PhaseStageBreakdown* current_ = nullptr;
  // Unsorted accumulation order (phases arrive monotonically anyway);
  // Breakdown() sorts on export.
  std::vector<PhaseStageBreakdown> phases_;
};

/// RAII stage timer: charges the elapsed time between construction and
/// destruction to (profiler's current phase, stage). Null or unbound
/// profiler → both ends are a branch and nothing else.
class StageTimer {
 public:
  StageTimer(StageProfiler* profiler, Stage stage)
      : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                             : nullptr),
        stage_(stage),
        start_nanos_(profiler_ != nullptr ? profiler_->NowNanos() : 0) {}

  ~StageTimer() {
    if (profiler_ != nullptr) {
      profiler_->Add(stage_, profiler_->NowNanos() - start_nanos_);
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageProfiler* profiler_;
  Stage stage_;
  int64_t start_nanos_;
};

}  // namespace lsbench

// Scoped profiling hook. `profiler` is a `StageProfiler*` (may be null).
// Compiled out entirely under LSBENCH_NO_TRACING.
#if defined(LSBENCH_NO_TRACING)
#define LSBENCH_PROFILE_STAGE(profiler, stage) \
  do {                                         \
  } while (false)
#else
#define LSBENCH_PROFILE_STAGE_CONCAT2(a, b) a##b
#define LSBENCH_PROFILE_STAGE_CONCAT(a, b) LSBENCH_PROFILE_STAGE_CONCAT2(a, b)
#define LSBENCH_PROFILE_STAGE(profiler, stage)         \
  ::lsbench::StageTimer LSBENCH_PROFILE_STAGE_CONCAT(  \
      lsbench_stage_, __LINE__)((profiler), (stage))
#endif

#endif  // LSBENCH_OBS_PROFILE_H_
