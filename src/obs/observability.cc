#include "obs/observability.h"

#include <sstream>

namespace lsbench {

std::string RenderTraceFile(const ObsReport& report,
                            const std::string& run_name,
                            const std::string& sut_name, uint32_t workers) {
  std::ostringstream out;
  out << "# lsbench-trace v1\n";
  out << "# run=" << run_name << " sut=" << sut_name << " workers=" << workers
      << "\n";
  out << "# spans are run-relative nanos: start end phase worker seq name\n";
  for (const TraceSpan& span : report.trace) {
    out << "span " << span.start_nanos << ' ' << span.end_nanos << ' '
        << span.phase << ' ' << span.worker << ' ' << span.seq << ' '
        << span.name << '\n';
  }
  for (const PhaseStageBreakdown& phase : report.stages) {
    for (size_t i = 0; i < kNumStages; ++i) {
      const StageAccum& accum = phase.stages[i];
      if (accum.samples == 0) continue;
      out << "stage " << phase.phase << ' '
          << StageName(static_cast<Stage>(i)) << ' ' << accum.total_nanos
          << ' ' << accum.samples << '\n';
    }
  }
  for (const auto& [name, value] : report.metrics.counters) {
    out << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : report.metrics.gauges) {
    out << "gauge " << name << ' ' << value << '\n';
  }
  for (const auto& [name, hist] : report.metrics.histograms) {
    out << "hist " << name << " count=" << hist.count << " sum=" << hist.sum;
    if (hist.count > 0) {
      out << " min=" << hist.min << " max=" << hist.max
          << " p50=" << hist.Quantile(0.5) << " p99=" << hist.Quantile(0.99);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace lsbench
