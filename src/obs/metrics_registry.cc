#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>

namespace lsbench {

Status HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) return Status::OK();
  if (count == 0 && bounds.empty()) {
    // Uninitialized target adopts the source layout wholesale.
    *this = other;
    return Status::OK();
  }
  if (bounds != other.bounds) {
    return Status::InvalidArgument(
        "histogram shard merge: bucket bounds mismatch (" +
        std::to_string(bounds.size()) + " vs " +
        std::to_string(other.bounds.size()) + " bounds)");
  }
  if (counts.size() != other.counts.size()) {
    return Status::InvalidArgument(
        "histogram shard merge: bucket count mismatch");
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  return Status::OK();
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      if (i < bounds.size()) return std::min(bounds[i], max);
      return max;  // Saturation bucket: report the observed max.
    }
  }
  return max;
}

std::vector<int64_t> DefaultLatencyBoundsNanos() {
  // 1us, 2us, 4us, ... doubling for 24 steps (~16.8s), in nanoseconds.
  std::vector<int64_t> bounds;
  bounds.reserve(24);
  int64_t bound = 1000;
  for (int i = 0; i < 24; ++i) {
    bounds.push_back(bound);
    bound *= 2;
  }
  return bounds;
}

FixedHistogram::FixedHistogram(std::vector<int64_t> bounds) {
  MutexLock lock(mu_);
  snap_.bounds = std::move(bounds);
  snap_.counts.assign(snap_.bounds.size() + 1, 0);
}

void FixedHistogram::Record(int64_t value) {
  MutexLock lock(mu_);
  const auto it =
      std::lower_bound(snap_.bounds.begin(), snap_.bounds.end(), value);
  const size_t bucket =
      static_cast<size_t>(std::distance(snap_.bounds.begin(), it));
  snap_.counts[bucket]++;  // bounds.size() == saturation bucket.
  if (snap_.count == 0) {
    snap_.min = value;
    snap_.max = value;
  } else {
    snap_.min = std::min(snap_.min, value);
    snap_.max = std::max(snap_.max, value);
  }
  snap_.count++;
  snap_.sum += value;
}

HistogramSnapshot FixedHistogram::Snapshot() const {
  MutexLock lock(mu_);
  return snap_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

FixedHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                              std::vector<int64_t> bounds) {
  MutexLock lock(mu_);
  std::unique_ptr<FixedHistogram>& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = DefaultLatencyBoundsNanos();
    slot = std::make_unique<FixedHistogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  return snap;
}

namespace {

/// Merges two sorted (name, value) vectors, combining equal names with
/// `combine` (a Status-returning callable taking (target, source)).
template <typename T, typename Combine>
Status MergeSortedSeries(std::vector<std::pair<std::string, T>>* target,
                         const std::vector<std::pair<std::string, T>>& other,
                         Combine combine) {
  std::vector<std::pair<std::string, T>> merged;
  merged.reserve(target->size() + other.size());
  size_t i = 0;
  size_t j = 0;
  while (i < target->size() && j < other.size()) {
    const int cmp = (*target)[i].first.compare(other[j].first);
    if (cmp < 0) {
      merged.push_back(std::move((*target)[i++]));
    } else if (cmp > 0) {
      merged.push_back(other[j++]);
    } else {
      std::pair<std::string, T> entry = std::move((*target)[i++]);
      LSBENCH_RETURN_IF_ERROR(combine(&entry.second, other[j++].second));
      merged.push_back(std::move(entry));
    }
  }
  while (i < target->size()) merged.push_back(std::move((*target)[i++]));
  while (j < other.size()) merged.push_back(other[j++]);
  *target = std::move(merged);
  return Status::OK();
}

}  // namespace

Status MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  LSBENCH_RETURN_IF_ERROR(MergeSortedSeries(
      &counters, other.counters, [](uint64_t* target, uint64_t source) {
        *target += source;
        return Status::OK();
      }));
  LSBENCH_RETURN_IF_ERROR(MergeSortedSeries(
      &gauges, other.gauges, [](int64_t* target, int64_t source) {
        *target += source;
        return Status::OK();
      }));
  return MergeSortedSeries(&histograms, other.histograms,
                           [](HistogramSnapshot* target,
                              const HistogramSnapshot& source) {
                             return target->MergeFrom(source);
                           });
}

Result<MetricsSnapshot> MergeMetricsShards(
    const std::vector<MetricsSnapshot>& shards) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& shard : shards) {
    LSBENCH_RETURN_IF_ERROR(merged.MergeFrom(shard));
  }
  return merged;
}

}  // namespace lsbench
