#ifndef LSBENCH_OBS_TRACE_H_
#define LSBENCH_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotate.h"
#include "util/clock.h"

namespace lsbench {

/// One completed span, as recorded by a per-worker Tracer. Spans carry the
/// same provenance as OpEvents — (timestamp, worker, seq) — so trace shards
/// merge into one deterministic stream with exactly the event-shard
/// discipline: the merged order is a pure function of shard contents, never
/// of thread scheduling. Under a VirtualClock every timestamp is virtual,
/// making the merged trace bit-reproducible run to run.
struct TraceSpan {
  /// Span site name. Must point at storage that outlives the trace stream
  /// (in practice: a string literal at the LSBENCH_TRACE_SPAN site).
  const char* name = "";
  int64_t start_nanos = 0;  ///< Run-relative span start.
  int64_t end_nanos = 0;    ///< Run-relative span end.
  int32_t phase = 0;
  uint32_t worker = 0;
  uint64_t seq = 0;  ///< Per-shard record order (spans close in this order).
};

using TraceStream = std::vector<TraceSpan>;

/// Worker id stamped on driver-level (non-worker) spans. Sorts after every
/// real worker at equal timestamps, so orchestrator spans never interleave
/// worker ties.
inline constexpr uint32_t kDriverTraceWorker = 0xffffffffu;

/// One worker's span shard. Like EventSink, a Tracer is single-writer: each
/// worker records into its own instance with no synchronization, and the
/// shards are merged deterministically afterwards. A Tracer starts disabled
/// (all recording no-ops) until Bind() points it at the worker's clock;
/// LSBENCH_TRACE_SPAN additionally compiles to nothing under
/// LSBENCH_NO_TRACING, so disabled builds pay zero cost on the hot path.
class Tracer {
 public:
  explicit Tracer(uint32_t worker = 0) : worker_(worker) {}

  /// Arms the tracer: spans are timed against `clock` (the worker's private
  /// virtual clock in simulation mode) and stored relative to
  /// `run_start_nanos`. `clock` must outlive the tracer.
  void Bind(const Clock* clock, int64_t run_start_nanos) {
    clock_ = clock;
    run_start_nanos_ = run_start_nanos;
  }

  bool enabled() const { return clock_ != nullptr; }
  uint32_t worker() const { return worker_; }

  /// Current run-relative time. Requires enabled().
  int64_t NowRelNanos() const { return clock_->NowNanos() - run_start_nanos_; }

  /// Phase stamped on subsequently recorded spans.
  void set_phase(int32_t phase) { phase_ = phase; }

  /// Sizes the span arena for `n` more spans. All allocation happens here,
  /// off the measured loop; Record then fills slots by index.
  void Reserve(size_t n) { spans_.resize(used_ + n); }

  /// Records one completed span (run-relative endpoints), stamping
  /// provenance. No-op while disabled; allocation-free while the arena has
  /// room (growth is delegated to the cold slow path).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void Record(const char* name, int64_t start_rel_nanos,
              int64_t end_rel_nanos) {
    if (!enabled()) return;
    TraceSpan span;
    span.name = name;
    span.start_nanos = start_rel_nanos;
    span.end_nanos = end_rel_nanos;
    span.phase = phase_;
    span.worker = worker_;
    span.seq = next_seq_++;
    if (used_ < spans_.size()) {
      spans_[used_++] = span;
    } else {
      RecordSlow(span);
    }
  }

  size_t recorded() const { return used_; }

  /// Moves the shard out, trimmed to what was actually recorded (the
  /// tracer is spent afterwards).
  TraceStream TakeSpans() {
    spans_.resize(used_);
    used_ = 0;
    return std::move(spans_);
  }

 private:
  /// Cold path: the arena is full. Grows the shard (allocates); out of
  /// line so the hot-alloc frontier is this function, not Record.
  void RecordSlow(const TraceSpan& span);

  uint32_t worker_;
  const Clock* clock_ = nullptr;
  int64_t run_start_nanos_ = 0;
  int32_t phase_ = 0;
  uint64_t next_seq_ = 0;
  /// Arena: slots [0, used_) hold recorded spans; the rest is headroom
  /// created by Reserve.
  TraceStream spans_;
  size_t used_ = 0;
};

/// RAII span: stamps the start on construction and records on destruction.
/// A null or unbound tracer makes both ends a branch and nothing else.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        start_rel_(tracer_ != nullptr ? tracer_->NowRelNanos() : 0) {}

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_rel_, tracer_->NowRelNanos());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  int64_t start_rel_;
};

/// Merges per-worker span shards into one stream ordered by
/// (start, worker, seq) — the event-shard merge discipline applied to
/// traces. A single already-ordered shard passes through unchanged.
TraceStream MergeTraceShards(std::vector<TraceStream> shards);

/// Canonical one-line-per-span text form. Byte-identical across runs
/// whenever the merged stream is — the payload the trace-determinism tests
/// and the CI smoke job diff.
std::string SerializeTrace(const TraceStream& trace);

/// FNV-1a over the canonical serialization; a cheap fingerprint for
/// determinism pinning ("two runs produced byte-identical traces").
uint64_t HashTrace(const TraceStream& trace);

}  // namespace lsbench

// The span macro. `tracer` is a `Tracer*` (may be null); `name` must be a
// string literal. Under LSBENCH_NO_TRACING every span site compiles to
// nothing, which is what lets benches prove the disabled-overhead claim.
#if defined(LSBENCH_NO_TRACING)
#define LSBENCH_TRACE_SPAN(tracer, name) \
  do {                                   \
  } while (false)
#else
#define LSBENCH_TRACE_SPAN_CONCAT2(a, b) a##b
#define LSBENCH_TRACE_SPAN_CONCAT(a, b) LSBENCH_TRACE_SPAN_CONCAT2(a, b)
#define LSBENCH_TRACE_SPAN(tracer, name)                             \
  ::lsbench::ScopedSpan LSBENCH_TRACE_SPAN_CONCAT(lsbench_span_,     \
                                                  __LINE__)((tracer), \
                                                            (name))
#endif

#endif  // LSBENCH_OBS_TRACE_H_
