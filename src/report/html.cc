#include "report/html.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace lsbench {

namespace {

constexpr int kChartWidth = 720;
constexpr int kChartHeight = 240;
constexpr int kMarginLeft = 60;
constexpr int kMarginBottom = 28;
constexpr int kMarginTop = 12;

/// Maps a value into pixel space.
double ScaleX(double v, double lo, double hi) {
  if (hi <= lo) return kMarginLeft;
  return kMarginLeft +
         (v - lo) / (hi - lo) * (kChartWidth - kMarginLeft - 10);
}

double ScaleY(double v, double lo, double hi) {
  if (hi <= lo) return kChartHeight - kMarginBottom;
  return (kChartHeight - kMarginBottom) -
         (v - lo) / (hi - lo) *
             (kChartHeight - kMarginBottom - kMarginTop);
}

void OpenSvg(std::ostringstream* os, const std::string& title) {
  (*os) << "<h2>" << title << "</h2>\n";
  (*os) << "<svg width=\"" << kChartWidth << "\" height=\"" << kChartHeight
        << "\" style=\"background:#fafafa;border:1px solid #ddd\">\n";
}

void CloseSvg(std::ostringstream* os) { (*os) << "</svg>\n"; }

void Axes(std::ostringstream* os, const std::string& x_label,
          const std::string& y_lo, const std::string& y_hi) {
  (*os) << "<line x1=\"" << kMarginLeft << "\" y1=\"" << kMarginTop
        << "\" x2=\"" << kMarginLeft << "\" y2=\""
        << (kChartHeight - kMarginBottom)
        << "\" stroke=\"#999\"/>\n";
  (*os) << "<line x1=\"" << kMarginLeft << "\" y1=\""
        << (kChartHeight - kMarginBottom) << "\" x2=\"" << (kChartWidth - 10)
        << "\" y2=\"" << (kChartHeight - kMarginBottom)
        << "\" stroke=\"#999\"/>\n";
  (*os) << "<text x=\"" << (kChartWidth / 2) << "\" y=\""
        << (kChartHeight - 8) << "\" font-size=\"11\" text-anchor=\"middle\">"
        << x_label << "</text>\n";
  (*os) << "<text x=\"4\" y=\"" << (kChartHeight - kMarginBottom)
        << "\" font-size=\"10\">" << y_lo << "</text>\n";
  (*os) << "<text x=\"4\" y=\"" << (kMarginTop + 10)
        << "\" font-size=\"10\">" << y_hi << "</text>\n";
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void CumulativeSvg(std::ostringstream* os,
                   const std::vector<CumulativePoint>& curve) {
  OpenSvg(os, "Cumulative queries over time (Fig. 1b)");
  if (curve.size() >= 2) {
    const double t_hi = static_cast<double>(curve.back().t_nanos) * 1e-9;
    const double q_hi = static_cast<double>(curve.back().completed);
    // Ideal constant-throughput reference line.
    (*os) << "<line x1=\"" << ScaleX(0, 0, t_hi) << "\" y1=\""
          << ScaleY(0, 0, q_hi) << "\" x2=\"" << ScaleX(t_hi, 0, t_hi)
          << "\" y2=\"" << ScaleY(q_hi, 0, q_hi)
          << "\" stroke=\"#bbb\" stroke-dasharray=\"4 3\"/>\n";
    (*os) << "<polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"2\" "
             "points=\"";
    for (const CumulativePoint& p : curve) {
      (*os) << ScaleX(static_cast<double>(p.t_nanos) * 1e-9, 0, t_hi) << ","
            << ScaleY(static_cast<double>(p.completed), 0, q_hi) << " ";
    }
    (*os) << "\"/>\n";
    Axes(os, "seconds", "0", HumanCount(q_hi));
  }
  CloseSvg(os);
}

void BandsSvg(std::ostringstream* os, const std::vector<LatencyBand>& bands) {
  OpenSvg(os, "SLA violation bands (Fig. 1c)");
  if (!bands.empty()) {
    double max_total = 1.0;
    for (const LatencyBand& b : bands) {
      max_total = std::max(max_total, static_cast<double>(b.Total()));
    }
    const double band_width =
        static_cast<double>(kChartWidth - kMarginLeft - 10) /
        static_cast<double>(bands.size());
    for (size_t i = 0; i < bands.size(); ++i) {
      const double x =
          kMarginLeft + band_width * static_cast<double>(i);
      const double within = static_cast<double>(bands[i].within_sla);
      const double violated = static_cast<double>(bands[i].violated);
      const double y_within = ScaleY(within, 0, max_total);
      const double y_top = ScaleY(within + violated, 0, max_total);
      const double base = kChartHeight - kMarginBottom;
      (*os) << "<rect x=\"" << x << "\" y=\"" << y_within << "\" width=\""
            << std::max(1.0, band_width - 1) << "\" height=\""
            << (base - y_within) << "\" fill=\"#22c55e\"/>\n";
      if (violated > 0) {
        (*os) << "<rect x=\"" << x << "\" y=\"" << y_top << "\" width=\""
              << std::max(1.0, band_width - 1) << "\" height=\""
              << (y_within - y_top) << "\" fill=\"#ef4444\"/>\n";
      }
    }
    Axes(os, "interval (green=within SLA, red=violated)", "0",
         HumanCount(max_total));
  }
  CloseSvg(os);
}

void BoxPlotsSvg(std::ostringstream* os, const SpecializationReport& report) {
  OpenSvg(os, "Throughput per workload/data distribution (Fig. 1a)");
  if (!report.entries.empty()) {
    double t_hi = 1.0;
    for (const SpecializationEntry& e : report.entries) {
      t_hi = std::max(t_hi, e.throughput_box.max);
    }
    const double slot =
        static_cast<double>(kChartWidth - kMarginLeft - 10) /
        static_cast<double>(report.entries.size());
    for (size_t i = 0; i < report.entries.size(); ++i) {
      const BoxPlotSummary& box = report.entries[i].throughput_box;
      const double cx =
          kMarginLeft + slot * (static_cast<double>(i) + 0.5);
      const double half = std::max(4.0, slot * 0.2);
      auto y = [&](double v) { return ScaleY(v, 0, t_hi); };
      // Whiskers, box, median.
      (*os) << "<line x1=\"" << cx << "\" y1=\"" << y(box.whisker_low)
            << "\" x2=\"" << cx << "\" y2=\"" << y(box.whisker_high)
            << "\" stroke=\"#555\"/>\n";
      (*os) << "<rect x=\"" << (cx - half) << "\" y=\"" << y(box.q3)
            << "\" width=\"" << (2 * half) << "\" height=\""
            << std::max(1.0, y(box.q1) - y(box.q3))
            << "\" fill=\"#93c5fd\" stroke=\"#2563eb\"/>\n";
      (*os) << "<line x1=\"" << (cx - half) << "\" y1=\"" << y(box.median)
            << "\" x2=\"" << (cx + half) << "\" y2=\"" << y(box.median)
            << "\" stroke=\"#1d4ed8\" stroke-width=\"2\"/>\n";
      for (double o : box.outliers) {
        (*os) << "<circle cx=\"" << cx << "\" cy=\"" << y(o)
              << "\" r=\"2\" fill=\"#ef4444\"/>\n";
      }
      // Phi label.
      (*os) << "<text x=\"" << cx << "\" y=\"" << (kChartHeight - 14)
            << "\" font-size=\"10\" text-anchor=\"middle\">"
            << FormatDouble(report.entries[i].phi, 2)
            << (report.entries[i].holdout ? "*" : "") << "</text>\n";
    }
    Axes(os, "phi (ascending; * = hold-out)", "0", HumanCount(t_hi));
  }
  CloseSvg(os);
}

}  // namespace

std::string RenderHtmlReport(const RunResult& result,
                             const SpecializationReport& specialization,
                             const DriftTrajectoryReport* drift) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
     << HtmlEscape(result.run_name) << " — " << HtmlEscape(result.sut_name)
     << "</title>\n"
     << "<style>body{font-family:sans-serif;max-width:780px;margin:24px "
        "auto}table{border-collapse:collapse}td,th{border:1px solid "
        "#ccc;padding:4px 8px;font-size:13px}</style></head><body>\n";
  os << "<h1>LSBench run &quot;" << HtmlEscape(result.run_name)
     << "&quot; on " << HtmlEscape(result.sut_name) << "</h1>\n";

  const RunMetrics& m = result.metrics;
  os << "<table><tr><th>operations</th><th>wall (s)</th><th>mean ops/s</th>"
        "<th>p50</th><th>p99</th><th>SLA</th><th>violations</th>"
        "<th>train (s)</th><th>retrains</th></tr><tr>"
     << "<td>" << m.total_operations << "</td>"
     << "<td>" << FormatDouble(m.wall_seconds, 3) << "</td>"
     << "<td>" << HumanCount(m.mean_throughput) << "</td>"
     << "<td>" << HumanDuration(m.overall_latency.Median()) << "</td>"
     << "<td>" << HumanDuration(m.overall_latency.P99()) << "</td>"
     << "<td>" << HumanDuration(static_cast<double>(m.sla_nanos)) << "</td>"
     << "<td>" << m.total_sla_violations << "</td>"
     << "<td>" << FormatDouble(result.OfflineTrainSeconds(), 3) << "</td>"
     << "<td>" << result.final_sut_stats.retrain_events << "</td>"
     << "</tr></table>\n";

  const ResilienceMetrics& rm = m.resilience;
  if (rm.failed_operations > 0 || rm.total_retries > 0 ||
      rm.breaker_opens > 0 || rm.failed_trains > 0) {
    os << "<table><tr><th>availability</th><th>errors</th><th>timeouts</th>"
          "<th>shed</th><th>retries</th><th>breaker opens</th>"
          "<th>degraded (s)</th><th>failed trains</th></tr><tr>"
       << "<td>" << FormatDouble(100.0 * rm.availability, 2) << "%</td>"
       << "<td>" << rm.failed_operations << "</td>"
       << "<td>" << rm.timeouts << "</td>"
       << "<td>" << rm.shed_operations << "</td>"
       << "<td>" << rm.total_retries << "</td>"
       << "<td>" << rm.breaker_opens << "</td>"
       << "<td>" << FormatDouble(rm.degraded_seconds, 3) << "</td>"
       << "<td>" << rm.failed_trains << "</td>"
       << "</tr></table>\n";
  }

  const ServiceMetrics& sm = m.service;
  if (sm.enabled || sm.open_loop_operations > 0) {
    os << "<h2>Service mode (open loop)</h2>\n"
          "<table><tr><th>policy</th><th>queue cap</th>"
          "<th>offered qps</th><th>goodput qps</th>"
          "<th>response p99</th><th>service p99</th><th>queue wait p99</th>"
          "<th>shed</th><th>shed bound</th><th>SLO p99</th></tr><tr>"
       << "<td>" << HtmlEscape(sm.policy) << "</td>"
       << "<td>" << sm.queue_capacity << "</td>"
       << "<td>" << HumanCount(sm.offered_qps) << "</td>"
       << "<td>" << HumanCount(sm.achieved_qps) << "</td>"
       << "<td>" << HumanDuration(sm.response_latency.P99()) << "</td>"
       << "<td>" << HumanDuration(sm.service_latency.P99()) << "</td>"
       << "<td>" << HumanDuration(sm.queue_wait.P99()) << "</td>"
       << "<td>" << sm.queue_shed_operations << " ("
       << FormatDouble(100.0 * sm.shed_fraction, 2) << "%)</td>"
       << "<td>" << FormatDouble(100.0 * sm.max_shed_fraction, 0) << "% "
       << (sm.shed_bound_met ? "met" : "EXCEEDED") << "</td>"
       << "<td>";
    if (sm.slo_p99_nanos > 0) {
      os << HumanDuration(static_cast<double>(sm.slo_p99_nanos)) << " "
         << (sm.slo_met ? "met" : "VIOLATED");
    } else {
      os << "—";
    }
    os << "</td></tr></table>\n";
  }

  os << "<table><tr><th>phase</th><th>holdout</th><th>ops</th>"
        "<th>mean ops/s</th><th>p99</th><th>violations</th>"
        "<th>adjust excess (s)</th></tr>\n";
  for (const PhaseMetrics& pm : m.phases) {
    os << "<tr><td>" << pm.phase << "</td><td>"
       << (pm.holdout ? "yes" : "no") << "</td><td>" << pm.operations
       << "</td><td>" << HumanCount(pm.mean_throughput) << "</td><td>"
       << HumanDuration(pm.latency.P99()) << "</td><td>"
       << pm.sla_violations << "</td><td>"
       << FormatDouble(pm.adjustment_excess_seconds, 4)
       << "</td></tr>\n";
  }
  os << "</table>\n";

  // Per-op-type rollup; batch rows (batch_get / batch_put) additionally
  // report the effective per-op latency = request latency / batch size.
  bool any_op_rows = false;
  for (const OpTypeMetrics& ot : m.op_types) {
    any_op_rows = any_op_rows || ot.operations > 0;
  }
  if (any_op_rows) {
    os << "<h2>Per op type</h2>\n"
          "<table><tr><th>op</th><th>ops</th><th>ok</th><th>failed</th>"
          "<th>p50</th><th>p99</th><th>mean batch</th>"
          "<th>effective p50</th><th>effective p99</th></tr>\n";
    for (const OpTypeMetrics& ot : m.op_types) {
      if (ot.operations == 0) continue;
      const bool batch = IsBatchOp(ot.type);
      os << "<tr><td>" << HtmlEscape(OpTypeToString(ot.type)) << "</td><td>"
         << ot.operations << "</td><td>" << ot.ok_operations << "</td><td>"
         << ot.failed_operations << "</td><td>"
         << HumanDuration(ot.latency.Median()) << "</td><td>"
         << HumanDuration(ot.latency.P99()) << "</td><td>"
         << (batch ? FormatDouble(ot.MeanBatchSize(), 1) : "—")
         << "</td><td>"
         << (batch ? HumanDuration(ot.effective_latency.Median()) : "—")
         << "</td><td>"
         << (batch ? HumanDuration(ot.effective_latency.P99()) : "—")
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  if (drift != nullptr && !drift->transitions.empty()) {
    os << "<h2>Drift trajectory</h2>\n";
    if (drift->declared) {
      os << "<p>declared trajectory, tolerance "
         << FormatDouble(drift->tolerance, 3) << " — "
         << (drift->AllWithinTolerance() ? "met" : "<b>VIOLATED</b>")
         << "</p>\n";
    }
    os << "<table><tr><th>transition</th><th>factor</th><th>declared</th>"
          "<th>within tol</th><th>key KS</th><th>key MMD</th>"
          "<th>key overlap</th><th>op-mix TV</th></tr>\n";
    for (const DriftTransitionReport& t : drift->transitions) {
      os << "<tr><td>" << HtmlEscape(t.from_phase) << " → "
         << HtmlEscape(t.to_phase) << "</td><td>"
         << FormatDouble(t.components.factor, 3) << "</td><td>"
         << (t.declared >= 0.0 ? FormatDouble(t.declared, 3) : "—")
         << "</td><td>"
         << (t.declared >= 0.0 ? (t.within_tolerance ? "yes" : "<b>NO</b>")
                               : "—")
         << "</td><td>" << FormatDouble(t.components.key_ks, 3)
         << "</td><td>" << FormatDouble(t.components.key_mmd, 3)
         << "</td><td>" << FormatDouble(t.components.key_overlap, 3)
         << "</td><td>" << FormatDouble(t.components.op_mix_tv, 3)
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  BoxPlotsSvg(&os, specialization);
  CumulativeSvg(&os, m.cumulative);
  BandsSvg(&os, m.bands);

  const ObsReport& obs = result.observability;
  if (!obs.stages.empty()) {
    os << "<h2>Stage time breakdown</h2>\n"
          "<table><tr><th>phase</th><th>stage</th><th>time</th>"
          "<th>samples</th><th>share of phase</th></tr>\n";
    for (const PhaseStageBreakdown& pb : obs.stages) {
      const int64_t phase_total = pb.TotalNanos();
      for (size_t s = 0; s < kNumStages; ++s) {
        const StageAccum& accum = pb.stages[s];
        if (accum.samples == 0) continue;
        os << "<tr><td>"
           << (pb.phase == PhaseStageBreakdown::kRunLevelPhase
                   ? std::string("run")
                   : std::to_string(pb.phase))
           << "</td><td>" << StageName(static_cast<Stage>(s)) << "</td><td>"
           << HumanDuration(static_cast<double>(accum.total_nanos))
           << "</td><td>" << accum.samples << "</td><td>"
           << FormatDouble(
                  phase_total > 0
                      ? 100.0 * static_cast<double>(accum.total_nanos) /
                            static_cast<double>(phase_total)
                      : 0.0,
                  1)
           << "%</td></tr>\n";
      }
    }
    os << "</table>\n";
  }
  if (!obs.metrics.empty()) {
    os << "<h2>Metrics</h2>\n"
          "<table><tr><th>metric</th><th>value</th></tr>\n";
    for (const auto& [name, value] : obs.metrics.counters) {
      os << "<tr><td>" << HtmlEscape(name) << "</td><td>" << value
         << "</td></tr>\n";
    }
    for (const auto& [name, value] : obs.metrics.gauges) {
      os << "<tr><td>" << HtmlEscape(name) << "</td><td>" << value
         << "</td></tr>\n";
    }
    for (const auto& [name, hist] : obs.metrics.histograms) {
      os << "<tr><td>" << HtmlEscape(name) << "</td><td>count=" << hist.count
         << " p50="
         << HumanDuration(static_cast<double>(hist.Quantile(0.5)))
         << " p99="
         << HumanDuration(static_cast<double>(hist.Quantile(0.99)))
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  if (!obs.trace.empty()) {
    os << "<p>trace: " << obs.trace.size() << " spans recorded</p>\n";
  }

  os << "</body></html>\n";
  return os.str();
}

Status WriteHtmlReport(const RunResult& result,
                       const SpecializationReport& specialization,
                       const std::string& path,
                       const DriftTrajectoryReport* drift) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  const std::string html = RenderHtmlReport(result, specialization, drift);
  const size_t written = std::fwrite(html.data(), 1, html.size(), file);
  std::fclose(file);
  if (written != html.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace lsbench
