#ifndef LSBENCH_REPORT_HTML_H_
#define LSBENCH_REPORT_HTML_H_

#include <string>

#include "core/drift.h"
#include "core/driver.h"
#include "core/specialization.h"
#include "util/status.h"

namespace lsbench {

/// Self-contained HTML report for one run: the summary table plus inline
/// SVG renderings of the paper's Figure-1 charts (cumulative curve, SLA
/// bands, specialization box plots). No external assets or scripts — the
/// file can be archived next to the CSVs and opened anywhere. Pass `drift`
/// to include the per-transition drift-trajectory table (nullptr or an
/// empty report omits the section).
std::string RenderHtmlReport(const RunResult& result,
                             const SpecializationReport& specialization,
                             const DriftTrajectoryReport* drift = nullptr);

/// Renders and writes the report to `path`.
Status WriteHtmlReport(const RunResult& result,
                       const SpecializationReport& specialization,
                       const std::string& path,
                       const DriftTrajectoryReport* drift = nullptr);

}  // namespace lsbench

#endif  // LSBENCH_REPORT_HTML_H_
