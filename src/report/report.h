#ifndef LSBENCH_REPORT_REPORT_H_
#define LSBENCH_REPORT_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/drift.h"
#include "core/driver.h"
#include "core/metrics.h"
#include "core/specialization.h"
#include "obs/observability.h"
#include "sut/cost_model.h"

namespace lsbench {

/// Human-readable run summary: totals, training, per-phase table.
std::string RenderRunSummary(const RunResult& result);

/// Fig. 1a — box plots per phase, sorted by Φ, hold-outs marked.
std::string RenderSpecializationReport(const SpecializationReport& report);

/// Fig. 1b — cumulative queries over time for one or more systems, with the
/// area-vs-ideal summary per system.
std::string RenderCumulativeComparison(
    const std::vector<std::pair<std::string, std::vector<CumulativePoint>>>&
        curves);

/// Fig. 1c — SLA bands plus the violation totals.
std::string RenderSlaBands(const std::vector<LatencyBand>& bands,
                           int64_t sla_nanos);

/// One sample of a Fig. 1d training-cost sweep.
struct CostPoint {
  double training_dollars = 0.0;
  double throughput = 0.0;
};

/// Fig. 1d — learned throughput-vs-cost curves (one per hardware profile)
/// against the DBA step function; reports training-cost-to-outperform.
std::string RenderCostReport(
    const std::vector<std::pair<std::string, std::vector<CostPoint>>>& curves,
    double traditional_base_throughput, const DbaCostModel& dba);

/// Observability: the per-phase stage-time breakdown ("where did the time
/// go"), the merged metrics-registry snapshot (counters, gauges, latency
/// histograms), and the trace span count. Empty report renders nothing.
std::string RenderObservability(const ObsReport& report);

/// Per-transition drift trajectory (measured factor + components, declared
/// target and verdict when the spec carries a [drift] section). A report
/// with no transitions renders nothing.
std::string RenderDriftReport(const DriftTrajectoryReport& report);

/// CSV emitters (one header row + data rows) for downstream plotting.
std::string SpecializationCsv(const SpecializationReport& report);
std::string CumulativeCsv(const std::vector<CumulativePoint>& curve);
std::string SlaBandsCsv(const std::vector<LatencyBand>& bands);
std::string PhaseMetricsCsv(const RunMetrics& metrics);
/// Per-op-class rollup: one row per OpType (all kNumOpTypes rows, zero rows
/// included so downstream columns line up across runs). Batch classes carry
/// the effective per-op latency (request latency / batch size) next to the
/// raw request-unit latency.
std::string OpTypeCsv(const RunMetrics& metrics);
/// One-row CSV of the [service] section's verdicts and latency
/// decomposition (response vs service time, shed accounting).
std::string ServiceCsv(const RunMetrics& metrics);
std::string StageBreakdownCsv(const StageBreakdown& stages);
/// One row per phase transition: measured drift factor and its components,
/// plus the declared target and within-tolerance verdict (-1 / empty when
/// the spec declares no trajectory).
std::string DriftCsv(const DriftTrajectoryReport& report);
std::string CostCurveCsv(
    const std::vector<std::pair<std::string, std::vector<CostPoint>>>& curves);

}  // namespace lsbench

#endif  // LSBENCH_REPORT_REPORT_H_
