#include "report/report.h"

#include <sstream>

#include "stats/ascii_chart.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace lsbench {

std::string RenderRunSummary(const RunResult& result) {
  std::ostringstream os;
  os << "=== Run '" << result.run_name << "' on SUT '" << result.sut_name
     << "' ===\n";
  os << "load: " << FormatDouble(result.load_seconds, 3) << "s";
  if (!result.train_events.empty()) {
    os << ", offline training: "
       << FormatDouble(result.OfflineTrainSeconds(), 3) << "s over "
       << result.train_events.size() << " pass(es)";
  }
  os << "\n";
  const RunMetrics& m = result.metrics;
  os << "operations: " << m.total_operations
     << ", wall: " << FormatDouble(m.wall_seconds, 3) << "s"
     << ", mean throughput: " << HumanCount(m.mean_throughput) << " ops/s\n";
  // On closed-loop runs this is a *service time*: each op issues only after
  // the previous completes, so queueing delay a real client would have seen
  // is never measured (coordinated omission). Open-loop service mode
  // reports the response-time decomposition below.
  os << "service time: p50=" << HumanDuration(m.overall_latency.Median())
     << " p95=" << HumanDuration(m.overall_latency.P95())
     << " p99=" << HumanDuration(m.overall_latency.P99())
     << " max=" << HumanDuration(m.overall_latency.max()) << "\n";
  if (m.service.open_loop_operations == 0) {
    os << "note: closed-loop run; latencies above exclude queueing delay "
          "(coordinated omission) — use [service] mode for response times\n";
  }
  os << "SLA threshold: " << HumanDuration(static_cast<double>(m.sla_nanos))
     << ", violations: " << m.total_sla_violations << " ("
     << FormatDouble(m.total_operations > 0
                         ? 100.0 * static_cast<double>(m.total_sla_violations) /
                               static_cast<double>(m.total_operations)
                         : 0.0,
                     2)
     << "%)\n";
  os << "area vs ideal: " << FormatDouble(m.area_vs_ideal, 1)
     << " query-seconds\n";
  const ResilienceMetrics& rm = m.resilience;
  if (rm.failed_operations > 0 || rm.total_retries > 0 ||
      rm.breaker_opens > 0 || rm.failed_trains > 0) {
    os << "resilience: availability="
       << FormatDouble(100.0 * rm.availability, 2) << "%"
       << ", errors=" << rm.failed_operations
       << " (timeouts=" << rm.timeouts << ", shed=" << rm.shed_operations
       << "), retries=" << rm.total_retries
       << ", breaker opens=" << rm.breaker_opens
       << ", degraded=" << FormatDouble(rm.degraded_seconds, 3) << "s";
    if (rm.failed_trains > 0) os << ", failed trains=" << rm.failed_trains;
    os << "\n";
  }
  const ServiceMetrics& sm = m.service;
  if (sm.enabled || sm.open_loop_operations > 0) {
    os << "service mode: policy=" << (sm.policy.empty() ? "-" : sm.policy)
       << ", queue capacity=" << sm.queue_capacity
       << ", offered=" << HumanCount(sm.offered_qps) << " qps"
       << ", goodput=" << HumanCount(sm.achieved_qps) << " qps\n";
    os << "  response time (from intended arrival): p50="
       << HumanDuration(sm.response_latency.Median())
       << " p99=" << HumanDuration(sm.response_latency.P99())
       << " | service time (from issue): p50="
       << HumanDuration(sm.service_latency.Median())
       << " p99=" << HumanDuration(sm.service_latency.P99()) << "\n";
    os << "  coordinated-omission gap (response p99 - service p99): "
       << HumanDuration(sm.response_latency.P99() -
                        sm.service_latency.P99())
       << ", queue wait p99=" << HumanDuration(sm.queue_wait.P99()) << "\n";
    os << "  shed: " << sm.queue_shed_operations << " of "
       << sm.open_loop_operations << " offered ("
       << FormatDouble(100.0 * sm.shed_fraction, 2) << "%), bound "
       << FormatDouble(100.0 * sm.max_shed_fraction, 0) << "% -> "
       << (sm.shed_bound_met ? "met" : "EXCEEDED");
    if (sm.slo_p99_nanos > 0) {
      os << "; SLO p99 "
         << HumanDuration(static_cast<double>(sm.slo_p99_nanos)) << " -> "
         << (sm.slo_met ? "met" : "VIOLATED");
    }
    os << "\n";
  }
  os << "SUT stats: memory=" << HumanCount(static_cast<double>(
                                   result.final_sut_stats.memory_bytes))
     << "B, retrain events=" << result.final_sut_stats.retrain_events
     << ", online training="
     << FormatDouble(result.final_sut_stats.online_train_seconds, 3) << "s\n";

  std::vector<std::vector<std::string>> rows;
  for (const PhaseMetrics& pm : m.phases) {
    rows.push_back({std::to_string(pm.phase),
                    pm.holdout ? "yes" : "no",
                    std::to_string(pm.operations),
                    HumanCount(pm.mean_throughput),
                    HumanCount(pm.throughput_box.median),
                    HumanDuration(pm.latency.P99()),
                    std::to_string(pm.sla_violations),
                    FormatDouble(pm.adjustment_excess_seconds, 4)});
  }
  os << RenderTable({"phase", "holdout", "ops", "mean_tput", "median_tput",
                     "p99_lat", "sla_viol", "adjust_excess_s"},
                    rows);

  // Per-op-class table. Batch classes (batch_get / batch_put) are judged by
  // their *effective* per-op latency — the request-unit latency divided by
  // the batch size — which is what makes their rows comparable to scalar
  // rows; for scalar classes the two latency columns coincide and the
  // effective columns are rendered as '-'.
  std::vector<std::vector<std::string>> op_rows;
  for (const OpTypeMetrics& ot : m.op_types) {
    if (ot.operations == 0) continue;
    const bool batch = IsBatchOp(ot.type);
    op_rows.push_back(
        {OpTypeToString(ot.type), std::to_string(ot.operations),
         std::to_string(ot.ok_operations),
         std::to_string(ot.failed_operations),
         HumanDuration(ot.latency.Median()),
         HumanDuration(ot.latency.P99()),
         batch ? FormatDouble(ot.MeanBatchSize(), 1) : "-",
         batch ? HumanDuration(ot.effective_latency.Median()) : "-",
         batch ? HumanDuration(ot.effective_latency.P99()) : "-"});
  }
  if (!op_rows.empty()) {
    os << "--- per op type (batch rows: eff_* = latency / batch size) ---\n";
    os << RenderTable({"op", "ops", "ok", "failed", "p50_lat", "p99_lat",
                       "mean_batch", "eff_p50", "eff_p99"},
                      op_rows);
  }
  return os.str();
}

std::string RenderSpecializationReport(const SpecializationReport& report) {
  std::ostringstream os;
  os << "=== Specialization (Fig. 1a): throughput per workload/data "
        "distribution, sorted by phi ===\n";
  std::vector<LabeledBox> boxes;
  std::vector<std::vector<std::string>> rows;
  for (const SpecializationEntry& e : report.entries) {
    std::string label = "phi=" + FormatDouble(e.phi, 2) + " " + e.phase_name;
    if (e.holdout) label += " [holdout]";
    boxes.push_back({label, e.throughput_box});
    rows.push_back({e.phase_name, FormatDouble(e.phi, 3),
                    FormatDouble(e.data_ks, 3),
                    FormatDouble(e.workload_jaccard, 3),
                    HumanCount(e.mean_throughput),
                    HumanCount(e.throughput_box.median),
                    e.holdout ? "yes" : "no"});
  }
  os << RenderBoxPlotChart(boxes);
  os << RenderTable({"phase", "phi", "data_ks", "wl_jaccard", "mean_tput",
                     "median_tput", "holdout"},
                    rows);
  return os.str();
}

std::string RenderCumulativeComparison(
    const std::vector<std::pair<std::string, std::vector<CumulativePoint>>>&
        curves) {
  std::ostringstream os;
  os << "=== Cumulative queries over time (Fig. 1b) ===\n";
  std::vector<Series> series;
  for (const auto& [name, curve] : curves) {
    Series s;
    s.name = name + " (area vs ideal: " +
             FormatDouble(AreaVsIdeal(curve), 1) + " q-s)";
    for (const CumulativePoint& p : curve) {
      s.xs.push_back(static_cast<double>(p.t_nanos) * 1e-9);
      s.ys.push_back(static_cast<double>(p.completed));
    }
    series.push_back(std::move(s));
  }
  os << RenderLineChart(series, 72, 20, "seconds", "cumulative queries");
  if (curves.size() == 2) {
    os << "area between systems ('" << curves[0].first << "' - '"
       << curves[1].first << "'): "
       << FormatDouble(AreaBetweenCurves(curves[0].second, curves[1].second),
                       1)
       << " query-seconds\n";
  }
  return os.str();
}

std::string RenderSlaBands(const std::vector<LatencyBand>& bands,
                           int64_t sla_nanos) {
  std::ostringstream os;
  os << "=== SLA violation bands (Fig. 1c), threshold "
     << HumanDuration(static_cast<double>(sla_nanos)) << " ===\n";
  std::vector<BandColumn> columns;
  uint64_t violated = 0, total = 0;
  for (const LatencyBand& b : bands) {
    columns.push_back({static_cast<double>(b.within_sla),
                       static_cast<double>(b.violated)});
    violated += b.violated;
    total += b.Total();
  }
  os << RenderBandChart(columns);
  os << "total completions: " << total << ", violations: " << violated
     << "\n";
  return os.str();
}

std::string RenderCostReport(
    const std::vector<std::pair<std::string, std::vector<CostPoint>>>& curves,
    double traditional_base_throughput, const DbaCostModel& dba) {
  std::ostringstream os;
  os << "=== Throughput per training cost (Fig. 1d) ===\n";
  std::vector<Series> series;
  double max_cost = dba.TotalDollars();
  for (const auto& [name, points] : curves) {
    for (const CostPoint& p : points) {
      max_cost = std::max(max_cost, p.training_dollars);
    }
  }
  for (const auto& [name, points] : curves) {
    Series s;
    s.name = name;
    for (const CostPoint& p : points) {
      s.xs.push_back(p.training_dollars);
      s.ys.push_back(p.throughput);
    }
    series.push_back(std::move(s));
  }
  // DBA step function sampled densely so the steps are visible.
  Series dba_series;
  dba_series.name = "traditional + DBA (step function)";
  for (int i = 0; i <= 100; ++i) {
    const double dollars = max_cost * static_cast<double>(i) / 100.0;
    dba_series.xs.push_back(dollars);
    dba_series.ys.push_back(traditional_base_throughput *
                            dba.MultiplierAt(dollars));
  }
  series.push_back(std::move(dba_series));
  os << RenderLineChart(series, 72, 20, "training dollars", "ops/s");

  for (const auto& [name, points] : curves) {
    std::vector<double> costs, tputs;
    for (const CostPoint& p : points) {
      costs.push_back(p.training_dollars);
      tputs.push_back(p.throughput);
    }
    const double crossover = TrainingCostToOutperform(
        costs, tputs, traditional_base_throughput, dba);
    os << "training cost to outperform (" << name << "): ";
    if (crossover < 0.0) {
      os << "never\n";
    } else {
      os << "$" << FormatDouble(crossover, 4) << "\n";
    }
  }
  return os.str();
}

namespace {

std::string PhaseLabel(int32_t phase) {
  return phase == PhaseStageBreakdown::kRunLevelPhase ? "run"
                                                      : std::to_string(phase);
}

}  // namespace

std::string RenderObservability(const ObsReport& report) {
  if (report.empty()) return "";
  std::ostringstream os;
  os << "=== Observability ===\n";
  if (!report.stages.empty()) {
    os << "--- stage time breakdown (per phase; 'run' = load/train/merge) "
          "---\n";
    std::vector<std::vector<std::string>> rows;
    for (const PhaseStageBreakdown& pb : report.stages) {
      const int64_t phase_total = pb.TotalNanos();
      for (size_t s = 0; s < kNumStages; ++s) {
        const StageAccum& accum = pb.stages[s];
        if (accum.samples == 0) continue;
        rows.push_back(
            {PhaseLabel(pb.phase),
             std::string(StageName(static_cast<Stage>(s))),
             HumanDuration(static_cast<double>(accum.total_nanos)),
             std::to_string(accum.samples),
             FormatDouble(phase_total > 0
                              ? 100.0 * static_cast<double>(accum.total_nanos) /
                                    static_cast<double>(phase_total)
                              : 0.0,
                          1)});
      }
    }
    os << RenderTable({"phase", "stage", "time", "samples", "phase%"}, rows);
  }
  if (!report.metrics.counters.empty() || !report.metrics.gauges.empty()) {
    os << "--- counters & gauges ---\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, value] : report.metrics.counters) {
      rows.push_back({name, std::to_string(value)});
    }
    for (const auto& [name, value] : report.metrics.gauges) {
      rows.push_back({name, std::to_string(value)});
    }
    os << RenderTable({"metric", "value"}, rows);
  }
  if (!report.metrics.histograms.empty()) {
    os << "--- latency histograms ---\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, hist] : report.metrics.histograms) {
      rows.push_back({name, std::to_string(hist.count),
                      HumanDuration(static_cast<double>(hist.Quantile(0.5))),
                      HumanDuration(static_cast<double>(hist.Quantile(0.99))),
                      HumanDuration(static_cast<double>(
                          hist.count > 0 ? hist.max : 0))});
    }
    os << RenderTable({"histogram", "count", "p50", "p99", "max"}, rows);
  }
  if (!report.trace.empty()) {
    os << "trace: " << report.trace.size()
       << " spans recorded (--trace-out writes the full stream)\n";
  }
  return os.str();
}

std::string SpecializationCsv(const SpecializationReport& report) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"phase", "phi", "data_ks", "workload_jaccard", "holdout",
                "mean_throughput", "q1", "median", "q3", "min", "max"});
  for (const SpecializationEntry& e : report.entries) {
    csv.WriteRow({e.phase_name, CsvWriter::Field(e.phi),
                  CsvWriter::Field(e.data_ks),
                  CsvWriter::Field(e.workload_jaccard),
                  e.holdout ? "1" : "0",
                  CsvWriter::Field(e.mean_throughput),
                  CsvWriter::Field(e.throughput_box.q1),
                  CsvWriter::Field(e.throughput_box.median),
                  CsvWriter::Field(e.throughput_box.q3),
                  CsvWriter::Field(e.throughput_box.min),
                  CsvWriter::Field(e.throughput_box.max)});
  }
  return out.str();
}

std::string CumulativeCsv(const std::vector<CumulativePoint>& curve) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"t_seconds", "completed"});
  for (const CumulativePoint& p : curve) {
    csv.WriteRow({CsvWriter::Field(static_cast<double>(p.t_nanos) * 1e-9),
                  CsvWriter::Field(p.completed)});
  }
  return out.str();
}

std::string SlaBandsCsv(const std::vector<LatencyBand>& bands) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"start_seconds", "within_sla", "violated"});
  for (const LatencyBand& b : bands) {
    csv.WriteRow(
        {CsvWriter::Field(static_cast<double>(b.start_nanos) * 1e-9),
         CsvWriter::Field(b.within_sla), CsvWriter::Field(b.violated)});
  }
  return out.str();
}

std::string PhaseMetricsCsv(const RunMetrics& metrics) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"phase", "holdout", "operations", "duration_s",
                "mean_throughput", "median_throughput", "p99_latency_ns",
                "sla_violations", "adjustment_excess_s"});
  for (const PhaseMetrics& pm : metrics.phases) {
    csv.WriteRow({CsvWriter::Field(static_cast<int64_t>(pm.phase)),
                  pm.holdout ? "1" : "0", CsvWriter::Field(pm.operations),
                  CsvWriter::Field(pm.duration_seconds),
                  CsvWriter::Field(pm.mean_throughput),
                  CsvWriter::Field(pm.throughput_box.median),
                  CsvWriter::Field(pm.latency.P99()),
                  CsvWriter::Field(pm.sla_violations),
                  CsvWriter::Field(pm.adjustment_excess_seconds)});
  }
  return out.str();
}

std::string OpTypeCsv(const RunMetrics& metrics) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"op_type", "operations", "ok", "failed", "p50_latency_ns",
                "p99_latency_ns", "max_latency_ns", "mean_batch",
                "effective_p50_ns", "effective_p99_ns"});
  for (const OpTypeMetrics& ot : metrics.op_types) {
    csv.WriteRow({OpTypeToString(ot.type), CsvWriter::Field(ot.operations),
                  CsvWriter::Field(ot.ok_operations),
                  CsvWriter::Field(ot.failed_operations),
                  CsvWriter::Field(ot.latency.Median()),
                  CsvWriter::Field(ot.latency.P99()),
                  CsvWriter::Field(ot.latency.max()),
                  CsvWriter::Field(ot.MeanBatchSize()),
                  CsvWriter::Field(ot.effective_latency.Median()),
                  CsvWriter::Field(ot.effective_latency.P99())});
  }
  return out.str();
}

std::string ServiceCsv(const RunMetrics& metrics) {
  const ServiceMetrics& sm = metrics.service;
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"policy", "queue_capacity", "offered_ops", "queue_shed",
                "shed_fraction", "max_shed_fraction", "shed_bound_met",
                "offered_qps", "achieved_qps", "response_p50_ns",
                "response_p99_ns", "service_p50_ns", "service_p99_ns",
                "queue_wait_p99_ns", "slo_p99_ns", "slo_met"});
  csv.WriteRow({sm.policy,
                CsvWriter::Field(static_cast<uint64_t>(sm.queue_capacity)),
                CsvWriter::Field(sm.open_loop_operations),
                CsvWriter::Field(sm.queue_shed_operations),
                CsvWriter::Field(sm.shed_fraction),
                CsvWriter::Field(sm.max_shed_fraction),
                sm.shed_bound_met ? "1" : "0",
                CsvWriter::Field(sm.offered_qps),
                CsvWriter::Field(sm.achieved_qps),
                CsvWriter::Field(sm.response_latency.Median()),
                CsvWriter::Field(sm.response_latency.P99()),
                CsvWriter::Field(sm.service_latency.Median()),
                CsvWriter::Field(sm.service_latency.P99()),
                CsvWriter::Field(sm.queue_wait.P99()),
                CsvWriter::Field(sm.slo_p99_nanos),
                sm.slo_met ? "1" : "0"});
  return out.str();
}

std::string StageBreakdownCsv(const StageBreakdown& stages) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"phase", "stage", "total_nanos", "samples"});
  for (const PhaseStageBreakdown& pb : stages) {
    for (size_t s = 0; s < kNumStages; ++s) {
      const StageAccum& accum = pb.stages[s];
      if (accum.samples == 0) continue;
      csv.WriteRow({CsvWriter::Field(static_cast<int64_t>(pb.phase)),
                    std::string(StageName(static_cast<Stage>(s))),
                    CsvWriter::Field(accum.total_nanos),
                    CsvWriter::Field(accum.samples)});
    }
  }
  return out.str();
}

std::string RenderDriftReport(const DriftTrajectoryReport& report) {
  if (report.transitions.empty()) return "";
  std::ostringstream os;
  os << "=== Drift trajectory ===\n";
  if (report.declared) {
    os << "declared trajectory, tolerance "
       << FormatDouble(report.tolerance, 3) << " -> "
       << (report.AllWithinTolerance() ? "met" : "VIOLATED") << "\n";
  }
  std::vector<std::vector<std::string>> rows;
  for (const DriftTransitionReport& t : report.transitions) {
    rows.push_back({t.from_phase + " -> " + t.to_phase,
                    FormatDouble(t.components.factor, 3),
                    t.declared >= 0.0 ? FormatDouble(t.declared, 3) : "-",
                    t.declared >= 0.0
                        ? (t.within_tolerance ? "yes" : "NO")
                        : "-",
                    FormatDouble(t.components.key_ks, 3),
                    FormatDouble(t.components.key_mmd, 3),
                    FormatDouble(t.components.key_overlap, 3),
                    FormatDouble(t.components.op_mix_tv, 3)});
  }
  os << RenderTable({"transition", "factor", "declared", "within_tol",
                     "key_ks", "key_mmd", "key_overlap", "op_mix_tv"},
                    rows);
  return os.str();
}

std::string DriftCsv(const DriftTrajectoryReport& report) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"transition", "from_phase", "to_phase", "factor", "declared",
                "tolerance", "within_tolerance", "key_ks", "key_mmd",
                "key_overlap", "op_mix_tv"});
  for (size_t i = 0; i < report.transitions.size(); ++i) {
    const DriftTransitionReport& t = report.transitions[i];
    csv.WriteRow({CsvWriter::Field(static_cast<uint64_t>(i)), t.from_phase,
                  t.to_phase, CsvWriter::Field(t.components.factor),
                  t.declared >= 0.0 ? CsvWriter::Field(t.declared) : "",
                  report.declared ? CsvWriter::Field(report.tolerance) : "",
                  t.declared >= 0.0 ? (t.within_tolerance ? "1" : "0") : "",
                  CsvWriter::Field(t.components.key_ks),
                  CsvWriter::Field(t.components.key_mmd),
                  CsvWriter::Field(t.components.key_overlap),
                  CsvWriter::Field(t.components.op_mix_tv)});
  }
  return out.str();
}

std::string CostCurveCsv(
    const std::vector<std::pair<std::string, std::vector<CostPoint>>>&
        curves) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"system", "training_dollars", "throughput"});
  for (const auto& [name, points] : curves) {
    for (const CostPoint& p : points) {
      csv.WriteRow({name, CsvWriter::Field(p.training_dollars),
                    CsvWriter::Field(p.throughput)});
    }
  }
  return out.str();
}

}  // namespace lsbench
