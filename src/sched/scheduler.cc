#include "sched/scheduler.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "util/assert.h"
#include "util/random.h"

namespace lsbench {

size_t FifoPolicy::PickNext(const std::vector<Job>& ready) {
  LSBENCH_ASSERT(!ready.empty());
  size_t best = 0;
  for (size_t i = 1; i < ready.size(); ++i) {
    if (ready[i].arrival_seconds < ready[best].arrival_seconds) best = i;
  }
  return best;
}

size_t OracleSjfPolicy::PickNext(const std::vector<Job>& ready) {
  LSBENCH_ASSERT(!ready.empty());
  size_t best = 0;
  for (size_t i = 1; i < ready.size(); ++i) {
    if (ready[i].true_service_seconds < ready[best].true_service_seconds) {
      best = i;
    }
  }
  return best;
}

LearnedSjfPolicy::LearnedSjfPolicy(Options options)
    : options_(options),
      per_class_rate_(options.num_classes,
                      options.initial_rate_seconds_per_row),
      per_class_fixed_(options.num_classes, 0.0) {
  LSBENCH_ASSERT(options_.num_classes > 0);
}

double LearnedSjfPolicy::Predict(const Job& job) const {
  const int cls =
      std::clamp(job.query_class, 0, options_.num_classes - 1);
  return per_class_fixed_[cls] + per_class_rate_[cls] * job.size_hint;
}

size_t LearnedSjfPolicy::PickNext(const std::vector<Job>& ready) {
  LSBENCH_ASSERT(!ready.empty());
  size_t best = 0;
  double best_pred = Predict(ready[0]);
  for (size_t i = 1; i < ready.size(); ++i) {
    const double pred = Predict(ready[i]);
    if (pred < best_pred) {
      best = i;
      best_pred = pred;
    }
  }
  return best;
}

void LearnedSjfPolicy::OnJobFinished(const Job& job,
                                     double measured_seconds) {
  const int cls =
      std::clamp(job.query_class, 0, options_.num_classes - 1);
  if (job.size_hint >= 1.0) {
    const double implied =
        std::max(0.0, measured_seconds - per_class_fixed_[cls]) /
        job.size_hint;
    per_class_rate_[cls] +=
        options_.learning_rate * (implied - per_class_rate_[cls]);
  } else {
    per_class_fixed_[cls] +=
        options_.learning_rate * (measured_seconds - per_class_fixed_[cls]);
  }
}

ScheduleMetrics SimulateSchedule(std::vector<Job> jobs,
                                 SchedulingPolicy* policy) {
  LSBENCH_ASSERT(policy != nullptr);
  ScheduleMetrics metrics;
  if (jobs.empty()) return metrics;
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.arrival_seconds < b.arrival_seconds;
  });

  std::vector<Job> ready;
  std::vector<double> flows;
  flows.reserve(jobs.size());
  double slowdown_sum = 0.0;
  double now = 0.0;
  size_t next_arrival = 0;

  while (next_arrival < jobs.size() || !ready.empty()) {
    if (ready.empty()) {
      now = std::max(now, jobs[next_arrival].arrival_seconds);
    }
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].arrival_seconds <= now) {
      ready.push_back(jobs[next_arrival]);
      ++next_arrival;
    }
    const size_t pick = policy->PickNext(ready);
    LSBENCH_ASSERT(pick < ready.size());
    const Job job = ready[pick];
    ready.erase(ready.begin() + pick);

    now += job.true_service_seconds;
    policy->OnJobFinished(job, job.true_service_seconds);
    const double flow = now - job.arrival_seconds;
    flows.push_back(flow);
    slowdown_sum += flow / std::max(1e-12, job.true_service_seconds);
  }

  metrics.jobs = jobs.size();
  metrics.makespan_seconds = now;
  double flow_sum = 0.0;
  for (double f : flows) flow_sum += f;
  metrics.mean_flow_seconds = flow_sum / static_cast<double>(flows.size());
  metrics.p99_flow_seconds = Quantile(flows, 0.99);
  metrics.mean_slowdown = slowdown_sum / static_cast<double>(flows.size());
  return metrics;
}

std::vector<Job> GenerateJobs(size_t count, double arrival_rate_qps,
                              double rate_scale, uint64_t seed,
                              double start_seconds) {
  LSBENCH_ASSERT(arrival_rate_qps > 0.0);
  Rng rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(count);
  double t = start_seconds;
  for (size_t i = 0; i < count; ++i) {
    t += rng.NextExponential(arrival_rate_qps);
    Job job;
    job.id = i;
    job.arrival_seconds = t;
    // Class mix: 70% point lookups, 25% scans, 5% analytics.
    const double u = rng.NextDouble();
    if (u < 0.7) {
      job.query_class = 0;
      job.size_hint = 1.0;
      job.true_service_seconds = rate_scale * 2e-6 *
                                 (0.5 + rng.NextDouble());
    } else if (u < 0.95) {
      job.query_class = 1;
      job.size_hint = 100.0 * (0.5 + rng.NextDouble());
      job.true_service_seconds =
          rate_scale * 1e-6 * job.size_hint * (0.8 + 0.4 * rng.NextDouble());
    } else {
      job.query_class = 2;
      job.size_hint = 10000.0 * (0.5 + rng.NextDouble());
      job.true_service_seconds =
          rate_scale * 1e-6 * job.size_hint * (0.8 + 0.4 * rng.NextDouble());
    }
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace lsbench
