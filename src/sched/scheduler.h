#ifndef LSBENCH_SCHED_SCHEDULER_H_
#define LSBENCH_SCHED_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>


namespace lsbench {

/// One query/job submitted to the scheduler. `true_service_seconds` is
/// ground truth known only to the simulator (and the oracle policy);
/// learned policies see only the features.
struct Job {
  uint64_t id = 0;
  double arrival_seconds = 0.0;
  double true_service_seconds = 0.0;
  // --- features visible to policies ---
  int query_class = 0;        ///< e.g. 0 = point, 1 = scan, 2 = analytic.
  double size_hint = 0.0;     ///< Rows touched estimate (noisy).
};

/// Non-preemptive single-server scheduling policy. §II of the paper lists
/// learned scheduling (Decima-style) among the learned components; this is
/// the substrate for benchmarking that idea at query granularity.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  /// Index (into `ready`) of the job to run next. `ready` is non-empty.
  virtual size_t PickNext(const std::vector<Job>& ready) = 0;

  /// Execution feedback: the job just ran for `measured_seconds`.
  virtual void OnJobFinished(const Job& job, double measured_seconds) {
    (void)job;
    (void)measured_seconds;
  }
};

/// First-come-first-served (arrival order).
class FifoPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "fifo"; }
  size_t PickNext(const std::vector<Job>& ready) override;
};

/// Shortest-job-first with oracle knowledge of the true service time: the
/// unachievable upper bound learned schedulers approach.
class OracleSjfPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "sjf_oracle"; }
  size_t PickNext(const std::vector<Job>& ready) override;
};

/// Learned shortest-job-first: predicts service time per query class with
/// an online per-class EWMA over (size_hint-normalized) observed runtimes.
/// Mispredicts right after a workload shift and recovers with feedback —
/// the scheduling instance of the paper's adaptability story.
class LearnedSjfPolicy final : public SchedulingPolicy {
 public:
  struct Options {
    int num_classes = 8;
    double learning_rate = 0.1;
    double initial_rate_seconds_per_row = 1e-6;
  };

  LearnedSjfPolicy() : LearnedSjfPolicy(Options()) {}
  explicit LearnedSjfPolicy(Options options);

  std::string name() const override { return "sjf_learned"; }
  size_t PickNext(const std::vector<Job>& ready) override;
  void OnJobFinished(const Job& job, double measured_seconds) override;

  /// Predicted service time for a job (visible for tests).
  double Predict(const Job& job) const;

 private:
  Options options_;
  std::vector<double> per_class_rate_;  ///< Seconds per size_hint row.
  std::vector<double> per_class_fixed_;  ///< Fixed overhead seconds.
};

/// Outcome of a simulated schedule.
struct ScheduleMetrics {
  double makespan_seconds = 0.0;
  double mean_flow_seconds = 0.0;  ///< completion - arrival.
  double p99_flow_seconds = 0.0;
  /// Mean of flow/service (a job's slowdown); 1.0 is ideal.
  double mean_slowdown = 0.0;
  uint64_t jobs = 0;
};

/// Runs `jobs` (any order; sorted internally by arrival) through a single
/// non-preemptive server under `policy`. Deterministic.
ScheduleMetrics SimulateSchedule(std::vector<Job> jobs,
                                 SchedulingPolicy* policy);

/// Workload generator: a mixed stream of point/scan/analytic jobs with
/// noisy per-class service rates. `rate_scale` multiplies all service times
/// (use a different value per phase to model an execution-environment
/// change).
std::vector<Job> GenerateJobs(size_t count, double arrival_rate_qps,
                              double rate_scale, uint64_t seed,
                              double start_seconds = 0.0);

}  // namespace lsbench

#endif  // LSBENCH_SCHED_SCHEDULER_H_
