#ifndef LSBENCH_DATA_QUALITY_H_
#define LSBENCH_DATA_QUALITY_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace lsbench {

/// Output of the dataset-quality tool the paper sketches in §V-C: "this tool
/// could attribute low marks to uniform data distributions and workloads
/// while favoring datasets exhibiting skew or varying query load." All
/// component scores and the overall score are in [0, 100].
struct DataQualityReport {
  double skew_score = 0.0;     ///< Histogram-entropy deviation from uniform.
  double spacing_score = 0.0;  ///< Variability of inter-key gaps.
  double drift_score = 0.0;    ///< KS distance across snapshots (0 if only 1).
  double overall = 0.0;
  std::string summary;         ///< One-line human-readable verdict.
};

/// Scores a single dataset (drift_score is 0 — there is nothing to drift).
DataQualityReport ScoreDataset(const Dataset& dataset);

/// Scores an evolving dataset given as a sequence of snapshots; the drift
/// component is the mean KS statistic between consecutive snapshots.
DataQualityReport ScoreDatasetSequence(const std::vector<Dataset>& snapshots);

/// Quality of a workload trace. Inputs are aggregates that any driver can
/// produce: per-interval arrival counts and per-key access frequencies.
struct WorkloadQualityReport {
  double load_variation_score = 0.0;  ///< CV of per-interval arrivals.
  double access_skew_score = 0.0;     ///< Mass on the hottest 10% of keys.
  double overall = 0.0;
  std::string summary;
};

WorkloadQualityReport ScoreWorkloadTrace(
    const std::vector<double>& per_interval_arrivals,
    const std::vector<double>& per_key_access_counts);

}  // namespace lsbench

#endif  // LSBENCH_DATA_QUALITY_H_
