#include "data/distribution.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

namespace {

/// Folds an unbounded sample into [0, 1) by reflecting at the borders.
double FoldIntoUnit(double x) {
  x = std::fmod(x, 2.0);
  if (x < 0.0) x += 2.0;
  if (x >= 1.0) x = 2.0 - x;
  // Guard against returning exactly 1.0 due to rounding.
  return std::min(x, std::nextafter(1.0, 0.0));
}

}  // namespace

double GaussianUnit::Sample(Rng* rng) const {
  return FoldIntoUnit(mean_ + stddev_ * rng->NextGaussian());
}

std::string GaussianUnit::name() const {
  return "gaussian(" + FormatDouble(mean_, 2) + "," + FormatDouble(stddev_, 2) +
         ")";
}

double LognormalUnit::Sample(Rng* rng) const {
  const double x = std::exp(mu_ + sigma_ * rng->NextGaussian());
  // Saturate at exp(mu + 4 sigma) so nearly all mass lands inside [0, 1).
  const double saturation = std::exp(mu_ + 4.0 * sigma_);
  return std::min(x / saturation, std::nextafter(1.0, 0.0));
}

std::string LognormalUnit::name() const {
  return "lognormal(" + FormatDouble(mu_, 2) + "," + FormatDouble(sigma_, 2) +
         ")";
}

double ParetoUnit::Sample(Rng* rng) const {
  // Inverse-CDF of a Pareto with x_m = 1, truncated at 10^4.
  constexpr double kCap = 1e4;
  double u = rng->NextDouble();
  // Avoid u == 1 which would blow up.
  u = std::min(u, std::nextafter(1.0, 0.0));
  const double x = std::pow(1.0 - u, -1.0 / alpha_);
  return std::min(x, kCap) / kCap * (1.0 - 1e-12);
}

std::string ParetoUnit::name() const {
  return "pareto(" + FormatDouble(alpha_, 2) + ")";
}

MixtureUnit::MixtureUnit(
    std::vector<std::unique_ptr<UnitDistribution>> components,
    std::vector<double> weights)
    : components_(std::move(components)) {
  LSBENCH_ASSERT(!components_.empty());
  LSBENCH_ASSERT(components_.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    LSBENCH_ASSERT(w >= 0.0);
    total += w;
  }
  LSBENCH_ASSERT(total > 0.0);
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;
}

double MixtureUnit::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const size_t idx = std::min<size_t>(it - cumulative_.begin(),
                                      components_.size() - 1);
  return components_[idx]->Sample(rng);
}

std::string MixtureUnit::name() const {
  std::string out = "mixture(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += "+";
    out += components_[i]->name();
  }
  out += ")";
  return out;
}

ClusteredUnit::ClusteredUnit(int n_clusters, double spread, uint64_t seed)
    : spread_(spread) {
  LSBENCH_ASSERT(n_clusters > 0);
  Rng rng(seed);
  centers_.reserve(n_clusters);
  for (int i = 0; i < n_clusters; ++i) centers_.push_back(rng.NextDouble());
  std::sort(centers_.begin(), centers_.end());
}

double ClusteredUnit::Sample(Rng* rng) const {
  const size_t idx = rng->NextBounded(centers_.size());
  return FoldIntoUnit(centers_[idx] + spread_ * rng->NextGaussian());
}

std::string ClusteredUnit::name() const {
  return "clustered(" + std::to_string(centers_.size()) + "," +
         FormatDouble(spread_, 3) + ")";
}

BlendUnit::BlendUnit(const UnitDistribution* a, const UnitDistribution* b,
                     double t)
    : a_(a), b_(b), t_(std::clamp(t, 0.0, 1.0)) {
  LSBENCH_ASSERT(a != nullptr && b != nullptr);
}

double BlendUnit::Sample(Rng* rng) const {
  return rng->NextBool(t_) ? b_->Sample(rng) : a_->Sample(rng);
}

std::string BlendUnit::name() const {
  return "blend(" + a_->name() + "->" + b_->name() + "," +
         FormatDouble(t_, 2) + ")";
}

std::unique_ptr<UnitDistribution> MakeUniform() {
  return std::make_unique<UniformUnit>();
}
std::unique_ptr<UnitDistribution> MakeGaussian(double mean, double stddev) {
  return std::make_unique<GaussianUnit>(mean, stddev);
}
std::unique_ptr<UnitDistribution> MakeLognormal(double mu, double sigma) {
  return std::make_unique<LognormalUnit>(mu, sigma);
}
std::unique_ptr<UnitDistribution> MakePareto(double alpha) {
  return std::make_unique<ParetoUnit>(alpha);
}
std::unique_ptr<UnitDistribution> MakeClustered(int n_clusters, double spread,
                                                uint64_t seed) {
  return std::make_unique<ClusteredUnit>(n_clusters, spread, seed);
}

}  // namespace lsbench
