#ifndef LSBENCH_DATA_SYNTHESIZER_H_
#define LSBENCH_DATA_SYNTHESIZER_H_

#include <cstdint>

#include "data/dataset.h"
#include "workload/spec.h"
#include "workload/trace.h"

namespace lsbench {

/// The §V-C synthesizer: "an interesting avenue for a new benchmark
/// involves automatically generating synthetic datasets and workloads from
/// real-world deployments". Given an observed dataset or operation trace,
/// produce a synthetic equivalent that preserves the distributional
/// features learned systems exploit — without shipping the original data.

/// Generates `num_keys` fresh keys whose distribution matches `original`:
/// fits a piecewise-linear CDF to the original keys and samples by inverse
/// transform. The result shares no keys with the original beyond chance
/// collisions; KS(original, synthetic) is small by construction.
struct SynthesizeOptions {
  size_t num_keys = 0;   ///< 0 = same cardinality as the original.
  int cdf_knots = 512;   ///< Model capacity (higher = closer match).
  uint64_t seed = 1;
};

Dataset SynthesizeDatasetLike(const Dataset& original,
                              const SynthesizeOptions& options = {});

/// Reverse-engineers a PhaseSpec from an observed operation trace: recovers
/// the operation mix, the access skew (mapped to uniform / zipfian /
/// hotspot by the hot-key mass), the typical scan length, and the
/// range-count selectivity. The returned spec drives OperationGenerator to
/// produce *fresh* operations statistically like the observed ones.
struct FittedWorkload {
  PhaseSpec phase;
  /// Diagnostics of the fit.
  double hot10_mass = 0.0;   ///< Access mass on the hottest 10% of keys.
  uint64_t distinct_keys = 0;
};

FittedWorkload FitPhaseSpecFromTrace(const OperationTrace& trace,
                                     Key domain_max);

}  // namespace lsbench

#endif  // LSBENCH_DATA_SYNTHESIZER_H_
