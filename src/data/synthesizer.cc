#include "data/synthesizer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stats/model.h"
#include "util/assert.h"
#include "util/random.h"

namespace lsbench {

Dataset SynthesizeDatasetLike(const Dataset& original,
                              const SynthesizeOptions& options) {
  LSBENCH_ASSERT(!original.empty());
  const size_t target =
      options.num_keys > 0 ? options.num_keys : original.size();
  const CdfModel cdf =
      CdfModel::FitFromSorted(original.keys, options.cdf_knots);

  Dataset synthetic;
  synthetic.name = "synthetic_like_" + original.name;
  synthetic.domain_max = original.domain_max;
  synthetic.seed = options.seed;

  Rng rng(options.seed);
  std::unordered_set<Key> seen;
  seen.reserve(target * 2);
  // Inverse-transform sampling with a small additive jitter so quantile
  // plateaus (flat CDF stretches) do not alias onto identical keys.
  size_t attempts = 0;
  const size_t max_attempts = target * 100 + 1000;
  while (seen.size() < target && attempts < max_attempts) {
    ++attempts;
    const Key base = cdf.EvaluateInverse(rng.NextDouble());
    const Key jitter = rng.NextBounded(256);
    seen.insert(base + jitter);
  }
  synthetic.keys.assign(seen.begin(), seen.end());
  std::sort(synthetic.keys.begin(), synthetic.keys.end());
  return synthetic;
}

FittedWorkload FitPhaseSpecFromTrace(const OperationTrace& trace,
                                     Key domain_max) {
  FittedWorkload fitted;
  fitted.phase.name = "fitted_from_trace";
  if (trace.empty()) return fitted;

  // 1. Operation mix: relative frequencies.
  const std::vector<uint64_t> hist = trace.TypeHistogram();
  const double total = static_cast<double>(trace.size());
  const auto fraction = [&](OpType type) {
    return static_cast<double>(hist[static_cast<size_t>(type)]) / total;
  };
  fitted.phase.mix.get = fraction(OpType::kGet);
  fitted.phase.mix.scan = fraction(OpType::kScan);
  fitted.phase.mix.insert = fraction(OpType::kInsert);
  fitted.phase.mix.update = fraction(OpType::kUpdate);
  fitted.phase.mix.del = fraction(OpType::kDelete);
  fitted.phase.mix.range_count = fraction(OpType::kRangeCount);

  // 2. Access skew: mass of read accesses on the hottest 10% of distinct
  //    keys, mapped onto the closest generator family.
  std::unordered_map<Key, uint64_t> access_counts;
  uint64_t reads = 0;
  for (const Operation& op : trace.operations()) {
    if (op.type == OpType::kGet || op.type == OpType::kUpdate ||
        op.type == OpType::kScan) {
      ++access_counts[op.key];
      ++reads;
    }
  }
  fitted.distinct_keys = access_counts.size();
  if (reads > 0 && !access_counts.empty()) {
    std::vector<uint64_t> counts;
    counts.reserve(access_counts.size());
    for (const auto& [k, c] : access_counts) counts.push_back(c);
    std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
    const size_t hot = std::max<size_t>(1, counts.size() / 10);
    uint64_t hot_mass = 0;
    for (size_t i = 0; i < hot; ++i) hot_mass += counts[i];
    fitted.hot10_mass =
        static_cast<double>(hot_mass) / static_cast<double>(reads);
  }
  // Uniform access puts ~10% of mass on the top decile; zipfian(0.99) puts
  // most of it there; a hotspot in between. Thresholds chosen accordingly.
  if (fitted.hot10_mass < 0.2) {
    fitted.phase.access = AccessPattern::kUniform;
  } else if (fitted.hot10_mass < 0.6) {
    fitted.phase.access = AccessPattern::kHotSpot;
    fitted.phase.access_param = 0.1;
  } else {
    fitted.phase.access = AccessPattern::kZipfian;
    fitted.phase.access_param = 0.99;
  }

  // 3. Scan length: mean over observed scans.
  uint64_t scan_total = 0, scan_count = 0;
  for (const Operation& op : trace.operations()) {
    if (op.type == OpType::kScan) {
      scan_total += op.scan_length;
      ++scan_count;
    }
  }
  if (scan_count > 0) {
    fitted.phase.scan_length =
        static_cast<uint32_t>(std::max<uint64_t>(1, scan_total / scan_count));
  }

  // 4. Range-count selectivity: mean relative predicate width.
  if (domain_max > 0) {
    double width_sum = 0.0;
    uint64_t ranges = 0;
    for (const Operation& op : trace.operations()) {
      if (op.type == OpType::kRangeCount && op.range_end >= op.key) {
        width_sum += static_cast<double>(op.range_end - op.key) /
                     static_cast<double>(domain_max);
        ++ranges;
      }
    }
    if (ranges > 0) {
      fitted.phase.range_selectivity = width_sum / static_cast<double>(ranges);
    }
  }

  fitted.phase.num_operations = trace.size();
  return fitted;
}

}  // namespace lsbench
