#ifndef LSBENCH_DATA_IO_H_
#define LSBENCH_DATA_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace lsbench {

/// Dataset persistence. The binary format matches the SOSD convention so
/// real-world key sets (books/osm/wiki dumps) can be dropped in when
/// available: a little-endian uint64 count followed by that many
/// little-endian uint64 keys, sorted ascending.

/// Writes `dataset.keys` to `path` in SOSD binary format.
Status SaveKeysBinary(const Dataset& dataset, const std::string& path);

/// Reads a SOSD binary key file. Keys must be sorted ascending and unique;
/// violations are rejected. `name` labels the resulting dataset.
Result<Dataset> LoadKeysBinary(const std::string& path,
                               const std::string& name);

/// Writes keys as a one-column CSV with a "key" header.
Status SaveKeysCsv(const Dataset& dataset, const std::string& path);

/// Reads a one-column CSV of keys (header optional); sorts and
/// de-duplicates.
Result<Dataset> LoadKeysCsv(const std::string& path, const std::string& name);

}  // namespace lsbench

#endif  // LSBENCH_DATA_IO_H_
