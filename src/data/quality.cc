#include "data/quality.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/similarity.h"

namespace lsbench {

namespace {

constexpr int kHistogramBins = 64;
constexpr size_t kKsSampleCap = 4096;

/// 1 - normalized entropy of an equi-width histogram over [0, 1): 0 for a
/// perfectly uniform dataset, approaching 1 as mass concentrates.
double SkewFraction(const std::vector<double>& normalized_keys) {
  if (normalized_keys.empty()) return 0.0;
  std::vector<double> bins(kHistogramBins, 0.0);
  for (double v : normalized_keys) {
    int b = static_cast<int>(v * kHistogramBins);
    b = std::clamp(b, 0, kHistogramBins - 1);
    bins[b] += 1.0;
  }
  const double n = static_cast<double>(normalized_keys.size());
  double entropy = 0.0;
  for (double c : bins) {
    if (c <= 0.0) continue;
    const double p = c / n;
    entropy -= p * std::log2(p);
  }
  const double max_entropy = std::log2(static_cast<double>(kHistogramBins));
  return std::clamp(1.0 - entropy / max_entropy, 0.0, 1.0);
}

/// Coefficient of variation of inter-key gaps, mapped to [0, 1]. Uniform
/// random keys have exponential gaps (CV ~= 1); clustered data has much
/// larger CV. Map CV=1 -> 0 and CV>=5 -> 1.
double SpacingFraction(const std::vector<uint64_t>& keys) {
  if (keys.size() < 3) return 0.0;
  StreamingStats gaps;
  for (size_t i = 1; i < keys.size(); ++i) {
    gaps.Add(static_cast<double>(keys[i] - keys[i - 1]));
  }
  const double cv = gaps.CoefficientOfVariation();
  return std::clamp((cv - 1.0) / 4.0, 0.0, 1.0);
}

std::string Verdict(double overall) {
  if (overall >= 70.0) return "excellent benchmark dataset";
  if (overall >= 40.0) return "acceptable benchmark dataset";
  if (overall >= 15.0) return "weak benchmark dataset";
  return "poor benchmark dataset (too predictable/uniform)";
}

}  // namespace

DataQualityReport ScoreDataset(const Dataset& dataset) {
  DataQualityReport r;
  const std::vector<double> normalized = dataset.NormalizedKeys();
  r.skew_score = 100.0 * SkewFraction(normalized);
  r.spacing_score = 100.0 * SpacingFraction(dataset.keys);
  r.drift_score = 0.0;
  // Without drift, weight skew heavily: a single static snapshot is only as
  // interesting as its shape.
  r.overall = 0.6 * r.skew_score + 0.4 * r.spacing_score;
  r.summary = Verdict(r.overall) + " [" + dataset.name + "]";
  return r;
}

DataQualityReport ScoreDatasetSequence(
    const std::vector<Dataset>& snapshots) {
  if (snapshots.empty()) return DataQualityReport{};
  if (snapshots.size() == 1) return ScoreDataset(snapshots[0]);

  double skew_sum = 0.0;
  double spacing_sum = 0.0;
  for (const Dataset& ds : snapshots) {
    skew_sum += SkewFraction(ds.NormalizedKeys());
    spacing_sum += SpacingFraction(ds.keys);
  }
  double drift_sum = 0.0;
  for (size_t i = 1; i < snapshots.size(); ++i) {
    const auto a = Subsample(snapshots[i - 1].NormalizedKeys(), kKsSampleCap);
    const auto b = Subsample(snapshots[i].NormalizedKeys(), kKsSampleCap);
    drift_sum += KolmogorovSmirnov(a, b).statistic;
  }
  // Gradual drift has tiny per-step KS even when the total excursion is
  // large, so score the larger of step drift and end-to-end drift.
  const double end_to_end =
      KolmogorovSmirnov(
          Subsample(snapshots.front().NormalizedKeys(), kKsSampleCap),
          Subsample(snapshots.back().NormalizedKeys(), kKsSampleCap))
          .statistic;

  DataQualityReport r;
  const double n = static_cast<double>(snapshots.size());
  r.skew_score = 100.0 * skew_sum / n;
  r.spacing_score = 100.0 * spacing_sum / n;
  r.drift_score =
      100.0 * std::max(end_to_end,
                       drift_sum / static_cast<double>(snapshots.size() - 1));
  r.overall = 0.35 * r.skew_score + 0.25 * r.spacing_score +
              0.4 * std::min(100.0, 2.0 * r.drift_score);
  r.summary = Verdict(r.overall) + " [" + snapshots.front().name + " -> " +
              snapshots.back().name + ", " +
              std::to_string(snapshots.size()) + " snapshots]";
  return r;
}

WorkloadQualityReport ScoreWorkloadTrace(
    const std::vector<double>& per_interval_arrivals,
    const std::vector<double>& per_key_access_counts) {
  WorkloadQualityReport r;

  // Load variation: CV of arrivals per interval; CV >= 1 scores 100.
  StreamingStats load;
  for (double a : per_interval_arrivals) load.Add(a);
  const double cv = load.CoefficientOfVariation();
  r.load_variation_score = 100.0 * std::clamp(cv, 0.0, 1.0);

  // Access skew: fraction of total accesses hitting the hottest 10% keys.
  // Uniform access over k keys puts 0.1 there -> score 0; a fully skewed
  // workload puts ~1.0 there -> score 100.
  if (!per_key_access_counts.empty()) {
    std::vector<double> counts = per_key_access_counts;
    std::sort(counts.begin(), counts.end(), std::greater<double>());
    const size_t hot = std::max<size_t>(1, counts.size() / 10);
    double hot_mass = 0.0, total = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      if (i < hot) hot_mass += counts[i];
    }
    if (total > 0.0) {
      const double frac = hot_mass / total;
      r.access_skew_score = 100.0 * std::clamp((frac - 0.1) / 0.9, 0.0, 1.0);
    }
  }

  r.overall = 0.5 * r.load_variation_score + 0.5 * r.access_skew_score;
  if (r.overall >= 60.0) {
    r.summary = "dynamic, skewed workload (good benchmark input)";
  } else if (r.overall >= 25.0) {
    r.summary = "moderately dynamic workload";
  } else {
    r.summary = "static/uniform workload (poor benchmark input)";
  }
  return r;
}

}  // namespace lsbench
