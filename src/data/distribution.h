#ifndef LSBENCH_DATA_DISTRIBUTION_H_
#define LSBENCH_DATA_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace lsbench {

/// A continuous distribution over the unit interval [0, 1). Datasets are
/// produced by sampling a distribution and scaling into the key domain,
/// which makes distributions directly comparable (KS / MMD) and trivially
/// mixable — the mechanism behind LSBench's "drifting data" phases.
class UnitDistribution {
 public:
  virtual ~UnitDistribution() = default;

  /// Draws one value in [0, 1).
  virtual double Sample(Rng* rng) const = 0;

  /// Short descriptive name, e.g. "zipfish(1.1)".
  virtual std::string name() const = 0;
};

/// Uniform over [0, 1) — the distribution the paper's dataset-quality tool
/// should give "low marks" to (§V-C).
class UniformUnit final : public UnitDistribution {
 public:
  double Sample(Rng* rng) const override { return rng->NextDouble(); }
  std::string name() const override { return "uniform"; }
};

/// Gaussian with the given mean/stddev, folded back into [0, 1).
class GaussianUnit final : public UnitDistribution {
 public:
  GaussianUnit(double mean, double stddev) : mean_(mean), stddev_(stddev) {}
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  double mean_;
  double stddev_;
};

/// Lognormal, rescaled into [0, 1) by a fixed saturation point. Produces the
/// right-skewed shape typical of real key sets (e.g., "books" in SOSD).
class LognormalUnit final : public UnitDistribution {
 public:
  LognormalUnit(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto-style heavy tail mapped into [0, 1). Higher alpha means a
/// lighter tail.
class ParetoUnit final : public UnitDistribution {
 public:
  explicit ParetoUnit(double alpha) : alpha_(alpha) {}
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  double alpha_;
};

/// Mixture of component distributions with the given weights (normalized
/// internally). Owns its components.
class MixtureUnit final : public UnitDistribution {
 public:
  MixtureUnit(std::vector<std::unique_ptr<UnitDistribution>> components,
              std::vector<double> weights);
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<UnitDistribution>> components_;
  std::vector<double> cumulative_;
};

/// `n_clusters` Gaussian bumps at deterministic pseudo-random centers —
/// mimics the clustered key spaces of map/OSM-style data.
class ClusteredUnit final : public UnitDistribution {
 public:
  ClusteredUnit(int n_clusters, double spread, uint64_t seed);
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  std::vector<double> centers_;
  double spread_;
};

/// Linear interpolation between two distributions: with probability
/// (1 - t) samples from `a`, else from `b`. t in [0, 1]. Borrows both.
class BlendUnit final : public UnitDistribution {
 public:
  BlendUnit(const UnitDistribution* a, const UnitDistribution* b, double t);
  double Sample(Rng* rng) const override;
  std::string name() const override;

 private:
  const UnitDistribution* a_;
  const UnitDistribution* b_;
  double t_;
};

/// Factory helpers.
std::unique_ptr<UnitDistribution> MakeUniform();
std::unique_ptr<UnitDistribution> MakeGaussian(double mean, double stddev);
std::unique_ptr<UnitDistribution> MakeLognormal(double mu, double sigma);
std::unique_ptr<UnitDistribution> MakePareto(double alpha);
std::unique_ptr<UnitDistribution> MakeClustered(int n_clusters, double spread,
                                                uint64_t seed);

}  // namespace lsbench

#endif  // LSBENCH_DATA_DISTRIBUTION_H_
