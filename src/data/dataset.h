#ifndef LSBENCH_DATA_DATASET_H_
#define LSBENCH_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/distribution.h"
#include "util/random.h"

namespace lsbench {

/// A generated key set: sorted, de-duplicated 64-bit keys plus provenance.
struct Dataset {
  std::string name;
  std::vector<uint64_t> keys;  ///< Sorted ascending, unique.
  uint64_t domain_max = 0;     ///< Keys were drawn from [0, domain_max).
  uint64_t seed = 0;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  /// Keys normalized into [0, 1) — the representation KS/MMD consume.
  std::vector<double> NormalizedKeys() const;
};

/// Options for dataset generation.
struct DatasetOptions {
  size_t num_keys = 100000;
  uint64_t domain_max = uint64_t{1} << 48;
  uint64_t seed = 42;
};

/// Samples `options.num_keys` distinct keys from `dist` scaled into the key
/// domain. Oversamples internally until enough distinct keys exist, so the
/// result always has exactly `num_keys` keys (requires
/// num_keys <= domain_max / 2).
Dataset GenerateDataset(const UnitDistribution& dist,
                        const DatasetOptions& options);

/// A sequence of datasets drifting from `from` to `to` in `steps` stages.
/// Stage i samples from Blend(from, to, i/(steps-1)), so stage 0 is pure
/// `from` and the last stage pure `to` — the raw material for the paper's
/// "changing data distributions" requirement.
std::vector<Dataset> GenerateDriftSequence(const UnitDistribution& from,
                                           const UnitDistribution& to,
                                           int steps,
                                           const DatasetOptions& options);

/// Synthesizer for email-address-like string keys — the paper's §V-C example
/// of replacing a sensitive column by a synthetic generator with a similar
/// distribution. Domains follow a Zipf-like popularity; local parts combine
/// pools of first/last names with numeric suffixes.
class EmailGenerator {
 public:
  explicit EmailGenerator(uint64_t seed);

  /// One synthetic address, e.g. "maria.chen91@mailhub.example".
  std::string Next();

  /// Order-preserving 64-bit key from the first 8 bytes of the address
  /// (big-endian), so learned indexes can ingest string keys.
  static uint64_t ToKey(const std::string& email);

 private:
  Rng rng_;
  std::vector<std::string> domains_;
  std::vector<double> domain_cdf_;
};

/// Generates a Dataset whose keys come from EmailGenerator::ToKey over
/// `num_keys` distinct synthetic addresses.
Dataset GenerateEmailDataset(size_t num_keys, uint64_t seed);

}  // namespace lsbench

#endif  // LSBENCH_DATA_DATASET_H_
