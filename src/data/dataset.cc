#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "util/assert.h"

namespace lsbench {

std::vector<double> Dataset::NormalizedKeys() const {
  std::vector<double> out;
  out.reserve(keys.size());
  const double scale =
      domain_max > 0 ? 1.0 / static_cast<double>(domain_max) : 1.0;
  for (uint64_t k : keys) out.push_back(static_cast<double>(k) * scale);
  return out;
}

Dataset GenerateDataset(const UnitDistribution& dist,
                        const DatasetOptions& options) {
  LSBENCH_ASSERT(options.num_keys > 0);
  LSBENCH_ASSERT(options.domain_max >= 2 * options.num_keys);
  Dataset ds;
  ds.name = dist.name();
  ds.domain_max = options.domain_max;
  ds.seed = options.seed;

  Rng rng(options.seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(options.num_keys * 2);
  const double scale = static_cast<double>(options.domain_max);
  // The unit sample is < 1 so the scaled key is < domain_max.
  while (seen.size() < options.num_keys) {
    const double u = dist.Sample(&rng);
    const uint64_t key = static_cast<uint64_t>(u * scale);
    seen.insert(key);
  }
  ds.keys.assign(seen.begin(), seen.end());
  std::sort(ds.keys.begin(), ds.keys.end());
  return ds;
}

std::vector<Dataset> GenerateDriftSequence(const UnitDistribution& from,
                                           const UnitDistribution& to,
                                           int steps,
                                           const DatasetOptions& options) {
  LSBENCH_ASSERT(steps >= 2);
  std::vector<Dataset> out;
  out.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    BlendUnit blend(&from, &to, t);
    DatasetOptions step_options = options;
    step_options.seed = options.seed + static_cast<uint64_t>(i) * 7919;
    out.push_back(GenerateDataset(blend, step_options));
  }
  return out;
}

namespace {

const char* const kFirstNames[] = {
    "maria", "james", "wei", "fatima", "ivan",  "sofia", "liam",  "aisha",
    "yuki",  "pedro", "anna", "omar",   "chloe", "raj",   "elena", "noah",
    "mia",   "juan",  "lena", "kofi"};

const char* const kLastNames[] = {
    "chen",   "smith",  "garcia",  "mueller", "tanaka", "okafor", "silva",
    "kumar",  "ivanov", "dubois",  "rossi",   "kim",    "haddad", "nguyen",
    "brown",  "santos", "johnson", "lopez",   "wang",   "novak"};

// Popularity-ordered synthetic provider domains (Zipf-like usage).
const char* const kDomains[] = {
    "mailhub.example",   "inbox.example",   "postbox.example",
    "corp-mail.example", "uni.example",     "startup.example",
    "letters.example",   "rapid.example",   "cloudmsg.example",
    "relay.example"};

}  // namespace

EmailGenerator::EmailGenerator(uint64_t seed) : rng_(seed) {
  const size_t n = sizeof(kDomains) / sizeof(kDomains[0]);
  domains_.assign(kDomains, kDomains + n);
  // Zipf(1.0) popularity over domains.
  double total = 0.0;
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    const double w = 1.0 / static_cast<double>(i + 1);
    weights.push_back(w);
    total += w;
  }
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    domain_cdf_.push_back(acc);
  }
  domain_cdf_.back() = 1.0;
}

std::string EmailGenerator::Next() {
  const size_t nf = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
  const size_t nl = sizeof(kLastNames) / sizeof(kLastNames[0]);
  const std::string first = kFirstNames[rng_.NextBounded(nf)];
  const std::string last = kLastNames[rng_.NextBounded(nl)];
  std::string local = first;
  switch (rng_.NextBounded(4)) {
    case 0:
      local = first + "." + last;
      break;
    case 1:
      local = first + last.substr(0, 1);
      break;
    case 2:
      local = first + "." + last + std::to_string(rng_.NextBounded(100));
      break;
    default:
      local = first + std::to_string(1950 + rng_.NextBounded(60));
      break;
  }
  const double u = rng_.NextDouble();
  const auto it =
      std::lower_bound(domain_cdf_.begin(), domain_cdf_.end(), u);
  const size_t idx =
      std::min<size_t>(it - domain_cdf_.begin(), domains_.size() - 1);
  return local + "@" + domains_[idx];
}

uint64_t EmailGenerator::ToKey(const std::string& email) {
  uint64_t key = 0;
  for (size_t i = 0; i < 8; ++i) {
    key <<= 8;
    if (i < email.size()) key |= static_cast<uint8_t>(email[i]);
  }
  return key;
}

Dataset GenerateEmailDataset(size_t num_keys, uint64_t seed) {
  EmailGenerator gen(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_keys * 2);
  // Email prefixes collide often (8-byte prefix), and the generator's
  // distinct-prefix space may be smaller than num_keys. Stop once the
  // generator stagnates — a long run of attempts with no new key — rather
  // than burning a num_keys-proportional attempt budget: with a saturated
  // space that budget is O(num_keys * 1000) wasted string builds, slow
  // enough to stall spec parsing.
  constexpr size_t kStagnationWindow = 10000;
  size_t attempts = 0;
  size_t last_growth = 0;
  while (seen.size() < num_keys) {
    const size_t before = seen.size();
    seen.insert(EmailGenerator::ToKey(gen.Next()));
    ++attempts;
    if (seen.size() > before) {
      last_growth = attempts;
    } else if (attempts - last_growth >= kStagnationWindow) {
      break;
    }
  }
  Dataset ds;
  ds.name = "emails";
  ds.domain_max = ~uint64_t{0};
  ds.seed = seed;
  ds.keys.assign(seen.begin(), seen.end());
  std::sort(ds.keys.begin(), ds.keys.end());
  return ds;
}

}  // namespace lsbench
