#include "data/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/key_value.h"

namespace lsbench {

namespace {

/// RAII stdio handle (no exceptions, explicit Status plumbing).
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return file_ != nullptr; }
  std::FILE* get() { return file_; }

 private:
  std::FILE* file_;
};

}  // namespace

Status SaveKeysBinary(const Dataset& dataset, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) return Status::IoError("cannot open for write: " + path);
  const uint64_t count = dataset.keys.size();
  if (std::fwrite(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IoError("short write: " + path);
  }
  if (count > 0 &&
      std::fwrite(dataset.keys.data(), sizeof(Key), count, file.get()) !=
          count) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

Result<Dataset> LoadKeysBinary(const std::string& path,
                               const std::string& name) {
  File file(path, "rb");
  if (!file.ok()) return Status::IoError("cannot open for read: " + path);
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IoError("missing header: " + path);
  }
  Dataset ds;
  ds.name = name;
  ds.keys.resize(count);
  if (count > 0 &&
      std::fread(ds.keys.data(), sizeof(Key), count, file.get()) != count) {
    return Status::IoError("truncated key file: " + path);
  }
  for (size_t i = 1; i < ds.keys.size(); ++i) {
    if (ds.keys[i - 1] >= ds.keys[i]) {
      return Status::InvalidArgument(
          "keys not sorted/unique at index " + std::to_string(i));
    }
  }
  ds.domain_max = ds.keys.empty() ? 0 : ~Key{0};
  return ds;
}

Status SaveKeysCsv(const Dataset& dataset, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) return Status::IoError("cannot open for write: " + path);
  std::fputs("key\n", file.get());
  for (Key k : dataset.keys) {
    std::fprintf(file.get(), "%llu\n", static_cast<unsigned long long>(k));
  }
  return Status::OK();
}

Result<Dataset> LoadKeysCsv(const std::string& path, const std::string& name) {
  File file(path, "r");
  if (!file.ok()) return Status::IoError("cannot open for read: " + path);
  Dataset ds;
  ds.name = name;
  char line[128];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_no;
    // Strip trailing newline/CR.
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) continue;
    if (line_no == 1 && std::strcmp(line, "key") == 0) continue;  // Header.
    char* end = nullptr;
    const unsigned long long v = std::strtoull(line, &end, 10);
    if (end == line || *end != '\0') {
      return Status::InvalidArgument("bad key on line " +
                                     std::to_string(line_no));
    }
    ds.keys.push_back(static_cast<Key>(v));
  }
  std::sort(ds.keys.begin(), ds.keys.end());
  ds.keys.erase(std::unique(ds.keys.begin(), ds.keys.end()), ds.keys.end());
  ds.domain_max = ds.keys.empty() ? 0 : ~Key{0};
  return ds;
}

}  // namespace lsbench
