#ifndef LSBENCH_SUT_CONCURRENT_KV_H_
#define LSBENCH_SUT_CONCURRENT_KV_H_

#include <memory>
#include <string>
#include <vector>

#include "index/btree.h"
#include "sut/sut.h"
#include "util/annotate.h"
#include "util/sync.h"

namespace lsbench {

/// A natively thread-safe SUT: the key domain is range-partitioned across
/// `partitions` B+-trees, each guarded by its own mutex. Point operations
/// lock exactly one partition; scans and range counts walk consecutive
/// partitions locking one at a time. Split keys are chosen equi-count at
/// Load so partitions start balanced.
///
/// This is the scaling reference for the multi-worker driver: with N
/// workers touching mostly distinct partitions, throughput grows with N
/// (bench/scaling_workers.cc), whereas a serial SUT behind SerializingSut
/// stays flat. It deliberately skips the estimator/cost-model substrate —
/// its job is measuring harness fan-out, not optimizer quality.
class PartitionedKvSystem final : public SystemUnderTest {
 public:
  explicit PartitionedKvSystem(size_t partitions = 16, int fanout = 64);

  std::string name() const override;
  SutConcurrency concurrency() const override {
    return SutConcurrency::kThreadSafe;
  }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  LSBENCH_DETERMINISTIC
  OpResult Execute(const Operation& op) override;
  /// Partition-grouped fan-out: walks the shards in order and serves every
  /// batch element owned by a shard under one lock acquisition, so a batch
  /// locks each touched partition exactly once instead of once per element.
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override;
  SutStats GetStats() const override;

  size_t partition_count() const { return shards_.size(); }

 private:
  struct Shard {
    Mutex mu;
    BTree tree LSBENCH_GUARDED_BY(mu);
    explicit Shard(int fanout) : tree(fanout) {}
  };

  /// Index of the partition owning `key`: the last shard whose lower
  /// bound is <= key.
  size_t ShardFor(Key key) const;

  int fanout_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// shard_lower_[i] is the smallest key routed to shard i
  /// (shard_lower_[0] == 0). Immutable after Load.
  std::vector<Key> shard_lower_;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_CONCURRENT_KV_H_
