#ifndef LSBENCH_SUT_SYSTEMS_H_
#define LSBENCH_SUT_SYSTEMS_H_

#include <memory>
#include <string>
#include <vector>

#include "index/btree.h"
#include "index/kv_index.h"
#include "index/lsm.h"
#include "learned/access_path.h"
#include "learned/adaptive.h"
#include "learned/cardinality.h"
#include "learned/drift_detector.h"
#include "learned/pgm.h"
#include "learned/rmi.h"
#include "sut/sut.h"
#include "util/annotate.h"
#include "util/clock.h"

namespace lsbench {

/// Shared execution engine: turns Operations into KvIndex calls and routes
/// range-count queries through a cardinality estimator + cost model (the
/// optimizer substrate). Subclasses provide the index and the estimator
/// flavor.
class KvSystemBase : public SystemUnderTest {
 public:
  LSBENCH_DETERMINISTIC
  OpResult Execute(const Operation& op) override;
  /// Hoists the virtual index() lookup out of the per-element loop; one
  /// OnExecuted notification per batch (the batch is one request unit).
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override;
  SutStats GetStats() const override;

 protected:
  KvSystemBase() = default;

  /// The index all operations run against.
  virtual KvIndex* index() = 0;
  virtual const KvIndex* index() const = 0;

  /// Hook invoked on every executed operation (drift tracking etc.).
  virtual void OnExecuted(const Operation& op) { (void)op; }

  /// Counts keys in [lo, hi] by walking the index from lo. Returns rows
  /// counted; `touched` reports entries visited (the observed cost).
  uint64_t CountByProbe(Key lo, Key hi, uint64_t* touched);
  /// Counts keys in [lo, hi] by scanning everything.
  uint64_t CountByScan(Key lo, Key hi, uint64_t* touched);

  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<CostModel> cost_model_;

 private:
  std::vector<KeyValue> scratch_;
};

/// The traditional baseline: a B+-tree with an equi-depth histogram and a
/// static cost model. No training; "tuning" happens outside the system (the
/// DBA step function of Fig. 1d).
class BTreeSystem final : public KvSystemBase {
 public:
  explicit BTreeSystem(int fanout = 64, int histogram_buckets = 64);

  std::string name() const override { return "btree_system"; }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  /// Native batch path: per-element calls go straight to the concrete
  /// BTree (devirtualized and inlinable), not through KvIndex.
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override;

 protected:
  KvIndex* index() override { return &btree_; }
  const KvIndex* index() const override { return &btree_; }

 private:
  BTree btree_;
  int histogram_buckets_;
};

/// The write-optimized traditional baseline: an LSM tree with Bloom
/// filters and an equi-depth histogram. Like the B+-tree system it never
/// trains; unlike it, compaction gives it background-maintenance dynamics
/// of its own, a useful contrast in adaptability experiments.
class LsmKvSystem final : public KvSystemBase {
 public:
  explicit LsmKvSystem(LsmOptions options = {}, int histogram_buckets = 64);

  std::string name() const override { return "lsm_system"; }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  SutStats GetStats() const override;

 protected:
  KvIndex* index() override { return &lsm_; }
  const KvIndex* index() const override { return &lsm_; }

 private:
  LsmTree lsm_;
  int histogram_buckets_;
};

/// When a static learned system refreshes its models.
enum class RetrainPolicy {
  kNever,           ///< Train once, never again (pure specialization).
  kOnPhaseStart,    ///< Retrain at every (non-holdout) phase boundary.
  kDeltaThreshold,  ///< Retrain when the delta buffer outgrows a fraction
                    ///< of the static data.
  kDriftTriggered,  ///< Retrain when the KS drift detector fires.
};

std::string RetrainPolicyToString(RetrainPolicy policy);

/// Configuration of the learned KV system.
struct LearnedSystemOptions {
  enum class IndexKind { kRmi, kPgm };
  IndexKind index_kind = IndexKind::kRmi;
  RmiOptions rmi;             ///< Used when index_kind == kRmi.
  uint32_t pgm_epsilon = 64;  ///< Used when index_kind == kPgm.
  RetrainPolicy retrain_policy = RetrainPolicy::kDriftTriggered;
  double delta_threshold_fraction = 0.1;
  DriftDetector::Options drift;
  LearnedCardinalityEstimator::Options estimator;
};

/// Learned system with an explicit training phase: an RMI or PGM index plus
/// a learned cardinality estimator and an online cost model. Retraining is
/// synchronous and blocks the operation that triggers it — the mechanism
/// that produces the transition stalls and SLA violations of Fig. 1b/1c.
class LearnedKvSystem final : public KvSystemBase {
 public:
  /// `clock` times online retraining; pass a VirtualClock in tests. Must
  /// outlive the system; nullptr selects an internal RealClock.
  explicit LearnedKvSystem(LearnedSystemOptions options = {},
                           const Clock* clock = nullptr);

  std::string name() const override;
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  TrainReport Train() override;
  void OnPhaseStart(int phase_index, bool holdout) override;
  SutStats GetStats() const override;
  /// Publishes the ad-hoc training tallies as registry instruments:
  /// "sut.retrains" / "sut.train_items" counters and a "sut.retrain_nanos"
  /// latency histogram over synchronous retrain stalls.
  void BindObservability(MetricsRegistry* registry) override;
  /// Native batch path: resolves RMI-vs-PGM once per batch, then loops on
  /// the concrete index; drift observes every batch key.
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override;

  uint64_t retrain_events() const { return retrain_events_; }
  size_t delta_size() const;

 protected:
  KvIndex* index() override;
  const KvIndex* index() const override;
  void OnExecuted(const Operation& op) override;

 private:
  void MaybeRetrain();
  /// Synchronous retrain: refits index models and the estimator.
  void RetrainNow();
  std::vector<Key> CurrentKeysSnapshot() const;

  LearnedSystemOptions options_;
  RealClock default_clock_;
  const Clock* clock_;
  std::unique_ptr<RmiIndex> rmi_;
  std::unique_ptr<PgmIndex> pgm_;
  DriftDetector drift_;
  bool trained_ = false;
  uint64_t retrain_events_ = 0;
  double online_train_seconds_ = 0.0;
  uint64_t offline_train_items_ = 0;
  uint64_t ops_since_drift_check_ = 0;
  Counter* retrains_counter_ = nullptr;
  Counter* train_items_counter_ = nullptr;
  FixedHistogram* retrain_nanos_ = nullptr;
};

/// Continuously adaptive learned system: the ALEX-style index adapts inside
/// every insert, so there is no separate training phase; online training
/// effort is reported as retrain events/work (the paper's §V-D3 fallback of
/// measuring overhead for online learners).
class AdaptiveKvSystem final : public KvSystemBase {
 public:
  explicit AdaptiveKvSystem(AdaptiveOptions options = {},
                            LearnedCardinalityEstimator::Options
                                estimator_options = {});

  std::string name() const override { return "adaptive_system"; }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  SutStats GetStats() const override;

 protected:
  KvIndex* index() override { return &alex_; }
  const KvIndex* index() const override { return &alex_; }

 private:
  AdaptiveLearnedIndex alex_;
  LearnedCardinalityEstimator::Options estimator_options_;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_SYSTEMS_H_
