#include "sut/fault_injection.h"

#include "util/assert.h"

namespace lsbench {

bool operator==(const FaultWindow& a, const FaultWindow& b) {
  return a.phase == b.phase && a.execute_fail_rate == b.execute_fail_rate &&
         a.execute_fail_code == b.execute_fail_code &&
         a.latency_spike_rate == b.latency_spike_rate &&
         a.latency_spike_nanos == b.latency_spike_nanos &&
         a.stall_rate == b.stall_rate && a.stall_nanos == b.stall_nanos &&
         a.fail_train == b.fail_train &&
         a.train_hang_nanos == b.train_hang_nanos;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.seed == b.seed && a.load_failures == b.load_failures &&
         a.windows == b.windows;
}

const FaultWindow* FaultPlan::WindowForPhase(int phase) const {
  const FaultWindow* match = nullptr;
  const FaultWindow* wildcard = nullptr;
  for (const FaultWindow& w : windows) {
    if (w.phase == phase) match = &w;
    if (w.phase < 0) wildcard = &w;
  }
  return match != nullptr ? match : wildcard;
}

FaultInjectingSut::FaultInjectingSut(SystemUnderTest* inner, FaultPlan plan,
                                     const Clock* clock,
                                     VirtualClock* virtual_clock)
    : inner_(inner),
      plan_(std::move(plan)),
      clock_(clock != nullptr ? clock : &default_clock_),
      virtual_clock_(virtual_clock),
      phase_rng_(PhaseRng(0)) {
  LSBENCH_ASSERT(inner != nullptr);
}

Rng FaultInjectingSut::PhaseRng(int phase) const {
  // Per-phase forks keep a phase's injection decisions independent of how
  // many draws earlier phases consumed.
  return Rng(plan_.seed).Fork(static_cast<uint64_t>(phase) + 0x0fa171u);
}

void FaultInjectingSut::BurnNanos(int64_t nanos) {
  if (nanos <= 0) return;
  if (virtual_clock_ != nullptr) {
    virtual_clock_->AdvanceNanos(nanos);
    return;
  }
  const int64_t until = clock_->NowNanos() + nanos;
  while (clock_->NowNanos() < until) {
    // Spin: injected latency must be observable in real-clock runs.
  }
}

Status FaultInjectingSut::Load(const std::vector<KeyValue>& sorted_pairs) {
  ++load_attempts_;
  if (load_attempts_ <= plan_.load_failures) {
    ++stats_.failed_loads;
    return Status::IoError("injected fault: load I/O error (attempt " +
                           std::to_string(load_attempts_) + ")");
  }
  return inner_->Load(sorted_pairs);
}

TrainReport FaultInjectingSut::Train() {
  const FaultWindow* w = plan_.WindowForPhase(current_phase_);
  if (w != nullptr && w->train_hang_nanos > 0) {
    ++stats_.hung_trains;
    BurnNanos(w->train_hang_nanos);
  }
  if (w != nullptr && w->fail_train) {
    ++stats_.failed_trains;
    TrainReport report;
    report.status = Status::Unavailable("injected fault: training failed");
    return report;
  }
  return inner_->Train();
}

OpResult FaultInjectingSut::Execute(const Operation& op) {
  const FaultWindow* w = plan_.WindowForPhase(current_phase_);
  if (w != nullptr) {
    // Fixed draw order per operation keeps the decision stream stable
    // across plans that enable different subsets of fault kinds.
    const double u_fail = phase_rng_.NextDouble();
    const double u_spike = phase_rng_.NextDouble();
    const double u_stall = phase_rng_.NextDouble();
    if (w->stall_rate > 0.0 && u_stall < w->stall_rate) {
      ++stats_.injected_stalls;
      BurnNanos(w->stall_nanos);
    } else if (w->latency_spike_rate > 0.0 && u_spike < w->latency_spike_rate) {
      ++stats_.injected_spikes;
      BurnNanos(w->latency_spike_nanos);
    }
    if (w->execute_fail_rate > 0.0 && u_fail < w->execute_fail_rate) {
      ++stats_.injected_failures;
      OpResult result;
      result.status = Status(w->execute_fail_code, "injected fault");
      return result;
    }
  }
  return inner_->Execute(op);
}

void FaultInjectingSut::OnPhaseStart(int phase_index, bool holdout) {
  current_phase_ = phase_index;
  phase_rng_ = PhaseRng(phase_index);
  inner_->OnPhaseStart(phase_index, holdout);
}

}  // namespace lsbench
