#include "sut/fault_injection.h"

#include <utility>

#include "util/assert.h"

namespace lsbench {

namespace {

/// Stream tag separating per-lane fault forks from every other fork family.
constexpr uint64_t kLaneStreamTag = 0x1a9e0000ULL;

}  // namespace

bool operator==(const FaultWindow& a, const FaultWindow& b) {
  return a.phase == b.phase && a.execute_fail_rate == b.execute_fail_rate &&
         a.execute_fail_code == b.execute_fail_code &&
         a.latency_spike_rate == b.latency_spike_rate &&
         a.latency_spike_nanos == b.latency_spike_nanos &&
         a.stall_rate == b.stall_rate && a.stall_nanos == b.stall_nanos &&
         a.fail_train == b.fail_train &&
         a.train_hang_nanos == b.train_hang_nanos;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.seed == b.seed && a.load_failures == b.load_failures &&
         a.windows == b.windows;
}

const FaultWindow* FaultPlan::WindowForPhase(int phase) const {
  const FaultWindow* match = nullptr;
  const FaultWindow* wildcard = nullptr;
  for (const FaultWindow& w : windows) {
    if (w.phase == phase) match = &w;
    if (w.phase < 0) wildcard = &w;
  }
  return match != nullptr ? match : wildcard;
}

FaultInjectingSut::FaultInjectingSut(SystemUnderTest* inner, FaultPlan plan,
                                     const Clock* clock,
                                     VirtualClock* virtual_clock)
    : inner_(inner), plan_(std::move(plan)) {
  LSBENCH_ASSERT(inner != nullptr);
  LaneClocks lane0;
  lane0.clock = clock != nullptr ? clock : &default_clock_;
  lane0.virtual_clock = virtual_clock;
  lanes_.push_back(lane0);
  lane_rngs_.push_back(LaneRng(0, 0));
}

void FaultInjectingSut::ConfigureLanes(std::vector<LaneClocks> lanes) {
  LSBENCH_ASSERT(!lanes.empty());
  for (LaneClocks& lane : lanes) {
    if (lane.clock == nullptr) lane.clock = &default_clock_;
  }
  lanes_ = std::move(lanes);
  lane_rngs_.clear();
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    lane_rngs_.push_back(LaneRng(current_phase_, lane));
  }
}

Rng FaultInjectingSut::PhaseRng(int phase) const {
  // Per-phase forks keep a phase's injection decisions independent of how
  // many draws earlier phases consumed.
  return Rng(plan_.seed).Fork(static_cast<uint64_t>(phase) + 0x0fa171u);
}

Rng FaultInjectingSut::LaneRng(int phase, size_t lane) const {
  const Rng base = PhaseRng(phase);
  if (lane == 0) return base;
  return base.Fork(kLaneStreamTag + lane);
}

void FaultInjectingSut::BurnNanos(size_t lane, int64_t nanos) {
  if (nanos <= 0) return;
  const LaneClocks& clocks = lanes_[lane];
  if (clocks.virtual_clock != nullptr) {
    clocks.virtual_clock->AdvanceNanos(nanos);
    return;
  }
  const int64_t until = clocks.clock->NowNanos() + nanos;
  while (clocks.clock->NowNanos() < until) {
    // Spin: injected latency must be observable in real-clock runs.
  }
}

Status FaultInjectingSut::Load(const std::vector<KeyValue>& sorted_pairs) {
  ++load_attempts_;
  if (load_attempts_ <= plan_.load_failures) {
    stats_.failed_loads.Add(1);
    return Status::IoError("injected fault: load I/O error (attempt " +
                           std::to_string(load_attempts_) + ")");
  }
  return inner_->Load(sorted_pairs);
}

TrainReport FaultInjectingSut::Train() {
  const FaultWindow* w = plan_.WindowForPhase(current_phase_);
  if (w != nullptr && w->train_hang_nanos > 0) {
    stats_.hung_trains.Add(1);
    BurnNanos(0, w->train_hang_nanos);
  }
  if (w != nullptr && w->fail_train) {
    stats_.failed_trains.Add(1);
    TrainReport report;
    report.status = Status::Unavailable("injected fault: training failed");
    return report;
  }
  return inner_->Train();
}

OpResult FaultInjectingSut::Execute(const Operation& op) {
  return ExecuteLane(0, op);
}

OpResult FaultInjectingSut::ExecuteLane(size_t lane, const Operation& op) {
  LSBENCH_ASSERT(lane < lanes_.size());
  const FaultWindow* w = plan_.WindowForPhase(current_phase_);
  if (w != nullptr) {
    Rng& rng = lane_rngs_[lane];
    // Fixed draw order per operation keeps the decision stream stable
    // across plans that enable different subsets of fault kinds.
    const double u_fail = rng.NextDouble();
    const double u_spike = rng.NextDouble();
    const double u_stall = rng.NextDouble();
    if (w->stall_rate > 0.0 && u_stall < w->stall_rate) {
      stats_.injected_stalls.Add(1);
      BurnNanos(lane, w->stall_nanos);
    } else if (w->latency_spike_rate > 0.0 && u_spike < w->latency_spike_rate) {
      stats_.injected_spikes.Add(1);
      BurnNanos(lane, w->latency_spike_nanos);
    }
    if (w->execute_fail_rate > 0.0 && u_fail < w->execute_fail_rate) {
      stats_.injected_failures.Add(1);
      OpResult result;
      result.status = Status(w->execute_fail_code, "injected fault");
      return result;
    }
  }
  return inner_->Execute(op);
}

void FaultInjectingSut::ExecuteBatch(const Operation& op, OpResult* results) {
  ExecuteLaneBatch(0, op, results);
}

void FaultInjectingSut::ExecuteLaneBatch(size_t lane, const Operation& op,
                                         OpResult* results) {
  LSBENCH_ASSERT(lane < lanes_.size());
  const FaultWindow* w = plan_.WindowForPhase(current_phase_);
  if (w != nullptr) {
    Rng& rng = lane_rngs_[lane];
    const double u_fail = rng.NextDouble();
    const double u_spike = rng.NextDouble();
    const double u_stall = rng.NextDouble();
    if (w->stall_rate > 0.0 && u_stall < w->stall_rate) {
      stats_.injected_stalls.Add(1);
      BurnNanos(lane, w->stall_nanos);
    } else if (w->latency_spike_rate > 0.0 &&
               u_spike < w->latency_spike_rate) {
      stats_.injected_spikes.Add(1);
      BurnNanos(lane, w->latency_spike_nanos);
    }
    if (w->execute_fail_rate > 0.0 && u_fail < w->execute_fail_rate) {
      stats_.injected_failures.Add(1);
      const uint32_t n = OpResultCount(op);
      for (uint32_t i = 0; i < n; ++i) {
        OpResult& r = results[i];
        r.ok = false;
        r.rows = 0;
        r.status = Status(w->execute_fail_code, "injected fault");
      }
      return;
    }
  }
  inner_->ExecuteBatch(op, results);
}

void FaultInjectingSut::OnPhaseStart(int phase_index, bool holdout) {
  current_phase_ = phase_index;
  for (size_t lane = 0; lane < lane_rngs_.size(); ++lane) {
    lane_rngs_[lane] = LaneRng(phase_index, lane);
  }
  inner_->OnPhaseStart(phase_index, holdout);
}

FaultStats FaultInjectingSut::fault_stats() const {
  FaultStats snapshot;
  snapshot.injected_failures =
      stats_.injected_failures.Load();
  snapshot.injected_spikes =
      stats_.injected_spikes.Load();
  snapshot.injected_stalls =
      stats_.injected_stalls.Load();
  snapshot.failed_loads = stats_.failed_loads.Load();
  snapshot.failed_trains =
      stats_.failed_trains.Load();
  snapshot.hung_trains = stats_.hung_trains.Load();
  return snapshot;
}

}  // namespace lsbench
