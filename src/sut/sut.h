#ifndef LSBENCH_SUT_SUT_H_
#define LSBENCH_SUT_SUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "obs/metrics_registry.h"
#include "util/status.h"
#include "workload/operation.h"

namespace lsbench {

/// Result of executing one operation. `status` reports whether the system
/// executed the operation at all (OK even for a miss); `ok` reports the
/// data-level outcome (found / applied). A SUT that cannot serve a request
/// (transient outage, internal error) returns a non-OK status and the
/// resilient driver decides whether to retry, time out, or degrade.
struct [[nodiscard]] OpResult {
  bool ok = false;        ///< Found / applied.
  uint64_t rows = 0;      ///< Rows returned (scan) or counted (range count).
  Status status;          ///< Execution outcome; defaults to OK.
};

/// What one training invocation did. The driver stamps wall time around the
/// call; `work_items` lets cost models reason about training effort
/// independent of machine speed. A failed training pass (e.g. under fault
/// injection) reports a non-OK status with trained == false.
struct [[nodiscard]] TrainReport {
  bool trained = false;
  uint64_t work_items = 0;  ///< Keys fitted / models built.
  Status status;            ///< Training outcome; defaults to OK.
};

/// Aggregate SUT-side statistics the benchmark reports alongside its own
/// measurements (§V-D3 training-cost accounting).
struct SutStats {
  size_t memory_bytes = 0;
  uint64_t offline_train_items = 0;
  double online_train_seconds = 0.0;  ///< Time spent retraining inside Execute.
  uint64_t retrain_events = 0;
  double model_error = 0.0;  ///< Implementation-defined model quality signal.
};

/// What the driver may assume about a SUT's thread-safety. The default is
/// the conservative contract every pre-existing SUT already satisfies.
enum class SutConcurrency {
  /// Execute may only be called from one thread at a time. Under a
  /// multi-worker run the driver serializes access with an external lock
  /// (see SerializingSut) — correctness is preserved, throughput won't
  /// scale.
  kSerial,
  /// Execute is safe to call concurrently from many threads. Load, Train,
  /// and OnPhaseStart are still invoked by a single thread at quiescent
  /// points (before execution / at phase barriers), but may be called from
  /// *different* threads across phases, so implementations must not rely
  /// on thread identity. See docs/ARCHITECTURE.md for the full contract.
  kThreadSafe,
};

/// The system-under-test interface. Deliberately minimal (the paper requires
/// the benchmark to avoid imposing architectural or runtime constraints):
/// load data, optionally train, execute operations, and receive phase-change
/// notifications. Everything else — what to learn, when to retrain, how to
/// adapt — is the SUT's business, which is precisely what the benchmark
/// measures.
class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;

  virtual std::string name() const = 0;

  /// Concurrency capability. Serial by default; thread-safe SUTs opt in to
  /// let the multi-worker driver fan Execute out without an external lock.
  virtual SutConcurrency concurrency() const { return SutConcurrency::kSerial; }

  /// Replaces the stored data with `sorted_pairs` (ascending unique keys).
  virtual Status Load(const std::vector<KeyValue>& sorted_pairs) = 0;

  /// Offline training pass over the currently loaded data. Traditional
  /// systems return trained=false. The driver times this call and charges
  /// it to the training budget; it is never invoked for hold-out phases.
  virtual TrainReport Train() { return {}; }

  /// Executes one operation synchronously. Batch ops (kBatchGet /
  /// kBatchPut) are legal here too — implementations that don't override
  /// ExecuteBatch still see them and should aggregate (ok = all served,
  /// rows = elements found/applied); KvSystemBase does this for every
  /// bundled SUT.
  virtual OpResult Execute(const Operation& op) = 0;

  /// Executes one batch op, writing one OpResult per batch element into
  /// `results` (which has room for `op.batch_size` entries). The default
  /// unrolls the batch into scalar Execute calls on the per-element views
  /// (kBatchGet -> kGet, kBatchPut -> kUpdate), so every SUT supports
  /// batches; native overrides (B-tree, learned, partitioned) amortize
  /// per-op costs instead. Wrappers (serializing / fault-injecting /
  /// observability) must forward this call without unbatching, so a batch
  /// stays one request unit for locking and fault accounting.
  virtual void ExecuteBatch(const Operation& op, OpResult* results) {
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      results[i] = Execute(ScalarViewOf(op, i));
    }
  }

  /// Notification that the benchmark switched phases. `holdout` phases are
  /// out-of-sample: a well-behaved SUT may adapt online but gets no
  /// offline training pass.
  virtual void OnPhaseStart(int phase_index, bool holdout) {
    (void)phase_index;
    (void)holdout;
  }

  virtual SutStats GetStats() const = 0;

  /// Offers the SUT a metrics registry to publish internal instruments
  /// into (retrain counters, model-rebuild latency histograms, ...). Called
  /// once per run, before Load, only when metrics export is enabled.
  /// Default: the SUT publishes nothing. `registry` outlives the run;
  /// wrapper SUTs must forward the call to the system they wrap.
  virtual void BindObservability(MetricsRegistry* registry) {
    (void)registry;
  }
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_SUT_H_
