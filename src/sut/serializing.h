#ifndef LSBENCH_SUT_SERIALIZING_H_
#define LSBENCH_SUT_SERIALIZING_H_

#include <mutex>
#include <string>
#include <vector>

#include "sut/sut.h"
#include "util/assert.h"

namespace lsbench {

/// Decorator that makes a serial SystemUnderTest safe to drive from many
/// workers by serializing every entry point behind one mutex — the
/// driver-side "external lock" fallback of the SUT concurrency contract.
/// Every pre-existing (serial) SUT keeps running under `workers > 1`
/// unchanged; it just cannot scale, which is itself a faithful measurement
/// of a serial system under concurrent offered load.
class SerializingSut final : public SystemUnderTest {
 public:
  /// `inner` must outlive the wrapper.
  explicit SerializingSut(SystemUnderTest* inner) : inner_(inner) {
    LSBENCH_ASSERT(inner != nullptr);
  }

  std::string name() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->name();
  }

  SutConcurrency concurrency() const override {
    return SutConcurrency::kThreadSafe;
  }

  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Load(sorted_pairs);
  }

  TrainReport Train() override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Train();
  }

  OpResult Execute(const Operation& op) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Execute(op);
  }

  void OnPhaseStart(int phase_index, bool holdout) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->OnPhaseStart(phase_index, holdout);
  }

  SutStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->GetStats();
  }

 private:
  mutable std::mutex mu_;
  SystemUnderTest* inner_;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_SERIALIZING_H_
