#ifndef LSBENCH_SUT_SERIALIZING_H_
#define LSBENCH_SUT_SERIALIZING_H_

#include <string>
#include <vector>

#include "sut/sut.h"
#include "util/annotate.h"
#include "util/assert.h"
#include "util/sync.h"

namespace lsbench {

/// Decorator that makes a serial SystemUnderTest safe to drive from many
/// workers by serializing every entry point behind one mutex — the
/// driver-side "external lock" fallback of the SUT concurrency contract.
/// Every pre-existing (serial) SUT keeps running under `workers > 1`
/// unchanged; it just cannot scale, which is itself a faithful measurement
/// of a serial system under concurrent offered load. The inner pointer is
/// GUARDED_BY the mutex, so Thread Safety Analysis proves no entry point
/// can reach the serial system without holding the lock.
class SerializingSut final : public SystemUnderTest {
 public:
  /// `inner` must outlive the wrapper.
  explicit SerializingSut(SystemUnderTest* inner) : inner_(inner) {
    LSBENCH_ASSERT(inner != nullptr);
  }

  std::string name() const override {
    MutexLock lock(mu_);
    return inner_->name();
  }

  SutConcurrency concurrency() const override {
    return SutConcurrency::kThreadSafe;
  }

  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    MutexLock lock(mu_);
    return inner_->Load(sorted_pairs);
  }

  TrainReport Train() override {
    MutexLock lock(mu_);
    return inner_->Train();
  }

  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  OpResult Execute(const Operation& op) override {
    MutexLock lock(mu_);
    return inner_->Execute(op);
  }

  /// Forwards the whole batch under ONE lock acquisition — the batch stays
  /// one request unit, and the serialized system still amortizes its
  /// per-batch costs across elements.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override {
    MutexLock lock(mu_);
    inner_->ExecuteBatch(op, results);
  }

  void OnPhaseStart(int phase_index, bool holdout) override {
    MutexLock lock(mu_);
    inner_->OnPhaseStart(phase_index, holdout);
  }

  SutStats GetStats() const override {
    MutexLock lock(mu_);
    return inner_->GetStats();
  }

  void BindObservability(MetricsRegistry* registry) override {
    MutexLock lock(mu_);
    inner_->BindObservability(registry);
  }

 private:
  mutable Mutex mu_;
  SystemUnderTest* const inner_ LSBENCH_PT_GUARDED_BY(mu_);
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_SERIALIZING_H_
