#ifndef LSBENCH_SUT_FAULT_INJECTION_H_
#define LSBENCH_SUT_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sut/fault_plan.h"
#include "sut/sut.h"
#include "util/annotate.h"
#include "util/atomic.h"
#include "util/clock.h"
#include "util/random.h"

namespace lsbench {

/// Decorator that wraps any SystemUnderTest and perturbs it according to a
/// FaultPlan: transient Execute failures, latency spikes and stalls, failed
/// or hung training passes, and Load I/O errors. All decisions flow from
/// RNG streams forked per phase from the plan's seed, so a faulted run is
/// reproducible bit-for-bit — the injector is to system health what the
/// workload generator is to data distributions.
///
/// Injected latency advances the supplied VirtualClock in simulation mode
/// and busy-waits on the real clock otherwise, so spikes and stalls are
/// visible to the driver's timestamps either way. The wrapper is
/// transparent: name() and GetStats() pass through to the inner system.
///
/// Concurrency: the injector fans out to *lanes*. Each lane owns a seeded
/// fault stream (forked per phase, lane 0 identical to the historical
/// single-stream injector) and the clock pair it burns injected latency
/// against. Distinct lanes may execute concurrently — stats counters are
/// atomic and lanes share no mutable state — provided each thread sticks
/// to its own lane and the inner system is itself thread-safe (the driver
/// wraps serial systems in SerializingSut before fanning out). Execute()
/// is lane 0; multi-worker drivers call ExecuteLane(worker, op).
class FaultInjectingSut final : public SystemUnderTest {
 public:
  /// The clocks one lane burns injected latency against. In simulation
  /// mode each worker advances a private VirtualClock, so each lane needs
  /// its worker's pair.
  struct LaneClocks {
    const Clock* clock = nullptr;
    VirtualClock* virtual_clock = nullptr;
  };

  /// `inner` and `clock` must outlive the wrapper; nullptr `clock` selects
  /// an internal RealClock. Pass the driver's VirtualClock as both `clock`
  /// and `virtual_clock` for simulation runs. Starts with a single lane
  /// (lane 0) bound to these clocks.
  explicit FaultInjectingSut(SystemUnderTest* inner, FaultPlan plan,
                             const Clock* clock = nullptr,
                             VirtualClock* virtual_clock = nullptr);

  /// Rebinds the lane table for a multi-worker run: lane w uses
  /// `lanes[w]`'s clocks and a per-(phase, lane) forked fault stream.
  /// Must be called at a quiescent point (no concurrent ExecuteLane).
  /// Lane 0's stream is unchanged by fan-out.
  void ConfigureLanes(std::vector<LaneClocks> lanes);

  size_t lane_count() const { return lanes_.size(); }

  std::string name() const override { return inner_->name(); }
  /// As concurrent as the wrapped system: the injector itself is safe for
  /// concurrent distinct-lane execution.
  SutConcurrency concurrency() const override {
    return inner_->concurrency();
  }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  TrainReport Train() override;
  /// Equivalent to ExecuteLane(0, op).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  OpResult Execute(const Operation& op) override;
  /// Executes `op` through lane `lane`'s fault stream and clocks. Safe to
  /// call concurrently from different threads iff each uses its own lane.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  OpResult ExecuteLane(size_t lane, const Operation& op);
  /// Equivalent to ExecuteLaneBatch(0, op, results).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void ExecuteBatch(const Operation& op, OpResult* results) override;
  /// Batch flavor of ExecuteLane. A batch is ONE request unit: the lane
  /// draws one fault decision for the whole batch (same three draws as a
  /// scalar op, so scalar and batch streams stay comparable), and an
  /// injected failure fails every element. The batch is forwarded without
  /// unbatching.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void ExecuteLaneBatch(size_t lane, const Operation& op, OpResult* results);
  void OnPhaseStart(int phase_index, bool holdout) override;
  SutStats GetStats() const override { return inner_->GetStats(); }
  void BindObservability(MetricsRegistry* registry) override {
    inner_->BindObservability(registry);
  }

  /// Snapshot of what the injector did so far.
  FaultStats fault_stats() const;

 private:
  /// Consumes `nanos` of lane time: advances the lane's virtual clock, or
  /// spins its real clock.
  void BurnNanos(size_t lane, int64_t nanos);
  Rng PhaseRng(int phase) const;
  /// Lane 0 is the historical per-phase stream; higher lanes fork further
  /// so each worker sees an independent, reproducible fault sequence.
  Rng LaneRng(int phase, size_t lane) const;

  SystemUnderTest* inner_;
  FaultPlan plan_;
  RealClock default_clock_;
  std::vector<LaneClocks> lanes_;
  std::vector<Rng> lane_rngs_;
  int current_phase_ = 0;
  uint32_t load_attempts_ = 0;

  struct AtomicFaultStats {
    Atomic<uint64_t> injected_failures{0};
    Atomic<uint64_t> injected_spikes{0};
    Atomic<uint64_t> injected_stalls{0};
    Atomic<uint64_t> failed_loads{0};
    Atomic<uint64_t> failed_trains{0};
    Atomic<uint64_t> hung_trains{0};
  };
  AtomicFaultStats stats_;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_FAULT_INJECTION_H_
