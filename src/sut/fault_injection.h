#ifndef LSBENCH_SUT_FAULT_INJECTION_H_
#define LSBENCH_SUT_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "sut/fault_plan.h"
#include "sut/sut.h"
#include "util/clock.h"
#include "util/random.h"

namespace lsbench {

/// Decorator that wraps any SystemUnderTest and perturbs it according to a
/// FaultPlan: transient Execute failures, latency spikes and stalls, failed
/// or hung training passes, and Load I/O errors. All decisions flow from
/// RNG streams forked per phase from the plan's seed, so a faulted run is
/// reproducible bit-for-bit — the injector is to system health what the
/// workload generator is to data distributions.
///
/// Injected latency advances the supplied VirtualClock in simulation mode
/// and busy-waits on the real clock otherwise, so spikes and stalls are
/// visible to the driver's timestamps either way. The wrapper is
/// transparent: name() and GetStats() pass through to the inner system.
class FaultInjectingSut final : public SystemUnderTest {
 public:
  /// `inner` and `clock` must outlive the wrapper; nullptr `clock` selects
  /// an internal RealClock. Pass the driver's VirtualClock as both `clock`
  /// and `virtual_clock` for simulation runs.
  explicit FaultInjectingSut(SystemUnderTest* inner, FaultPlan plan,
                             const Clock* clock = nullptr,
                             VirtualClock* virtual_clock = nullptr);

  std::string name() const override { return inner_->name(); }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override;
  TrainReport Train() override;
  OpResult Execute(const Operation& op) override;
  void OnPhaseStart(int phase_index, bool holdout) override;
  SutStats GetStats() const override { return inner_->GetStats(); }

  const FaultStats& fault_stats() const { return stats_; }

 private:
  /// Consumes `nanos` of time: advances the virtual clock, or spins.
  void BurnNanos(int64_t nanos);
  Rng PhaseRng(int phase) const;

  SystemUnderTest* inner_;
  FaultPlan plan_;
  RealClock default_clock_;
  const Clock* clock_;
  VirtualClock* virtual_clock_;
  Rng phase_rng_;
  int current_phase_ = 0;
  uint32_t load_attempts_ = 0;
  FaultStats stats_;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_FAULT_INJECTION_H_
