#include "sut/concurrent_kv.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

namespace {
constexpr size_t kScanChunk = 1024;
}  // namespace

PartitionedKvSystem::PartitionedKvSystem(size_t partitions, int fanout)
    : fanout_(fanout) {
  LSBENCH_ASSERT(partitions > 0);
  shards_.reserve(partitions);
  for (size_t i = 0; i < partitions; ++i) {
    shards_.push_back(std::make_unique<Shard>(fanout_));
  }
  shard_lower_.assign(partitions, 0);
}

std::string PartitionedKvSystem::name() const {
  return "partitioned_kv_system(p=" + std::to_string(shards_.size()) + ")";
}

size_t PartitionedKvSystem::ShardFor(Key key) const {
  // Last shard whose lower bound is <= key. shard_lower_[0] == 0, so the
  // iterator is never begin().
  const auto it =
      std::upper_bound(shard_lower_.begin(), shard_lower_.end(), key);
  return static_cast<size_t>(it - shard_lower_.begin()) - 1;
}

Status PartitionedKvSystem::Load(const std::vector<KeyValue>& sorted_pairs) {
  const size_t partitions = shards_.size();
  const size_t n = sorted_pairs.size();

  // Equi-count split keys: shard i owns keys in
  // [shard_lower_[i], shard_lower_[i + 1]).
  shard_lower_.assign(partitions, 0);
  for (size_t i = 1; i < partitions; ++i) {
    const size_t split = i * n / partitions;
    shard_lower_[i] =
        split < n ? sorted_pairs[split].first : shard_lower_[i - 1];
  }

  std::vector<KeyValue> slice;
  size_t begin = 0;
  for (size_t i = 0; i < partitions; ++i) {
    size_t end = n;
    if (i + 1 < partitions) {
      const auto it = std::lower_bound(
          sorted_pairs.begin() + static_cast<ptrdiff_t>(begin),
          sorted_pairs.end(), shard_lower_[i + 1],
          [](const KeyValue& kv, Key k) { return kv.first < k; });
      end = static_cast<size_t>(it - sorted_pairs.begin());
    }
    slice.assign(sorted_pairs.begin() + static_cast<ptrdiff_t>(begin),
                 sorted_pairs.begin() + static_cast<ptrdiff_t>(end));
    Shard& shard = *shards_[i];
    MutexLock lock(shard.mu);
    shard.tree.BulkLoad(slice);
    begin = end;
  }
  return Status::OK();
}

OpResult PartitionedKvSystem::Execute(const Operation& op) {
  OpResult result;
  switch (op.type) {
    case OpType::kGet: {
      Shard& shard = *shards_[ShardFor(op.key)];
      MutexLock lock(shard.mu);
      const auto v = shard.tree.Get(op.key);
      result.ok = v.has_value();
      result.rows = result.ok ? 1 : 0;
      break;
    }
    case OpType::kInsert:
    case OpType::kUpdate: {
      Shard& shard = *shards_[ShardFor(op.key)];
      MutexLock lock(shard.mu);
      shard.tree.Insert(op.key, op.value);
      result.ok = true;
      result.rows = 1;
      break;
    }
    case OpType::kDelete: {
      Shard& shard = *shards_[ShardFor(op.key)];
      MutexLock lock(shard.mu);
      result.ok = shard.tree.Erase(op.key);
      result.rows = result.ok ? 1 : 0;
      break;
    }
    case OpType::kScan: {
      // Walk consecutive partitions, locking one at a time, until the scan
      // limit is met or the key space is exhausted.
      std::vector<KeyValue> out;
      out.reserve(op.scan_length);
      Key cursor = op.key;
      for (size_t i = ShardFor(op.key);
           i < shards_.size() && out.size() < op.scan_length; ++i) {
        Shard& shard = *shards_[i];
        MutexLock lock(shard.mu);
        shard.tree.Scan(cursor, op.scan_length - out.size(), &out);
      }
      result.ok = true;
      result.rows = out.size();
      break;
    }
    case OpType::kRangeCount: {
      uint64_t count = 0;
      std::vector<KeyValue> chunk;
      bool done = false;
      for (size_t i = ShardFor(op.key); i < shards_.size() && !done; ++i) {
        Shard& shard = *shards_[i];
        MutexLock lock(shard.mu);
        Key cursor = std::max(op.key, shard_lower_[i]);
        while (!done) {
          chunk.clear();
          const size_t got = shard.tree.Scan(cursor, kScanChunk, &chunk);
          if (got == 0) break;
          for (const auto& [k, v] : chunk) {
            (void)v;
            if (k > op.range_end) {
              done = true;
              break;
            }
            ++count;
          }
          if (done || got < kScanChunk) break;
          const Key last = chunk.back().first;
          if (last == ~Key{0}) break;
          cursor = last + 1;
        }
      }
      result.ok = true;
      result.rows = count;
      break;
    }
    case OpType::kBatchGet:
    case OpType::kBatchPut: {
      // Aggregate view of a batch: same partition-grouped walk as
      // ExecuteBatch, rows = elements found/applied.
      const bool put = op.type == OpType::kBatchPut;
      uint64_t rows = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        bool any = false;
        for (uint32_t i = 0; i < op.batch_size; ++i) {
          if (ShardFor(op.batch_keys[i]) == s) {
            any = true;
            break;
          }
        }
        if (!any) continue;
        Shard& shard = *shards_[s];
        MutexLock lock(shard.mu);
        for (uint32_t i = 0; i < op.batch_size; ++i) {
          if (ShardFor(op.batch_keys[i]) != s) continue;
          if (put) {
            shard.tree.Insert(op.batch_keys[i], op.batch_values[i]);
            ++rows;
          } else if (shard.tree.Get(op.batch_keys[i]).has_value()) {
            ++rows;
          }
        }
      }
      result.ok = true;
      result.rows = rows;
      break;
    }
  }
  return result;
}

void PartitionedKvSystem::ExecuteBatch(const Operation& op,
                                       OpResult* results) {
  if (!IsBatchOp(op.type)) {
    results[0] = Execute(op);
    return;
  }
  const bool put = op.type == OpType::kBatchPut;
  for (size_t s = 0; s < shards_.size(); ++s) {
    // Cheap unlocked membership scan first (routing is immutable after
    // Load), so shards no batch element touches are never locked.
    bool any = false;
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      if (ShardFor(op.batch_keys[i]) == s) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      if (ShardFor(op.batch_keys[i]) != s) continue;
      OpResult& r = results[i];
      r.status = Status::OK();
      if (put) {
        shard.tree.Insert(op.batch_keys[i], op.batch_values[i]);
        r.ok = true;
        r.rows = 1;
      } else {
        r.ok = shard.tree.Get(op.batch_keys[i]).has_value();
        r.rows = r.ok ? 1 : 0;
      }
    }
  }
}

SutStats PartitionedKvSystem::GetStats() const {
  SutStats stats;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    stats.memory_bytes += shard.tree.MemoryBytes();
  }
  return stats;
}

}  // namespace lsbench
