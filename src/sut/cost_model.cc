#include "sut/cost_model.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

double HardwareProfile::TrainingSeconds(double cpu_seconds) const {
  LSBENCH_ASSERT(speedup > 0.0);
  return cpu_seconds / speedup;
}

double HardwareProfile::TrainingDollars(double cpu_seconds) const {
  return TrainingSeconds(cpu_seconds) / 3600.0 * dollars_per_hour;
}

HardwareProfile HardwareProfile::Cpu() { return {"cpu", 1.0, 1.0}; }
HardwareProfile HardwareProfile::Gpu() { return {"gpu", 3.0, 12.0}; }
HardwareProfile HardwareProfile::Tpu() { return {"tpu", 8.0, 30.0}; }

DbaCostModel::DbaCostModel(double hourly_rate, std::vector<Tier> tiers)
    : hourly_rate_(hourly_rate), tiers_(std::move(tiers)) {
  LSBENCH_ASSERT(hourly_rate_ > 0.0);
  double prev_multiplier = 1.0;
  for (const Tier& t : tiers_) {
    LSBENCH_ASSERT(t.hours > 0.0);
    LSBENCH_ASSERT_MSG(t.multiplier >= prev_multiplier,
                       "DBA tiers must not reduce throughput");
    prev_multiplier = t.multiplier;
  }
}

DbaCostModel DbaCostModel::Default() {
  // 60 $/h DBA. Tier 1: 2h of configuration (+20%). Tier 2: 8h of index and
  // schema tuning (+60%). Tier 3: 24h of deep workload-specific tuning
  // (+120%).
  return DbaCostModel(60.0, {{2.0, 1.2}, {8.0, 1.6}, {24.0, 2.2}});
}

double DbaCostModel::MultiplierAt(double dollars) const {
  double multiplier = 1.0;
  double spent = 0.0;
  for (const Tier& t : tiers_) {
    spent += t.hours * hourly_rate_;
    if (dollars + 1e-9 >= spent) {
      multiplier = t.multiplier;
    } else {
      break;
    }
  }
  return multiplier;
}

double DbaCostModel::CumulativeDollars(size_t tier_index) const {
  LSBENCH_ASSERT(tier_index < tiers_.size());
  double spent = 0.0;
  for (size_t i = 0; i <= tier_index; ++i) {
    spent += tiers_[i].hours * hourly_rate_;
  }
  return spent;
}

double DbaCostModel::TotalDollars() const {
  return tiers_.empty() ? 0.0 : CumulativeDollars(tiers_.size() - 1);
}

double TrainingCostToOutperform(const std::vector<double>& training_costs,
                                const std::vector<double>& learned_throughputs,
                                double base_throughput,
                                const DbaCostModel& dba) {
  LSBENCH_ASSERT(training_costs.size() == learned_throughputs.size());
  for (size_t i = 0; i < training_costs.size(); ++i) {
    // Compare against the best the DBA could reach with the same budget.
    const double rival =
        base_throughput * dba.MultiplierAt(training_costs[i]);
    if (learned_throughputs[i] > rival) return training_costs[i];
  }
  return -1.0;
}

}  // namespace lsbench
