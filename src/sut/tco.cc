#include "sut/tco.h"

#include <sstream>

#include "stats/ascii_chart.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

double TcoPlan::OpsPerKiloDollar() const {
  const double total = TotalDollars();
  if (total <= 0.0) return 0.0;
  return throughput / (total / 1000.0);
}

double HorizonHardwareDollars(const TcoAssumptions& assumptions) {
  return assumptions.years * 24.0 * 365.0 *
         assumptions.server_dollars_per_hour;
}

TcoPlan MakeTraditionalPlan(const std::string& name, double base_throughput,
                            const DbaCostModel& dba,
                            const TcoAssumptions& assumptions) {
  LSBENCH_ASSERT(assumptions.dba_tier < dba.tiers().size());
  TcoPlan plan;
  plan.name = name;
  plan.throughput =
      base_throughput * dba.tiers()[assumptions.dba_tier].multiplier;
  plan.hardware_dollars = HorizonHardwareDollars(assumptions);
  plan.dba_dollars = dba.CumulativeDollars(assumptions.dba_tier) *
                     assumptions.dba_passes_per_year * assumptions.years;
  return plan;
}

TcoPlan MakeLearnedPlan(const std::string& name, double throughput,
                        double fit_cpu_seconds, const HardwareProfile& hw,
                        const TcoAssumptions& assumptions) {
  TcoPlan plan;
  plan.name = name;
  plan.throughput = throughput;
  plan.hardware_dollars = HorizonHardwareDollars(assumptions);
  plan.training_dollars =
      hw.TrainingDollars(fit_cpu_seconds * assumptions.pipeline_scale) *
      assumptions.retrains_per_year * assumptions.years;
  return plan;
}

std::string RenderTcoTable(const std::vector<TcoPlan>& plans) {
  std::vector<std::vector<std::string>> rows;
  for (const TcoPlan& p : plans) {
    rows.push_back({p.name, HumanCount(p.throughput),
                    FormatDouble(p.hardware_dollars, 0),
                    FormatDouble(p.training_dollars, 2),
                    FormatDouble(p.dba_dollars, 0),
                    FormatDouble(p.TotalDollars(), 2),
                    FormatDouble(p.OpsPerKiloDollar(), 1)});
  }
  return RenderTable({"plan", "tput", "hw_$", "train_$", "dba_$", "total_$",
                      "ops/s per k$"},
                     rows);
}

}  // namespace lsbench
