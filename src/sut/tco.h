#ifndef LSBENCH_SUT_TCO_H_
#define LSBENCH_SUT_TCO_H_

#include <string>
#include <vector>

#include "sut/cost_model.h"

namespace lsbench {

/// Total-cost-of-ownership accounting (Lesson 4: "we cannot ignore the
/// human cost anymore"). A plan is one way to operate a system for the
/// accounting horizon; the report decomposes its cost into hardware,
/// training compute, and human (DBA) components — the decomposition the
/// paper says existing benchmarks omit.
struct TcoPlan {
  std::string name;
  double throughput = 0.0;        ///< Steady-state ops/s the plan sustains.
  double hardware_dollars = 0.0;
  double training_dollars = 0.0;  ///< Offline + recurring retraining compute.
  double dba_dollars = 0.0;

  double TotalDollars() const {
    return hardware_dollars + training_dollars + dba_dollars;
  }
  /// The classic cost-per-performance metric, as ops/s per 1000 dollars.
  double OpsPerKiloDollar() const;
};

/// Inputs for the standard 3-year accounting used by the lesson-4 bench.
struct TcoAssumptions {
  double years = 3.0;
  double server_dollars_per_hour = 1.0;
  /// DBA passes per year, each unlocking `dba_tier` of the cost model.
  int dba_passes_per_year = 4;
  size_t dba_tier = 1;
  /// Learned retraining pipelines per year.
  int retrains_per_year = 52;
  /// Multiplier from one measured index fit to a production pipeline.
  double pipeline_scale = 1e6;
};

/// Hardware dollars for the horizon (same for every single-server plan).
double HorizonHardwareDollars(const TcoAssumptions& assumptions);

/// Builds the traditional plan: base throughput boosted by the DBA tier's
/// multiplier, paying the tier's dollars per pass.
TcoPlan MakeTraditionalPlan(const std::string& name, double base_throughput,
                            const DbaCostModel& dba,
                            const TcoAssumptions& assumptions);

/// Builds a learned plan: measured throughput plus recurring retraining
/// cost on the given hardware (`fit_cpu_seconds` = one measured fit).
TcoPlan MakeLearnedPlan(const std::string& name, double throughput,
                        double fit_cpu_seconds, const HardwareProfile& hw,
                        const TcoAssumptions& assumptions);

/// Monospace table of the plans, one row each, with the decomposition.
std::string RenderTcoTable(const std::vector<TcoPlan>& plans);

}  // namespace lsbench

#endif  // LSBENCH_SUT_TCO_H_
