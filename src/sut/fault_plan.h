#ifndef LSBENCH_SUT_FAULT_PLAN_H_
#define LSBENCH_SUT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace lsbench {

/// One row of a fault schedule: the faults injected while a given phase is
/// running. `phase == -1` is a wildcard matching every phase; an exact
/// phase match takes precedence over the wildcard (and among equally
/// specific windows, the last one wins), so plans can describe a healthy
/// baseline plus a burst of faults correlated with a distribution shift.
struct FaultWindow {
  int32_t phase = -1;

  /// Probability that Execute fails before reaching the wrapped system.
  double execute_fail_rate = 0.0;
  /// Code attached to injected Execute failures (a transient code makes
  /// the driver retry; a permanent one fails the operation immediately).
  StatusCode execute_fail_code = StatusCode::kUnavailable;

  /// Probability / duration of a moderate injected latency spike.
  double latency_spike_rate = 0.0;
  int64_t latency_spike_nanos = 0;

  /// Probability / duration of a long stall (a hung request).
  double stall_rate = 0.0;
  int64_t stall_nanos = 0;

  /// Training faults: report failure, and/or hang before returning.
  bool fail_train = false;
  int64_t train_hang_nanos = 0;
};

bool operator==(const FaultWindow& a, const FaultWindow& b);

/// A seeded, fully deterministic description of every fault the injector
/// will consider during a run. Identical plans + identical seeds produce
/// identical injection decisions (per-phase forked RNG streams), including
/// under VirtualClock simulation.
struct FaultPlan {
  uint64_t seed = 0x5eedfa17u;
  /// The first `load_failures` Load calls fail with an injected I/O error.
  uint32_t load_failures = 0;
  std::vector<FaultWindow> windows;

  bool Empty() const { return windows.empty() && load_failures == 0; }

  /// The active window for `phase`, or nullptr when none matches.
  const FaultWindow* WindowForPhase(int phase) const;
};

bool operator==(const FaultPlan& a, const FaultPlan& b);

/// What the injector actually did during a run.
struct FaultStats {
  uint64_t injected_failures = 0;  ///< Execute calls failed synthetically.
  uint64_t injected_spikes = 0;
  uint64_t injected_stalls = 0;
  uint64_t failed_loads = 0;
  uint64_t failed_trains = 0;
  uint64_t hung_trains = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_SUT_FAULT_PLAN_H_
