#ifndef LSBENCH_SUT_COST_MODEL_H_
#define LSBENCH_SUT_COST_MODEL_H_

#include <string>
#include <vector>

namespace lsbench {

/// Pricing and relative speed of a training substrate (§V-D3: "we should
/// evaluate the cost of training on different hardware (CPU, GPU, or
/// TPU)"). `speedup` divides measured CPU training time to model faster
/// hardware; `dollars_per_hour` converts the (adjusted) time to cost.
struct HardwareProfile {
  std::string name;
  double dollars_per_hour = 1.0;
  double speedup = 1.0;

  /// Cost in dollars of `cpu_seconds` of training work on this hardware.
  double TrainingDollars(double cpu_seconds) const;
  /// Wall seconds the same work takes on this hardware.
  double TrainingSeconds(double cpu_seconds) const;

  // Defaults loosely modeled on public cloud on-demand pricing ratios.
  static HardwareProfile Cpu();  ///< 1.0 $/h, 1x.
  static HardwareProfile Gpu();  ///< 3.0 $/h, 12x.
  static HardwareProfile Tpu();  ///< 8.0 $/h, 30x.
};

/// The manual-tuning alternative of Fig. 1d: a step function mapping
/// cumulative DBA spending to the throughput multiplier a traditional system
/// reaches at that spending level. Each tier is "after `hours` more DBA
/// hours, throughput becomes base * multiplier".
class DbaCostModel {
 public:
  struct Tier {
    double hours = 0.0;        ///< Incremental effort to reach this tier.
    double multiplier = 1.0;   ///< Throughput multiplier once reached.
  };

  DbaCostModel(double hourly_rate, std::vector<Tier> tiers);

  /// A three-tier default: quick config pass, index tuning, deep tuning.
  static DbaCostModel Default();

  double hourly_rate() const { return hourly_rate_; }
  const std::vector<Tier>& tiers() const { return tiers_; }

  /// Throughput multiplier achieved after spending `dollars` on DBA time.
  double MultiplierAt(double dollars) const;

  /// Cumulative dollars needed to unlock tier `i` (0-based).
  double CumulativeDollars(size_t tier_index) const;

  /// Total dollars of the full tuning program.
  double TotalDollars() const;

 private:
  double hourly_rate_;
  std::vector<Tier> tiers_;
};

/// Solves Fig. 1d's headline metric: the smallest training cost at which the
/// learned system's throughput curve beats the DBA-tuned traditional
/// system's step function. `training_costs`/`learned_throughputs` are a
/// sampled curve (ascending costs); `base_throughput` is the untuned
/// traditional throughput. Returns -1 if the learned system never wins.
double TrainingCostToOutperform(const std::vector<double>& training_costs,
                                const std::vector<double>& learned_throughputs,
                                double base_throughput,
                                const DbaCostModel& dba);

}  // namespace lsbench

#endif  // LSBENCH_SUT_COST_MODEL_H_
