#include "sut/systems.h"

#include <algorithm>


namespace lsbench {

namespace {
constexpr size_t kScanChunk = 1024;
// KS drift checks sort reference+window samples (~30 us); amortize them.
constexpr uint64_t kDriftCheckEvery = 512;

/// Per-element batch loop over a *concrete* index type: because IndexT is
/// the final class (BTree, RmiIndex, PgmIndex), the Get/Insert calls
/// devirtualize and inline — this is where the batch path sheds the
/// per-element KvIndex virtual dispatch.
template <typename IndexT>
void ExecuteBatchDirect(IndexT* idx, const Operation& op, OpResult* results) {
  if (op.type == OpType::kBatchGet) {
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      OpResult& r = results[i];
      r.status = Status::OK();
      r.ok = idx->Get(op.batch_keys[i]).has_value();
      r.rows = r.ok ? 1 : 0;
    }
  } else {
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      idx->Insert(op.batch_keys[i], op.batch_values[i]);
      OpResult& r = results[i];
      r.status = Status::OK();
      r.ok = true;
      r.rows = 1;
    }
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// KvSystemBase
// ---------------------------------------------------------------------------

uint64_t KvSystemBase::CountByProbe(Key lo, Key hi, uint64_t* touched) {
  uint64_t count = 0;
  Key cursor = lo;
  while (true) {
    scratch_.clear();
    const size_t got = index()->Scan(cursor, kScanChunk, &scratch_);
    if (got == 0) break;
    *touched += got;
    bool done = false;
    for (const auto& [k, v] : scratch_) {
      (void)v;
      if (k > hi) {
        done = true;
        break;
      }
      ++count;
    }
    if (done || got < kScanChunk) break;
    const Key last = scratch_.back().first;
    if (last == ~Key{0}) break;
    cursor = last + 1;
  }
  return count;
}

uint64_t KvSystemBase::CountByScan(Key lo, Key hi, uint64_t* touched) {
  uint64_t count = 0;
  Key cursor = 0;
  while (true) {
    scratch_.clear();
    const size_t got = index()->Scan(cursor, kScanChunk, &scratch_);
    if (got == 0) break;
    *touched += got;
    for (const auto& [k, v] : scratch_) {
      (void)v;
      if (k >= lo && k <= hi) ++count;
    }
    if (got < kScanChunk) break;
    const Key last = scratch_.back().first;
    if (last == ~Key{0}) break;
    cursor = last + 1;
  }
  return count;
}

OpResult KvSystemBase::Execute(const Operation& op) {
  OpResult result;
  switch (op.type) {
    case OpType::kGet: {
      const auto v = index()->Get(op.key);
      result.ok = v.has_value();
      result.rows = result.ok ? 1 : 0;
      break;
    }
    case OpType::kScan: {
      scratch_.clear();
      const size_t got = index()->Scan(op.key, op.scan_length, &scratch_);
      result.ok = true;
      result.rows = got;
      break;
    }
    case OpType::kInsert:
    case OpType::kUpdate: {
      index()->Insert(op.key, op.value);
      result.ok = true;
      result.rows = 1;
      break;
    }
    case OpType::kDelete: {
      result.ok = index()->Erase(op.key);
      result.rows = result.ok ? 1 : 0;
      break;
    }
    case OpType::kRangeCount: {
      const double table_rows = static_cast<double>(index()->size());
      const double estimate =
          estimator_ != nullptr
              ? estimator_->EstimateRange(op.key, op.range_end)
              : table_rows;
      const AccessPath path =
          cost_model_ != nullptr
              ? cost_model_->Choose(estimate, table_rows)
              : AccessPath::kIndexProbe;
      uint64_t touched = 0;
      const uint64_t count =
          path == AccessPath::kIndexProbe
              ? CountByProbe(op.key, op.range_end, &touched)
              : CountByScan(op.key, op.range_end, &touched);
      result.ok = true;
      result.rows = count;
      // Execution feedback closes the learning loop (§IV: ground truth can
      // be collected during query execution).
      if (estimator_ != nullptr) {
        estimator_->Feedback(op.key, op.range_end,
                             static_cast<double>(count));
      }
      if (cost_model_ != nullptr) {
        cost_model_->Feedback(path, static_cast<double>(count), table_rows,
                              static_cast<double>(touched));
      }
      break;
    }
    case OpType::kBatchGet: {
      // Aggregate view of a multi-get: ok means the batch was served,
      // rows counts the elements found.
      KvIndex* idx = index();
      uint64_t found = 0;
      for (uint32_t i = 0; i < op.batch_size; ++i) {
        if (idx->Get(op.batch_keys[i]).has_value()) ++found;
      }
      result.ok = true;
      result.rows = found;
      break;
    }
    case OpType::kBatchPut: {
      KvIndex* idx = index();
      for (uint32_t i = 0; i < op.batch_size; ++i) {
        idx->Insert(op.batch_keys[i], op.batch_values[i]);
      }
      result.ok = true;
      result.rows = op.batch_size;
      break;
    }
  }
  OnExecuted(op);
  return result;
}

void KvSystemBase::ExecuteBatch(const Operation& op, OpResult* results) {
  if (!IsBatchOp(op.type)) {
    // Non-batch op routed through the batch entry point: one result.
    results[0] = Execute(op);
    return;
  }
  KvIndex* idx = index();
  if (op.type == OpType::kBatchGet) {
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      OpResult& r = results[i];
      r.status = Status::OK();
      r.ok = idx->Get(op.batch_keys[i]).has_value();
      r.rows = r.ok ? 1 : 0;
    }
  } else {
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      idx->Insert(op.batch_keys[i], op.batch_values[i]);
      OpResult& r = results[i];
      r.status = Status::OK();
      r.ok = true;
      r.rows = 1;
    }
  }
  OnExecuted(op);
}

SutStats KvSystemBase::GetStats() const {
  SutStats stats;
  stats.memory_bytes = index()->MemoryBytes();
  if (estimator_ != nullptr) stats.memory_bytes += estimator_->MemoryBytes();
  return stats;
}

// ---------------------------------------------------------------------------
// BTreeSystem
// ---------------------------------------------------------------------------

BTreeSystem::BTreeSystem(int fanout, int histogram_buckets)
    : btree_(fanout), histogram_buckets_(histogram_buckets) {
  cost_model_ = std::make_unique<StaticCostModel>();
}

Status BTreeSystem::Load(const std::vector<KeyValue>& sorted_pairs) {
  btree_.BulkLoad(sorted_pairs);
  std::vector<Key> keys;
  keys.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    (void)v;
    keys.push_back(k);
  }
  // ANALYZE-style statistics collection at load time: part of normal
  // traditional-system operation, not "training".
  estimator_ =
      std::make_unique<EquiDepthHistogram>(keys, histogram_buckets_);
  return Status::OK();
}

void BTreeSystem::ExecuteBatch(const Operation& op, OpResult* results) {
  if (!IsBatchOp(op.type)) {
    results[0] = Execute(op);
    return;
  }
  ExecuteBatchDirect(&btree_, op, results);
}

// ---------------------------------------------------------------------------
// LsmKvSystem
// ---------------------------------------------------------------------------

LsmKvSystem::LsmKvSystem(LsmOptions options, int histogram_buckets)
    : lsm_(options), histogram_buckets_(histogram_buckets) {
  cost_model_ = std::make_unique<StaticCostModel>();
}

Status LsmKvSystem::Load(const std::vector<KeyValue>& sorted_pairs) {
  lsm_.BulkLoad(sorted_pairs);
  std::vector<Key> keys;
  keys.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    (void)v;
    keys.push_back(k);
  }
  estimator_ =
      std::make_unique<EquiDepthHistogram>(keys, histogram_buckets_);
  return Status::OK();
}

SutStats LsmKvSystem::GetStats() const {
  SutStats stats = KvSystemBase::GetStats();
  // Compaction is maintenance, not training, but its magnitude is reported
  // through the same work-item channel for cost comparisons.
  stats.offline_train_items = lsm_.compaction_work();
  stats.model_error = static_cast<double>(lsm_.level_count());
  return stats;
}

// ---------------------------------------------------------------------------
// LearnedKvSystem
// ---------------------------------------------------------------------------

std::string RetrainPolicyToString(RetrainPolicy policy) {
  switch (policy) {
    case RetrainPolicy::kNever:
      return "never";
    case RetrainPolicy::kOnPhaseStart:
      return "on_phase_start";
    case RetrainPolicy::kDeltaThreshold:
      return "delta_threshold";
    case RetrainPolicy::kDriftTriggered:
      return "drift_triggered";
  }
  return "unknown";
}

LearnedKvSystem::LearnedKvSystem(LearnedSystemOptions options,
                                 const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : &default_clock_),
      drift_(options.drift) {
  if (options_.index_kind == LearnedSystemOptions::IndexKind::kRmi) {
    rmi_ = std::make_unique<RmiIndex>(options_.rmi);
  } else {
    pgm_ = std::make_unique<PgmIndex>(options_.pgm_epsilon);
  }
}

std::string LearnedKvSystem::name() const {
  const std::string base =
      options_.index_kind == LearnedSystemOptions::IndexKind::kRmi
          ? "learned_rmi_system"
          : "learned_pgm_system";
  return base + "(" + RetrainPolicyToString(options_.retrain_policy) + ")";
}

KvIndex* LearnedKvSystem::index() {
  return rmi_ != nullptr ? static_cast<KvIndex*>(rmi_.get())
                         : static_cast<KvIndex*>(pgm_.get());
}

const KvIndex* LearnedKvSystem::index() const {
  return rmi_ != nullptr ? static_cast<const KvIndex*>(rmi_.get())
                         : static_cast<const KvIndex*>(pgm_.get());
}

size_t LearnedKvSystem::delta_size() const {
  return rmi_ != nullptr ? rmi_->delta_size() : pgm_->delta_size();
}

std::vector<Key> LearnedKvSystem::CurrentKeysSnapshot() const {
  std::vector<KeyValue> pairs;
  index()->Scan(0, index()->size(), &pairs);
  std::vector<Key> keys;
  keys.reserve(pairs.size());
  for (const auto& [k, v] : pairs) {
    (void)v;
    keys.push_back(k);
  }
  return keys;
}

Status LearnedKvSystem::Load(const std::vector<KeyValue>& sorted_pairs) {
  index()->BulkLoad(sorted_pairs);
  trained_ = false;
  return Status::OK();
}

TrainReport LearnedKvSystem::Train() {
  TrainReport report;
  report.trained = true;
  const size_t trained_keys =
      rmi_ != nullptr ? rmi_->Retrain() : pgm_->Retrain();
  // Work items = points actually regressed (RMI can subsample its fit);
  // PGM's shrinking cone always visits every key.
  const size_t fitted =
      rmi_ != nullptr ? rmi_->last_fit_points() : trained_keys;
  report.work_items = fitted;
  offline_train_items_ += fitted;
  if (train_items_counter_ != nullptr) train_items_counter_->Increment(fitted);

  const std::vector<Key> keys = CurrentKeysSnapshot();
  estimator_ = std::make_unique<LearnedCardinalityEstimator>(
      keys, options_.estimator);
  cost_model_ = std::make_unique<OnlineCostModel>();

  // Freeze the drift reference on the trained distribution.
  drift_ = DriftDetector(options_.drift);
  for (Key k : keys) drift_.Observe(static_cast<double>(k));
  drift_.Freeze();
  trained_ = true;
  return report;
}

void LearnedKvSystem::RetrainNow() {
  Stopwatch watch(clock_);
  const size_t fitted =
      rmi_ != nullptr ? rmi_->Retrain() : pgm_->Retrain();
  if (estimator_ != nullptr) {
    auto* learned =
        static_cast<LearnedCardinalityEstimator*>(estimator_.get());
    learned->Retrain(CurrentKeysSnapshot());
  }
  drift_.Rebase();
  ++retrain_events_;
  offline_train_items_ += fitted;
  online_train_seconds_ += watch.ElapsedSeconds();
  if (retrains_counter_ != nullptr) retrains_counter_->Increment();
  if (train_items_counter_ != nullptr) train_items_counter_->Increment(fitted);
  if (retrain_nanos_ != nullptr) retrain_nanos_->Record(watch.ElapsedNanos());
}

void LearnedKvSystem::BindObservability(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  retrains_counter_ = registry->GetCounter("sut.retrains");
  train_items_counter_ = registry->GetCounter("sut.train_items");
  retrain_nanos_ = registry->GetHistogram("sut.retrain_nanos");
}

void LearnedKvSystem::MaybeRetrain() {
  switch (options_.retrain_policy) {
    case RetrainPolicy::kNever:
    case RetrainPolicy::kOnPhaseStart:
      return;
    case RetrainPolicy::kDeltaThreshold: {
      const size_t static_n =
          rmi_ != nullptr ? rmi_->static_size() : pgm_->static_size();
      const size_t threshold = std::max<size_t>(
          64, static_cast<size_t>(options_.delta_threshold_fraction *
                                  static_cast<double>(static_n)));
      if (delta_size() >= threshold) RetrainNow();
      return;
    }
    case RetrainPolicy::kDriftTriggered: {
      if (++ops_since_drift_check_ < kDriftCheckEvery) return;
      ops_since_drift_check_ = 0;
      if (drift_.DriftDetected()) RetrainNow();
      return;
    }
  }
}

void LearnedKvSystem::ExecuteBatch(const Operation& op, OpResult* results) {
  if (!IsBatchOp(op.type)) {
    results[0] = Execute(op);
    return;
  }
  if (rmi_ != nullptr) {
    ExecuteBatchDirect(rmi_.get(), op, results);
  } else {
    ExecuteBatchDirect(pgm_.get(), op, results);
  }
  OnExecuted(op);
}

void LearnedKvSystem::OnExecuted(const Operation& op) {
  if (!trained_) return;
  // Track the key distribution the workload touches/creates.
  if (IsBatchOp(op.type)) {
    // Every batch key feeds the drift window: a batch is one request but
    // batch_size distribution samples.
    for (uint32_t i = 0; i < op.batch_size; ++i) {
      drift_.Observe(static_cast<double>(op.batch_keys[i]));
    }
  } else if (op.type == OpType::kInsert || op.type == OpType::kGet ||
             op.type == OpType::kUpdate) {
    drift_.Observe(static_cast<double>(op.key));
  }
  MaybeRetrain();
}

void LearnedKvSystem::OnPhaseStart(int phase_index, bool holdout) {
  (void)phase_index;
  if (holdout) return;  // Out-of-sample: no retraining allowed.
  if (options_.retrain_policy == RetrainPolicy::kOnPhaseStart && trained_) {
    RetrainNow();
  }
}

SutStats LearnedKvSystem::GetStats() const {
  SutStats stats = KvSystemBase::GetStats();
  stats.offline_train_items = offline_train_items_;
  stats.online_train_seconds = online_train_seconds_;
  stats.retrain_events = retrain_events_;
  stats.model_error = rmi_ != nullptr
                          ? rmi_->MeanLeafError()
                          : static_cast<double>(pgm_->segment_count());
  return stats;
}

// ---------------------------------------------------------------------------
// AdaptiveKvSystem
// ---------------------------------------------------------------------------

AdaptiveKvSystem::AdaptiveKvSystem(
    AdaptiveOptions options,
    LearnedCardinalityEstimator::Options estimator_options)
    : alex_(options), estimator_options_(estimator_options) {
  cost_model_ = std::make_unique<OnlineCostModel>();
}

Status AdaptiveKvSystem::Load(const std::vector<KeyValue>& sorted_pairs) {
  alex_.BulkLoad(sorted_pairs);
  std::vector<Key> keys;
  keys.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    (void)v;
    keys.push_back(k);
  }
  estimator_ = std::make_unique<LearnedCardinalityEstimator>(
      keys, estimator_options_);
  return Status::OK();
}

SutStats AdaptiveKvSystem::GetStats() const {
  SutStats stats = KvSystemBase::GetStats();
  stats.retrain_events = alex_.retrain_count();
  stats.offline_train_items = alex_.retrain_work();
  stats.model_error = static_cast<double>(alex_.segment_count());
  return stats;
}

}  // namespace lsbench
