#include "learned/segment_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace lsbench {

void SegmentModel::Build(const Key* keys, size_t n, uint32_t epsilon) {
  LSBENCH_ASSERT(epsilon >= 1);
  segments_.clear();
  n_ = n;
  epsilon_ = epsilon;
  if (n == 0) return;

  const double eps = static_cast<double>(epsilon);
  size_t start = 0;
  double x0 = static_cast<double>(keys[0]);
  double y0 = 0.0;
  double lo_s = -std::numeric_limits<double>::infinity();
  double hi_s = std::numeric_limits<double>::infinity();
  auto close = [&]() {
    double s;
    if (!std::isfinite(lo_s) && !std::isfinite(hi_s)) {
      s = 0.0;
    } else if (!std::isfinite(lo_s)) {
      s = hi_s;
    } else if (!std::isfinite(hi_s)) {
      s = lo_s;
    } else {
      s = 0.5 * (lo_s + hi_s);
    }
    segments_.push_back({keys[start], x0, y0, s});
  };
  for (size_t i = 1; i < n; ++i) {
    const double dx = static_cast<double>(keys[i]) - x0;
    const double dy = static_cast<double>(i) - y0;
    bool restart = dx <= 0.0;  // Double-precision collapse near 2^64.
    if (!restart) {
      const double lo = (dy - eps) / dx;
      const double hi = (dy + eps) / dx;
      const double nlo = std::max(lo_s, lo);
      const double nhi = std::min(hi_s, hi);
      if (nlo > nhi) {
        restart = true;
      } else {
        lo_s = nlo;
        hi_s = nhi;
      }
    }
    if (restart) {
      close();
      start = i;
      x0 = static_cast<double>(keys[i]);
      y0 = static_cast<double>(i);
      lo_s = -std::numeric_limits<double>::infinity();
      hi_s = std::numeric_limits<double>::infinity();
    }
  }
  close();
}

std::pair<size_t, size_t> SegmentModel::WindowFor(Key key) const {
  LSBENCH_ASSERT(n_ > 0);
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](Key k, const Segment& s) { return k < s.first_key; });
  const size_t idx =
      it == segments_.begin() ? 0 : (it - segments_.begin()) - 1;
  const Segment& seg = segments_[idx];
  const double pred_real =
      seg.slope * (static_cast<double>(key) - seg.x0) + seg.y0;
  size_t pred;
  if (pred_real <= 0.0) {
    pred = 0;
  } else if (pred_real >= static_cast<double>(n_ - 1)) {
    pred = n_ - 1;
  } else {
    pred = static_cast<size_t>(pred_real);
  }
  const size_t lo = pred > epsilon_ ? pred - epsilon_ : 0;
  const size_t hi = std::min(n_, pred + epsilon_ + 1);
  return {lo, hi};
}

}  // namespace lsbench
