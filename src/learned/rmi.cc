#include "learned/rmi.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

RmiIndex::RmiIndex(RmiOptions options) : options_(options) {
  LSBENCH_ASSERT(options_.num_leaf_models >= 1);
  LSBENCH_ASSERT(options_.train_sample_every >= 1);
}

size_t RmiIndex::LeafFor(Key key) const {
  const size_t n = keys_.size();
  const size_t num_leaves = leaf_models_.size();
  if (num_leaves <= 1) return 0;
  const double pos = root_.Predict(static_cast<double>(key));
  double leaf = pos * static_cast<double>(num_leaves) / static_cast<double>(n);
  if (leaf < 0.0) leaf = 0.0;
  const double max_leaf = static_cast<double>(num_leaves - 1);
  if (leaf > max_leaf) leaf = max_leaf;
  return static_cast<size_t>(leaf);
}

void RmiIndex::Fit() {
  const size_t n = keys_.size();
  leaf_models_.clear();
  leaf_errors_.clear();
  leaf_start_.clear();
  last_fit_points_ = 0;
  if (n == 0) {
    root_ = LinearModel{};
    return;
  }
  root_ = FitLinear(keys_.data(), n);
  // Least squares over ascending positions cannot produce a negative slope,
  // but guard against numeric pathologies: a monotone root is required for
  // contiguous leaf ranges.
  if (root_.slope < 0.0) {
    root_.slope = 0.0;
    root_.intercept = static_cast<double>(n) / 2.0;
  }

  const size_t num_leaves = std::min<size_t>(
      static_cast<size_t>(options_.num_leaf_models), std::max<size_t>(n, 1));
  leaf_models_.resize(num_leaves);
  leaf_errors_.assign(num_leaves, 0);
  leaf_start_.assign(num_leaves + 1, n);

  // Assign keys to leaves with the same formula lookups use; the mapping is
  // monotone, so each leaf covers a contiguous range of positions.
  size_t start = 0;
  for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
    leaf_start_[leaf] = start;
    size_t end = start;
    while (end < n && LeafFor(keys_[end]) == leaf) ++end;
    // Fit this leaf on its keys (optionally subsampled), targets = global
    // positions.
    const size_t count = end - start;
    if (count == 0) {
      // Empty leaf: inherit a flat model pointing at the boundary.
      leaf_models_[leaf].slope = 0.0;
      leaf_models_[leaf].intercept = static_cast<double>(start);
      leaf_errors_[leaf] = 0;
    } else {
      std::vector<double> xs, ys;
      xs.reserve(count / options_.train_sample_every + 2);
      ys.reserve(xs.capacity());
      for (size_t i = start; i < end;
           i += static_cast<size_t>(options_.train_sample_every)) {
        xs.push_back(static_cast<double>(keys_[i]));
        ys.push_back(static_cast<double>(i));
      }
      // Always include the last key so the model sees the full span.
      if (xs.empty() ||
          xs.back() != static_cast<double>(keys_[end - 1])) {
        xs.push_back(static_cast<double>(keys_[end - 1]));
        ys.push_back(static_cast<double>(end - 1));
      }
      leaf_models_[leaf] = FitLinearTargets(xs, ys);
      last_fit_points_ += xs.size();
      // The error bound must be exact over *all* keys (correctness), even
      // when the fit was subsampled (cost).
      uint32_t max_err = 0;
      for (size_t i = start; i < end; ++i) {
        const size_t pred = leaf_models_[leaf].PredictClamped(
            static_cast<double>(keys_[i]), n);
        const size_t err = pred > i ? pred - i : i - pred;
        max_err = std::max<uint32_t>(max_err, static_cast<uint32_t>(err));
      }
      leaf_errors_[leaf] = max_err;
    }
    start = end;
  }
  leaf_start_[num_leaves] = n;
  LSBENCH_ASSERT_MSG(start == n, "leaf assignment covered all keys");
}

size_t RmiIndex::FindStatic(Key key) const {
  const size_t n = keys_.size();
  if (n == 0) return 0;
  const size_t leaf = LeafFor(key);
  const size_t pred =
      leaf_models_[leaf].PredictClamped(static_cast<double>(key), n);
  const uint32_t err = leaf_errors_[leaf];
  const size_t lo = pred > err ? pred - err : 0;
  const size_t hi = std::min(n, pred + err + 1);
  const auto begin = keys_.begin() + lo;
  const auto end = keys_.begin() + hi;
  const auto it = std::lower_bound(begin, end, key);
  if (it != end && *it == key) return it - keys_.begin();
  return n;
}

std::optional<Value> RmiIndex::Get(Key key) const {
  if (delta_.empty()) {
    const size_t pos = FindStatic(key);
    if (pos >= keys_.size()) return std::nullopt;
    return values_[pos];
  }
  Value v = 0;
  switch (delta_.Lookup(key, &v)) {
    case DeltaBuffer::Presence::kLive:
      return v;
    case DeltaBuffer::Presence::kTombstone:
      return std::nullopt;
    case DeltaBuffer::Presence::kAbsent:
      break;
  }
  const size_t pos = FindStatic(key);
  if (pos >= keys_.size()) return std::nullopt;
  return values_[pos];
}

bool RmiIndex::Insert(Key key, Value value) {
  Value unused = 0;
  const auto presence = delta_.Lookup(key, &unused);
  const bool existed =
      presence == DeltaBuffer::Presence::kLive ||
      (presence == DeltaBuffer::Presence::kAbsent && StaticContains(key));
  delta_.Put(key, value);
  if (!existed) ++live_count_;
  return !existed;
}

bool RmiIndex::Erase(Key key) {
  Value unused = 0;
  const auto presence = delta_.Lookup(key, &unused);
  if (presence == DeltaBuffer::Presence::kTombstone) return false;
  if (presence == DeltaBuffer::Presence::kLive) {
    delta_.Delete(key);
    --live_count_;
    return true;
  }
  if (StaticContains(key)) {
    delta_.Delete(key);
    --live_count_;
    return true;
  }
  return false;
}

size_t RmiIndex::Scan(Key from, size_t limit,
                      std::vector<KeyValue>* out) const {
  return delta_.MergeScan(keys_, values_, from, limit, out);
}

size_t RmiIndex::MemoryBytes() const {
  return keys_.size() * (sizeof(Key) + sizeof(Value)) +
         leaf_models_.size() *
             (sizeof(LinearModel) + sizeof(uint32_t) + sizeof(size_t)) +
         delta_.MemoryBytes();
}

void RmiIndex::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  keys_.clear();
  values_.clear();
  keys_.reserve(sorted_pairs.size());
  values_.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    LSBENCH_ASSERT_MSG(keys_.empty() || keys_.back() < k,
                       "BulkLoad requires strictly ascending keys");
    keys_.push_back(k);
    values_.push_back(v);
  }
  delta_.Clear();
  live_count_ = keys_.size();
  Fit();
}

size_t RmiIndex::Retrain() {
  std::vector<KeyValue> static_pairs;
  static_pairs.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    static_pairs.emplace_back(keys_[i], values_[i]);
  }
  const std::vector<KeyValue> merged = delta_.MergeWith(static_pairs);
  keys_.clear();
  values_.clear();
  keys_.reserve(merged.size());
  values_.reserve(merged.size());
  for (const auto& [k, v] : merged) {
    keys_.push_back(k);
    values_.push_back(v);
  }
  delta_.Clear();
  live_count_ = keys_.size();
  Fit();
  return keys_.size();
}

double RmiIndex::MeanLeafError() const {
  if (leaf_errors_.empty()) return 0.0;
  double sum = 0.0;
  for (uint32_t e : leaf_errors_) sum += static_cast<double>(e);
  return sum / static_cast<double>(leaf_errors_.size());
}

uint32_t RmiIndex::MaxLeafError() const {
  uint32_t max_err = 0;
  for (uint32_t e : leaf_errors_) max_err = std::max(max_err, e);
  return max_err;
}

}  // namespace lsbench
