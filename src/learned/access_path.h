#ifndef LSBENCH_LEARNED_ACCESS_PATH_H_
#define LSBENCH_LEARNED_ACCESS_PATH_H_

#include <cstdint>
#include <string>

namespace lsbench {

/// The two physical plans our mini-optimizer chooses between for a range
/// query: probe the ordered index and walk, or scan everything and filter.
enum class AccessPath { kIndexProbe, kFullScan };

std::string AccessPathToString(AccessPath path);

/// Cost model interface. Costs are in abstract work units (comparable within
/// one model only); the optimizer picks the cheaper path.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  /// Predicted cost of `path` for a range query expected to return
  /// `estimated_rows` of `table_rows` total.
  virtual double PredictCost(AccessPath path, double estimated_rows,
                             double table_rows) const = 0;

  /// Observed execution feedback (actual rows and measured cost). Static
  /// models ignore it.
  virtual void Feedback(AccessPath path, double actual_rows,
                        double table_rows, double observed_cost) {
    (void)path;
    (void)actual_rows;
    (void)table_rows;
    (void)observed_cost;
  }

  /// Convenience: the cheaper path under this model.
  AccessPath Choose(double estimated_rows, double table_rows) const;
};

/// Textbook static cost model with hand-tuned constants: index probe costs
/// log2(n) + rows * per-row constant; scan costs n * scan constant. This is
/// the "manually optimized, never adapts" baseline.
class StaticCostModel final : public CostModel {
 public:
  struct Constants {
    double probe_startup = 1.0;
    double probe_per_row = 4.0;  // Random-ish access.
    double scan_per_row = 1.0;   // Sequential access.
  };

  StaticCostModel() = default;
  explicit StaticCostModel(Constants constants) : constants_(constants) {}

  std::string name() const override { return "static_cost_model"; }
  double PredictCost(AccessPath path, double estimated_rows,
                     double table_rows) const override;

 private:
  Constants constants_ = Constants();
};

/// Online-learned cost model: starts from the static constants but refines
/// per-path cost coefficients from observed executions via exponentially
/// weighted updates — the learned-optimizer stand-in whose transition
/// behavior (briefly wrong after a shift, then recovering) the adaptability
/// metrics are designed to expose.
class OnlineCostModel final : public CostModel {
 public:
  struct Options {
    double learning_rate = 0.1;
    StaticCostModel::Constants initial;
  };

  OnlineCostModel() : OnlineCostModel(Options()) {}
  explicit OnlineCostModel(Options options);

  std::string name() const override { return "online_cost_model"; }
  double PredictCost(AccessPath path, double estimated_rows,
                     double table_rows) const override;
  void Feedback(AccessPath path, double actual_rows, double table_rows,
                double observed_cost) override;

  uint64_t feedback_count() const { return feedback_count_; }
  double probe_per_row() const { return probe_per_row_; }
  double scan_per_row() const { return scan_per_row_; }

 private:
  double learning_rate_;
  double probe_startup_;
  double probe_per_row_;
  double scan_per_row_;
  uint64_t feedback_count_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_ACCESS_PATH_H_
