#include "learned/pgm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.h"

namespace lsbench {

PgmIndex::PgmIndex(uint32_t epsilon) : epsilon_(epsilon) {
  LSBENCH_ASSERT(epsilon_ >= 1);
}

void PgmIndex::Fit() {
  segments_.clear();
  const size_t n = keys_.size();
  if (n == 0) return;

  const double eps = static_cast<double>(epsilon_);
  size_t start = 0;
  double x0 = static_cast<double>(keys_[0]);
  double y0 = 0.0;
  double slope_lo = -std::numeric_limits<double>::infinity();
  double slope_hi = std::numeric_limits<double>::infinity();

  auto close_segment = [&](size_t seg_start) {
    Segment seg;
    seg.first_key = keys_[seg_start];
    seg.x0 = x0;
    seg.y0 = y0;
    if (!std::isfinite(slope_lo) && !std::isfinite(slope_hi)) {
      seg.slope = 0.0;  // Single-point segment.
    } else if (!std::isfinite(slope_lo)) {
      seg.slope = slope_hi;
    } else if (!std::isfinite(slope_hi)) {
      seg.slope = slope_lo;
    } else {
      seg.slope = 0.5 * (slope_lo + slope_hi);
    }
    segments_.push_back(seg);
  };

  for (size_t i = 1; i < n; ++i) {
    const double dx = static_cast<double>(keys_[i]) - x0;
    const double dy = static_cast<double>(i) - y0;
    if (dx <= 0.0) {
      // Adjacent keys can collapse to the same double near 2^63 (the ULP
      // there is 2048); the cone cannot absorb a vertical step, so start a
      // fresh segment at this key. Segment lookup compares exact integer
      // keys, so correctness is unaffected.
      close_segment(start);
      start = i;
      x0 = static_cast<double>(keys_[i]);
      y0 = static_cast<double>(i);
      slope_lo = -std::numeric_limits<double>::infinity();
      slope_hi = std::numeric_limits<double>::infinity();
      continue;
    }
    const double lo = (dy - eps) / dx;
    const double hi = (dy + eps) / dx;
    const double new_lo = std::max(slope_lo, lo);
    const double new_hi = std::min(slope_hi, hi);
    if (new_lo > new_hi) {
      close_segment(start);
      start = i;
      x0 = static_cast<double>(keys_[i]);
      y0 = static_cast<double>(i);
      slope_lo = -std::numeric_limits<double>::infinity();
      slope_hi = std::numeric_limits<double>::infinity();
    } else {
      slope_lo = new_lo;
      slope_hi = new_hi;
    }
  }
  close_segment(start);
}

size_t PgmIndex::FindStatic(Key key) const {
  const size_t n = keys_.size();
  if (n == 0) return 0;
  // Locate the owning segment: last segment with first_key <= key.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](Key k, const Segment& s) { return k < s.first_key; });
  const size_t seg_idx =
      it == segments_.begin() ? 0 : (it - segments_.begin()) - 1;
  const Segment& seg = segments_[seg_idx];
  const double pred_real =
      seg.slope * (static_cast<double>(key) - seg.x0) + seg.y0;
  size_t pred;
  if (pred_real <= 0.0) {
    pred = 0;
  } else if (pred_real >= static_cast<double>(n - 1)) {
    pred = n - 1;
  } else {
    pred = static_cast<size_t>(pred_real);
  }
  const size_t lo = pred > epsilon_ ? pred - epsilon_ : 0;
  const size_t hi = std::min(n, pred + epsilon_ + 1);
  const auto begin = keys_.begin() + lo;
  const auto end = keys_.begin() + hi;
  const auto pos = std::lower_bound(begin, end, key);
  if (pos != end && *pos == key) return pos - keys_.begin();
  return n;
}

std::optional<Value> PgmIndex::Get(Key key) const {
  if (delta_.empty()) {
    const size_t pos = FindStatic(key);
    if (pos >= keys_.size()) return std::nullopt;
    return values_[pos];
  }
  Value v = 0;
  switch (delta_.Lookup(key, &v)) {
    case DeltaBuffer::Presence::kLive:
      return v;
    case DeltaBuffer::Presence::kTombstone:
      return std::nullopt;
    case DeltaBuffer::Presence::kAbsent:
      break;
  }
  const size_t pos = FindStatic(key);
  if (pos >= keys_.size()) return std::nullopt;
  return values_[pos];
}

bool PgmIndex::Insert(Key key, Value value) {
  Value unused = 0;
  const auto presence = delta_.Lookup(key, &unused);
  const bool existed =
      presence == DeltaBuffer::Presence::kLive ||
      (presence == DeltaBuffer::Presence::kAbsent && StaticContains(key));
  delta_.Put(key, value);
  if (!existed) ++live_count_;
  return !existed;
}

bool PgmIndex::Erase(Key key) {
  Value unused = 0;
  const auto presence = delta_.Lookup(key, &unused);
  if (presence == DeltaBuffer::Presence::kTombstone) return false;
  if (presence == DeltaBuffer::Presence::kLive) {
    delta_.Delete(key);
    --live_count_;
    return true;
  }
  if (StaticContains(key)) {
    delta_.Delete(key);
    --live_count_;
    return true;
  }
  return false;
}

size_t PgmIndex::Scan(Key from, size_t limit,
                      std::vector<KeyValue>* out) const {
  return delta_.MergeScan(keys_, values_, from, limit, out);
}

size_t PgmIndex::MemoryBytes() const {
  return keys_.size() * (sizeof(Key) + sizeof(Value)) +
         segments_.size() * sizeof(Segment) + delta_.MemoryBytes();
}

void PgmIndex::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  keys_.clear();
  values_.clear();
  keys_.reserve(sorted_pairs.size());
  values_.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    LSBENCH_ASSERT_MSG(keys_.empty() || keys_.back() < k,
                       "BulkLoad requires strictly ascending keys");
    keys_.push_back(k);
    values_.push_back(v);
  }
  delta_.Clear();
  live_count_ = keys_.size();
  Fit();
}

size_t PgmIndex::Retrain() {
  std::vector<KeyValue> static_pairs;
  static_pairs.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    static_pairs.emplace_back(keys_[i], values_[i]);
  }
  const std::vector<KeyValue> merged = delta_.MergeWith(static_pairs);
  keys_.clear();
  values_.clear();
  keys_.reserve(merged.size());
  values_.reserve(merged.size());
  for (const auto& [k, v] : merged) {
    keys_.push_back(k);
    values_.push_back(v);
  }
  delta_.Clear();
  live_count_ = keys_.size();
  Fit();
  return keys_.size();
}

}  // namespace lsbench
