#ifndef LSBENCH_LEARNED_DRIFT_DETECTOR_H_
#define LSBENCH_LEARNED_DRIFT_DETECTOR_H_

#include <cstdint>
#include <vector>

#include "stats/reservoir.h"

namespace lsbench {

/// Detects distribution change in a stream of observations (keys accessed,
/// keys inserted, ...) by comparing a frozen reference sample against a
/// sliding recent window with a two-sample KS test. Adaptive SUTs use this
/// to decide *when* to retrain — the mechanism behind their recovery curves
/// in the adaptability experiments.
class DriftDetector {
 public:
  struct Options {
    size_t reference_capacity = 2048;
    size_t window_capacity = 1024;
    /// Drift is reported when the KS statistic exceeds this.
    double ks_threshold = 0.2;
    /// Minimum observations in the window before a verdict is possible.
    size_t min_window = 256;
  };

  DriftDetector() : DriftDetector(Options()) {}
  explicit DriftDetector(Options options, uint64_t seed = 7);

  /// Feeds one observation.
  void Observe(double value);

  /// Current KS statistic between the reference and the recent window
  /// (0 when the window is still warming up).
  double CurrentDistance() const;

  /// True when the recent window has drifted beyond the threshold.
  bool DriftDetected() const;

  /// Promotes the recent window to become the new reference (call after
  /// retraining on the new distribution) and clears the window.
  void Rebase();

  /// Freezes the current observations as the reference (call once after the
  /// initial training phase).
  void Freeze();

  size_t reference_size() const { return reference_.sample().size(); }
  size_t window_size() const { return window_.size(); }

 private:
  Options options_;
  ReservoirSampler<double> reference_;
  std::vector<double> window_;  // Ring buffer of the most recent values.
  size_t window_next_ = 0;
  bool frozen_ = false;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_DRIFT_DETECTOR_H_
