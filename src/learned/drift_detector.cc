#include "learned/drift_detector.h"

#include "stats/similarity.h"

namespace lsbench {

DriftDetector::DriftDetector(Options options, uint64_t seed)
    : options_(options), reference_(options.reference_capacity, seed) {
  window_.reserve(options_.window_capacity);
}

void DriftDetector::Observe(double value) {
  if (!frozen_) {
    reference_.Add(value);
    return;
  }
  if (window_.size() < options_.window_capacity) {
    window_.push_back(value);
  } else {
    window_[window_next_] = value;
  }
  window_next_ = (window_next_ + 1) % options_.window_capacity;
}

double DriftDetector::CurrentDistance() const {
  if (!frozen_ || window_.size() < options_.min_window ||
      reference_.sample().empty()) {
    return 0.0;
  }
  return KolmogorovSmirnov(reference_.sample(), window_).statistic;
}

bool DriftDetector::DriftDetected() const {
  return CurrentDistance() > options_.ks_threshold;
}

void DriftDetector::Rebase() {
  reference_.Clear();
  for (double v : window_) reference_.Add(v);
  window_.clear();
  window_next_ = 0;
}

void DriftDetector::Freeze() { frozen_ = true; }

}  // namespace lsbench
