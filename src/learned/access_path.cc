#include "learned/access_path.h"

#include <algorithm>
#include <cmath>

namespace lsbench {

std::string AccessPathToString(AccessPath path) {
  return path == AccessPath::kIndexProbe ? "index_probe" : "full_scan";
}

AccessPath CostModel::Choose(double estimated_rows, double table_rows) const {
  const double probe =
      PredictCost(AccessPath::kIndexProbe, estimated_rows, table_rows);
  const double scan =
      PredictCost(AccessPath::kFullScan, estimated_rows, table_rows);
  return probe <= scan ? AccessPath::kIndexProbe : AccessPath::kFullScan;
}

double StaticCostModel::PredictCost(AccessPath path, double estimated_rows,
                                    double table_rows) const {
  estimated_rows = std::max(0.0, estimated_rows);
  table_rows = std::max(1.0, table_rows);
  if (path == AccessPath::kIndexProbe) {
    return constants_.probe_startup + std::log2(table_rows + 1.0) +
           estimated_rows * constants_.probe_per_row;
  }
  return table_rows * constants_.scan_per_row;
}

OnlineCostModel::OnlineCostModel(Options options)
    : learning_rate_(options.learning_rate),
      probe_startup_(options.initial.probe_startup),
      probe_per_row_(options.initial.probe_per_row),
      scan_per_row_(options.initial.scan_per_row) {}

double OnlineCostModel::PredictCost(AccessPath path, double estimated_rows,
                                    double table_rows) const {
  estimated_rows = std::max(0.0, estimated_rows);
  table_rows = std::max(1.0, table_rows);
  if (path == AccessPath::kIndexProbe) {
    return probe_startup_ + std::log2(table_rows + 1.0) +
           estimated_rows * probe_per_row_;
  }
  return table_rows * scan_per_row_;
}

void OnlineCostModel::Feedback(AccessPath path, double actual_rows,
                               double table_rows, double observed_cost) {
  ++feedback_count_;
  table_rows = std::max(1.0, table_rows);
  if (path == AccessPath::kIndexProbe) {
    const double fixed = probe_startup_ + std::log2(table_rows + 1.0);
    if (actual_rows >= 1.0) {
      const double implied =
          std::max(0.0, (observed_cost - fixed) / actual_rows);
      probe_per_row_ += learning_rate_ * (implied - probe_per_row_);
    } else {
      // Zero-row probes reveal the startup cost.
      probe_startup_ +=
          learning_rate_ * (std::max(0.0, observed_cost) - probe_startup_);
    }
  } else {
    const double implied = std::max(0.0, observed_cost / table_rows);
    scan_per_row_ += learning_rate_ * (implied - scan_per_row_);
  }
}

}  // namespace lsbench
