#include "learned/delta_buffer.h"

#include <algorithm>

namespace lsbench {

DeltaBuffer::Presence DeltaBuffer::Lookup(Key key, Value* value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return Presence::kAbsent;
  if (it->second.tombstone) return Presence::kTombstone;
  if (value != nullptr) *value = it->second.value;
  return Presence::kLive;
}

void DeltaBuffer::Put(Key key, Value value) {
  entries_[key] = Entry{false, value};
}

void DeltaBuffer::Delete(Key key) { entries_[key] = Entry{true, 0}; }

std::vector<KeyValue> DeltaBuffer::MergeWith(
    const std::vector<KeyValue>& static_pairs) const {
  std::vector<KeyValue> merged;
  merged.reserve(static_pairs.size() + entries_.size());
  auto sit = static_pairs.begin();
  auto dit = entries_.begin();
  while (sit != static_pairs.end() || dit != entries_.end()) {
    if (dit == entries_.end() ||
        (sit != static_pairs.end() && sit->first < dit->first)) {
      merged.push_back(*sit);
      ++sit;
      continue;
    }
    if (sit != static_pairs.end() && sit->first == dit->first) {
      ++sit;  // Delta shadows the static entry.
    }
    if (!dit->second.tombstone) {
      merged.emplace_back(dit->first, dit->second.value);
    }
    ++dit;
  }
  return merged;
}

size_t DeltaBuffer::MergeScan(const std::vector<Key>& static_keys,
                              const std::vector<Value>& static_values,
                              Key from, size_t limit,
                              std::vector<KeyValue>* out) const {
  size_t si = std::lower_bound(static_keys.begin(), static_keys.end(), from) -
              static_keys.begin();
  auto dit = entries_.lower_bound(from);
  size_t appended = 0;
  while (appended < limit &&
         (si < static_keys.size() || dit != entries_.end())) {
    const bool take_delta =
        dit != entries_.end() &&
        (si >= static_keys.size() || dit->first <= static_keys[si]);
    if (take_delta) {
      if (si < static_keys.size() && static_keys[si] == dit->first) {
        ++si;  // Shadowed.
      }
      if (!dit->second.tombstone) {
        out->emplace_back(dit->first, dit->second.value);
        ++appended;
      }
      ++dit;
    } else {
      out->emplace_back(static_keys[si], static_values[si]);
      ++si;
      ++appended;
    }
  }
  return appended;
}

}  // namespace lsbench
