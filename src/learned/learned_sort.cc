#include "learned/learned_sort.h"

#include <algorithm>

#include "stats/model.h"
#include "util/assert.h"
#include "util/random.h"

namespace lsbench {

LearnedSortStats LearnedSort(std::vector<Key>* data,
                             const LearnedSortOptions& options) {
  LSBENCH_ASSERT(data != nullptr);
  LearnedSortStats stats;
  stats.n = data->size();
  const size_t n = data->size();
  if (n < 64) {
    std::sort(data->begin(), data->end());
    stats.num_buckets = 1;
    stats.model_fit_fraction = 1.0;
    return stats;
  }

  // 1. Sample and fit the CDF model.
  const size_t sample_size = std::min(options.sample_size, n);
  Rng rng(options.seed);
  std::vector<Key> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back((*data)[rng.NextBounded(n)]);
  }
  std::sort(sample.begin(), sample.end());
  const CdfModel cdf = CdfModel::FitFromSorted(sample, options.num_knots);
  stats.model_fit_fraction =
      static_cast<double>(sample_size) / static_cast<double>(n);

  // 2. Scatter into fixed-capacity buckets; overflow spills aside.
  const size_t num_buckets =
      std::max<size_t>(2, (n + options.bucket_size - 1) / options.bucket_size);
  stats.num_buckets = num_buckets;
  const size_t capacity = options.bucket_size * 2;  // Headroom before spill.
  std::vector<std::vector<Key>> buckets(num_buckets);
  for (auto& b : buckets) b.reserve(options.bucket_size);
  std::vector<Key> spill;
  for (Key k : *data) {
    const double q = cdf.Evaluate(k);
    size_t b = static_cast<size_t>(q * static_cast<double>(num_buckets));
    if (b >= num_buckets) b = num_buckets - 1;
    if (buckets[b].size() < capacity) {
      buckets[b].push_back(k);
    } else {
      spill.push_back(k);
    }
  }
  stats.spill_count = spill.size();

  // 3. Sort each bucket and concatenate (buckets are ordered by CDF, so the
  //    concatenation is nearly sorted up to model error).
  data->clear();
  for (auto& b : buckets) {
    std::sort(b.begin(), b.end());
    data->insert(data->end(), b.begin(), b.end());
  }

  // 4. Touch-up pass: insertion sort handles residual disorder from model
  //    error in near-linear time on nearly-sorted data.
  for (size_t i = 1; i < data->size(); ++i) {
    Key k = (*data)[i];
    size_t j = i;
    while (j > 0 && (*data)[j - 1] > k) {
      (*data)[j] = (*data)[j - 1];
      --j;
    }
    (*data)[j] = k;
  }

  // 5. Merge the spill back in (sorted merge).
  if (!spill.empty()) {
    std::sort(spill.begin(), spill.end());
    std::vector<Key> merged;
    merged.reserve(data->size() + spill.size());
    std::merge(data->begin(), data->end(), spill.begin(), spill.end(),
               std::back_inserter(merged));
    *data = std::move(merged);
  }
  return stats;
}

}  // namespace lsbench
