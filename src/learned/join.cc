#include "learned/join.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "learned/segment_model.h"

namespace lsbench {

JoinStats MergeJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                    std::vector<Key>* out) {
  JoinStats stats;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    ++stats.comparisons;
    if (a[i] == b[j]) {
      ++stats.matches;
      if (out != nullptr) out->push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return stats;
}

JoinStats HashJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                   std::vector<Key>* out) {
  JoinStats stats;
  const std::vector<Key>& build = a.size() <= b.size() ? a : b;
  const std::vector<Key>& probe = a.size() <= b.size() ? b : a;
  std::unordered_set<Key> table(build.begin(), build.end());
  stats.comparisons = build.size();  // Build-side hashing work.
  for (Key k : probe) {
    ++stats.comparisons;
    if (table.count(k) > 0) {
      ++stats.matches;
      if (out != nullptr) out->push_back(k);
    }
  }
  return stats;
}

JoinStats LearnedJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                      std::vector<Key>* out, LearnedJoinOptions options) {
  JoinStats stats;
  const std::vector<Key>& small = a.size() <= b.size() ? a : b;
  const std::vector<Key>& large = a.size() <= b.size() ? b : a;
  if (small.empty() || large.empty()) return stats;

  SegmentModel model;
  model.Build(large.data(), large.size(), options.epsilon);
  stats.comparisons += large.size();  // One pass to fit the model.

  for (Key key : small) {
    const auto [lo, hi] = model.WindowFor(key);
    const auto begin = large.begin() + lo;
    const auto end = large.begin() + hi;
    const auto it = std::lower_bound(begin, end, key);
    stats.comparisons += static_cast<uint64_t>(
        std::ceil(std::log2(static_cast<double>(hi - lo) + 1.0)));
    if (it != end && *it == key) {
      ++stats.matches;
      if (out != nullptr) out->push_back(key);
    }
  }
  return stats;
}

}  // namespace lsbench
