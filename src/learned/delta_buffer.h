#ifndef LSBENCH_LEARNED_DELTA_BUFFER_H_
#define LSBENCH_LEARNED_DELTA_BUFFER_H_

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// Write buffer layered over a static learned structure (the classic
/// "learned main + delta" design): inserts and deletes land here until the
/// owner retrains and merges. Deletes are tombstones so they can mask keys
/// that live in the static part.
class DeltaBuffer {
 public:
  enum class Presence { kAbsent, kLive, kTombstone };

  /// How `key` appears in the buffer.
  Presence Lookup(Key key, Value* value) const;

  /// Records an insert/overwrite.
  void Put(Key key, Value value);

  /// Records a delete (tombstone).
  void Delete(Key key);

  /// Number of buffered entries (live + tombstones).
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  size_t MemoryBytes() const {
    // std::map node: payload + 3 pointers + color, roughly.
    return entries_.size() * (sizeof(Key) + sizeof(Value) + 4 * sizeof(void*));
  }

  /// Merges the static run `static_pairs` (sorted, tombstone-free) with the
  /// buffer into a fresh sorted run with tombstones applied. Used at
  /// retrain time.
  std::vector<KeyValue> MergeWith(
      const std::vector<KeyValue>& static_pairs) const;

  /// Merge-scan: appends up to `limit` pairs with key >= `from` to `out`,
  /// combining the buffer with a static sorted view given by parallel
  /// key/value arrays. Returns the number appended.
  size_t MergeScan(const std::vector<Key>& static_keys,
                   const std::vector<Value>& static_values, Key from,
                   size_t limit, std::vector<KeyValue>* out) const;

 private:
  struct Entry {
    bool tombstone = false;
    Value value = 0;
  };
  std::map<Key, Entry> entries_;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_DELTA_BUFFER_H_
