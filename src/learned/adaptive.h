#ifndef LSBENCH_LEARNED_ADAPTIVE_H_
#define LSBENCH_LEARNED_ADAPTIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "stats/model.h"

namespace lsbench {

/// Tuning knobs for the adaptive learned index.
struct AdaptiveOptions {
  /// Segment splits when its live entries exceed this.
  size_t max_segment_entries = 4096;
  /// Gapped-array slack: slots = entries * expansion_factor.
  double expansion_factor = 1.5;
  /// A segment retrains its model when the observed mean displacement of
  /// model-guided probes exceeds this many slots.
  double retrain_error_threshold = 64.0;
};

/// ALEX-style updatable learned index: a sorted directory of segments, each
/// a model-backed gapped array. Inserts go to the model-predicted slot and
/// shift into neighboring gaps; overfull or badly-modeled segments split and
/// retrain *online* — the continuous, incremental adaptation behavior
/// ("online learning") that LSBench's adaptability metrics measure.
class AdaptiveLearnedIndex final : public KvIndex {
 public:
  explicit AdaptiveLearnedIndex(AdaptiveOptions options = {});

  std::string name() const override { return "alex_lite"; }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return size_; }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  size_t segment_count() const { return segments_.size(); }
  /// Cumulative number of model refits (splits + threshold retrains) —
  /// the online-training-effort signal surfaced to cost accounting.
  uint64_t retrain_count() const { return retrain_count_; }
  /// Cumulative entries rewritten by splits/retrains (work units).
  uint64_t retrain_work() const { return retrain_work_; }

  /// Verifies directory ordering, per-segment slot ordering, and size
  /// bookkeeping. Aborts on violation; for tests.
  void CheckInvariants() const;

 private:
  /// One gapped-array segment. `occupied[i]` marks live slots; keys of dead
  /// slots are undefined.
  struct Segment {
    Key first_key = 0;           // Directory key (min possible key here).
    LinearModel model;           // key -> slot hint.
    std::vector<Key> slot_keys;
    std::vector<Value> slot_values;
    std::vector<bool> occupied;
    size_t live = 0;
    double displacement_sum = 0.0;  // For the retrain heuristic.
    uint64_t displacement_count = 0;
  };

  size_t SegmentFor(Key key) const;
  /// Slot of `key` in segment, or slot_keys.size() if absent.
  size_t FindSlot(const Segment& seg, Key key) const;
  /// Rebuilds a segment from its live entries (model + gapped layout).
  void RebuildSegment(Segment* seg);
  static std::vector<KeyValue> ExtractLive(const Segment& seg);
  void SplitSegment(size_t seg_idx);
  /// Builds a fresh segment from sorted pairs.
  Segment MakeSegment(const std::vector<KeyValue>& pairs, Key first_key) const;

  AdaptiveOptions options_;
  std::vector<Segment> segments_;  // Ascending by first_key.
  size_t size_ = 0;
  uint64_t retrain_count_ = 0;
  uint64_t retrain_work_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_ADAPTIVE_H_
