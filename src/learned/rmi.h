#ifndef LSBENCH_LEARNED_RMI_H_
#define LSBENCH_LEARNED_RMI_H_

#include <string>
#include <vector>

#include "index/kv_index.h"
#include "learned/delta_buffer.h"
#include "stats/model.h"

namespace lsbench {

/// Training configuration for the RMI. `num_leaf_models` is the paper's
/// "longer training gives better performance" knob: more leaf models mean a
/// longer fit but tighter error bounds and faster lookups.
struct RmiOptions {
  int num_leaf_models = 256;
  /// Train on every k-th key (k >= 1); k > 1 trades accuracy for training
  /// time — the budgeted-training mechanism behind Fig. 1d sweeps.
  int train_sample_every = 1;
};

/// Two-stage Recursive Model Index (Kraska et al., SIGMOD'18) over sorted
/// 64-bit keys, with a delta buffer for writes. The static part answers
/// lookups via root model -> leaf model -> bounded binary search inside the
/// leaf's recorded maximum error. Retrain() merges the delta and refits.
class RmiIndex final : public KvIndex {
 public:
  explicit RmiIndex(RmiOptions options = {});

  std::string name() const override { return "rmi"; }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return live_count_; }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  /// Merges the delta buffer into the static arrays and refits all models.
  /// Returns the number of keys trained over.
  size_t Retrain();

  size_t delta_size() const { return delta_.size(); }
  size_t static_size() const { return keys_.size(); }

  /// Mean/max of the per-leaf maximum position errors — the model quality
  /// signal the adaptability experiments watch degrade under drift.
  double MeanLeafError() const;
  uint32_t MaxLeafError() const;

  /// Number of (key, position) points the last Fit actually regressed over
  /// (= static_size / train_sample_every, plus boundary points) — the
  /// training-effort figure cost sweeps report.
  size_t last_fit_points() const { return last_fit_points_; }

  const RmiOptions& options() const { return options_; }

 private:
  /// Fits root + leaf models + error bounds over keys_.
  void Fit();
  size_t LeafFor(Key key) const;
  /// Position of `key` in keys_ or keys_.size() if absent.
  size_t FindStatic(Key key) const;
  bool StaticContains(Key key) const { return FindStatic(key) < keys_.size(); }

  RmiOptions options_;
  std::vector<Key> keys_;
  std::vector<Value> values_;
  LinearModel root_;
  std::vector<LinearModel> leaf_models_;
  std::vector<uint32_t> leaf_errors_;
  /// First static position covered by each leaf (ascending); leaf i covers
  /// [leaf_start_[i], leaf_start_[i+1]).
  std::vector<size_t> leaf_start_;
  DeltaBuffer delta_;
  size_t live_count_ = 0;
  size_t last_fit_points_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_RMI_H_
