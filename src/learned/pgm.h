#ifndef LSBENCH_LEARNED_PGM_H_
#define LSBENCH_LEARNED_PGM_H_

#include <string>
#include <vector>

#include "index/kv_index.h"
#include "learned/delta_buffer.h"
#include "stats/model.h"

namespace lsbench {

/// Piecewise Geometric Model index (Ferragina & Vinciguerra style): a greedy
/// shrinking-cone pass builds the minimal set of linear segments such that
/// every key's predicted position is within `epsilon` of its true position.
/// Lookups binary-search the segment directory, then search a 2*epsilon+1
/// window. Writes go to a delta buffer until Retrain().
class PgmIndex final : public KvIndex {
 public:
  /// `epsilon` >= 1: the guaranteed maximum position error per segment.
  explicit PgmIndex(uint32_t epsilon = 64);

  std::string name() const override { return "pgm"; }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return live_count_; }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  /// Merges the delta and rebuilds segments. Returns keys trained over.
  size_t Retrain();

  size_t delta_size() const { return delta_.size(); }
  size_t static_size() const { return keys_.size(); }
  size_t segment_count() const { return segments_.size(); }
  uint32_t epsilon() const { return epsilon_; }

 private:
  /// Piecewise-linear segment anchored at its own origin: position(key) =
  /// slope * (key - x0) + y0. The anchored form is numerically essential —
  /// an absolute `slope * key + intercept` loses ~8 positions of precision
  /// for keys near 2^63, silently exceeding the epsilon guarantee.
  struct Segment {
    Key first_key;
    double x0;     // double(first_key).
    double y0;     // Position of first_key.
    double slope;
  };

  void Fit();
  size_t FindStatic(Key key) const;
  bool StaticContains(Key key) const { return FindStatic(key) < keys_.size(); }

  uint32_t epsilon_;
  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<Segment> segments_;
  DeltaBuffer delta_;
  size_t live_count_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_PGM_H_
