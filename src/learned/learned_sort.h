#ifndef LSBENCH_LEARNED_LEARNED_SORT_H_
#define LSBENCH_LEARNED_LEARNED_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/key_value.h"

namespace lsbench {

/// Configuration for the learned sorter.
struct LearnedSortOptions {
  /// Sample size used to fit the CDF model.
  size_t sample_size = 1024;
  /// Number of CDF knots (model capacity).
  int num_knots = 256;
  /// Elements per output bucket (smaller = more buckets, better placement).
  size_t bucket_size = 128;
  uint64_t seed = 1234;
};

/// Statistics from one learned-sort invocation.
struct LearnedSortStats {
  size_t n = 0;
  size_t num_buckets = 0;
  size_t spill_count = 0;      ///< Elements that overflowed their bucket.
  double model_fit_fraction = 0.0;  ///< Sample size / n.
};

/// Sorts `data` in place using the CDF-model distribution sort of Kristo et
/// al. (SIGMOD'20): sample, fit a CDF model, scatter elements into
/// model-predicted buckets, sort each small bucket, concatenate, and run a
/// touch-up pass. Deterministic given options.seed. Returns placement
/// statistics. Correctness does not depend on model quality — a bad model
/// only increases spills and touch-up work.
LearnedSortStats LearnedSort(std::vector<Key>* data,
                             const LearnedSortOptions& options = {});

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_LEARNED_SORT_H_
