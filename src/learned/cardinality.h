#ifndef LSBENCH_LEARNED_CARDINALITY_H_
#define LSBENCH_LEARNED_CARDINALITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "stats/model.h"

namespace lsbench {

/// Range-cardinality estimator interface: predicts how many stored keys fall
/// in [lo, hi]. Drives the access-path optimizer; the learned variant can be
/// refined online from execution feedback (the paper's §IV point that
/// ground-truth labels can be collected during query execution).
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;

  /// Estimated number of keys in [lo, hi]. Never negative.
  virtual double EstimateRange(Key lo, Key hi) const = 0;

  /// Optional online feedback with the true cardinality of an executed
  /// range. Default: ignore (traditional estimators are static).
  virtual void Feedback(Key lo, Key hi, double true_cardinality) {
    (void)lo;
    (void)hi;
    (void)true_cardinality;
  }

  virtual size_t MemoryBytes() const = 0;
};

/// Traditional equi-depth histogram built once from the stored keys: each of
/// the `num_buckets` buckets holds ~n/num_buckets keys; estimates assume
/// uniformity inside a bucket.
class EquiDepthHistogram final : public CardinalityEstimator {
 public:
  EquiDepthHistogram(const std::vector<Key>& sorted_keys, int num_buckets);

  std::string name() const override { return "equi_depth_histogram"; }
  double EstimateRange(Key lo, Key hi) const override;
  size_t MemoryBytes() const override;

 private:
  /// Estimated number of keys < key.
  double EstimateLess(Key key) const;

  std::vector<Key> boundaries_;  // bucket i covers [boundaries_[i], boundaries_[i+1]).
  double keys_per_bucket_ = 0.0;
  size_t total_keys_ = 0;
};

/// Learned estimator: a CDF model fitted on a sample of the keys, refined
/// online by query feedback. Feedback nudges the local CDF slope toward the
/// observed selectivity with a learning rate — cheap online training whose
/// cost/benefit is exactly what Lesson 3 asks benchmarks to expose.
class LearnedCardinalityEstimator final : public CardinalityEstimator {
 public:
  struct Options {
    int num_knots = 128;
    size_t sample_size = 4096;
    double learning_rate = 0.3;
    uint64_t seed = 99;
  };

  LearnedCardinalityEstimator(const std::vector<Key>& sorted_keys,
                              Options options);

  std::string name() const override { return "learned_cdf"; }
  double EstimateRange(Key lo, Key hi) const override;
  void Feedback(Key lo, Key hi, double true_cardinality) override;
  size_t MemoryBytes() const override;

  uint64_t feedback_count() const { return feedback_count_; }

  /// Rebuilds the model from a fresh key sample (offline retraining).
  void Retrain(const std::vector<Key>& sorted_keys);

 private:
  double CdfAt(Key key) const;

  Options options_;
  size_t total_keys_ = 0;
  std::vector<Key> knot_keys_;
  std::vector<double> knot_cdf_;
  uint64_t feedback_count_ = 0;
};

/// q-error of an estimate: max(est/true, true/est) with both clamped to a
/// minimum of 1 — the standard cardinality-estimation accuracy metric.
double QError(double estimate, double truth);

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_CARDINALITY_H_
