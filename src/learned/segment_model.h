#ifndef LSBENCH_LEARNED_SEGMENT_MODEL_H_
#define LSBENCH_LEARNED_SEGMENT_MODEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// Reusable epsilon-bounded piecewise-linear position model over a sorted
/// key array (the PGM building block, extracted): Build fits segments with
/// the shrinking-cone algorithm; WindowFor returns a position window of
/// width <= 2*epsilon+1 guaranteed to contain the position of any key that
/// IS in the fitted array. For absent keys the window may miss the lower
/// bound (predictions extrapolate inside a segment's key gap), so this
/// model supports membership-style probes, not general lower-bound
/// queries — exactly what point reads and equi-joins need.
/// Segments predict relative to their own origin, which keeps the epsilon
/// guarantee intact for keys near 2^64 where absolute slope*key+intercept
/// arithmetic loses whole positions. Consumers: the learned join kernel and
/// the learned-run LSM mode (Bourbon-style).
class SegmentModel {
 public:
  SegmentModel() = default;

  /// Fits over `n` sorted unique keys with the given error bound
  /// (epsilon >= 1). Replaces any previous fit.
  void Build(const Key* keys, size_t n, uint32_t epsilon);

  /// [lo, hi) window within the fitted array; contains the key's position
  /// whenever the key is present. Requires a prior Build with n > 0.
  std::pair<size_t, size_t> WindowFor(Key key) const;

  bool empty() const { return n_ == 0; }
  size_t size() const { return n_; }
  size_t segment_count() const { return segments_.size(); }
  uint32_t epsilon() const { return epsilon_; }
  size_t MemoryBytes() const { return segments_.size() * sizeof(Segment); }

 private:
  struct Segment {
    Key first_key;
    double x0;
    double y0;
    double slope;
  };

  std::vector<Segment> segments_;
  size_t n_ = 0;
  uint32_t epsilon_ = 1;
};

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_SEGMENT_MODEL_H_
