#ifndef LSBENCH_LEARNED_JOIN_H_
#define LSBENCH_LEARNED_JOIN_H_

#include <cstdint>
#include <vector>

#include "util/key_value.h"

namespace lsbench {

/// Equi-join kernels over sorted unique key columns. §II of the paper:
/// "A similar CDF approach can be used for joins where the model allows to
/// skip over data records that will not join." The learned variant models
/// the larger side's CDF and jumps directly to each probe's predicted
/// position instead of scanning or binary-searching from scratch.

/// Statistics from one join execution.
struct JoinStats {
  uint64_t matches = 0;
  uint64_t comparisons = 0;  ///< Key comparisons performed (work measure).
};

/// Classic sort-merge intersection; O(|a| + |b|) comparisons.
JoinStats MergeJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                    std::vector<Key>* out = nullptr);

/// Hash join: builds on the smaller side; O(|a| + |b|) with hashing costs.
JoinStats HashJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                   std::vector<Key>* out = nullptr);

/// Learned join: fits a CDF model over the larger side (`epsilon`-bounded
/// like a PGM) and, for each key of the smaller side, jumps to the
/// predicted position and searches only the model-error window. When the
/// smaller side is much smaller or only sparsely overlapping, this skips
/// most of the larger side — the paper's record-skipping behavior.
struct LearnedJoinOptions {
  uint32_t epsilon = 32;  ///< Position-error bound of the model.
};

JoinStats LearnedJoin(const std::vector<Key>& a, const std::vector<Key>& b,
                      std::vector<Key>* out = nullptr,
                      LearnedJoinOptions options = {});

}  // namespace lsbench

#endif  // LSBENCH_LEARNED_JOIN_H_
