#include "learned/cardinality.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/random.h"

namespace lsbench {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

EquiDepthHistogram::EquiDepthHistogram(const std::vector<Key>& sorted_keys,
                                       int num_buckets) {
  LSBENCH_ASSERT(num_buckets >= 1);
  total_keys_ = sorted_keys.size();
  if (sorted_keys.empty()) {
    boundaries_ = {0, 1};
    keys_per_bucket_ = 0.0;
    return;
  }
  const size_t n = sorted_keys.size();
  const size_t buckets = std::min<size_t>(num_buckets, n);
  keys_per_bucket_ = static_cast<double>(n) / static_cast<double>(buckets);
  boundaries_.reserve(buckets + 1);
  for (size_t b = 0; b < buckets; ++b) {
    const size_t idx = static_cast<size_t>(
        static_cast<double>(b) * keys_per_bucket_);
    const Key key = sorted_keys[std::min(idx, n - 1)];
    if (!boundaries_.empty() && key <= boundaries_.back()) continue;
    boundaries_.push_back(key);
  }
  const Key last = sorted_keys.back();
  boundaries_.push_back(last == ~Key{0} ? last : last + 1);
  // Recompute per-bucket depth after potential boundary collapses.
  keys_per_bucket_ =
      static_cast<double>(n) / static_cast<double>(boundaries_.size() - 1);
}

double EquiDepthHistogram::EstimateLess(Key key) const {
  if (total_keys_ == 0) return 0.0;
  if (key <= boundaries_.front()) return 0.0;
  if (key >= boundaries_.back()) return static_cast<double>(total_keys_);
  const size_t hi =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), key) -
      boundaries_.begin();
  const size_t bucket = hi - 1;
  const double span = static_cast<double>(boundaries_[hi]) -
                      static_cast<double>(boundaries_[bucket]);
  const double frac =
      span > 0.0 ? (static_cast<double>(key) -
                    static_cast<double>(boundaries_[bucket])) /
                       span
                 : 0.0;
  return (static_cast<double>(bucket) + frac) * keys_per_bucket_;
}

double EquiDepthHistogram::EstimateRange(Key lo, Key hi) const {
  if (hi < lo) return 0.0;
  const double upper =
      hi == ~Key{0} ? static_cast<double>(total_keys_) : EstimateLess(hi + 1);
  return std::max(0.0, upper - EstimateLess(lo));
}

size_t EquiDepthHistogram::MemoryBytes() const {
  return boundaries_.size() * sizeof(Key) + sizeof(*this);
}

LearnedCardinalityEstimator::LearnedCardinalityEstimator(
    const std::vector<Key>& sorted_keys, Options options)
    : options_(options) {
  Retrain(sorted_keys);
}

void LearnedCardinalityEstimator::Retrain(
    const std::vector<Key>& sorted_keys) {
  total_keys_ = sorted_keys.size();
  knot_keys_.clear();
  knot_cdf_.clear();
  if (sorted_keys.empty()) {
    knot_keys_ = {0, 1};
    knot_cdf_ = {0.0, 1.0};
    return;
  }
  // Sample (deterministically strided) then place equi-rank knots.
  const size_t n = sorted_keys.size();
  const size_t sample_n = std::min(options_.sample_size, n);
  std::vector<Key> sample;
  sample.reserve(sample_n);
  const double stride =
      static_cast<double>(n) / static_cast<double>(sample_n);
  for (size_t i = 0; i < sample_n; ++i) {
    sample.push_back(
        sorted_keys[static_cast<size_t>(static_cast<double>(i) * stride)]);
  }
  const int knots = std::max(2, options_.num_knots);
  for (int k = 0; k < knots; ++k) {
    const double q = static_cast<double>(k) / (knots - 1);
    const size_t idx = std::min<size_t>(
        static_cast<size_t>(q * static_cast<double>(sample.size() - 1)),
        sample.size() - 1);
    const Key key = sample[idx];
    if (!knot_keys_.empty() && key <= knot_keys_.back()) {
      knot_cdf_.back() = std::max(knot_cdf_.back(), q);
      continue;
    }
    knot_keys_.push_back(key);
    knot_cdf_.push_back(q);
  }
  if (knot_keys_.size() == 1) {
    knot_keys_.push_back(knot_keys_[0] + 1);
    knot_cdf_ = {0.0, 1.0};
  }
  knot_cdf_.front() = 0.0;
  knot_cdf_.back() = 1.0;
}

double LearnedCardinalityEstimator::CdfAt(Key key) const {
  if (key <= knot_keys_.front()) return knot_cdf_.front();
  if (key >= knot_keys_.back()) return knot_cdf_.back();
  const size_t hi =
      std::upper_bound(knot_keys_.begin(), knot_keys_.end(), key) -
      knot_keys_.begin();
  const size_t lo = hi - 1;
  const double span = static_cast<double>(knot_keys_[hi]) -
                      static_cast<double>(knot_keys_[lo]);
  const double frac =
      span > 0.0 ? (static_cast<double>(key) -
                    static_cast<double>(knot_keys_[lo])) /
                       span
                 : 0.0;
  return knot_cdf_[lo] + frac * (knot_cdf_[hi] - knot_cdf_[lo]);
}

double LearnedCardinalityEstimator::EstimateRange(Key lo, Key hi) const {
  if (hi < lo || total_keys_ == 0) return 0.0;
  const double sel = std::max(0.0, CdfAt(hi) - CdfAt(lo));
  return sel * static_cast<double>(total_keys_);
}

void LearnedCardinalityEstimator::Feedback(Key lo, Key hi,
                                           double true_cardinality) {
  if (total_keys_ == 0 || hi < lo) return;
  ++feedback_count_;
  const double true_sel =
      std::clamp(true_cardinality / static_cast<double>(total_keys_), 0.0, 1.0);
  const double target_hi_cdf = std::clamp(CdfAt(lo) + true_sel, 0.0, 1.0);
  const double current = CdfAt(hi);
  double updated =
      current + options_.learning_rate * (target_hi_cdf - current);

  // Insert or update a knot at `hi`, clamped so monotonicity survives.
  const auto it = std::lower_bound(knot_keys_.begin(), knot_keys_.end(), hi);
  const size_t pos = it - knot_keys_.begin();
  const double prev_cdf = pos == 0 ? 0.0 : knot_cdf_[pos - 1];
  const double next_cdf = [&] {
    if (it != knot_keys_.end() && *it == hi) {
      return pos + 1 < knot_cdf_.size() ? knot_cdf_[pos + 1] : 1.0;
    }
    return pos < knot_cdf_.size() ? knot_cdf_[pos] : 1.0;
  }();
  updated = std::clamp(updated, prev_cdf, next_cdf);

  if (it != knot_keys_.end() && *it == hi) {
    knot_cdf_[pos] = updated;
  } else {
    knot_keys_.insert(it, hi);
    knot_cdf_.insert(knot_cdf_.begin() + pos, updated);
  }

  // Bound model growth: thin interior knots once we exceed 4x capacity.
  const size_t cap = static_cast<size_t>(options_.num_knots) * 4;
  if (knot_keys_.size() > cap) {
    std::vector<Key> keys;
    std::vector<double> cdf;
    keys.reserve(knot_keys_.size() / 2 + 2);
    cdf.reserve(keys.capacity());
    for (size_t i = 0; i < knot_keys_.size(); ++i) {
      if (i == 0 || i + 1 == knot_keys_.size() || i % 2 == 0) {
        keys.push_back(knot_keys_[i]);
        cdf.push_back(knot_cdf_[i]);
      }
    }
    knot_keys_ = std::move(keys);
    knot_cdf_ = std::move(cdf);
  }
}

size_t LearnedCardinalityEstimator::MemoryBytes() const {
  return knot_keys_.size() * (sizeof(Key) + sizeof(double)) + sizeof(*this);
}

}  // namespace lsbench
