#include "learned/adaptive.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

namespace {
constexpr size_t kNpos = static_cast<size_t>(-1);
constexpr size_t kMinSlots = 8;
constexpr uint64_t kDisplacementWindow = 256;
}  // namespace

AdaptiveLearnedIndex::AdaptiveLearnedIndex(AdaptiveOptions options)
    : options_(options) {
  LSBENCH_ASSERT(options_.max_segment_entries >= 16);
  LSBENCH_ASSERT(options_.expansion_factor > 1.0);
}

AdaptiveLearnedIndex::Segment AdaptiveLearnedIndex::MakeSegment(
    const std::vector<KeyValue>& pairs, Key first_key) const {
  Segment seg;
  seg.first_key = first_key;
  const size_t n = pairs.size();
  const size_t slots = std::max(
      kMinSlots,
      static_cast<size_t>(std::ceil(static_cast<double>(n) *
                                    options_.expansion_factor)));
  seg.slot_keys.assign(slots, 0);
  seg.slot_values.assign(slots, 0);
  seg.occupied.assign(slots, false);
  seg.live = n;
  if (n == 0) return seg;

  // Spread entries evenly across the slots and fit the model to the actual
  // placement, so fresh segments predict perfectly.
  std::vector<double> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t slot =
        n == 1 ? 0
               : (i * (slots - 1)) / (n - 1);
    seg.slot_keys[slot] = pairs[i].first;
    seg.slot_values[slot] = pairs[i].second;
    seg.occupied[slot] = true;
    xs.push_back(static_cast<double>(pairs[i].first));
    ys.push_back(static_cast<double>(slot));
  }
  seg.model = FitLinearTargets(xs, ys);
  return seg;
}

size_t AdaptiveLearnedIndex::SegmentFor(Key key) const {
  LSBENCH_ASSERT(!segments_.empty());
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](Key k, const Segment& s) { return k < s.first_key; });
  if (it == segments_.begin()) return 0;
  return static_cast<size_t>(it - segments_.begin()) - 1;
}

size_t AdaptiveLearnedIndex::FindSlot(const Segment& seg, Key key) const {
  const size_t slots = seg.slot_keys.size();
  if (seg.live == 0) return slots;
  const size_t hint = seg.model.PredictClamped(static_cast<double>(key), slots);

  // Find the nearest occupied anchor around the hint.
  size_t anchor = kNpos;
  for (size_t d = 0; d < slots; ++d) {
    if (hint + d < slots && seg.occupied[hint + d]) {
      anchor = hint + d;
      break;
    }
    if (d > 0 && hint >= d && seg.occupied[hint - d]) {
      anchor = hint - d;
      break;
    }
  }
  if (anchor == kNpos) return slots;

  // Walk toward the key through occupied slots.
  size_t pos = anchor;
  if (seg.slot_keys[pos] < key) {
    size_t i = pos + 1;
    while (i < slots) {
      if (seg.occupied[i]) {
        if (seg.slot_keys[i] >= key) {
          return seg.slot_keys[i] == key ? i : slots;
        }
      }
      ++i;
    }
    return slots;
  }
  // anchor key >= target: walk left while occupied keys remain >= target.
  size_t best = seg.slot_keys[pos] == key ? pos : kNpos;
  size_t i = pos;
  while (i > 0) {
    --i;
    if (!seg.occupied[i]) continue;
    if (seg.slot_keys[i] < key) break;
    if (seg.slot_keys[i] == key) best = i;
  }
  return best == kNpos ? slots : best;
}

std::optional<Value> AdaptiveLearnedIndex::Get(Key key) const {
  if (segments_.empty()) return std::nullopt;
  const Segment& seg = segments_[SegmentFor(key)];
  const size_t slot = FindSlot(seg, key);
  if (slot >= seg.slot_keys.size()) return std::nullopt;
  return seg.slot_values[slot];
}

std::vector<KeyValue> AdaptiveLearnedIndex::ExtractLive(const Segment& seg) {
  std::vector<KeyValue> pairs;
  pairs.reserve(seg.live);
  for (size_t i = 0; i < seg.slot_keys.size(); ++i) {
    if (seg.occupied[i]) pairs.emplace_back(seg.slot_keys[i], seg.slot_values[i]);
  }
  return pairs;
}

void AdaptiveLearnedIndex::RebuildSegment(Segment* seg) {
  const std::vector<KeyValue> pairs = ExtractLive(*seg);
  const Key first_key = seg->first_key;
  *seg = MakeSegment(pairs, first_key);
  ++retrain_count_;
  retrain_work_ += pairs.size();
}

void AdaptiveLearnedIndex::SplitSegment(size_t seg_idx) {
  const std::vector<KeyValue> pairs = ExtractLive(segments_[seg_idx]);
  LSBENCH_ASSERT(pairs.size() >= 2);
  const size_t mid = pairs.size() / 2;
  const std::vector<KeyValue> left(pairs.begin(), pairs.begin() + mid);
  const std::vector<KeyValue> right(pairs.begin() + mid, pairs.end());
  const Key left_first = segments_[seg_idx].first_key;
  const Key right_first = right.front().first;
  segments_[seg_idx] = MakeSegment(left, left_first);
  segments_.insert(segments_.begin() + seg_idx + 1,
                   MakeSegment(right, right_first));
  ++retrain_count_;
  retrain_work_ += pairs.size();
}

bool AdaptiveLearnedIndex::Insert(Key key, Value value) {
  if (segments_.empty()) {
    segments_.push_back(MakeSegment({{key, value}}, 0));
    size_ = 1;
    return true;
  }
  const size_t seg_idx = SegmentFor(key);
  Segment& seg = segments_[seg_idx];
  const size_t slots = seg.slot_keys.size();

  const size_t existing = FindSlot(seg, key);
  if (existing < slots) {
    seg.slot_values[existing] = value;
    return false;
  }

  // Locate the ordered neighborhood: L = last occupied slot with key <
  // target, R = first occupied slot with key > target.
  size_t left_bound = kNpos;   // Occupied slot with greatest key < target.
  size_t right_bound = slots;  // Occupied slot with least key > target.
  {
    const size_t hint =
        seg.model.PredictClamped(static_cast<double>(key), slots);
    // Anchor search as in FindSlot.
    size_t anchor = kNpos;
    for (size_t d = 0; d < slots; ++d) {
      if (hint + d < slots && seg.occupied[hint + d]) {
        anchor = hint + d;
        break;
      }
      if (d > 0 && hint >= d && seg.occupied[hint - d]) {
        anchor = hint - d;
        break;
      }
    }
    if (anchor == kNpos) {
      // Empty segment: place at the hint.
      seg.slot_keys[hint] = key;
      seg.slot_values[hint] = value;
      seg.occupied[hint] = true;
      seg.live = 1;
      ++size_;
      return true;
    }
    if (seg.slot_keys[anchor] < key) {
      left_bound = anchor;
      for (size_t i = anchor + 1; i < slots; ++i) {
        if (!seg.occupied[i]) continue;
        if (seg.slot_keys[i] < key) {
          left_bound = i;
        } else {
          right_bound = i;
          break;
        }
      }
    } else {
      right_bound = anchor;
      for (size_t i = anchor; i > 0;) {
        --i;
        if (!seg.occupied[i]) continue;
        if (seg.slot_keys[i] > key) {
          right_bound = i;
        } else {
          left_bound = i;
          break;
        }
      }
    }

    const size_t lo = left_bound == kNpos ? 0 : left_bound + 1;
    const size_t hi = right_bound;  // Exclusive upper bound for placement.
    if (lo < hi) {
      // A free gap exists between the bounds; every slot in [lo, hi) is
      // unoccupied by construction. Place as close to the hint as allowed.
      const size_t place = std::clamp(hint, lo, hi - 1);
      LSBENCH_ASSERT(!seg.occupied[place]);
      seg.slot_keys[place] = key;
      seg.slot_values[place] = value;
      seg.occupied[place] = true;
      ++seg.live;
      ++size_;
      const double disp = place > hint ? static_cast<double>(place - hint)
                                       : static_cast<double>(hint - place);
      seg.displacement_sum += disp;
      ++seg.displacement_count;
    } else {
      // No gap: shift one step toward the nearest free slot.
      size_t free_left = kNpos;
      if (left_bound != kNpos) {
        for (size_t i = left_bound; i > 0;) {
          --i;
          if (!seg.occupied[i]) {
            free_left = i;
            break;
          }
        }
        if (free_left == kNpos && !seg.occupied[0]) free_left = 0;
      }
      size_t free_right = kNpos;
      for (size_t i = right_bound; i < slots; ++i) {
        if (!seg.occupied[i]) {
          free_right = i;
          break;
        }
      }
      if (free_left == kNpos && free_right == kNpos) {
        // Segment is completely full: rebuild with fresh gaps and retry.
        RebuildSegment(&seg);
        const bool inserted = Insert(key, value);
        LSBENCH_ASSERT(inserted);
        return true;
      }
      size_t place;
      // Shift cost is the distance to the free slot; pick the cheaper side.
      const size_t cost_left =
          free_left == kNpos ? kNpos : left_bound - free_left;
      const size_t cost_right =
          free_right == kNpos ? kNpos : free_right - right_bound;
      if (cost_left != kNpos && (cost_right == kNpos || cost_left <= cost_right)) {
        // Shift (free_left, left_bound] one slot left; slot left_bound frees.
        for (size_t i = free_left; i < left_bound; ++i) {
          seg.slot_keys[i] = seg.slot_keys[i + 1];
          seg.slot_values[i] = seg.slot_values[i + 1];
          seg.occupied[i] = seg.occupied[i + 1];
        }
        place = left_bound;
      } else {
        // Shift [right_bound, free_right) one slot right; right_bound frees.
        for (size_t i = free_right; i > right_bound; --i) {
          seg.slot_keys[i] = seg.slot_keys[i - 1];
          seg.slot_values[i] = seg.slot_values[i - 1];
          seg.occupied[i] = seg.occupied[i - 1];
        }
        place = right_bound;
      }
      seg.slot_keys[place] = key;
      seg.slot_values[place] = value;
      seg.occupied[place] = true;
      ++seg.live;
      ++size_;
      const double disp = place > hint ? static_cast<double>(place - hint)
                                       : static_cast<double>(hint - place);
      seg.displacement_sum += disp + 1.0;  // Shifts cost extra work.
      ++seg.displacement_count;
    }
  }

  // Structural maintenance: split overfull segments; retrain badly-modeled
  // ones. Both count as online training effort.
  if (seg.live > options_.max_segment_entries) {
    SplitSegment(seg_idx);
  } else if (seg.displacement_count >= kDisplacementWindow) {
    const double mean_disp =
        seg.displacement_sum / static_cast<double>(seg.displacement_count);
    if (mean_disp > options_.retrain_error_threshold) {
      RebuildSegment(&seg);
    } else {
      seg.displacement_sum = 0.0;
      seg.displacement_count = 0;
    }
  }
  return true;
}

bool AdaptiveLearnedIndex::Erase(Key key) {
  if (segments_.empty()) return false;
  const size_t seg_idx = SegmentFor(key);
  Segment& seg = segments_[seg_idx];
  const size_t slot = FindSlot(seg, key);
  if (slot >= seg.slot_keys.size()) return false;
  seg.occupied[slot] = false;
  --seg.live;
  --size_;
  if (seg.live == 0 && segments_.size() > 1) {
    segments_.erase(segments_.begin() + seg_idx);
    if (seg_idx == 0) segments_.front().first_key = 0;
  }
  return true;
}

size_t AdaptiveLearnedIndex::Scan(Key from, size_t limit,
                                  std::vector<KeyValue>* out) const {
  if (segments_.empty()) return 0;
  size_t appended = 0;
  for (size_t s = SegmentFor(from); s < segments_.size() && appended < limit;
       ++s) {
    const Segment& seg = segments_[s];
    for (size_t i = 0; i < seg.slot_keys.size() && appended < limit; ++i) {
      if (!seg.occupied[i] || seg.slot_keys[i] < from) continue;
      out->emplace_back(seg.slot_keys[i], seg.slot_values[i]);
      ++appended;
    }
  }
  return appended;
}

size_t AdaptiveLearnedIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const Segment& seg : segments_) {
    bytes += seg.slot_keys.size() * (sizeof(Key) + sizeof(Value)) +
             seg.slot_keys.size() / 8 + sizeof(Segment);
  }
  return bytes;
}

void AdaptiveLearnedIndex::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  segments_.clear();
  size_ = sorted_pairs.size();
  retrain_count_ = 0;
  retrain_work_ = 0;
  if (sorted_pairs.empty()) return;
  for (size_t i = 1; i < sorted_pairs.size(); ++i) {
    LSBENCH_ASSERT_MSG(sorted_pairs[i - 1].first < sorted_pairs[i].first,
                       "BulkLoad requires strictly ascending keys");
  }
  const size_t chunk = std::max<size_t>(1, options_.max_segment_entries / 2);
  size_t i = 0;
  while (i < sorted_pairs.size()) {
    const size_t take = std::min(chunk, sorted_pairs.size() - i);
    const std::vector<KeyValue> pairs(sorted_pairs.begin() + i,
                                      sorted_pairs.begin() + i + take);
    const Key first_key = i == 0 ? 0 : pairs.front().first;
    segments_.push_back(MakeSegment(pairs, first_key));
    i += take;
  }
}

void AdaptiveLearnedIndex::CheckInvariants() const {
  size_t total_live = 0;
  Key prev_key = 0;
  bool any = false;
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    if (s > 0) {
      LSBENCH_ASSERT(segments_[s - 1].first_key < seg.first_key);
    }
    size_t live = 0;
    for (size_t i = 0; i < seg.slot_keys.size(); ++i) {
      if (!seg.occupied[i]) continue;
      ++live;
      LSBENCH_ASSERT(seg.slot_keys[i] >= seg.first_key);
      if (any) LSBENCH_ASSERT(prev_key < seg.slot_keys[i]);
      prev_key = seg.slot_keys[i];
      any = true;
    }
    LSBENCH_ASSERT(live == seg.live);
    total_live += live;
  }
  LSBENCH_ASSERT(total_live == size_);
}

}  // namespace lsbench
