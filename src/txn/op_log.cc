#include "txn/op_log.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

uint64_t OpLog::Append(const Mutation& mutation) {
  records_.push_back(Record{next_sequence_, mutation});
  return next_sequence_++;
}

uint64_t OpLog::AppendBatch(const WriteBatch& batch) {
  uint64_t last = last_sequence();
  for (const Mutation& m : batch.mutations()) last = Append(m);
  return last;
}

size_t OpLog::ReplayInto(KvIndex* index, uint64_t after_sequence) const {
  LSBENCH_ASSERT(index != nullptr);
  size_t replayed = 0;
  for (const Record& r : records_) {
    if (r.sequence <= after_sequence) continue;
    if (r.mutation.kind == Mutation::Kind::kPut) {
      index->Insert(r.mutation.key, r.mutation.value);
    } else {
      index->Erase(r.mutation.key);
    }
    ++replayed;
  }
  return replayed;
}

void OpLog::TruncateUpTo(uint64_t up_to_sequence) {
  const auto it = std::partition_point(
      records_.begin(), records_.end(),
      [up_to_sequence](const Record& r) { return r.sequence <= up_to_sequence; });
  records_.erase(records_.begin(), it);
}

}  // namespace lsbench
