#include "txn/write_batch.h"

#include "util/assert.h"

namespace lsbench {

size_t WriteBatch::ApplyTo(KvIndex* index) const {
  LSBENCH_ASSERT(index != nullptr);
  size_t changed = 0;
  for (const Mutation& m : mutations_) {
    if (m.kind == Mutation::Kind::kPut) {
      if (index->Insert(m.key, m.value)) ++changed;
    } else {
      if (index->Erase(m.key)) ++changed;
    }
  }
  return changed;
}

}  // namespace lsbench
