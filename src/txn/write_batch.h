#ifndef LSBENCH_TXN_WRITE_BATCH_H_
#define LSBENCH_TXN_WRITE_BATCH_H_

#include <cstdint>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// One logical mutation.
struct Mutation {
  enum class Kind { kPut, kDelete };
  Kind kind = Kind::kPut;
  Key key = 0;
  Value value = 0;
};

/// An ordered group of mutations applied as a unit (RocksDB WriteBatch
/// idiom). Single-writer model: "atomic" means later readers of the index
/// observe either none or all of the batch because Apply runs to completion
/// before control returns.
class WriteBatch {
 public:
  void Put(Key key, Value value) {
    mutations_.push_back({Mutation::Kind::kPut, key, value});
  }
  void Delete(Key key) {
    mutations_.push_back({Mutation::Kind::kDelete, key, 0});
  }
  void Clear() { mutations_.clear(); }

  size_t size() const { return mutations_.size(); }
  bool empty() const { return mutations_.empty(); }
  const std::vector<Mutation>& mutations() const { return mutations_; }

  /// Applies all mutations to `index` in order. Returns the number of
  /// mutations that changed state (new inserts + successful deletes).
  size_t ApplyTo(KvIndex* index) const;

 private:
  std::vector<Mutation> mutations_;
};

}  // namespace lsbench

#endif  // LSBENCH_TXN_WRITE_BATCH_H_
