#ifndef LSBENCH_TXN_OP_LOG_H_
#define LSBENCH_TXN_OP_LOG_H_

#include <cstdint>
#include <vector>

#include "index/kv_index.h"
#include "txn/write_batch.h"

namespace lsbench {

/// Append-only operation log with monotonically increasing sequence numbers.
/// SUTs use it to rebuild an index after retraining-by-reconstruction and
/// tests use it for crash/replay-equivalence properties (an index rebuilt by
/// replay must equal the live index).
class OpLog {
 public:
  struct Record {
    uint64_t sequence = 0;
    Mutation mutation;
  };

  /// Appends one mutation; returns its sequence number (starting at 1).
  uint64_t Append(const Mutation& mutation);

  /// Appends a whole batch; returns the sequence of the last record.
  uint64_t AppendBatch(const WriteBatch& batch);

  /// Replays records with sequence in (`after_sequence`, last] into `index`.
  /// Returns the number of records replayed.
  size_t ReplayInto(KvIndex* index, uint64_t after_sequence = 0) const;

  /// Drops records with sequence <= `up_to_sequence` (checkpointing).
  void TruncateUpTo(uint64_t up_to_sequence);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  uint64_t last_sequence() const { return next_sequence_ - 1; }
  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
  uint64_t next_sequence_ = 1;
};

}  // namespace lsbench

#endif  // LSBENCH_TXN_OP_LOG_H_
