#ifndef LSBENCH_UTIL_KEY_VALUE_H_
#define LSBENCH_UTIL_KEY_VALUE_H_

#include <cstdint>
#include <utility>

namespace lsbench {

/// The key/value vocabulary of the whole benchmark. These live in util/ —
/// the bottom of the layer DAG — because every layer speaks them: datasets
/// hold sorted Keys, workloads generate Operations over Keys, indexes and
/// SUTs store KeyValue pairs. The index *interface* (KvIndex) stays in
/// index/; only the plain types sit here so that data/ and workload/ never
/// need an upward include to name a key.
using Key = uint64_t;
using Value = uint64_t;
using KeyValue = std::pair<Key, Value>;

}  // namespace lsbench

#endif  // LSBENCH_UTIL_KEY_VALUE_H_
