#ifndef LSBENCH_UTIL_ENV_H_
#define LSBENCH_UTIL_ENV_H_

#include <optional>
#include <string>
#include <string_view>

namespace lsbench {

/// The sanctioned process-environment read. Ambient state is a
/// reproducibility hazard: anything that changes benchmark *results* must
/// come from the spec, never from the environment. Scale/verbosity knobs
/// (e.g. LSBENCH_QUICK) may use this helper; direct getenv calls outside
/// src/util/ are rejected by lsbench-lint's no-getenv rule.
std::optional<std::string> GetEnv(std::string_view name);

/// True when `name` is set and its value begins with '1'.
bool EnvFlagEnabled(std::string_view name);

}  // namespace lsbench

#endif  // LSBENCH_UTIL_ENV_H_
