#ifndef LSBENCH_UTIL_CLOCK_H_
#define LSBENCH_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/assert.h"

namespace lsbench {

/// Monotonic time source used by the benchmark driver. Nanosecond ticks from
/// an arbitrary epoch. Two implementations: RealClock (steady_clock) for
/// measured runs and VirtualClock for deterministic tests and simulations.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since an arbitrary but fixed epoch.
  virtual int64_t NowNanos() const = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

/// Wall-clock time via std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for deterministic tests. Starts at zero.
class VirtualClock final : public Clock {
 public:
  int64_t NowNanos() const override { return now_nanos_; }

  /// Advances time by `delta_nanos` (must be non-negative).
  void AdvanceNanos(int64_t delta_nanos) {
    LSBENCH_ASSERT(delta_nanos >= 0);
    now_nanos_ += delta_nanos;
  }

  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }

  /// Jumps to an absolute time (must not move backwards).
  void SetNanos(int64_t now_nanos) {
    LSBENCH_ASSERT(now_nanos >= now_nanos_);
    now_nanos_ = now_nanos;
  }

 private:
  int64_t now_nanos_ = 0;
};

/// Blocks until `clock.NowNanos() >= target_abs_nanos` without burning a
/// full core: while more than `spin_tail_nanos` remain the thread sleeps
/// (undershooting by the spin tail so scheduler wake-up jitter lands inside
/// the spin window), then busy-waits the tail for sub-microsecond accuracy.
/// This is the only sanctioned blocking-wait primitive — raw sleep_for
/// outside util/ is banned by lsbench-lint (no-raw-sleep).
inline void SleepSpinUntil(const Clock& clock, int64_t target_abs_nanos,
                           int64_t spin_tail_nanos = 100000) {
  for (;;) {
    const int64_t remaining = target_abs_nanos - clock.NowNanos();
    if (remaining <= spin_tail_nanos) break;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(remaining - spin_tail_nanos));
  }
  while (clock.NowNanos() < target_abs_nanos) {
    // Spin the tail: pacing needs sub-microsecond resolution.
  }
}

/// Measures elapsed time against a Clock. Restartable.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_(clock->NowNanos()) {}

  void Restart() { start_ = clock_->NowNanos(); }

  int64_t ElapsedNanos() const { return clock_->NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_CLOCK_H_
