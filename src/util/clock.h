#ifndef LSBENCH_UTIL_CLOCK_H_
#define LSBENCH_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "util/assert.h"

namespace lsbench {

/// Monotonic time source used by the benchmark driver. Nanosecond ticks from
/// an arbitrary epoch. Two implementations: RealClock (steady_clock) for
/// measured runs and VirtualClock for deterministic tests and simulations.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since an arbitrary but fixed epoch.
  virtual int64_t NowNanos() const = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }
};

/// Wall-clock time via std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for deterministic tests. Starts at zero.
class VirtualClock final : public Clock {
 public:
  int64_t NowNanos() const override { return now_nanos_; }

  /// Advances time by `delta_nanos` (must be non-negative).
  void AdvanceNanos(int64_t delta_nanos) {
    LSBENCH_ASSERT(delta_nanos >= 0);
    now_nanos_ += delta_nanos;
  }

  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<int64_t>(seconds * 1e9));
  }

  /// Jumps to an absolute time (must not move backwards).
  void SetNanos(int64_t now_nanos) {
    LSBENCH_ASSERT(now_nanos >= now_nanos_);
    now_nanos_ = now_nanos;
  }

 private:
  int64_t now_nanos_ = 0;
};

/// Measures elapsed time against a Clock. Restartable.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_(clock->NowNanos()) {}

  void Restart() { start_ = clock_->NowNanos(); }

  int64_t ElapsedNanos() const { return clock_->NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_CLOCK_H_
