#ifndef LSBENCH_UTIL_ASSERT_H_
#define LSBENCH_UTIL_ASSERT_H_

#include <cstdio>
#include <cstdlib>

/// Always-on invariant check for programmer errors (not data errors — those
/// return Status). Prints the failing expression and location, then aborts.
#define LSBENCH_ASSERT(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LSBENCH_ASSERT failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

/// Variant with a human-readable explanation.
#define LSBENCH_ASSERT_MSG(cond, msg)                                \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "LSBENCH_ASSERT failed: %s (%s) at %s:%d\n", \
                   #cond, (msg), __FILE__, __LINE__);                \
      std::abort();                                                  \
    }                                                                \
  } while (false)

#endif  // LSBENCH_UTIL_ASSERT_H_
