#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>


namespace lsbench {

namespace {
// Geometric bucket growth factor. With 1024 buckets and a base of 1.0,
// values up to ~1.05^1023 (astronomically large) are representable.
constexpr double kGrowth = 1.05;
const double kLogGrowth = std::log(kGrowth);
}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(double value) {
  if (value <= 1.0) return 0;
  int idx = static_cast<int>(std::log(value) / kLogGrowth) + 1;
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::BucketLower(int i) {
  if (i <= 0) return 0.0;
  return std::pow(kGrowth, i - 1);
}

double Histogram::BucketUpper(int i) { return std::pow(kGrowth, i); }

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_squares_ / n - mean * mean);
  return std::sqrt(var);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket, clamped to observed extremes.
      const double frac =
          buckets_[i] == 0
              ? 0.0
              : (target - static_cast<double>(cumulative)) /
                    static_cast<double>(buckets_[i]);
      const double lo = std::max(BucketLower(i), min_);
      const double hi = std::min(BucketUpper(i), max_);
      return lo + frac * std::max(0.0, hi - lo);
    }
    cumulative = next;
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Median()
     << " p95=" << P95() << " p99=" << P99() << " max=" << max();
  return os.str();
}

}  // namespace lsbench
