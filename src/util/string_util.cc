#include "util/string_util.h"

#include <cmath>
#include <cstdio>

namespace lsbench {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string HumanCount(double value) {
  const double abs = std::fabs(value);
  if (abs >= 1e9) return FormatDouble(value / 1e9, 2) + "B";
  if (abs >= 1e6) return FormatDouble(value / 1e6, 2) + "M";
  if (abs >= 1e3) return FormatDouble(value / 1e3, 2) + "K";
  if (abs == std::floor(abs)) return FormatDouble(value, 0);
  return FormatDouble(value, 2);
}

std::string HumanDuration(double nanos) {
  const double abs = std::fabs(nanos);
  if (abs >= 1e9) return FormatDouble(nanos / 1e9, 2) + "s";
  if (abs >= 1e6) return FormatDouble(nanos / 1e6, 2) + "ms";
  if (abs >= 1e3) return FormatDouble(nanos / 1e3, 2) + "us";
  return FormatDouble(nanos, 0) + "ns";
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string PadLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string PadRight(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Repeat(char c, size_t n) { return std::string(n, c); }

}  // namespace lsbench
