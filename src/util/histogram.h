#ifndef LSBENCH_UTIL_HISTOGRAM_H_
#define LSBENCH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsbench {

/// Log-bucketed histogram of non-negative values (typically latencies in
/// nanoseconds). Buckets grow geometrically, giving ~2.3% relative error on
/// recovered quantiles while using constant memory. Inspired by the
/// HdrHistogram / RocksDB statistics design.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(double value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Clear();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  double Mean() const;
  /// Population standard deviation of the recorded values.
  double StdDev() const;

  /// Value at quantile q in [0, 1], interpolated within the bucket.
  /// Returns 0 when empty.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// Multi-line human-readable summary (count/mean/p50/p95/p99/max).
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 1024;

  /// Maps a value to its bucket index.
  static int BucketFor(double value);
  /// Lower bound of bucket i.
  static double BucketLower(int i);
  /// Upper bound of bucket i.
  static double BucketUpper(int i);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_HISTOGRAM_H_
