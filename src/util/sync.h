#ifndef LSBENCH_UTIL_SYNC_H_
#define LSBENCH_UTIL_SYNC_H_

// Capability-annotated synchronization primitives.
//
// LSBench's concurrency claims (deterministic multi-worker fan-out, shared
// circuit breakers, serialized SUT fallback) rest on lock discipline that
// TSan can only spot-check on the interleavings a test happens to execute.
// Clang Thread Safety Analysis proves the discipline at compile time: every
// shared field is declared GUARDED_BY its mutex, every internal helper
// declares the lock it REQUIRES, and an access outside the lock is a build
// error under -Wthread-safety (promoted to -Werror by -DLSBENCH_WERROR=ON).
//
// Usage:
//   class Counter {
//    public:
//     void Add(int n) {
//       MutexLock lock(mu_);
//       total_ += n;
//     }
//    private:
//     mutable Mutex mu_;
//     int total_ LSBENCH_GUARDED_BY(mu_) = 0;
//   };
//
// The annotations compile to nothing off-Clang (GCC builds are unaffected),
// and the wrappers are near-zero-cost: Mutex is a std::mutex plus one
// thread-local null test, MutexLock exactly a std::lock_guard. Raw
// std::mutex / std::lock_guard outside this header are banned by
// lsbench-lint (no-raw-mutex / no-raw-lock) so new concurrent state cannot
// silently opt out of the proof.
//
// These wrappers are also lsbench-sched preemption points
// (util/sched_hooks.h): on a thread managed by the schedule-exploration
// controller, Lock/Unlock/Wait/Signal are *modeled* by the controller
// instead of touching the real std primitives — a task blocking on a
// modeled mutex yields to the scheduler rather than wedging the cooperative
// run. Unmanaged threads (the normal case: the hook is a thread-local null)
// take the plain std:: path.
//
// See docs/STATIC_ANALYSIS.md for the annotation how-to and the
// lsbench-sched exploration workflow.

#include <condition_variable>
#include <mutex>

#include "util/sched_hooks.h"

#if defined(__clang__)
#define LSBENCH_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LSBENCH_THREAD_ANNOTATION(x)  // No-op: GCC/MSVC have no TSA.
#endif

/// Marks a type as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define LSBENCH_CAPABILITY(x) LSBENCH_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor.
#define LSBENCH_SCOPED_CAPABILITY LSBENCH_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field/variable may only be accessed while holding `x`.
#define LSBENCH_GUARDED_BY(x) LSBENCH_THREAD_ANNOTATION(guarded_by(x))

/// As GUARDED_BY, but for the pointee of a pointer/smart-pointer field.
#define LSBENCH_PT_GUARDED_BY(x) LSBENCH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function acquires / releases the given capabilities.
#define LSBENCH_ACQUIRE(...) \
  LSBENCH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LSBENCH_RELEASE(...) \
  LSBENCH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LSBENCH_TRY_ACQUIRE(...) \
  LSBENCH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must already hold the given capabilities.
#define LSBENCH_REQUIRES(...) \
  LSBENCH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities (the
/// function acquires them itself; catches self-deadlock).
#define LSBENCH_EXCLUDES(...) \
  LSBENCH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a static lock-acquisition order between mutexes.
#define LSBENCH_ACQUIRED_BEFORE(...) \
  LSBENCH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LSBENCH_ACQUIRED_AFTER(...) \
  LSBENCH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define LSBENCH_RETURN_CAPABILITY(x) \
  LSBENCH_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the proof cannot be expressed.
#define LSBENCH_NO_THREAD_SAFETY_ANALYSIS \
  LSBENCH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace lsbench {

/// Exclusive mutex: a std::mutex the analysis can see. Prefer MutexLock
/// over manual Lock/Unlock pairs.
class LSBENCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LSBENCH_ACQUIRE() {
    if (SchedObserver* s = SchedHook()) {
      s->MutexLock(this);
      return;
    }
    mu_.lock();
  }
  void Unlock() LSBENCH_RELEASE() {
    if (SchedObserver* s = SchedHook()) {
      s->MutexUnlock(this);
      return;
    }
    mu_.unlock();
  }
  bool TryLock() LSBENCH_TRY_ACQUIRE(true) {
    if (SchedObserver* s = SchedHook()) return s->MutexTryLock(this);
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the only sanctioned way to hold a Mutex across a scope.
class LSBENCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LSBENCH_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LSBENCH_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with lsbench::Mutex. Wait atomically releases
/// the mutex and reacquires it before returning, so the caller's capability
/// set is unchanged across the call — which is exactly what REQUIRES
/// expresses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups happen; callers loop on their
  /// predicate (or use the predicate overload).
  void Wait(Mutex& mu) LSBENCH_REQUIRES(mu) {
    if (SchedObserver* s = SchedHook()) {
      s->CondWait(this, &mu);
      return;
    }
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until `pred()` holds (evaluated with the mutex held).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) LSBENCH_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() {
    if (SchedObserver* s = SchedHook()) {
      s->CondSignal(this, /*all=*/false);
      return;
    }
    cv_.notify_one();
  }
  void SignalAll() {
    if (SchedObserver* s = SchedHook()) {
      s->CondSignal(this, /*all=*/true);
      return;
    }
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_SYNC_H_
