#ifndef LSBENCH_UTIL_STATUS_H_
#define LSBENCH_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lsbench {

/// Error categories used across the library. Modeled after the RocksDB /
/// Arrow convention: fallible library operations return a Status (or a
/// Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kTimeout,
  kUnavailable,
  kResourceExhausted,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Transient codes: failures that a retry with backoff may recover from
/// (the resilient driver's retry predicate). Everything else is permanent.
bool IsTransientStatusCode(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
///
/// [[nodiscard]] at the type level: any function returning Status by value
/// makes the caller handle (or explicitly (void)-discard) the result. A
/// silently dropped error from Load()/Train() would corrupt benchmark
/// results without failing a test.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// True for codes a retry may recover from (see IsTransientStatusCode).
  bool IsTransient() const { return IsTransientStatusCode(code_); }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status. Replaces the hand-rolled
///   auto s = Fallible(); if (!s.ok()) return s;
#define LSBENCH_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::lsbench::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Older spelling of LSBENCH_RETURN_IF_ERROR, kept as an alias so in-flight
/// branches keep compiling. New code should use LSBENCH_RETURN_IF_ERROR.
#define LSBENCH_RETURN_NOT_OK(expr) LSBENCH_RETURN_IF_ERROR(expr)

#define LSBENCH_STATUS_CONCAT_IMPL(a, b) a##b
#define LSBENCH_STATUS_CONCAT(a, b) LSBENCH_STATUS_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating a non-OK status to the
/// caller; on success assigns the unwrapped value to `lhs`:
///   LSBENCH_ASSIGN_OR_RETURN(const RunSpec spec, ParseRunSpecText(text));
/// Usable in functions returning Status or Result<U>.
#define LSBENCH_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto LSBENCH_STATUS_CONCAT(_lsb_result_, __LINE__) = (rexpr);          \
  if (!LSBENCH_STATUS_CONCAT(_lsb_result_, __LINE__).ok()) {             \
    return LSBENCH_STATUS_CONCAT(_lsb_result_, __LINE__).status();       \
  }                                                                      \
  lhs = std::move(LSBENCH_STATUS_CONCAT(_lsb_result_, __LINE__)).value()

/// Holds either a value of type T or an error Status. The value is only
/// accessible when ok(). [[nodiscard]] for the same reason as Status: a
/// dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  ///   Result<int> F() { return 42; }
  ///   Result<int> G() { return Status::NotFound("gone"); }
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)), has_value_(true) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)), value_(), has_value_(false) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Asserted in debug builds.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_;
  bool has_value_;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_STATUS_H_
