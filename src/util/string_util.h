#ifndef LSBENCH_UTIL_STRING_UTIL_H_
#define LSBENCH_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lsbench {

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 2);

/// Human-readable magnitude: 1234567 -> "1.23M", 2048 -> "2.05K".
std::string HumanCount(double value);

/// Human-readable duration from nanoseconds: "125ns", "3.2us", "1.5ms",
/// "2.3s".
std::string HumanDuration(double nanos);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Left/right pads `s` with spaces to `width` (no-op if already wider).
std::string PadLeft(std::string_view s, size_t width);
std::string PadRight(std::string_view s, size_t width);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Repeats the single character `c`, `n` times.
std::string Repeat(char c, size_t n);

}  // namespace lsbench

#endif  // LSBENCH_UTIL_STRING_UTIL_H_
