#ifndef LSBENCH_UTIL_CSV_H_
#define LSBENCH_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lsbench {

/// Minimal RFC-4180-ish CSV writer used by report emitters. Fields containing
/// the separator, quotes, or newlines are quoted and inner quotes doubled.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream* out, char sep = ',')
      : out_(out), sep_(sep) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Emits one row. Each call produces exactly one line.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string Field(double value);
  static std::string Field(int64_t value);
  static std::string Field(uint64_t value);

  size_t rows_written() const { return rows_; }

 private:
  std::string Escape(std::string_view field) const;

  std::ostream* out_;
  char sep_;
  size_t rows_ = 0;
};

/// Parses CSV text produced by CsvWriter back into rows of fields. Handles
/// quoted fields with embedded separators/newlines and doubled quotes.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char sep = ',');

}  // namespace lsbench

#endif  // LSBENCH_UTIL_CSV_H_
