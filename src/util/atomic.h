#ifndef LSBENCH_UTIL_ATOMIC_H_
#define LSBENCH_UTIL_ATOMIC_H_

// The sanctioned atomic wrapper: lsbench::Atomic<T>.
//
// Raw std::atomic scattered through the tree has two costs. First, every
// use site picks its own memory_order, and a wrong pick is a bug no test
// reliably catches. Second — the reason this wrapper exists — bare atomics
// are invisible to lsbench-sched: the schedule-exploration checker
// (tools/sched/) can only interleave what it can see, and an un-hooked
// atomic is a shared-memory access the explorer silently serializes,
// shrinking "every interleaving" to "the interleavings that happened".
//
// So: all atomics go through Atomic<T> (lsbench-lint rule no-bare-atomic
// bans std::atomic and raw memory_order tokens outside this header), and
// Atomic<T> announces each operation as a preemption point when the thread
// is managed by the lsbench-sched controller (util/sched_hooks.h). In a
// normal run the hook test is one thread-local load-and-branch that
// predicts perfectly; the operation itself compiles to exactly the
// std::atomic call it wraps.
//
// The API names the ordering instead of taking a memory_order parameter —
// the call site says what it means, and the banned token never appears
// outside this header:
//
//   Load / Store / Add / Sub / Exchange / CompareExchange   relaxed
//   LoadAcquire / StoreRelease                              acq / rel
//
// Relaxed is the deliberate default: LSBench's atomics are pure tallies
// (metrics counters, fault-injection stats) merged deterministically after
// the run, never used to publish other memory. A new use that needs
// acquire/release pairing should use the named variants — and think hard,
// because needing them usually means the data belongs under a Mutex.
//
// deepcheck models lsbench::Atomic as a sanctioned gate: reachability walks
// stop here (the hook dispatch below is controller machinery, active only
// under exploration, and must not taint hot-path/determinism proofs).

#include <atomic>

#include "util/sched_hooks.h"

namespace lsbench {

template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept = default;
  constexpr Atomic(T value) noexcept : value_(value) {}  // NOLINT: implicit
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  /// Relaxed read. For tallies and stats snapshots.
  T Load() const {
    Announce(SchedOp::kAtomicLoad);
    return value_.load(std::memory_order_relaxed);
  }

  /// Acquire read, pairing with StoreRelease on the same object.
  T LoadAcquire() const {
    Announce(SchedOp::kAtomicLoad);
    return value_.load(std::memory_order_acquire);
  }

  /// Relaxed write.
  void Store(T value) {
    Announce(SchedOp::kAtomicStore);
    value_.store(value, std::memory_order_relaxed);
  }

  /// Release write, pairing with LoadAcquire on the same object.
  void StoreRelease(T value) {
    Announce(SchedOp::kAtomicStore);
    value_.store(value, std::memory_order_release);
  }

  /// Relaxed fetch-add; returns the previous value.
  T Add(T delta) {
    Announce(SchedOp::kAtomicRmw);
    return value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Relaxed fetch-sub; returns the previous value.
  T Sub(T delta) {
    Announce(SchedOp::kAtomicRmw);
    return value_.fetch_sub(delta, std::memory_order_relaxed);
  }

  /// Relaxed swap; returns the previous value.
  T Exchange(T value) {
    Announce(SchedOp::kAtomicRmw);
    return value_.exchange(value, std::memory_order_relaxed);
  }

  /// Strong relaxed CAS. On failure `expected` is updated to the observed
  /// value, like std::atomic::compare_exchange_strong.
  bool CompareExchange(T& expected, T desired) {
    Announce(SchedOp::kAtomicRmw);
    return value_.compare_exchange_strong(expected, desired,
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed);
  }

 private:
  /// One thread-local load + never-taken branch in normal runs; a schedule
  /// decision point under lsbench-sched. The announcement happens *before*
  /// the operation: the explorer decides who runs, then the winner's
  /// operation executes while it holds the schedule token.
  void Announce(SchedOp op) const {
    if (SchedObserver* s = SchedHook()) s->SchedPoint(op, this);
  }

  std::atomic<T> value_{};
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_ATOMIC_H_
