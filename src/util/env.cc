#include "util/env.h"

#include <cstdlib>

namespace lsbench {

std::optional<std::string> GetEnv(std::string_view name) {
  const std::string key(name);
  const char* value = std::getenv(key.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

bool EnvFlagEnabled(std::string_view name) {
  const std::optional<std::string> value = GetEnv(name);
  return value.has_value() && !value->empty() && value->front() == '1';
}

}  // namespace lsbench
