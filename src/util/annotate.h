#ifndef LSBENCH_UTIL_ANNOTATE_H_
#define LSBENCH_UTIL_ANNOTATE_H_

// Analysis-root annotations for lsbench-deepcheck.
//
// The regex lint (lsbench-lint) and the include-graph DAG (lsbench-analyze)
// cannot see *through calls*: a wall-clock read or heap allocation three
// frames below the per-op loop is invisible to both. lsbench-deepcheck
// (tools/lint/deepcheck.py) closes that gap with an interprocedural call
// graph built from every src/ TU, and these macros mark where its
// reachability walks start.
//
//   LSBENCH_HOT_PATH       -- this function runs once (or more) per
//                             operation in the measured loop. Nothing
//                             reachable from it may allocate, block, or
//                             throw (rules hot-alloc / hot-block /
//                             hot-throw).
//   LSBENCH_DETERMINISTIC  -- this function participates in the
//                             reproducibility contract. Nothing reachable
//                             from it may read ambient nondeterminism
//                             (wall clocks, random_device, rand, getenv,
//                             locale) except through the sanctioned
//                             wrappers in util/ (rule determinism).
//
// Under Clang the macros expand to __attribute__((annotate(...))) so the
// clang.cindex frontend reads them straight off the AST; under GCC they
// expand to nothing and deepcheck's scanner finds the macro tokens in the
// source text instead. Either way the set of roots is identical.
//
// Placement: on the declaration, before the return type --
//
//   LSBENCH_HOT_PATH
//   ExecOutcome ExecuteOne(const Operation& op, int64_t arrival_rel_nanos);
//
// Violations are reported against a committed numbered baseline
// (tools/lint/deepcheck_baseline). One-off sanctioned reaches use an
// lsbench-deepcheck allow-comment on or above the offending function's
// declaration. See docs/STATIC_ANALYSIS.md for the rule catalogue and
// the baseline/suppression workflow.

#if defined(__clang__)
#define LSBENCH_ANNOTATE(x) __attribute__((annotate(x)))
#else
#define LSBENCH_ANNOTATE(x)  // No-op: deepcheck's GCC frontend scans source.
#endif

/// Root of the per-operation measured loop: must not allocate, block, or
/// throw (deepcheck rules hot-alloc, hot-block, hot-throw).
#define LSBENCH_HOT_PATH LSBENCH_ANNOTATE("lsbench::hot_path")

/// Root of the reproducibility contract: must not read ambient
/// nondeterminism except through util/ wrappers (deepcheck rule
/// determinism).
#define LSBENCH_DETERMINISTIC LSBENCH_ANNOTATE("lsbench::deterministic")

#endif  // LSBENCH_UTIL_ANNOTATE_H_
