#ifndef LSBENCH_UTIL_RANDOM_H_
#define LSBENCH_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.h"

namespace lsbench {

/// SplitMix64: used to expand a single 64-bit seed into the state of larger
/// generators, and as a cheap standalone mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic PRNG. All randomness in
/// LSBench flows through explicitly seeded instances of this class so that
/// every dataset and workload is reproducible bit-for-bit.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x1db3a2f5c7e9d401ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift with rejection to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    LSBENCH_ASSERT(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    LSBENCH_ASSERT(lo <= hi);
    if (lo == 0 && hi == std::numeric_limits<uint64_t>::max()) return Next();
    return lo + NextBounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (uses two uniforms per pair of calls).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with the given rate (mean = 1/rate). Requires rate > 0.
  double NextExponential(double rate) {
    LSBENCH_ASSERT(rate > 0.0);
    double u = 0.0;
    while (u <= 0.0) u = NextDouble();
    return -std::log(u) / rate;
  }

  /// Spawns an independent child generator; children with distinct
  /// `stream_id`s produce uncorrelated streams.
  Rng Fork(uint64_t stream_id) const {
    SplitMix64 sm(s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
    return Rng(sm.Next());
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace lsbench

#endif  // LSBENCH_UTIL_RANDOM_H_
