#include "util/csv.h"

#include <cstdio>

namespace lsbench {

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) (*out_) << sep_;
    (*out_) << Escape(fields[i]);
  }
  (*out_) << '\n';
  ++rows_;
}

std::string CsvWriter::Field(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string CsvWriter::Field(int64_t value) { return std::to_string(value); }
std::string CsvWriter::Field(uint64_t value) { return std::to_string(value); }

std::string CsvWriter::Escape(std::string_view field) const {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == sep_ || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (field_started && !field.empty()) {
        return Status::InvalidArgument("quote inside unquoted field");
      }
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // Swallow CR in CRLF.
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  if (field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace lsbench
