#ifndef LSBENCH_UTIL_SCHED_HOOKS_H_
#define LSBENCH_UTIL_SCHED_HOOKS_H_

// Preemption-point hooks for lsbench-sched, the schedule-exploration
// checker (tools/sched/).
//
// The sanctioned concurrency primitives — lsbench::Mutex / CondVar
// (util/sync.h) and lsbench::Atomic<T> (util/atomic.h) — are the only ways
// LSBench code shares state between threads (enforced by lsbench-lint rules
// no-raw-mutex / no-bare-atomic). That closed set is what makes exhaustive
// interleaving exploration possible: every cross-thread visible operation
// funnels through one of these wrappers, and each wrapper consults this
// header before performing the operation.
//
// In a normal run the hook is a single thread-local pointer test that reads
// null and falls through to the plain std:: operation — no locks, no
// allocation, no measurable cost on the hot path. Under exploration the
// lsbench-sched controller (tools/sched/sched.cc) installs a SchedObserver
// on each task thread it manages; the wrappers then *defer the operation to
// the model*: mutexes and condition variables are simulated by the
// controller (so a blocked task never wedges the single-threaded
// cooperative scheduler), and atomics announce themselves as visible
// operations so the controller can branch the schedule around them.
//
// The observer is thread-local on purpose. Only threads spawned by the
// controller are managed; any other thread in the process (including the
// test main thread during setup/teardown) sees a null hook and uses the
// real primitives.
//
// This header is the complete util-layer surface of lsbench-sched: the
// interface lives at the bottom of the layer DAG so util/sync.h and
// util/atomic.h may include it, while the controller implementing it lives
// in tools/ (above every band). See docs/STATIC_ANALYSIS.md § lsbench-sched.

#include <cstdint>

namespace lsbench {

/// Kind of visible (cross-thread) operation a preemption point announces.
/// The explorer's independence relation is defined over these: two
/// operations commute unless they target the same object and at least one
/// writes (two kAtomicLoads of one object are independent; everything else
/// on a shared object conflicts).
enum class SchedOp : uint8_t {
  kAtomicLoad,   ///< Atomic<T>::Load / LoadAcquire.
  kAtomicStore,  ///< Atomic<T>::Store / StoreRelease.
  kAtomicRmw,    ///< Atomic<T>::Add / Sub / Exchange / CompareExchange.
  kMutexLock,    ///< Mutex::Lock / TryLock (modeled; may disable the task).
  kMutexUnlock,  ///< Mutex::Unlock.
  kCondWait,     ///< CondVar::Wait (releases + reacquires the mutex).
  kCondSignal,   ///< CondVar::Signal / SignalAll.
  kYield,        ///< Explicit SchedYield() preemption point.
};

/// The controller's view of one managed task thread. Implemented by
/// tools/sched/sched.cc; every method is called on the task's own thread
/// and may block it (that is the point — control returns when the
/// scheduler picks this task again).
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;

  /// Announces a visible atomic operation (or explicit yield) on `obj`,
  /// *before* it executes. The controller may run other tasks first; when
  /// this returns, the caller performs the operation while it still holds
  /// the schedule token.
  virtual void SchedPoint(SchedOp op, const void* obj) = 0;

  /// Modeled mutex acquire: blocks (in the model) until the controller
  /// grants ownership of `mu` to this task. The real std::mutex inside the
  /// wrapper is NOT locked.
  virtual void MutexLock(void* mu) = 0;
  /// Modeled try-acquire: takes ownership iff `mu` is free right now.
  virtual bool MutexTryLock(void* mu) = 0;
  /// Modeled release; a schedule decision point (some waiter may run next).
  virtual void MutexUnlock(void* mu) = 0;

  /// Modeled condition wait: atomically releases `mu`, blocks this task
  /// until a signal reaches it, then reacquires `mu` before returning.
  /// Spurious wakeups are legal per CondVar's contract; the model wakes
  /// every waiter on Signal and SignalAll alike (a sound over-approximation
  /// under predicate-loop usage — see tools/sched/sched.h).
  virtual void CondWait(void* cv, void* mu) = 0;
  /// Modeled notify: wakes waiters on `cv` (they re-contend for their
  /// mutex).
  virtual void CondSignal(void* cv, bool all) = 0;
};

namespace sched_internal {
/// Per-thread hook. Null (the default) = unmanaged thread, real primitives.
/// Only tools/sched/sched.cc writes this, on threads it owns.
inline thread_local SchedObserver* t_observer = nullptr;
}  // namespace sched_internal

/// The current thread's observer, or null when it is not a managed task.
/// The wrappers call this once per operation; keep it trivially inlinable.
inline SchedObserver* SchedHook() { return sched_internal::t_observer; }

/// Installs (or clears, with null) the current thread's observer. Called
/// only by the lsbench-sched controller on its task threads.
inline void SetSchedHook(SchedObserver* observer) {
  sched_internal::t_observer = observer;
}

/// Explicit preemption point for fixtures and tests: a place the explorer
/// may switch tasks even though no shared operation happens here. No-op on
/// unmanaged threads.
inline void SchedYield() {
  if (SchedObserver* s = SchedHook()) s->SchedPoint(SchedOp::kYield, nullptr);
}

}  // namespace lsbench

#endif  // LSBENCH_UTIL_SCHED_HOOKS_H_
