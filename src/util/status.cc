#include "util/status.h"

namespace lsbench {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool IsTransientStatusCode(StatusCode code) {
  return code == StatusCode::kTimeout || code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lsbench
