#include "cache/cache.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

LruCache::LruCache(size_t capacity) : capacity_(capacity) {
  LSBENCH_ASSERT(capacity_ > 0);
}

bool LruCache::Access(Key key) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_[key] = order_.begin();
  return false;
}

// ---------------------------------------------------------------------------
// LfuCache
// ---------------------------------------------------------------------------

LfuCache::LfuCache(size_t capacity) : capacity_(capacity) {
  LSBENCH_ASSERT(capacity_ > 0);
}

void LfuCache::Touch(Key key, Entry* entry) {
  auto& old_bucket = buckets_[entry->frequency];
  old_bucket.erase(entry->position);
  if (old_bucket.empty()) buckets_.erase(entry->frequency);
  ++entry->frequency;
  auto& new_bucket = buckets_[entry->frequency];
  new_bucket.push_front(key);
  entry->position = new_bucket.begin();
}

bool LfuCache::Access(Key key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    Touch(key, &it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (entries_.size() >= capacity_) {
    // Evict the least-frequent, least-recently-touched key.
    auto& bucket = buckets_.begin()->second;
    const Key victim = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) buckets_.erase(buckets_.begin());
    entries_.erase(victim);
  }
  auto& bucket = buckets_[1];
  bucket.push_front(key);
  entries_[key] = Entry{1, bucket.begin()};
  return false;
}

// ---------------------------------------------------------------------------
// FifoCache
// ---------------------------------------------------------------------------

FifoCache::FifoCache(size_t capacity) : capacity_(capacity) {
  LSBENCH_ASSERT(capacity_ > 0);
}

bool FifoCache::Access(Key key) {
  if (map_.find(key) != map_.end()) {
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    map_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(key);
  auto it = order_.end();
  --it;
  map_[key] = it;
  return false;
}

// ---------------------------------------------------------------------------
// LearnedCache
// ---------------------------------------------------------------------------

LearnedCache::LearnedCache(size_t capacity, Options options)
    : capacity_(capacity), options_(options) {
  LSBENCH_ASSERT(capacity_ > 0);
  LSBENCH_ASSERT(options_.decay > 0.0 && options_.decay < 1.0);
  LSBENCH_ASSERT(options_.ghost_factor >= 1.0);
  resident_keys_.reserve(capacity_);
}

double LearnedCache::ScoreOf(Key key) const {
  const auto it = scores_.find(key);
  if (it == scores_.end()) return 0.0;
  const double age = static_cast<double>(tick_ - it->second.last_tick);
  return it->second.score * std::pow(options_.decay, age);
}

void LearnedCache::Bump(Key key) {
  Stat& stat = scores_[key];
  const double age = static_cast<double>(tick_ - stat.last_tick);
  stat.score = stat.score * std::pow(options_.decay, age) + 1.0;
  stat.last_tick = tick_;
}

void LearnedCache::AdmitResident(Key key) {
  resident_[key] = resident_keys_.size();
  resident_keys_.push_back(key);
}

void LearnedCache::RemoveResident(Key key) {
  const auto it = resident_.find(key);
  LSBENCH_ASSERT(it != resident_.end());
  const size_t slot = it->second;
  const Key last = resident_keys_.back();
  resident_keys_[slot] = last;
  resident_[last] = slot;
  resident_keys_.pop_back();
  resident_.erase(it);
}

Key LearnedCache::FindEvictionVictim() {
  LSBENCH_ASSERT(!resident_keys_.empty());
  constexpr int kSamples = 8;
  Key victim = resident_keys_[rng_.NextBounded(resident_keys_.size())];
  double victim_score = ScoreOf(victim);
  for (int i = 1; i < kSamples; ++i) {
    const Key candidate =
        resident_keys_[rng_.NextBounded(resident_keys_.size())];
    const double score = ScoreOf(candidate);
    if (score < victim_score) {
      victim = candidate;
      victim_score = score;
    }
  }
  return victim;
}

void LearnedCache::EvictGhostsIfNeeded() {
  const size_t limit = static_cast<size_t>(
      static_cast<double>(capacity_) * options_.ghost_factor);
  if (scores_.size() <= limit) return;
  // Drop the coldest non-resident statistics until within bounds.
  for (auto it = scores_.begin();
       it != scores_.end() && scores_.size() > limit;) {
    if (resident_.find(it->first) == resident_.end() &&
        ScoreOf(it->first) < 0.5) {
      it = scores_.erase(it);
    } else {
      ++it;
    }
  }
  // Second pass without the score filter if still oversized.
  for (auto it = scores_.begin();
       it != scores_.end() && scores_.size() > limit;) {
    if (resident_.find(it->first) == resident_.end()) {
      it = scores_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LearnedCache::Access(Key key) {
  ++tick_;
  Bump(key);
  if (resident_.find(key) != resident_.end()) {
    ++hits_;
    return true;
  }
  ++misses_;
  if (resident_keys_.size() < capacity_) {
    AdmitResident(key);
  } else {
    // Admission control: displace a resident only when the newcomer's
    // learned reuse score beats the sampled victim's AND clears the
    // doorkeeper bar (> one recent access), so one-hit wonders — scans —
    // never pollute the cache.
    constexpr double kDoorkeeper = 1.5;
    const double newcomer = ScoreOf(key);
    if (newcomer >= kDoorkeeper) {
      const Key victim = FindEvictionVictim();
      if (newcomer > ScoreOf(victim)) {
        RemoveResident(victim);
        AdmitResident(key);
      }
    }
  }
  EvictGhostsIfNeeded();
  return false;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::string CachePolicyToString(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kFifo:
      return "fifo";
    case CachePolicy::kLearned:
      return "learned";
  }
  return "unknown";
}

std::unique_ptr<Cache> MakeCache(CachePolicy policy, size_t capacity) {
  switch (policy) {
    case CachePolicy::kLru:
      return std::make_unique<LruCache>(capacity);
    case CachePolicy::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case CachePolicy::kFifo:
      return std::make_unique<FifoCache>(capacity);
    case CachePolicy::kLearned:
      return std::make_unique<LearnedCache>(capacity);
  }
  return std::make_unique<LruCache>(capacity);
}

}  // namespace lsbench
