#ifndef LSBENCH_CACHE_CACHE_H_
#define LSBENCH_CACHE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/kv_index.h"
#include "util/random.h"

namespace lsbench {

/// Cache simulator interface. §II of the paper lists "learning-based
/// caches" among the actively explored learned components; this module
/// provides the substrate to benchmark them: classical policies (LRU, LFU,
/// FIFO) and a learned admission/eviction policy that scores keys by online
/// reuse statistics. Caches store keys only (a block/row id); the benchmark
/// observes hits and misses.
class Cache {
 public:
  virtual ~Cache() = default;

  virtual std::string name() const = 0;

  /// Records an access. Returns true on a hit. On a miss the policy may
  /// admit the key (possibly evicting another).
  virtual bool Access(Key key) = 0;

  virtual size_t size() const = 0;
  virtual size_t capacity() const = 0;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

 protected:
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Least-recently-used with an intrusive recency list. O(1) per access.
class LruCache final : public Cache {
 public:
  explicit LruCache(size_t capacity);

  std::string name() const override { return "lru"; }
  bool Access(Key key) override;
  size_t size() const override { return map_.size(); }
  size_t capacity() const override { return capacity_; }

 private:
  size_t capacity_;
  std::list<Key> order_;  // Front = most recent.
  std::unordered_map<Key, std::list<Key>::iterator> map_;
};

/// Least-frequently-used with frequency buckets (O(1) LFU).
class LfuCache final : public Cache {
 public:
  explicit LfuCache(size_t capacity);

  std::string name() const override { return "lfu"; }
  bool Access(Key key) override;
  size_t size() const override { return entries_.size(); }
  size_t capacity() const override { return capacity_; }

 private:
  struct Entry {
    uint64_t frequency;
    std::list<Key>::iterator position;
  };

  void Touch(Key key, Entry* entry);

  size_t capacity_;
  std::unordered_map<Key, Entry> entries_;
  /// frequency -> keys at that frequency (front = most recently touched).
  std::map<uint64_t, std::list<Key>> buckets_;
};

/// First-in-first-out: admission order eviction, no recency tracking.
class FifoCache final : public Cache {
 public:
  explicit FifoCache(size_t capacity);

  std::string name() const override { return "fifo"; }
  bool Access(Key key) override;
  size_t size() const override { return map_.size(); }
  size_t capacity() const override { return capacity_; }

 private:
  size_t capacity_;
  std::list<Key> order_;  // Front = oldest.
  std::unordered_map<Key, std::list<Key>::iterator> map_;
};

/// Learned cache: an online reuse-probability model gates admission and
/// picks evictions (a TinyLFU-flavored design). Per-key ghost statistics
/// (EWMA access rate) survive eviction in a bounded ghost table, so the
/// model keeps learning about keys it rejected — and, like any learned
/// component, it specializes to the access distribution and must re-learn
/// after a shift.
class LearnedCache final : public Cache {
 public:
  struct Options {
    /// EWMA decay applied per logical tick (higher = longer memory).
    double decay = 0.999;
    /// Ghost-statistics table size as a multiple of capacity.
    double ghost_factor = 4.0;
  };

  LearnedCache(size_t capacity, Options options);
  explicit LearnedCache(size_t capacity)
      : LearnedCache(capacity, Options()) {}

  std::string name() const override { return "learned"; }
  bool Access(Key key) override;
  size_t size() const override { return resident_.size(); }
  size_t capacity() const override { return capacity_; }

  size_t ghost_size() const { return scores_.size(); }

 private:
  /// Decayed score of `key` at the current tick.
  double ScoreOf(Key key) const;
  void Bump(Key key);
  void EvictGhostsIfNeeded();
  /// Samples resident keys and returns the lowest-scored one
  /// (Redis-style sampled eviction, O(1) amortized).
  Key FindEvictionVictim();
  void AdmitResident(Key key);
  void RemoveResident(Key key);

  struct Stat {
    double score = 0.0;
    uint64_t last_tick = 0;
  };

  size_t capacity_;
  Options options_;
  uint64_t tick_ = 0;
  Rng rng_{0xCAC4E};
  std::unordered_map<Key, Stat> scores_;        // Resident + ghosts.
  std::unordered_map<Key, size_t> resident_;    // Key -> slot in keys vector.
  std::vector<Key> resident_keys_;
};

/// Factory covering every policy.
enum class CachePolicy { kLru, kLfu, kFifo, kLearned };

std::string CachePolicyToString(CachePolicy policy);
std::unique_ptr<Cache> MakeCache(CachePolicy policy, size_t capacity);

}  // namespace lsbench

#endif  // LSBENCH_CACHE_CACHE_H_
