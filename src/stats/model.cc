#include "stats/model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace lsbench {

size_t LinearModel::PredictClamped(double x, size_t n) const {
  if (n == 0) return 0;
  const double y = Predict(x);
  if (y <= 0.0) return 0;
  const double max_pos = static_cast<double>(n - 1);
  if (y >= max_pos) return n - 1;
  return static_cast<size_t>(y);
}

LinearModel FitLinear(const Key* keys, size_t n) {
  LinearModel m;
  if (n == 0) return m;
  if (n == 1) {
    m.slope = 0.0;
    m.intercept = 0.0;
    return m;
  }
  // Shift by the first key to keep the arithmetic well-conditioned for
  // large 64-bit keys.
  const double x0 = static_cast<double>(keys[0]);
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(keys[i]) - x0;
    const double y = static_cast<double>(i);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_xx - sum_x * sum_x;
  if (denom == 0.0 || !std::isfinite(denom)) {
    m.slope = 0.0;
    m.intercept = sum_y / dn;
    return m;
  }
  const double slope = (dn * sum_xy - sum_x * sum_y) / denom;
  const double intercept_shifted = (sum_y - slope * sum_x) / dn;
  m.slope = slope;
  m.intercept = intercept_shifted - slope * x0;
  return m;
}

LinearModel FitLinearTargets(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  LSBENCH_ASSERT(xs.size() == ys.size());
  LinearModel m;
  const size_t n = xs.size();
  if (n == 0) return m;
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_xx - sum_x * sum_x;
  if (denom == 0.0 || !std::isfinite(denom)) {
    m.slope = 0.0;
    m.intercept = sum_y / dn;
    return m;
  }
  m.slope = (dn * sum_xy - sum_x * sum_y) / denom;
  m.intercept = (sum_y - m.slope * sum_x) / dn;
  return m;
}

CdfModel CdfModel::FitFromSorted(const std::vector<Key>& sorted_sample,
                                 int num_knots) {
  LSBENCH_ASSERT(num_knots >= 2);
  CdfModel model;
  if (sorted_sample.empty()) {
    model.knot_keys_ = {0, ~Key{0}};
    model.knot_cdf_ = {0.0, 1.0};
    return model;
  }
  const size_t n = sorted_sample.size();
  model.knot_keys_.reserve(num_knots);
  model.knot_cdf_.reserve(num_knots);
  for (int k = 0; k < num_knots; ++k) {
    const double q = static_cast<double>(k) / (num_knots - 1);
    const size_t idx = std::min<size_t>(
        static_cast<size_t>(q * static_cast<double>(n - 1)), n - 1);
    const Key key = sorted_sample[idx];
    // Keep knots strictly ascending in key; duplicates collapse.
    if (!model.knot_keys_.empty() && key <= model.knot_keys_.back()) {
      model.knot_cdf_.back() = std::max(model.knot_cdf_.back(), q);
      continue;
    }
    model.knot_keys_.push_back(key);
    model.knot_cdf_.push_back(q);
  }
  if (model.knot_keys_.size() == 1) {
    // Single distinct key: make a tiny step.
    model.knot_keys_.push_back(model.knot_keys_[0] + 1);
    model.knot_cdf_ = {0.0, 1.0};
  }
  model.knot_cdf_.front() = 0.0;
  model.knot_cdf_.back() = 1.0;
  return model;
}

double CdfModel::Evaluate(Key key) const {
  if (knot_keys_.empty()) return 0.0;
  if (key <= knot_keys_.front()) return knot_cdf_.front();
  if (key >= knot_keys_.back()) return knot_cdf_.back();
  const size_t hi =
      std::upper_bound(knot_keys_.begin(), knot_keys_.end(), key) -
      knot_keys_.begin();
  const size_t lo = hi - 1;
  const double span =
      static_cast<double>(knot_keys_[hi]) - static_cast<double>(knot_keys_[lo]);
  const double frac =
      span > 0.0
          ? (static_cast<double>(key) - static_cast<double>(knot_keys_[lo])) /
                span
          : 0.0;
  return knot_cdf_[lo] + frac * (knot_cdf_[hi] - knot_cdf_[lo]);
}

Key CdfModel::EvaluateInverse(double q) const {
  if (knot_keys_.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= knot_cdf_.front()) return knot_keys_.front();
  if (q >= knot_cdf_.back()) return knot_keys_.back();
  const size_t hi =
      std::upper_bound(knot_cdf_.begin(), knot_cdf_.end(), q) -
      knot_cdf_.begin();
  const size_t lo = hi - 1;
  const double span = knot_cdf_[hi] - knot_cdf_[lo];
  const double frac = span > 0.0 ? (q - knot_cdf_[lo]) / span : 0.0;
  const double key_span = static_cast<double>(knot_keys_[hi]) -
                          static_cast<double>(knot_keys_[lo]);
  return knot_keys_[lo] + static_cast<Key>(frac * key_span);
}

}  // namespace lsbench
