#ifndef LSBENCH_STATS_ASCII_CHART_H_
#define LSBENCH_STATS_ASCII_CHART_H_

#include <string>
#include <vector>

#include "stats/descriptive.h"

namespace lsbench {

/// Terminal renderings of the paper's Figure-1 chart types. All renderers
/// return multi-line strings; values are auto-scaled to the chart width.

/// One labeled box for RenderBoxPlotChart.
struct LabeledBox {
  std::string label;
  BoxPlotSummary box;
};

/// Horizontal Tukey box plots on a shared axis (Fig. 1a style):
///   label |    |----[  =|=  ]-----|   o o
/// with `-` whiskers, `[ ]` the IQR, `|` the median, and `o` outliers.
std::string RenderBoxPlotChart(const std::vector<LabeledBox>& boxes,
                               int width = 72);

/// One (x, y) series for the line chart.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Multi-series scatter/line chart on a character grid (Fig. 1b/1d style).
/// Series are drawn with distinct glyphs in input order: * + x o # @.
std::string RenderLineChart(const std::vector<Series>& series, int width = 72,
                            int height = 20, const std::string& x_label = "",
                            const std::string& y_label = "");

/// One interval of the stacked SLA-band chart.
struct BandColumn {
  double within = 0.0;
  double violated = 0.0;
};

/// Vertical stacked bars (Fig. 1c style): '#' for queries within SLA, 'X'
/// for violations, one column per interval.
std::string RenderBandChart(const std::vector<BandColumn>& columns,
                            int height = 16,
                            const std::string& x_label = "interval");

/// Multi-class stacked bars (§V-D2's green-yellow-orange-red extension):
/// each column stacks its latency classes bottom-up using the glyphs
/// '#', '+', 'o', 'X', '@' (fastest class at the bottom). Every column's
/// class counts must have equal arity (at most 5 classes).
std::string RenderMultiBandChart(
    const std::vector<std::vector<double>>& columns, int height = 16,
    const std::string& x_label = "interval");

/// Markdown-ish monospace table with right-aligned numeric columns.
std::string RenderTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows);

}  // namespace lsbench

#endif  // LSBENCH_STATS_ASCII_CHART_H_
