#ifndef LSBENCH_STATS_DRIFT_H_
#define LSBENCH_STATS_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
// kNumOpTypes sizes op_mix below.  lsbench-lint: allow(unused-include)
#include "workload/operation.h"
#include "workload/spec.h"

namespace lsbench {

/// Tuning knobs for drift measurement. Every field participates in the
/// measurement's determinism contract: the same options, dataset, and phase
/// specs always produce bit-identical drift factors.
struct DriftMeterOptions {
  /// Operations sampled per phase through a throwaway generator (the live
  /// stream is never touched — measurement has zero hot-path impact).
  uint64_t sample_ops = 4096;
  /// Seed for the throwaway generators. Both phases of a transition are
  /// sampled with the same seed, so two identical phase specs produce
  /// identical samples and a drift factor of exactly 0.
  uint64_t seed = 7;
  /// MMD is O(n^2); samples are deterministically subsampled to this many
  /// points first.
  size_t mmd_subsample = 512;
  /// Key-space buckets for the weighted-Jaccard overlap component.
  size_t overlap_buckets = 256;
};

/// What one phase "looks like" statistically: the touched-key distribution
/// (normalized into [0, 1) by the dataset's key domain) and the realized
/// operation-type mix. This is the input to drift measurement.
struct PhaseDistributionSample {
  std::vector<double> normalized_keys;   ///< One entry per touched key.
  double op_mix[kNumOpTypes] = {0.0};    ///< Fractions; sums to 1 (or 0).
};

/// Per-transition drift decomposition. Every component lives in [0, 1] with
/// 0 = "statistically identical" and 1 = "maximally different".
struct DriftComponents {
  double key_ks = 0.0;       ///< KS statistic over normalized touched keys.
  double key_mmd = 0.0;      ///< sqrt of clamped unbiased MMD^2 (RBF kernel).
  double key_overlap = 1.0;  ///< Weighted Jaccard over key-space buckets.
  double op_mix_tv = 0.0;    ///< Total-variation distance between op mixes.
  /// The scalar drift factor:
  ///   0.30 * key_ks + 0.20 * key_mmd
  ///     + 0.25 * (1 - key_overlap) + 0.25 * op_mix_tv,
  /// clamped into [0, 1]. Weights favor the key-distribution movement the
  /// paper's learned components chase, while keeping op-mix shifts visible
  /// even when the touched-key distribution is unchanged.
  double factor = 0.0;
};

/// Computes scalar drift factors between consecutive phase distributions —
/// the quantified version of the paper's "changing workloads" axis. Stateless
/// except for options; safe to use from tests and report code.
class DriftMeter {
 public:
  explicit DriftMeter(const DriftMeterOptions& options = {});

  const DriftMeterOptions& options() const { return options_; }

  /// Samples `options().sample_ops` operations from a throwaway generator
  /// for `phase` over `dataset` and distills them into a distribution
  /// sample. Deterministic: seeded by `options().seed`, independent of any
  /// live workload stream.
  PhaseDistributionSample SamplePhase(const Dataset& dataset,
                                      const PhaseSpec& phase) const;

  /// Drift decomposition between two phase samples. Symmetric: swapping
  /// `a` and `b` yields the same components. Measure(x, x) has factor 0.
  DriftComponents Measure(const PhaseDistributionSample& a,
                          const PhaseDistributionSample& b) const;

  /// Convenience: sample both phases, then Measure.
  DriftComponents MeasurePhases(const Dataset& dataset_a,
                                const PhaseSpec& phase_a,
                                const Dataset& dataset_b,
                                const PhaseSpec& phase_b) const;

 private:
  DriftMeterOptions options_;
};

}  // namespace lsbench

#endif  // LSBENCH_STATS_DRIFT_H_
