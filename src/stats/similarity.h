#ifndef LSBENCH_STATS_SIMILARITY_H_
#define LSBENCH_STATS_SIMILARITY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace lsbench {

/// Result of a two-sample Kolmogorov–Smirnov test: the paper's suggested
/// estimator for similarity across *data* distributions (§V-D1).
struct KsResult {
  double statistic = 0.0;  ///< sup |F1(x) - F2(x)| in [0, 1].
  double p_value = 1.0;    ///< Asymptotic p-value (Smirnov distribution).
};

/// Two-sample KS test over raw samples. Copies and sorts internally.
KsResult KolmogorovSmirnov(std::vector<double> a, std::vector<double> b);

/// Unbiased estimate of the squared Maximum Mean Discrepancy between two
/// samples using an RBF kernel — the paper's alternative data-similarity
/// estimator (Gretton et al.). `bandwidth <= 0` selects the median heuristic.
/// Cost is O(n^2); callers should subsample first (see Subsample below).
double MmdSquared(const std::vector<double>& a, const std::vector<double>& b,
                  double bandwidth = -1.0);

/// Jaccard similarity |A ∩ B| / |A ∪ B| between two sets of 64-bit hashes —
/// the paper's estimator for similarity across *workloads*, where the hashes
/// identify query-plan subtrees (§V-D1). Two empty sets have similarity 1.
double JaccardSimilarity(const std::unordered_set<uint64_t>& a,
                         const std::unordered_set<uint64_t>& b);

/// Weighted (multiset) Jaccard: sum(min(wa, wb)) / sum(max(wa, wb)) over the
/// union of keys. Inputs are parallel key/weight vectors per side.
double WeightedJaccard(const std::vector<uint64_t>& keys_a,
                       const std::vector<double>& weights_a,
                       const std::vector<uint64_t>& keys_b,
                       const std::vector<double>& weights_b);

/// Deterministically subsamples `values` down to at most `max_n` elements
/// using a fixed stride; preserves distribution shape for KS/MMD inputs.
std::vector<double> Subsample(const std::vector<double>& values, size_t max_n);

/// The Φ dissimilarity function of Fig. 1a: a convex combination of the data
/// KS statistic and (1 - workload Jaccard). Both terms live in [0, 1], so
/// Φ = 0 means "identical to baseline" and Φ = 1 "maximally different".
double PhiDissimilarity(double data_ks_statistic, double workload_jaccard,
                        double data_weight = 0.5);

}  // namespace lsbench

#endif  // LSBENCH_STATS_SIMILARITY_H_
