#include "stats/drift.h"

#include <algorithm>
#include <cmath>

#include "stats/similarity.h"
#include "util/assert.h"
#include "workload/generator.h"

namespace lsbench {

namespace {

/// The drift-factor blend. Weights sum to 1 so the factor inherits the
/// components' [0, 1] range; the clamp only guards float round-off.
constexpr double kKsWeight = 0.30;
constexpr double kMmdWeight = 0.20;
constexpr double kOverlapWeight = 0.25;
constexpr double kOpMixWeight = 0.25;

/// Histograms normalized keys into `buckets` equal-width bins and emits the
/// non-empty ones as parallel (bucket index, fraction) vectors — the inputs
/// WeightedJaccard expects. Bucket order is ascending, so accumulation is
/// deterministic.
void BucketKeys(const std::vector<double>& normalized_keys, size_t buckets,
                std::vector<uint64_t>* out_buckets,
                std::vector<double>* out_weights) {
  LSBENCH_ASSERT(buckets > 0);
  std::vector<double> counts(buckets, 0.0);
  for (double v : normalized_keys) {
    const double clamped = std::clamp(v, 0.0, 1.0);
    size_t idx = static_cast<size_t>(clamped * static_cast<double>(buckets));
    if (idx >= buckets) idx = buckets - 1;
    counts[idx] += 1.0;
  }
  const double total = static_cast<double>(normalized_keys.size());
  out_buckets->clear();
  out_weights->clear();
  if (total == 0.0) return;
  for (size_t i = 0; i < buckets; ++i) {
    if (counts[i] > 0.0) {
      out_buckets->push_back(static_cast<uint64_t>(i));
      out_weights->push_back(counts[i] / total);
    }
  }
}

}  // namespace

DriftMeter::DriftMeter(const DriftMeterOptions& options) : options_(options) {
  LSBENCH_ASSERT(options_.sample_ops > 0);
  LSBENCH_ASSERT(options_.overlap_buckets > 0);
}

PhaseDistributionSample DriftMeter::SamplePhase(const Dataset& dataset,
                                                const PhaseSpec& phase) const {
  LSBENCH_ASSERT(!dataset.empty());
  // A throwaway generator for exactly the sample budget: transitions are a
  // stream-level concern (blending between generators), so they are zeroed
  // here — the sample characterizes the phase's own steady state.
  PhaseSpec probe = phase;
  probe.num_operations = options_.sample_ops;
  probe.transition_operations = 0;
  probe.transition_in = TransitionKind::kAbrupt;
  OperationGenerator gen(&dataset, probe, options_.seed);

  const double domain = dataset.domain_max > 0
                            ? static_cast<double>(dataset.domain_max)
                            : static_cast<double>(dataset.keys.back()) + 1.0;
  PhaseDistributionSample sample;
  sample.normalized_keys.reserve(options_.sample_ops);
  uint64_t op_counts[kNumOpTypes] = {0};
  for (uint64_t i = 0; i < options_.sample_ops; ++i) {
    const Operation op = gen.Next();
    ++op_counts[static_cast<int>(op.type)];
    if (IsBatchOp(op.type) && op.batch_size > 0) {
      for (uint32_t j = 0; j < op.batch_size; ++j) {
        sample.normalized_keys.push_back(
            std::clamp(static_cast<double>(op.batch_keys[j]) / domain, 0.0,
                       1.0));
      }
    } else {
      sample.normalized_keys.push_back(
          std::clamp(static_cast<double>(op.key) / domain, 0.0, 1.0));
    }
  }
  for (int t = 0; t < kNumOpTypes; ++t) {
    sample.op_mix[t] = static_cast<double>(op_counts[t]) /
                       static_cast<double>(options_.sample_ops);
  }
  return sample;
}

DriftComponents DriftMeter::Measure(const PhaseDistributionSample& a,
                                    const PhaseDistributionSample& b) const {
  DriftComponents out;
  out.key_ks = KolmogorovSmirnov(a.normalized_keys, b.normalized_keys)
                   .statistic;

  // The unbiased MMD^2 estimator can dip slightly below zero for identical
  // samples; clamp before the sqrt so identical phases read exactly 0.
  const double mmd2 =
      MmdSquared(Subsample(a.normalized_keys, options_.mmd_subsample),
                 Subsample(b.normalized_keys, options_.mmd_subsample));
  out.key_mmd = std::clamp(std::sqrt(std::max(0.0, mmd2)), 0.0, 1.0);

  std::vector<uint64_t> buckets_a, buckets_b;
  std::vector<double> weights_a, weights_b;
  BucketKeys(a.normalized_keys, options_.overlap_buckets, &buckets_a,
             &weights_a);
  BucketKeys(b.normalized_keys, options_.overlap_buckets, &buckets_b,
             &weights_b);
  out.key_overlap = WeightedJaccard(buckets_a, weights_a, buckets_b,
                                    weights_b);

  double tv = 0.0;
  for (int t = 0; t < kNumOpTypes; ++t) {
    tv += std::fabs(a.op_mix[t] - b.op_mix[t]);
  }
  out.op_mix_tv = std::clamp(0.5 * tv, 0.0, 1.0);

  out.factor = std::clamp(kKsWeight * out.key_ks + kMmdWeight * out.key_mmd +
                              kOverlapWeight * (1.0 - out.key_overlap) +
                              kOpMixWeight * out.op_mix_tv,
                          0.0, 1.0);
  return out;
}

DriftComponents DriftMeter::MeasurePhases(const Dataset& dataset_a,
                                          const PhaseSpec& phase_a,
                                          const Dataset& dataset_b,
                                          const PhaseSpec& phase_b) const {
  return Measure(SamplePhase(dataset_a, phase_a),
                 SamplePhase(dataset_b, phase_b));
}

}  // namespace lsbench
