#include "stats/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace lsbench {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;

  double Clamp01(double v) const {
    if (hi <= lo) return 0.0;
    return std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  }
};

Range FindRange(const std::vector<double>& values) {
  Range r;
  if (values.empty()) return r;
  r.lo = values[0];
  r.hi = values[0];
  for (double v : values) {
    r.lo = std::min(r.lo, v);
    r.hi = std::max(r.hi, v);
  }
  if (r.hi == r.lo) r.hi = r.lo + 1.0;
  return r;
}

}  // namespace

std::string RenderBoxPlotChart(const std::vector<LabeledBox>& boxes,
                               int width) {
  if (boxes.empty()) return "(no data)\n";
  size_t label_width = 0;
  std::vector<double> extremes;
  for (const LabeledBox& lb : boxes) {
    label_width = std::max(label_width, lb.label.size());
    if (lb.box.count == 0) continue;
    extremes.push_back(lb.box.min);
    extremes.push_back(lb.box.max);
  }
  const Range range = FindRange(extremes);
  const int plot_width = std::max(20, width - static_cast<int>(label_width) - 3);

  std::ostringstream os;
  for (const LabeledBox& lb : boxes) {
    os << PadRight(lb.label, label_width) << " |";
    if (lb.box.count == 0) {
      os << " (empty)\n";
      continue;
    }
    std::string row(plot_width, ' ');
    auto col = [&](double v) {
      return std::clamp(
          static_cast<int>(range.Clamp01(v) * (plot_width - 1)), 0,
          plot_width - 1);
    };
    const int wl = col(lb.box.whisker_low);
    const int q1 = col(lb.box.q1);
    const int med = col(lb.box.median);
    const int q3 = col(lb.box.q3);
    const int wh = col(lb.box.whisker_high);
    for (int i = wl; i <= wh; ++i) row[i] = '-';
    for (int i = q1; i <= q3; ++i) row[i] = '=';
    row[q1] = '[';
    row[q3] = ']';
    row[med] = '|';
    row[wl] = '|';
    row[wh] = '|';
    for (double o : lb.box.outliers) row[col(o)] = 'o';
    os << row << "\n";
  }
  os << PadRight("", label_width) << " +" << Repeat('-', plot_width) << "\n";
  os << PadRight("", label_width) << "  " << HumanCount(range.lo)
     << Repeat(' ',
               std::max(1, plot_width - static_cast<int>(
                                            HumanCount(range.lo).size() +
                                            HumanCount(range.hi).size())))
     << HumanCount(range.hi) << "\n";
  return os.str();
}

std::string RenderLineChart(const std::vector<Series>& series, int width,
                            int height, const std::string& x_label,
                            const std::string& y_label) {
  static const char kGlyphs[] = {'*', '+', 'x', 'o', '#', '@'};
  std::vector<double> all_x, all_y;
  for (const Series& s : series) {
    all_x.insert(all_x.end(), s.xs.begin(), s.xs.end());
    all_y.insert(all_y.end(), s.ys.begin(), s.ys.end());
  }
  if (all_x.empty()) return "(no data)\n";
  const Range rx = FindRange(all_x);
  const Range ry = FindRange(all_y);

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series[si];
    for (size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      const int cx = std::clamp(
          static_cast<int>(rx.Clamp01(s.xs[i]) * (width - 1)), 0, width - 1);
      const int cy = std::clamp(
          static_cast<int>(ry.Clamp01(s.ys[i]) * (height - 1)), 0,
          height - 1);
      grid[height - 1 - cy][cx] = glyph;
    }
  }

  std::ostringstream os;
  if (!y_label.empty()) os << y_label << "\n";
  os << PadLeft(HumanCount(ry.hi), 10) << " +";
  os << grid[0] << "\n";
  for (int r = 1; r < height - 1; ++r) {
    os << Repeat(' ', 10) << " |" << grid[r] << "\n";
  }
  os << PadLeft(HumanCount(ry.lo), 10) << " +" << grid[height - 1] << "\n";
  os << Repeat(' ', 12) << Repeat('-', width) << "\n";
  os << Repeat(' ', 12) << HumanCount(rx.lo)
     << Repeat(' ', std::max(1, width - static_cast<int>(
                                           HumanCount(rx.lo).size() +
                                           HumanCount(rx.hi).size())))
     << HumanCount(rx.hi) << "\n";
  if (!x_label.empty()) {
    os << Repeat(' ', 12) << PadLeft(x_label, width / 2) << "\n";
  }
  // Legend.
  for (size_t si = 0; si < series.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].name
       << "\n";
  }
  return os.str();
}

std::string RenderBandChart(const std::vector<BandColumn>& columns,
                            int height, const std::string& x_label) {
  if (columns.empty()) return "(no data)\n";
  double max_total = 0.0;
  for (const BandColumn& c : columns) {
    max_total = std::max(max_total, c.within + c.violated);
  }
  if (max_total <= 0.0) max_total = 1.0;

  std::ostringstream os;
  for (int r = height; r >= 1; --r) {
    const double row_threshold =
        max_total * static_cast<double>(r) / static_cast<double>(height);
    if (r == height) {
      os << PadLeft(HumanCount(max_total), 9) << " |";
    } else {
      os << Repeat(' ', 9) << " |";
    }
    for (const BandColumn& c : columns) {
      const double total = c.within + c.violated;
      if (total >= row_threshold) {
        // Violations stack on top of the within-SLA portion.
        os << (c.within >= row_threshold ? '#' : 'X');
      } else {
        os << ' ';
      }
    }
    os << "\n";
  }
  os << PadLeft("0", 9) << " +" << Repeat('-', static_cast<int>(columns.size()))
     << "\n";
  os << Repeat(' ', 11) << x_label << "  (#=within SLA, X=violated)\n";
  return os.str();
}

std::string RenderMultiBandChart(
    const std::vector<std::vector<double>>& columns, int height,
    const std::string& x_label) {
  static const char kGlyphs[] = {'#', '+', 'o', 'X', '@'};
  if (columns.empty()) return "(no data)\n";
  size_t classes = 0;
  double max_total = 0.0;
  for (const auto& col : columns) {
    classes = std::max(classes, col.size());
    double total = 0.0;
    for (double v : col) total += v;
    max_total = std::max(max_total, total);
  }
  if (max_total <= 0.0) max_total = 1.0;
  classes = std::min(classes, sizeof(kGlyphs));

  std::ostringstream os;
  for (int r = height; r >= 1; --r) {
    const double row_threshold =
        max_total * static_cast<double>(r) / static_cast<double>(height);
    if (r == height) {
      os << PadLeft(HumanCount(max_total), 9) << " |";
    } else {
      os << Repeat(' ', 9) << " |";
    }
    for (const auto& col : columns) {
      // Find which class the stacked height at this row belongs to.
      double cumulative = 0.0;
      char glyph = ' ';
      for (size_t c = 0; c < col.size() && c < classes; ++c) {
        cumulative += col[c];
        if (cumulative >= row_threshold) {
          glyph = kGlyphs[c];
          break;
        }
      }
      os << glyph;
    }
    os << "\n";
  }
  os << PadLeft("0", 9) << " +"
     << Repeat('-', static_cast<int>(columns.size())) << "\n";
  os << Repeat(' ', 11) << x_label << "  (classes bottom-up: ";
  for (size_t c = 0; c < classes; ++c) {
    if (c > 0) os << ' ';
    os << kGlyphs[c];
  }
  os << ")\n";
  return os.str();
}

std::string RenderTable(const std::vector<std::string>& headers,
                        const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(headers.size(), 0);
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "|";
  for (size_t c = 0; c < headers.size(); ++c) {
    os << " " << PadRight(headers[c], widths[c]) << " |";
  }
  os << "\n|";
  for (size_t c = 0; c < headers.size(); ++c) {
    os << Repeat('-', widths[c] + 2) << "|";
  }
  os << "\n";
  for (const auto& row : rows) {
    os << "|";
    for (size_t c = 0; c < headers.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << " " << PadLeft(cell, widths[c]) << " |";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace lsbench
