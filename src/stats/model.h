#ifndef LSBENCH_STATS_MODEL_H_
#define LSBENCH_STATS_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/key_value.h"

namespace lsbench {

/// y = slope * x + intercept over double-converted keys. The atomic building
/// block of every learned component in LSBench (RMI stages, PGM segments,
/// adaptive nodes, CDF models).
struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(double x) const { return slope * x + intercept; }

  /// Predicts and clamps into [0, n-1], returning a usable array position.
  size_t PredictClamped(double x, size_t n) const;
};

/// Least-squares fit of positions 0..n-1 against keys[first..first+n).
/// Degenerate inputs (n < 2 or all-equal keys) produce a constant model.
LinearModel FitLinear(const Key* keys, size_t n);

/// Fits keys -> target positions (arbitrary targets, same length).
LinearModel FitLinearTargets(const std::vector<double>& xs,
                             const std::vector<double>& ys);

/// Monotone piecewise-linear CDF model over a sample: F(key) in [0, 1].
/// Used by the learned sorter and the learned cardinality estimator.
class CdfModel {
 public:
  /// Builds from a *sorted* sample using `num_knots` equally-spaced-in-rank
  /// knots (>= 2). An empty sample yields the identity-on-[0,1] CDF.
  static CdfModel FitFromSorted(const std::vector<Key>& sorted_sample,
                                int num_knots);

  /// F(key): fraction of the distribution <= key, in [0, 1]. Monotone
  /// non-decreasing in `key`.
  double Evaluate(Key key) const;

  /// Inverse CDF: the key below which fraction `q` of mass lies.
  Key EvaluateInverse(double q) const;

  size_t num_knots() const { return knot_keys_.size(); }
  size_t MemoryBytes() const {
    return knot_keys_.size() * (sizeof(Key) + sizeof(double));
  }

 private:
  std::vector<Key> knot_keys_;    // Ascending.
  std::vector<double> knot_cdf_;  // Ascending in [0, 1], same length.
};

}  // namespace lsbench

#endif  // LSBENCH_STATS_MODEL_H_
