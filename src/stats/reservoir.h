#ifndef LSBENCH_STATS_RESERVOIR_H_
#define LSBENCH_STATS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace lsbench {

/// Classic Algorithm-R reservoir sampler: maintains a uniform sample of at
/// most `capacity` items from a stream of unknown length. Deterministic
/// given the seed. Used to keep bounded per-phase samples for KS/MMD.
template <typename T>
class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity, uint64_t seed = 42)
      : capacity_(capacity), rng_(seed) {
    sample_.reserve(capacity);
  }

  void Add(const T& item) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
      return;
    }
    const uint64_t j = rng_.NextBounded(seen_);
    if (j < capacity_) sample_[j] = item;
  }

  /// Items sampled so far (unordered).
  const std::vector<T>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  void Clear() {
    sample_.clear();
    seen_ = 0;
  }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<T> sample_;
  uint64_t seen_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_STATS_RESERVOIR_H_
