#include "stats/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/assert.h"

namespace lsbench {

namespace {

/// Asymptotic Kolmogorov distribution survival function Q(lambda) =
/// 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult KolmogorovSmirnov(std::vector<double> a, std::vector<double> b) {
  KsResult r;
  if (a.empty() || b.empty()) {
    r.statistic = a.empty() && b.empty() ? 0.0 : 1.0;
    r.p_value = a.empty() && b.empty() ? 1.0 : 0.0;
    return r;
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  r.statistic = d;
  const double ne = na * nb / (na + nb);
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  r.p_value = KolmogorovSurvival(lambda);
  return r;
}

double MmdSquared(const std::vector<double>& a, const std::vector<double>& b,
                  double bandwidth) {
  const size_t m = a.size();
  const size_t n = b.size();
  if (m < 2 || n < 2) return 0.0;

  if (bandwidth <= 0.0) {
    // Median heuristic over the pooled pairwise distances (subsampled by
    // taking distances to the pooled median element to keep it O(n log n)).
    std::vector<double> pooled;
    pooled.reserve(m + n);
    pooled.insert(pooled.end(), a.begin(), a.end());
    pooled.insert(pooled.end(), b.begin(), b.end());
    std::sort(pooled.begin(), pooled.end());
    const double center = pooled[pooled.size() / 2];
    std::vector<double> dists;
    dists.reserve(pooled.size());
    for (double v : pooled) dists.push_back(std::fabs(v - center));
    std::sort(dists.begin(), dists.end());
    bandwidth = dists[dists.size() / 2];
    if (bandwidth <= 0.0) bandwidth = 1.0;
  }
  const double gamma = 1.0 / (2.0 * bandwidth * bandwidth);
  auto kernel = [gamma](double x, double y) {
    const double d = x - y;
    return std::exp(-gamma * d * d);
  };

  double kaa = 0.0;
  for (size_t i = 0; i < m; ++i)
    for (size_t j = i + 1; j < m; ++j) kaa += kernel(a[i], a[j]);
  kaa = 2.0 * kaa / (static_cast<double>(m) * static_cast<double>(m - 1));

  double kbb = 0.0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i + 1; j < n; ++j) kbb += kernel(b[i], b[j]);
  kbb = 2.0 * kbb / (static_cast<double>(n) * static_cast<double>(n - 1));

  double kab = 0.0;
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < n; ++j) kab += kernel(a[i], b[j]);
  kab = kab / (static_cast<double>(m) * static_cast<double>(n));

  return kaa + kbb - 2.0 * kab;
}

double JaccardSimilarity(const std::unordered_set<uint64_t>& a,
                         const std::unordered_set<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (uint64_t v : small) {
    if (large.count(v) > 0) ++intersection;
  }
  const size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double WeightedJaccard(const std::vector<uint64_t>& keys_a,
                       const std::vector<double>& weights_a,
                       const std::vector<uint64_t>& keys_b,
                       const std::vector<double>& weights_b) {
  LSBENCH_ASSERT(keys_a.size() == weights_a.size());
  LSBENCH_ASSERT(keys_b.size() == weights_b.size());
  std::unordered_map<uint64_t, std::pair<double, double>> merged;
  for (size_t i = 0; i < keys_a.size(); ++i) {
    merged[keys_a[i]].first += weights_a[i];
  }
  for (size_t i = 0; i < keys_b.size(); ++i) {
    merged[keys_b[i]].second += weights_b[i];
  }
  if (merged.empty()) return 1.0;
  double num = 0.0, den = 0.0;
  for (const auto& [key, w] : merged) {
    num += std::min(w.first, w.second);
    den += std::max(w.first, w.second);
  }
  if (den == 0.0) return 1.0;
  return num / den;
}

std::vector<double> Subsample(const std::vector<double>& values,
                              size_t max_n) {
  if (values.size() <= max_n || max_n == 0) return values;
  std::vector<double> out;
  out.reserve(max_n);
  const double stride =
      static_cast<double>(values.size()) / static_cast<double>(max_n);
  for (size_t i = 0; i < max_n; ++i) {
    out.push_back(values[static_cast<size_t>(static_cast<double>(i) * stride)]);
  }
  return out;
}

double PhiDissimilarity(double data_ks_statistic, double workload_jaccard,
                        double data_weight) {
  data_weight = std::clamp(data_weight, 0.0, 1.0);
  const double data_term = std::clamp(data_ks_statistic, 0.0, 1.0);
  const double workload_term = 1.0 - std::clamp(workload_jaccard, 0.0, 1.0);
  return data_weight * data_term + (1.0 - data_weight) * workload_term;
}

}  // namespace lsbench
