#ifndef LSBENCH_STATS_DESCRIPTIVE_H_
#define LSBENCH_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsbench {

/// Streaming mean/variance/extremes via Welford's algorithm. O(1) memory,
/// numerically stable; mergeable (Chan's parallel variance formula).
class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);
  void Clear();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  double Variance() const;
  double StdDev() const;
  /// StdDev / mean; 0 when the mean is 0.
  double CoefficientOfVariation() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample using linear interpolation between order
/// statistics (type-7, the numpy/R default). `q` in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> values, double q);

/// Quantile over already-sorted data (no copy).
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Five-number summary plus Tukey outliers — the ingredients of the box
/// plots the paper proposes for specialization reporting (Fig. 1a).
struct BoxPlotSummary {
  uint64_t count = 0;
  double min = 0.0;        ///< Smallest observation (including outliers).
  double q1 = 0.0;         ///< First quartile.
  double median = 0.0;
  double q3 = 0.0;         ///< Third quartile.
  double max = 0.0;        ///< Largest observation (including outliers).
  double mean = 0.0;
  double whisker_low = 0.0;   ///< Smallest value >= q1 - 1.5*IQR.
  double whisker_high = 0.0;  ///< Largest value <= q3 + 1.5*IQR.
  std::vector<double> outliers;  ///< Values outside the whiskers, sorted.

  double Iqr() const { return q3 - q1; }
  std::string ToString() const;
};

/// Computes a BoxPlotSummary of `values`. Sorts a copy; empty input returns
/// a zeroed summary.
BoxPlotSummary ComputeBoxPlot(std::vector<double> values);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

}  // namespace lsbench

#endif  // LSBENCH_STATS_DESCRIPTIVE_H_
