#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <sstream>


namespace lsbench {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::Clear() { *this = StreamingStats(); }

double StreamingStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::StdDev() const { return std::sqrt(Variance()); }

double StreamingStats::CoefficientOfVariation() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return StdDev() / m;
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

std::string BoxPlotSummary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " q1=" << q1
     << " median=" << median << " q3=" << q3 << " max=" << max
     << " mean=" << mean << " outliers=" << outliers.size();
  return os.str();
}

BoxPlotSummary ComputeBoxPlot(std::vector<double> values) {
  BoxPlotSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = QuantileSorted(values, 0.25);
  s.median = QuantileSorted(values, 0.5);
  s.q3 = QuantileSorted(values, 0.75);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());

  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_low = s.max;   // Will shrink below.
  s.whisker_high = s.min;  // Will grow below.
  for (double v : values) {
    if (v < lo_fence || v > hi_fence) {
      s.outliers.push_back(v);
    } else {
      s.whisker_low = std::min(s.whisker_low, v);
      s.whisker_high = std::max(s.whisker_high, v);
    }
  }
  if (s.outliers.size() == s.count) {
    // Degenerate: everything flagged (cannot happen with 1.5*IQR and a
    // nonempty interquartile range, but guard zero-IQR pathologies).
    s.whisker_low = s.min;
    s.whisker_high = s.max;
    s.outliers.clear();
  }
  return s;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double cov = 0.0, vx = 0.0, vy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx == 0.0 || vy == 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace lsbench
