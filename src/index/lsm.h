#ifndef LSBENCH_INDEX_LSM_H_
#define LSBENCH_INDEX_LSM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/bloom.h"
#include "index/kv_index.h"
#include "learned/segment_model.h"

namespace lsbench {

/// LSM-tree tuning knobs.
struct LsmOptions {
  /// Memtable flush threshold (entries).
  size_t memtable_limit = 4096;
  /// Level capacity ratio: level i holds up to memtable_limit * ratio^(i+1)
  /// entries before compacting into level i+1.
  size_t level_size_ratio = 10;
  int bloom_bits_per_key = 10;
  /// Bourbon-style learned runs: fit an epsilon-bounded position model per
  /// immutable run at (re)build time and answer point reads by searching
  /// only the model window instead of binary-searching the whole run.
  bool learned_runs = false;
  uint32_t learned_epsilon = 16;
};

/// In-memory log-structured merge tree: the write-optimized traditional
/// baseline (the RocksDB-shaped engine behind the workloads the paper cites
/// for real-world dynamism). A sorted memtable absorbs writes; flushes
/// produce immutable sorted runs; leveled compaction keeps one run per
/// level with geometric capacities; Bloom filters skip runs on point reads;
/// deletes are tombstones dropped at the bottom level.
class LsmTree final : public KvIndex {
 public:
  explicit LsmTree(LsmOptions options = {});

  std::string name() const override {
    return options_.learned_runs ? "lsm_learned" : "lsm";
  }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return live_count_; }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  // --- introspection for tests / stats ---
  size_t memtable_size() const { return memtable_.size(); }
  size_t level_count() const { return levels_.size(); }
  size_t LevelEntries(size_t level) const;
  uint64_t compaction_count() const { return compaction_count_; }
  /// Total entries rewritten by flushes+compactions (write amplification
  /// numerator).
  uint64_t compaction_work() const { return compaction_work_; }
  uint64_t bloom_negative_count() const { return bloom_negatives_; }
  /// Total model segments across runs (0 unless learned_runs).
  size_t ModelSegments() const;

  /// Verifies run ordering, level capacities, tombstone-free bottom level,
  /// and live-count bookkeeping. Aborts on violation; for tests.
  void CheckInvariants() const;

 private:
  struct Entry {
    Key key;
    Value value;
    bool tombstone;
  };

  /// One immutable sorted run with its Bloom filter and (optionally) its
  /// learned position model.
  struct Run {
    std::vector<Entry> entries;  // Sorted by key, unique.
    std::unique_ptr<BloomFilter> bloom;
    std::unique_ptr<SegmentModel> model;  // Present iff learned_runs.
  };

  struct MemEntry {
    Value value;
    bool tombstone;
  };

  /// Looks `key` up through memtable + levels; nullopt if absent or
  /// tombstoned. Also reports whether the key is live (for size tracking).
  std::optional<Value> GetInternal(Key key) const;

  /// Flushes the memtable into level 0 and cascades compactions.
  void FlushMemtable();
  /// Merges `upper` entries into level `level` (creating it if needed),
  /// then cascades further if that level overflows.
  void MergeIntoLevel(std::vector<Entry> upper, size_t level);
  static std::unique_ptr<BloomFilter> BuildBloom(
      const std::vector<Entry>& entries, int bits_per_key);
  /// Rebuilds the run's auxiliary structures (Bloom filter + model).
  void FinalizeRun(Run* run);
  size_t LevelCapacity(size_t level) const;

  LsmOptions options_;
  std::map<Key, MemEntry> memtable_;
  std::vector<Run> levels_;  // levels_[0] is the newest/smallest.
  size_t live_count_ = 0;
  uint64_t compaction_count_ = 0;
  uint64_t compaction_work_ = 0;
  mutable uint64_t bloom_negatives_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_LSM_H_
