#ifndef LSBENCH_INDEX_SKIPLIST_H_
#define LSBENCH_INDEX_SKIPLIST_H_

#include <memory>
#include <string>
#include <vector>

#include "index/kv_index.h"
#include "util/random.h"

namespace lsbench {

/// Probabilistic skip list (p = 1/4, max height 16). The write-optimized
/// traditional baseline (the memtable structure of LSM engines): O(log n)
/// expected point ops without any rebalancing machinery.
class SkipList final : public KvIndex {
 public:
  explicit SkipList(uint64_t seed = 0xBEEF);
  ~SkipList() override;

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  std::string name() const override { return "skiplist"; }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return size_; }
  size_t MemoryBytes() const override;

  /// Verifies per-level ordering and that level 0 contains exactly size_
  /// entries. Aborts on violation; for tests.
  void CheckInvariants() const;

 private:
  static constexpr int kMaxHeight = 16;

  struct SkipNode {
    Key key;
    Value value;
    std::vector<SkipNode*> next;  // next[i] = successor at level i.
    SkipNode(Key k, Value v, int height)
        : key(k), value(v), next(height, nullptr) {}
  };

  int RandomHeight();
  /// Node with the greatest key < `key` at each level; fills `prev[0..h)`.
  void FindPrev(Key key, SkipNode** prev) const;

  SkipNode* head_;  // Sentinel, full height.
  int height_ = 1;
  size_t size_ = 0;
  size_t node_bytes_ = 0;
  Rng rng_;
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_SKIPLIST_H_
