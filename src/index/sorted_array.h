#ifndef LSBENCH_INDEX_SORTED_ARRAY_H_
#define LSBENCH_INDEX_SORTED_ARRAY_H_

#include <string>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// Dense sorted array with binary or interpolation search. The simplest
/// read-optimized baseline: O(log n) lookups, O(n) inserts. Interpolation
/// search is the non-learned ancestor of learned indexes — fast on
/// near-uniform data, degrading on skew — which makes it a useful contrast
/// point in specialization experiments.
class SortedArrayIndex final : public KvIndex {
 public:
  enum class SearchMode { kBinary, kInterpolation };

  explicit SortedArrayIndex(SearchMode mode = SearchMode::kBinary)
      : mode_(mode) {}

  std::string name() const override {
    return mode_ == SearchMode::kBinary ? "sorted_array"
                                        : "sorted_array_interp";
  }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return keys_.size(); }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  const std::vector<Key>& keys() const { return keys_; }
  const std::vector<Value>& values() const { return values_; }

 private:
  /// Index of the first key >= `key`.
  size_t LowerBound(Key key) const;
  size_t InterpolationLowerBound(Key key) const;

  SearchMode mode_;
  std::vector<Key> keys_;
  std::vector<Value> values_;
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_SORTED_ARRAY_H_
