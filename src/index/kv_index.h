#ifndef LSBENCH_INDEX_KV_INDEX_H_
#define LSBENCH_INDEX_KV_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "util/key_value.h"

namespace lsbench {

/// Ordered key-value index abstraction shared by the traditional (B+-tree,
/// sorted array, skip list) and learned (RMI, PGM, adaptive) data-access
/// substrates. The benchmark's SUTs compose implementations of this
/// interface; keeping it minimal is deliberate — the paper requires the
/// benchmark to avoid imposing architectural constraints on the SUT.
class KvIndex {
 public:
  virtual ~KvIndex() = default;

  /// Short implementation name, e.g. "btree", "rmi".
  virtual std::string name() const = 0;

  /// Point lookup.
  virtual std::optional<Value> Get(Key key) const = 0;

  /// Inserts or overwrites.
  virtual bool Insert(Key key, Value value) = 0;

  /// Removes the key; returns whether it existed.
  virtual bool Erase(Key key) = 0;

  /// Appends to `out` up to `limit` pairs with key >= `from`, ascending.
  /// Returns the number appended.
  virtual size_t Scan(Key from, size_t limit,
                      std::vector<KeyValue>* out) const = 0;

  /// Number of live entries.
  virtual size_t size() const = 0;

  /// Approximate resident memory in bytes (payload + structure overhead).
  virtual size_t MemoryBytes() const = 0;

  bool empty() const { return size() == 0; }

  /// Replaces the contents with `sorted_pairs` (strictly ascending keys).
  /// Implementations override this when a bulk path is cheaper than repeated
  /// Insert calls.
  virtual void BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
    for (const auto& [k, v] : sorted_pairs) Insert(k, v);
  }
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_KV_INDEX_H_
