#include "index/bloom.h"

#include <algorithm>
#include <cmath>

namespace lsbench {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  expected_keys = std::max<size_t>(expected_keys, 1);
  bits_per_key = std::max(bits_per_key, 1);
  num_bits_ = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((num_bits_ + 63) / 64, 0);
  // Optimal probe count k = ln(2) * bits/key, clamped to [1, 30].
  num_probes_ = std::clamp(
      static_cast<int>(std::round(0.693 * bits_per_key)), 1, 30);
}

uint64_t BloomFilter::Hash1(Key key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t BloomFilter::Hash2(Key key) {
  uint64_t z = key + 0x6a09e667f3bcc909ULL;
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

void BloomFilter::Add(Key key) {
  const uint64_t h1 = Hash1(key);
  const uint64_t h2 = Hash2(key) | 1;  // Odd so all positions are reachable.
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

bool BloomFilter::MayContain(Key key) const {
  const uint64_t h1 = Hash1(key);
  const uint64_t h2 = Hash2(key) | 1;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  size_t set = 0;
  for (uint64_t word : bits_) set += __builtin_popcountll(word);
  return static_cast<double>(set) / static_cast<double>(num_bits_);
}

}  // namespace lsbench
