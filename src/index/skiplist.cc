#include "index/skiplist.h"

#include "util/assert.h"

namespace lsbench {

SkipList::SkipList(uint64_t seed)
    : head_(new SkipNode(0, 0, kMaxHeight)), rng_(seed) {}

SkipList::~SkipList() {
  SkipNode* node = head_;
  while (node != nullptr) {
    SkipNode* next = node->next[0];
    delete node;
    node = next;
  }
}

int SkipList::RandomHeight() {
  int h = 1;
  while (h < kMaxHeight && rng_.NextBounded(4) == 0) ++h;
  return h;
}

void SkipList::FindPrev(Key key, SkipNode** prev) const {
  SkipNode* node = head_;
  for (int level = height_ - 1; level >= 0; --level) {
    while (node->next[level] != nullptr && node->next[level]->key < key) {
      node = node->next[level];
    }
    prev[level] = node;
  }
  for (int level = height_; level < kMaxHeight; ++level) prev[level] = head_;
}

std::optional<Value> SkipList::Get(Key key) const {
  SkipNode* prev[kMaxHeight];
  FindPrev(key, prev);
  const SkipNode* candidate = prev[0]->next[0];
  if (candidate != nullptr && candidate->key == key) return candidate->value;
  return std::nullopt;
}

bool SkipList::Insert(Key key, Value value) {
  SkipNode* prev[kMaxHeight];
  FindPrev(key, prev);
  SkipNode* candidate = prev[0]->next[0];
  if (candidate != nullptr && candidate->key == key) {
    candidate->value = value;
    return false;
  }
  const int h = RandomHeight();
  auto* node = new SkipNode(key, value, h);
  node_bytes_ += sizeof(SkipNode) + h * sizeof(SkipNode*);
  if (h > height_) height_ = h;
  for (int level = 0; level < h; ++level) {
    node->next[level] = prev[level]->next[level];
    prev[level]->next[level] = node;
  }
  ++size_;
  return true;
}

bool SkipList::Erase(Key key) {
  SkipNode* prev[kMaxHeight];
  FindPrev(key, prev);
  SkipNode* target = prev[0]->next[0];
  if (target == nullptr || target->key != key) return false;
  for (size_t level = 0; level < target->next.size(); ++level) {
    if (prev[level]->next[level] == target) {
      prev[level]->next[level] = target->next[level];
    }
  }
  node_bytes_ -= sizeof(SkipNode) + target->next.size() * sizeof(SkipNode*);
  delete target;
  --size_;
  while (height_ > 1 && head_->next[height_ - 1] == nullptr) --height_;
  return true;
}

size_t SkipList::Scan(Key from, size_t limit,
                      std::vector<KeyValue>* out) const {
  SkipNode* prev[kMaxHeight];
  FindPrev(from, prev);
  const SkipNode* node = prev[0]->next[0];
  size_t appended = 0;
  while (node != nullptr && appended < limit) {
    out->emplace_back(node->key, node->value);
    node = node->next[0];
    ++appended;
  }
  return appended;
}

size_t SkipList::MemoryBytes() const {
  return sizeof(SkipNode) + kMaxHeight * sizeof(SkipNode*) + node_bytes_;
}

void SkipList::CheckInvariants() const {
  // Level 0 must be strictly ascending and contain exactly size_ nodes.
  size_t count = 0;
  const SkipNode* node = head_->next[0];
  Key last = 0;
  bool first = true;
  while (node != nullptr) {
    if (!first) LSBENCH_ASSERT(last < node->key);
    last = node->key;
    first = false;
    ++count;
    node = node->next[0];
  }
  LSBENCH_ASSERT(count == size_);
  // Every higher level must be a sorted sub-sequence of level 0.
  for (int level = 1; level < height_; ++level) {
    const SkipNode* n = head_->next[level];
    bool lvl_first = true;
    Key lvl_last = 0;
    while (n != nullptr) {
      if (!lvl_first) LSBENCH_ASSERT(lvl_last < n->key);
      LSBENCH_ASSERT(static_cast<int>(n->next.size()) > level);
      lvl_last = n->key;
      lvl_first = false;
      n = n->next[level];
    }
  }
}

}  // namespace lsbench
