#ifndef LSBENCH_INDEX_BTREE_H_
#define LSBENCH_INDEX_BTREE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// In-memory B+-tree: the "traditional, manually engineered" index baseline
/// every learned SUT is compared against. Keys live only in leaves; leaves
/// are chained for range scans; internal nodes hold separator keys. Supports
/// point ops, scans, bottom-up bulk loading, and full delete rebalancing
/// (borrow from siblings, merge, root collapse).
class BTree final : public KvIndex {
 public:
  /// `fanout` is the max number of keys per node (leaf and internal alike).
  /// Must be >= 4; defaults to a cache-friendly 64.
  explicit BTree(int fanout = 64);
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  std::string name() const override { return "btree"; }
  std::optional<Value> Get(Key key) const override;
  bool Insert(Key key, Value value) override;
  bool Erase(Key key) override;
  size_t Scan(Key from, size_t limit,
              std::vector<KeyValue>* out) const override;
  size_t size() const override { return size_; }
  size_t MemoryBytes() const override;
  void BulkLoad(const std::vector<KeyValue>& sorted_pairs) override;

  /// Tree height (1 = root is a leaf). 0 when empty.
  int Height() const;
  size_t LeafCount() const;
  size_t InternalCount() const;

  /// Verifies every structural invariant (sorted keys, separator
  /// correctness, occupancy bounds, leaf-chain consistency, size). Intended
  /// for tests; aborts via LSBENCH_ASSERT on violation.
  void CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  /// Result of an insert that split a node: the new right sibling plus the
  /// separator key (smallest key in the right sibling).
  struct SplitResult {
    Key separator;
    Node* right;
  };

  const LeafNode* FindLeaf(Key key) const;
  bool InsertRec(Node* node, Key key, Value value,
                 std::optional<SplitResult>* split);
  bool EraseRec(Node* node, Key key, bool* underflow);
  void FixChildUnderflow(InternalNode* parent, int child_idx);
  static void DeleteSubtree(Node* node);
  void CheckNode(const Node* node, Key lower, bool has_lower, Key upper,
                 bool has_upper, int depth, int leaf_depth,
                 size_t* entry_count,
                 std::vector<const LeafNode*>* leaves_in_order) const;

  int fanout_;
  int min_keys_;  ///< fanout_ / 2 — underflow threshold for non-root nodes.
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_BTREE_H_
