#include "index/sorted_array.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

size_t SortedArrayIndex::LowerBound(Key key) const {
  if (mode_ == SearchMode::kInterpolation) {
    return InterpolationLowerBound(key);
  }
  return std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin();
}

size_t SortedArrayIndex::InterpolationLowerBound(Key key) const {
  size_t lo = 0;
  size_t hi = keys_.size();
  // Interpolate while the window is large; fall back to binary refinement.
  while (hi - lo > 64) {
    const Key klo = keys_[lo];
    const Key khi = keys_[hi - 1];
    if (key <= klo) return lo;
    if (key > khi) return hi;
    const double frac = static_cast<double>(key - klo) /
                        static_cast<double>(khi - klo);
    size_t probe = lo + static_cast<size_t>(
                            frac * static_cast<double>(hi - 1 - lo));
    probe = std::clamp(probe, lo, hi - 1);
    if (keys_[probe] < key) {
      lo = probe + 1;  // Answer is right of the probe.
    } else {
      hi = probe;  // keys_[probe] >= key: answer is at or left of it.
    }
  }
  return std::lower_bound(keys_.begin() + lo, keys_.begin() + hi, key) -
         keys_.begin();
}

std::optional<Value> SortedArrayIndex::Get(Key key) const {
  const size_t pos = LowerBound(key);
  if (pos >= keys_.size() || keys_[pos] != key) return std::nullopt;
  return values_[pos];
}

bool SortedArrayIndex::Insert(Key key, Value value) {
  const size_t pos = LowerBound(key);
  if (pos < keys_.size() && keys_[pos] == key) {
    values_[pos] = value;
    return false;
  }
  keys_.insert(keys_.begin() + pos, key);
  values_.insert(values_.begin() + pos, value);
  return true;
}

bool SortedArrayIndex::Erase(Key key) {
  const size_t pos = LowerBound(key);
  if (pos >= keys_.size() || keys_[pos] != key) return false;
  keys_.erase(keys_.begin() + pos);
  values_.erase(values_.begin() + pos);
  return true;
}

size_t SortedArrayIndex::Scan(Key from, size_t limit,
                              std::vector<KeyValue>* out) const {
  size_t pos = LowerBound(from);
  size_t appended = 0;
  for (; pos < keys_.size() && appended < limit; ++pos, ++appended) {
    out->emplace_back(keys_[pos], values_[pos]);
  }
  return appended;
}

size_t SortedArrayIndex::MemoryBytes() const {
  return keys_.capacity() * sizeof(Key) + values_.capacity() * sizeof(Value);
}

void SortedArrayIndex::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  keys_.clear();
  values_.clear();
  keys_.reserve(sorted_pairs.size());
  values_.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    LSBENCH_ASSERT_MSG(keys_.empty() || keys_.back() < k,
                       "BulkLoad requires strictly ascending keys");
    keys_.push_back(k);
    values_.push_back(v);
  }
}

}  // namespace lsbench
