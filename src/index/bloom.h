#ifndef LSBENCH_INDEX_BLOOM_H_
#define LSBENCH_INDEX_BLOOM_H_

#include <cstdint>
#include <vector>

#include "index/kv_index.h"

namespace lsbench {

/// Standard Bloom filter over 64-bit keys with double hashing (Kirsch &
/// Mitzenmacher): k probe positions derived from two independent 64-bit
/// hashes. Used by the LSM tree to skip runs that cannot contain a key.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` at `bits_per_key` (default 10
  /// bits/key ~= 1% false positives with 7 probes).
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  void Add(Key key);

  /// False means definitely absent; true means possibly present.
  bool MayContain(Key key) const;

  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }
  int num_probes() const { return num_probes_; }
  size_t num_bits() const { return num_bits_; }

  /// Measured fraction of set bits (fill ratio); useful in tests.
  double FillRatio() const;

 private:
  static uint64_t Hash1(Key key);
  static uint64_t Hash2(Key key);

  size_t num_bits_;
  int num_probes_;
  std::vector<uint64_t> bits_;
};

}  // namespace lsbench

#endif  // LSBENCH_INDEX_BLOOM_H_
