#include "index/lsm.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

LsmTree::LsmTree(LsmOptions options) : options_(options) {
  LSBENCH_ASSERT(options_.memtable_limit >= 16);
  LSBENCH_ASSERT(options_.level_size_ratio >= 2);
}

size_t LsmTree::LevelCapacity(size_t level) const {
  size_t capacity = options_.memtable_limit;
  for (size_t i = 0; i <= level; ++i) {
    capacity *= options_.level_size_ratio;
  }
  return capacity;
}

size_t LsmTree::LevelEntries(size_t level) const {
  LSBENCH_ASSERT(level < levels_.size());
  return levels_[level].entries.size();
}

std::unique_ptr<BloomFilter> LsmTree::BuildBloom(
    const std::vector<Entry>& entries, int bits_per_key) {
  auto bloom = std::make_unique<BloomFilter>(entries.size(), bits_per_key);
  for (const Entry& e : entries) bloom->Add(e.key);
  return bloom;
}

void LsmTree::FinalizeRun(Run* run) {
  run->bloom = BuildBloom(run->entries, options_.bloom_bits_per_key);
  if (options_.learned_runs && !run->entries.empty()) {
    // Fit the model over the run's keys (gathered once; runs are immutable
    // until their next compaction).
    std::vector<Key> keys;
    keys.reserve(run->entries.size());
    for (const Entry& e : run->entries) keys.push_back(e.key);
    run->model = std::make_unique<SegmentModel>();
    run->model->Build(keys.data(), keys.size(), options_.learned_epsilon);
  } else {
    run->model.reset();
  }
}

size_t LsmTree::ModelSegments() const {
  size_t segments = 0;
  for (const Run& run : levels_) {
    if (run.model != nullptr) segments += run.model->segment_count();
  }
  return segments;
}

std::optional<Value> LsmTree::GetInternal(Key key) const {
  const auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second.tombstone) return std::nullopt;
    return mit->second.value;
  }
  for (const Run& run : levels_) {
    if (run.entries.empty()) continue;
    if (run.bloom != nullptr && !run.bloom->MayContain(key)) {
      ++bloom_negatives_;
      continue;
    }
    auto begin = run.entries.begin();
    auto end = run.entries.end();
    if (run.model != nullptr) {
      const auto [lo, hi] = run.model->WindowFor(key);
      begin = run.entries.begin() + lo;
      end = run.entries.begin() + hi;
    }
    const auto it = std::lower_bound(
        begin, end, key, [](const Entry& e, Key k) { return e.key < k; });
    if (it != end && it->key == key) {
      if (it->tombstone) return std::nullopt;
      return it->value;
    }
  }
  return std::nullopt;
}

std::optional<Value> LsmTree::Get(Key key) const { return GetInternal(key); }

bool LsmTree::Insert(Key key, Value value) {
  // Exact size() bookkeeping requires an existence probe per write; a
  // production engine would keep an approximate count instead, but the
  // benchmark contract (KvIndex::size) is exact.
  const bool existed = GetInternal(key).has_value();
  memtable_[key] = MemEntry{value, false};
  if (!existed) ++live_count_;
  if (memtable_.size() >= options_.memtable_limit) FlushMemtable();
  return !existed;
}

bool LsmTree::Erase(Key key) {
  if (!GetInternal(key).has_value()) return false;
  memtable_[key] = MemEntry{0, true};
  --live_count_;
  if (memtable_.size() >= options_.memtable_limit) FlushMemtable();
  return true;
}

void LsmTree::FlushMemtable() {
  std::vector<Entry> entries;
  entries.reserve(memtable_.size());
  for (const auto& [key, me] : memtable_) {
    entries.push_back(Entry{key, me.value, me.tombstone});
  }
  memtable_.clear();
  MergeIntoLevel(std::move(entries), 0);
}

void LsmTree::MergeIntoLevel(std::vector<Entry> upper, size_t level) {
  while (true) {
    if (level >= levels_.size()) levels_.emplace_back();
    bool deeper_data = false;
    for (size_t l = level + 1; l < levels_.size(); ++l) {
      if (!levels_[l].entries.empty()) {
        deeper_data = true;
        break;
      }
    }
    const std::vector<Entry>& older = levels_[level].entries;
    std::vector<Entry> merged;
    merged.reserve(upper.size() + older.size());
    size_t i = 0, j = 0;
    const bool drop_tombstones = !deeper_data;
    while (i < upper.size() || j < older.size()) {
      const Entry* pick;
      if (j >= older.size() ||
          (i < upper.size() && upper[i].key <= older[j].key)) {
        pick = &upper[i];
        if (j < older.size() && older[j].key == upper[i].key) {
          ++j;  // Shadowed by the newer entry.
        }
        ++i;
      } else {
        pick = &older[j];
        ++j;
      }
      if (drop_tombstones && pick->tombstone) continue;
      merged.push_back(*pick);
    }
    ++compaction_count_;
    compaction_work_ += merged.size();

    if (merged.size() <= LevelCapacity(level)) {
      levels_[level].entries = std::move(merged);
      FinalizeRun(&levels_[level]);
      return;
    }
    // Overflow: this level empties and everything moves down one level.
    levels_[level].entries.clear();
    levels_[level].bloom.reset();
    levels_[level].model.reset();
    upper = std::move(merged);
    ++level;
  }
}

size_t LsmTree::Scan(Key from, size_t limit,
                     std::vector<KeyValue>* out) const {
  // K-way merge over the memtable and every level, newest source wins.
  auto mem_it = memtable_.lower_bound(from);
  std::vector<size_t> cursors(levels_.size());
  for (size_t l = 0; l < levels_.size(); ++l) {
    const auto& entries = levels_[l].entries;
    cursors[l] = std::lower_bound(entries.begin(), entries.end(), from,
                                  [](const Entry& e, Key k) {
                                    return e.key < k;
                                  }) -
                 entries.begin();
  }

  size_t appended = 0;
  while (appended < limit) {
    // Find the smallest next key across all sources.
    bool have = false;
    Key next_key = 0;
    if (mem_it != memtable_.end()) {
      next_key = mem_it->first;
      have = true;
    }
    for (size_t l = 0; l < levels_.size(); ++l) {
      if (cursors[l] >= levels_[l].entries.size()) continue;
      const Key k = levels_[l].entries[cursors[l]].key;
      if (!have || k < next_key) {
        next_key = k;
        have = true;
      }
    }
    if (!have) break;

    // Resolve the newest version of next_key and advance all sources past it.
    bool resolved = false;
    bool tombstone = false;
    Value value = 0;
    if (mem_it != memtable_.end() && mem_it->first == next_key) {
      resolved = true;
      tombstone = mem_it->second.tombstone;
      value = mem_it->second.value;
      ++mem_it;
    }
    for (size_t l = 0; l < levels_.size(); ++l) {
      if (cursors[l] >= levels_[l].entries.size()) continue;
      const Entry& e = levels_[l].entries[cursors[l]];
      if (e.key != next_key) continue;
      if (!resolved) {
        resolved = true;
        tombstone = e.tombstone;
        value = e.value;
      }
      ++cursors[l];
    }
    if (resolved && !tombstone) {
      out->emplace_back(next_key, value);
      ++appended;
    }
  }
  return appended;
}

size_t LsmTree::MemoryBytes() const {
  size_t bytes = memtable_.size() *
                 (sizeof(Key) + sizeof(MemEntry) + 4 * sizeof(void*));
  for (const Run& run : levels_) {
    bytes += run.entries.size() * sizeof(Entry);
    if (run.bloom != nullptr) bytes += run.bloom->MemoryBytes();
    if (run.model != nullptr) bytes += run.model->MemoryBytes();
  }
  return bytes;
}

void LsmTree::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  memtable_.clear();
  levels_.clear();
  live_count_ = sorted_pairs.size();
  compaction_count_ = 0;
  compaction_work_ = 0;
  bloom_negatives_ = 0;
  if (sorted_pairs.empty()) return;
  std::vector<Entry> entries;
  entries.reserve(sorted_pairs.size());
  for (const auto& [k, v] : sorted_pairs) {
    LSBENCH_ASSERT_MSG(entries.empty() || entries.back().key < k,
                       "BulkLoad requires strictly ascending keys");
    entries.push_back(Entry{k, v, false});
  }
  // Place the whole image directly at the shallowest level that fits.
  size_t level = 0;
  while (LevelCapacity(level) < entries.size()) ++level;
  levels_.resize(level + 1);
  levels_[level].entries = std::move(entries);
  FinalizeRun(&levels_[level]);
}

void LsmTree::CheckInvariants() const {
  for (size_t l = 0; l < levels_.size(); ++l) {
    const auto& entries = levels_[l].entries;
    LSBENCH_ASSERT_MSG(entries.size() <= LevelCapacity(l),
                       "level within capacity");
    for (size_t i = 1; i < entries.size(); ++i) {
      LSBENCH_ASSERT(entries[i - 1].key < entries[i].key);
    }
  }
  // Full scan recovers exactly live_count_ live entries, sorted.
  std::vector<KeyValue> all;
  Scan(0, live_count_ + memtable_.size() + 16, &all);
  LSBENCH_ASSERT_MSG(all.size() == live_count_, "live count bookkeeping");
  for (size_t i = 1; i < all.size(); ++i) {
    LSBENCH_ASSERT(all[i - 1].first < all[i].first);
  }
}

}  // namespace lsbench
