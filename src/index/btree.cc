#include "index/btree.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

struct BTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  bool is_leaf;
};

struct BTree::LeafNode : BTree::Node {
  LeafNode() : Node(true) {}
  std::vector<Key> keys;
  std::vector<Value> values;
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;
};

struct BTree::InternalNode : BTree::Node {
  InternalNode() : Node(false) {}
  std::vector<Key> keys;          // Separators; keys[i] <= all of children[i+1].
  std::vector<Node*> children;    // children.size() == keys.size() + 1.
};

// The nested node types are private, so downcast helpers live as local
// macros used only inside member functions.
#define LEAF(n) static_cast<LeafNode*>(n)
#define INTERNAL(n) static_cast<InternalNode*>(n)
#define CLEAF(n) static_cast<const LeafNode*>(n)
#define CINTERNAL(n) static_cast<const InternalNode*>(n)

BTree::BTree(int fanout) : fanout_(fanout), min_keys_(fanout / 2) {
  LSBENCH_ASSERT(fanout_ >= 4);
}

BTree::~BTree() { DeleteSubtree(root_); }

void BTree::DeleteSubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (Node* child : INTERNAL(node)->children) DeleteSubtree(child);
    delete INTERNAL(node);
  } else {
    delete LEAF(node);
  }
}

const BTree::LeafNode* BTree::FindLeaf(Key key) const {
  const Node* node = root_;
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    const InternalNode* in = CINTERNAL(node);
    const size_t idx =
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin();
    node = in->children[idx];
  }
  return CLEAF(node);
}

std::optional<Value> BTree::Get(Key key) const {
  const LeafNode* leaf = FindLeaf(key);
  if (leaf == nullptr) return std::nullopt;
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return std::nullopt;
  return leaf->values[it - leaf->keys.begin()];
}

bool BTree::Insert(Key key, Value value) {
  if (root_ == nullptr) {
    auto* leaf = new LeafNode();
    leaf->keys.push_back(key);
    leaf->values.push_back(value);
    root_ = leaf;
    leaf_count_ = 1;
    size_ = 1;
    return true;
  }
  std::optional<SplitResult> split;
  const bool inserted = InsertRec(root_, key, value, &split);
  if (split.has_value()) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(root_);
    new_root->children.push_back(split->right);
    root_ = new_root;
    ++internal_count_;
  }
  if (inserted) ++size_;
  return inserted;
}

bool BTree::InsertRec(Node* node, Key key, Value value,
                      std::optional<SplitResult>* split) {
  split->reset();
  if (node->is_leaf) {
    LeafNode* leaf = LEAF(node);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    const size_t pos = it - leaf->keys.begin();
    if (it != leaf->keys.end() && *it == key) {
      leaf->values[pos] = value;  // Overwrite.
      return false;
    }
    leaf->keys.insert(it, key);
    leaf->values.insert(leaf->values.begin() + pos, value);
    if (static_cast<int>(leaf->keys.size()) > fanout_) {
      const size_t mid = leaf->keys.size() / 2;
      auto* right = new LeafNode();
      right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
      right->values.assign(leaf->values.begin() + mid, leaf->values.end());
      leaf->keys.resize(mid);
      leaf->values.resize(mid);
      right->next = leaf->next;
      right->prev = leaf;
      if (leaf->next != nullptr) leaf->next->prev = right;
      leaf->next = right;
      ++leaf_count_;
      *split = SplitResult{right->keys.front(), right};
    }
    return true;
  }

  InternalNode* in = INTERNAL(node);
  const size_t idx =
      std::upper_bound(in->keys.begin(), in->keys.end(), key) -
      in->keys.begin();
  std::optional<SplitResult> child_split;
  const bool inserted = InsertRec(in->children[idx], key, value, &child_split);
  if (child_split.has_value()) {
    in->keys.insert(in->keys.begin() + idx, child_split->separator);
    in->children.insert(in->children.begin() + idx + 1, child_split->right);
    if (static_cast<int>(in->keys.size()) > fanout_) {
      const size_t mid = in->keys.size() / 2;
      const Key separator = in->keys[mid];
      auto* right = new InternalNode();
      right->keys.assign(in->keys.begin() + mid + 1, in->keys.end());
      right->children.assign(in->children.begin() + mid + 1,
                             in->children.end());
      in->keys.resize(mid);
      in->children.resize(mid + 1);
      ++internal_count_;
      *split = SplitResult{separator, right};
    }
  }
  return inserted;
}

bool BTree::Erase(Key key) {
  if (root_ == nullptr) return false;
  bool underflow = false;
  const bool erased = EraseRec(root_, key, &underflow);
  if (!erased) return false;
  --size_;
  // Collapse the root when it loses all separators or all entries.
  if (!root_->is_leaf && INTERNAL(root_)->keys.empty()) {
    Node* only_child = INTERNAL(root_)->children.front();
    delete INTERNAL(root_);
    --internal_count_;
    root_ = only_child;
  } else if (root_->is_leaf && LEAF(root_)->keys.empty()) {
    delete LEAF(root_);
    --leaf_count_;
    root_ = nullptr;
  }
  return true;
}

bool BTree::EraseRec(Node* node, Key key, bool* underflow) {
  *underflow = false;
  if (node->is_leaf) {
    LeafNode* leaf = LEAF(node);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return false;
    const size_t pos = it - leaf->keys.begin();
    leaf->keys.erase(it);
    leaf->values.erase(leaf->values.begin() + pos);
    *underflow = static_cast<int>(leaf->keys.size()) < min_keys_;
    return true;
  }

  InternalNode* in = INTERNAL(node);
  const size_t idx =
      std::upper_bound(in->keys.begin(), in->keys.end(), key) -
      in->keys.begin();
  bool child_underflow = false;
  const bool erased = EraseRec(in->children[idx], key, &child_underflow);
  if (erased && child_underflow) {
    FixChildUnderflow(in, static_cast<int>(idx));
  }
  *underflow = static_cast<int>(in->keys.size()) < min_keys_;
  return erased;
}

void BTree::FixChildUnderflow(InternalNode* parent, int child_idx) {
  Node* child = parent->children[child_idx];
  Node* left = child_idx > 0 ? parent->children[child_idx - 1] : nullptr;
  Node* right = child_idx + 1 < static_cast<int>(parent->children.size())
                    ? parent->children[child_idx + 1]
                    : nullptr;

  if (child->is_leaf) {
    LeafNode* c = LEAF(child);
    // Borrow from the left sibling.
    if (left != nullptr &&
        static_cast<int>(LEAF(left)->keys.size()) > min_keys_) {
      LeafNode* l = LEAF(left);
      c->keys.insert(c->keys.begin(), l->keys.back());
      c->values.insert(c->values.begin(), l->values.back());
      l->keys.pop_back();
      l->values.pop_back();
      parent->keys[child_idx - 1] = c->keys.front();
      return;
    }
    // Borrow from the right sibling.
    if (right != nullptr &&
        static_cast<int>(LEAF(right)->keys.size()) > min_keys_) {
      LeafNode* r = LEAF(right);
      c->keys.push_back(r->keys.front());
      c->values.push_back(r->values.front());
      r->keys.erase(r->keys.begin());
      r->values.erase(r->values.begin());
      parent->keys[child_idx] = r->keys.front();
      return;
    }
    // Merge with a sibling (into the leftmost of the pair).
    LeafNode* dst;
    LeafNode* src;
    int separator_idx;
    if (left != nullptr) {
      dst = LEAF(left);
      src = c;
      separator_idx = child_idx - 1;
    } else {
      LSBENCH_ASSERT(right != nullptr);
      dst = c;
      src = LEAF(right);
      separator_idx = child_idx;
    }
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->values.insert(dst->values.end(), src->values.begin(),
                       src->values.end());
    dst->next = src->next;
    if (src->next != nullptr) src->next->prev = dst;
    parent->keys.erase(parent->keys.begin() + separator_idx);
    parent->children.erase(parent->children.begin() + separator_idx + 1);
    delete src;
    --leaf_count_;
    return;
  }

  InternalNode* c = INTERNAL(child);
  // Borrow from the left sibling: rotate through the parent separator.
  if (left != nullptr &&
      static_cast<int>(INTERNAL(left)->keys.size()) > min_keys_) {
    InternalNode* l = INTERNAL(left);
    c->keys.insert(c->keys.begin(), parent->keys[child_idx - 1]);
    parent->keys[child_idx - 1] = l->keys.back();
    l->keys.pop_back();
    c->children.insert(c->children.begin(), l->children.back());
    l->children.pop_back();
    return;
  }
  // Borrow from the right sibling.
  if (right != nullptr &&
      static_cast<int>(INTERNAL(right)->keys.size()) > min_keys_) {
    InternalNode* r = INTERNAL(right);
    c->keys.push_back(parent->keys[child_idx]);
    parent->keys[child_idx] = r->keys.front();
    r->keys.erase(r->keys.begin());
    c->children.push_back(r->children.front());
    r->children.erase(r->children.begin());
    return;
  }
  // Merge with a sibling.
  InternalNode* dst;
  InternalNode* src;
  int separator_idx;
  if (left != nullptr) {
    dst = INTERNAL(left);
    src = c;
    separator_idx = child_idx - 1;
  } else {
    LSBENCH_ASSERT(right != nullptr);
    dst = c;
    src = INTERNAL(right);
    separator_idx = child_idx;
  }
  dst->keys.push_back(parent->keys[separator_idx]);
  dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
  dst->children.insert(dst->children.end(), src->children.begin(),
                       src->children.end());
  parent->keys.erase(parent->keys.begin() + separator_idx);
  parent->children.erase(parent->children.begin() + separator_idx + 1);
  delete src;
  --internal_count_;
}

size_t BTree::Scan(Key from, size_t limit, std::vector<KeyValue>* out) const {
  const LeafNode* leaf = FindLeaf(from);
  if (leaf == nullptr) return 0;
  size_t appended = 0;
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), from) -
               leaf->keys.begin();
  while (leaf != nullptr && appended < limit) {
    for (; pos < leaf->keys.size() && appended < limit; ++pos) {
      out->emplace_back(leaf->keys[pos], leaf->values[pos]);
      ++appended;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return appended;
}

size_t BTree::MemoryBytes() const {
  // Estimate: per-entry payload plus per-node fixed overhead plus internal
  // separator/child arrays at typical ~75% occupancy.
  const size_t entry_bytes = size_ * (sizeof(Key) + sizeof(Value));
  const size_t leaf_overhead = leaf_count_ * (sizeof(LeafNode) + 32);
  const size_t internal_bytes =
      internal_count_ *
      (sizeof(InternalNode) +
       static_cast<size_t>(fanout_) * (sizeof(Key) + sizeof(Node*)));
  return entry_bytes + leaf_overhead + internal_bytes;
}

void BTree::BulkLoad(const std::vector<KeyValue>& sorted_pairs) {
  DeleteSubtree(root_);
  root_ = nullptr;
  size_ = 0;
  leaf_count_ = 0;
  internal_count_ = 0;
  if (sorted_pairs.empty()) return;
  for (size_t i = 1; i < sorted_pairs.size(); ++i) {
    LSBENCH_ASSERT_MSG(sorted_pairs[i - 1].first < sorted_pairs[i].first,
                       "BulkLoad requires strictly ascending keys");
  }

  // Build the leaf level, targeting ~90% occupancy so subsequent inserts do
  // not split immediately; rebalance the final two leaves so none is below
  // min_keys_.
  const size_t target = std::max<size_t>(
      min_keys_, static_cast<size_t>(static_cast<double>(fanout_) * 0.9));
  std::vector<LeafNode*> leaves;
  size_t i = 0;
  while (i < sorted_pairs.size()) {
    size_t take = std::min(target, sorted_pairs.size() - i);
    const size_t remaining_after = sorted_pairs.size() - i - take;
    if (remaining_after > 0 && remaining_after < static_cast<size_t>(min_keys_)) {
      // Shift entries so the final leaf meets the occupancy minimum.
      take -= (min_keys_ - remaining_after);
    }
    auto* leaf = new LeafNode();
    leaf->keys.reserve(take);
    leaf->values.reserve(take);
    for (size_t j = 0; j < take; ++j) {
      leaf->keys.push_back(sorted_pairs[i + j].first);
      leaf->values.push_back(sorted_pairs[i + j].second);
    }
    if (!leaves.empty()) {
      leaves.back()->next = leaf;
      leaf->prev = leaves.back();
    }
    leaves.push_back(leaf);
    i += take;
  }
  leaf_count_ = leaves.size();
  size_ = sorted_pairs.size();

  // Build internal levels bottom-up. Track (subtree-min-key, node).
  std::vector<std::pair<Key, Node*>> level;
  level.reserve(leaves.size());
  for (LeafNode* leaf : leaves) level.emplace_back(leaf->keys.front(), leaf);

  const size_t max_children = static_cast<size_t>(fanout_) + 1;
  const size_t min_children = static_cast<size_t>(min_keys_) + 1;
  while (level.size() > 1) {
    std::vector<std::pair<Key, Node*>> next_level;
    size_t j = 0;
    while (j < level.size()) {
      size_t take = std::min(max_children, level.size() - j);
      const size_t remaining_after = level.size() - j - take;
      if (remaining_after > 0 && remaining_after < min_children) {
        take -= (min_children - remaining_after);
      }
      auto* node = new InternalNode();
      node->children.reserve(take);
      node->keys.reserve(take - 1);
      for (size_t k = 0; k < take; ++k) {
        node->children.push_back(level[j + k].second);
        if (k > 0) node->keys.push_back(level[j + k].first);
      }
      ++internal_count_;
      next_level.emplace_back(level[j].first, node);
      j += take;
    }
    level = std::move(next_level);
  }
  root_ = level.front().second;
}

int BTree::Height() const {
  int h = 0;
  const Node* node = root_;
  while (node != nullptr) {
    ++h;
    if (node->is_leaf) break;
    node = CINTERNAL(node)->children.front();
  }
  return h;
}

size_t BTree::LeafCount() const { return leaf_count_; }
size_t BTree::InternalCount() const { return internal_count_; }

void BTree::CheckNode(const Node* node, Key lower, bool has_lower, Key upper,
                      bool has_upper, int depth, int leaf_depth,
                      size_t* entry_count,
                      std::vector<const LeafNode*>* leaves_in_order) const {
  if (node->is_leaf) {
    const LeafNode* leaf = CLEAF(node);
    LSBENCH_ASSERT_MSG(depth == leaf_depth, "all leaves at equal depth");
    LSBENCH_ASSERT(leaf->keys.size() == leaf->values.size());
    if (node != root_) {
      LSBENCH_ASSERT_MSG(
          static_cast<int>(leaf->keys.size()) >= min_keys_,
          "leaf occupancy");
    }
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (i > 0) LSBENCH_ASSERT(leaf->keys[i - 1] < leaf->keys[i]);
      if (has_lower) LSBENCH_ASSERT(leaf->keys[i] >= lower);
      if (has_upper) LSBENCH_ASSERT(leaf->keys[i] < upper);
    }
    *entry_count += leaf->keys.size();
    leaves_in_order->push_back(leaf);
    return;
  }
  const InternalNode* in = CINTERNAL(node);
  LSBENCH_ASSERT(in->children.size() == in->keys.size() + 1);
  if (node != root_) {
    LSBENCH_ASSERT_MSG(static_cast<int>(in->keys.size()) >= min_keys_,
                       "internal occupancy");
  } else {
    LSBENCH_ASSERT_MSG(!in->keys.empty(), "internal root has a separator");
  }
  for (size_t i = 0; i < in->keys.size(); ++i) {
    if (i > 0) LSBENCH_ASSERT(in->keys[i - 1] < in->keys[i]);
    if (has_lower) LSBENCH_ASSERT(in->keys[i] >= lower);
    if (has_upper) LSBENCH_ASSERT(in->keys[i] < upper);
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    const bool child_has_lower = i > 0 || has_lower;
    const Key child_lower = i > 0 ? in->keys[i - 1] : lower;
    const bool child_has_upper = i < in->keys.size() || has_upper;
    const Key child_upper = i < in->keys.size() ? in->keys[i] : upper;
    CheckNode(in->children[i], child_lower, child_has_lower, child_upper,
              child_has_upper, depth + 1, leaf_depth, entry_count,
              leaves_in_order);
  }
}

void BTree::CheckInvariants() const {
  if (root_ == nullptr) {
    LSBENCH_ASSERT(size_ == 0);
    LSBENCH_ASSERT(leaf_count_ == 0);
    LSBENCH_ASSERT(internal_count_ == 0);
    return;
  }
  const int leaf_depth = Height() - 1;
  size_t entry_count = 0;
  std::vector<const LeafNode*> leaves;
  CheckNode(root_, 0, false, 0, false, 0, leaf_depth, &entry_count, &leaves);
  LSBENCH_ASSERT_MSG(entry_count == size_, "size bookkeeping");
  LSBENCH_ASSERT_MSG(leaves.size() == leaf_count_, "leaf count bookkeeping");
  // The leaf chain must visit exactly the leaves, in order.
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (i > 0) {
      LSBENCH_ASSERT(leaves[i - 1]->next == leaves[i]);
      LSBENCH_ASSERT(leaves[i]->prev == leaves[i - 1]);
      LSBENCH_ASSERT(leaves[i - 1]->keys.back() < leaves[i]->keys.front());
    }
  }
  LSBENCH_ASSERT(leaves.front()->prev == nullptr);
  LSBENCH_ASSERT(leaves.back()->next == nullptr);
}

#undef LEAF
#undef INTERNAL
#undef CLEAF
#undef CINTERNAL

}  // namespace lsbench
