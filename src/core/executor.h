#ifndef LSBENCH_CORE_EXECUTOR_H_
#define LSBENCH_CORE_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "core/resilience.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sut/sut.h"
#include "util/annotate.h"
#include "util/clock.h"
#include "workload/operation.h"

namespace lsbench {

/// Advances one worker's notion of time to an absolute instant: jumps the
/// VirtualClock in simulation mode, hybrid sleep-then-spins on the real
/// clock otherwise (sub-microsecond pacing without burning a core — see
/// SleepSpinUntil).
class Pacer {
 public:
  /// `clock` must be non-null; `virtual_clock`, when non-null, must be the
  /// same object as `clock` (simulation mode).
  Pacer(const Clock* clock, VirtualClock* virtual_clock)
      : clock_(clock), virtual_clock_(virtual_clock) {}

  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void PaceUntil(int64_t target_abs_nanos) const {
    if (virtual_clock_ != nullptr) {
      if (virtual_clock_->NowNanos() < target_abs_nanos) {
        virtual_clock_->SetNanos(target_abs_nanos);
      }
      return;
    }
    SleepSpinUntil(*clock_, target_abs_nanos);
  }

  const Clock* clock() const { return clock_; }
  VirtualClock* virtual_clock() const { return virtual_clock_; }

 private:
  const Clock* clock_;
  VirtualClock* virtual_clock_;
};

/// What resilient execution of one operation produced, beyond the SUT's own
/// OpResult: retries consumed and the failure classification the event
/// stream records.
struct ExecOutcome {
  OpResult result;
  uint16_t retries = 0;
  bool failed = false;     ///< Operation ultimately failed (any cause).
  bool timed_out = false;  ///< Exceeded its per-op timeout budget.
  bool shed = false;       ///< Dropped unexecuted by the open breaker.
};

/// Exec policies: how one executor attempt reaches the SUT. The retry loop
/// is a template over this policy, so the driver can pick — once per phase
/// — between generic virtual dispatch and a monomorphized engine with the
/// final SUT type baked in.

/// Generic engine: every attempt goes through the SystemUnderTest vtable.
/// Always correct; the only choice when the SUT runs behind wrappers
/// (serializing, fault lanes).
struct VirtualExec {
  SystemUnderTest* sut;
  OpResult Execute(const Operation& op) const { return sut->Execute(op); }
  void ExecuteBatch(const Operation& op, OpResult* results) const {
    sut->ExecuteBatch(op, results);
  }
};

/// Monomorphized engine: the final SUT type is a compile-time parameter and
/// the attempt calls are *qualified*, so they bind statically — zero virtual
/// calls per operation in the steady state, and the SUT's batch loop inlines
/// into the executor's. Only valid when the driver proved the runtime type
/// (dynamic_cast) and the SUT runs unwrapped.
template <typename SutT>
struct MonoExec {
  SutT* sut;
  OpResult Execute(const Operation& op) const {
    return sut->SutT::Execute(op);
  }
  void ExecuteBatch(const Operation& op, OpResult* results) const {
    sut->SutT::ExecuteBatch(op, results);
  }
};

/// Stage 2 of the execution core: the timeout/retry/circuit-breaker policy
/// around a single Execute call. One instance per worker — each worker gets
/// its own backoff jitter stream and breaker so fan-out never serializes on
/// resilience bookkeeping. Semantics are exactly the monolithic driver's
/// retry loop: deadline measured from the intended arrival, breaker checked
/// before every attempt, transient failures retried with seeded backoff
/// inside the deadline, open breaker shedding operations unexecuted.
class ResilientExecutor {
 public:
  struct Options {
    int64_t run_start_nanos = 0;
    /// Simulated service/shed cost per attempt (simulation mode only).
    int64_t virtual_service_nanos = 100000;
    int64_t virtual_shed_nanos = 1000;
  };

  /// `sut` must outlive the executor. A disabled breaker is expressed by
  /// passing nullopt-constructed state: pass `enable_breaker = false`.
  ResilientExecutor(SystemUnderTest* sut, const ResilienceSpec& spec,
                    Pacer pacer, uint64_t backoff_seed, bool enable_breaker,
                    Options options);

  /// Runs one operation through the resilience policy. `arrival_rel_nanos`
  /// is the operation's intended start (run-relative) from which its
  /// deadline is measured. Equivalent to ExecuteOneWith(VirtualExec{sut}).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  ExecOutcome ExecuteOne(const Operation& op, int64_t arrival_rel_nanos);

  /// The retry loop itself, parameterized on the attempt dispatch policy.
  /// `exec` must target the same SUT this executor was constructed with
  /// (the breaker/backoff bookkeeping is per-SUT state).
  ///
  /// Deliberately NOT an LSBENCH_HOT_PATH root: through MonoExec the
  /// qualified attempt call devirtualizes, so the interprocedural walk
  /// would cross into SUT internals (B-tree node splits, learned-index
  /// retrains) that legitimately allocate — a boundary the scalar path
  /// gets for free from virtual dispatch. Hot-path proofs cover this loop
  /// via the ExecuteOne root (VirtualExec flavor, bit-identical logic);
  /// the end-to-end batch allocation budget is pinned at runtime by
  /// tests/hotpath_alloc_test.cc instead.
  template <typename Exec>
  LSBENCH_DETERMINISTIC ExecOutcome ExecuteOneWith(const Exec& exec,
                                                   const Operation& op,
                                                   int64_t arrival_rel_nanos);

  /// Batch flavor: the batch is ONE request unit. One breaker check per
  /// attempt, one deadline measured from the shared intended arrival, and a
  /// transient failure retries the whole batch. The attempt's aggregate
  /// classification is the first non-OK element status (element "misses" —
  /// ok == false with an OK status — are data-level outcomes, not
  /// failures). In simulation mode each attempt advances the virtual clock
  /// by virtual_service_nanos per *element*, so simulated batch latency
  /// scales with batch size and effective per-op latency stays comparable
  /// to the scalar path. `results` must have room for OpResultCount(op)
  /// entries; on a shed it is filled with default (failed) results.
  /// Not a HOT_PATH root for the same reason as ExecuteOneWith.
  template <typename Exec>
  LSBENCH_DETERMINISTIC ExecOutcome ExecuteBatchWith(
      const Exec& exec, const Operation& op, int64_t arrival_rel_nanos,
      OpResult* results);

  /// Breaker state for run-level accounting (null when disabled).
  const CircuitBreaker* breaker() const {
    return breaker_ ? &*breaker_ : nullptr;
  }

  /// Arms the execute/retry observability hooks: per-attempt spans on
  /// `tracer`, Stage::kExecute / Stage::kBackoff on `profiler`, and
  /// attempt/retry/timeout/shed/failure counters from `registry`. Any
  /// argument may be null. Observing execution never perturbs it — no
  /// clock writes, no extra RNG draws.
  void BindObservability(Tracer* tracer, StageProfiler* profiler,
                         MetricsRegistry* registry);

 private:
  SystemUnderTest* sut_;
  ResilienceSpec spec_;
  Pacer pacer_;
  RetryBackoff backoff_;
  std::optional<CircuitBreaker> breaker_;
  Options options_;

  // Observability hooks (null = disabled). Counters are resolved once at
  // bind time so the retry loop never touches the registry lock.
  Tracer* tracer_ = nullptr;
  StageProfiler* profiler_ = nullptr;
  Counter* attempts_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* failures_ = nullptr;
};

// ---- Retry-loop templates ----
// Defined in the header so each MonoExec instantiation compiles into a
// self-contained engine with the SUT's execute path inlined. ExecuteOne
// (executor.cc) instantiates the VirtualExec flavor; behavior there is
// bit-identical to the historical out-of-line loop.

template <typename Exec>
ExecOutcome ResilientExecutor::ExecuteOneWith(const Exec& exec,
                                              const Operation& op,
                                              int64_t arrival_rel_nanos) {
  const Clock* clock = pacer_.clock();
  VirtualClock* vclock = pacer_.virtual_clock();
  const int64_t deadline_rel =
      spec_.op_timeout_nanos > 0
          ? arrival_rel_nanos + spec_.op_timeout_nanos
          : std::numeric_limits<int64_t>::max();

  ExecOutcome out;
  for (;;) {
    if (breaker_ && !breaker_->AllowRequest(clock->NowNanos())) {
      // Open breaker: degraded mode sheds the operation unexecuted.
      out.shed = true;
      out.failed = true;
      out.result = OpResult();
      if (shed_ != nullptr) shed_->Increment();
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_shed_nanos);
      }
      break;
    }
    {
      LSBENCH_TRACE_SPAN(tracer_, "execute");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kExecute);
      if (attempts_ != nullptr) attempts_->Increment();
      out.result = exec.Execute(op);
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_service_nanos);
      }
    }
    const int64_t now_rel = clock->NowNanos() - options_.run_start_nanos;
    const bool past_deadline = now_rel > deadline_rel;
    if (out.result.status.ok() && !past_deadline) {
      if (breaker_) breaker_->RecordSuccess(clock->NowNanos());
      break;
    }
    // Failure: a SUT error, a blown latency budget, or both.
    if (breaker_) breaker_->RecordFailure(clock->NowNanos());
    if (past_deadline) {
      // The deadline is spent; retrying cannot deliver in time.
      out.timed_out = true;
      out.failed = true;
      if (timeouts_ != nullptr) timeouts_->Increment();
      break;
    }
    if (out.result.status.IsTransient() && out.retries < spec_.max_retries) {
      ++out.retries;
      if (retries_ != nullptr) retries_->Increment();
      LSBENCH_TRACE_SPAN(tracer_, "backoff");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kBackoff);
      pacer_.PaceUntil(clock->NowNanos() +
                       backoff_.NextDelayNanos(out.retries));
      continue;
    }
    out.failed = true;
    break;
  }
  if (out.failed && failures_ != nullptr) failures_->Increment();
  return out;
}

template <typename Exec>
ExecOutcome ResilientExecutor::ExecuteBatchWith(const Exec& exec,
                                                const Operation& op,
                                                int64_t arrival_rel_nanos,
                                                OpResult* results) {
  const Clock* clock = pacer_.clock();
  VirtualClock* vclock = pacer_.virtual_clock();
  const uint32_t count = OpResultCount(op);
  const int64_t deadline_rel =
      spec_.op_timeout_nanos > 0
          ? arrival_rel_nanos + spec_.op_timeout_nanos
          : std::numeric_limits<int64_t>::max();

  ExecOutcome out;
  for (;;) {
    if (breaker_ && !breaker_->AllowRequest(clock->NowNanos())) {
      // Open breaker: the whole batch is shed unexecuted.
      out.shed = true;
      out.failed = true;
      out.result = OpResult();
      for (uint32_t i = 0; i < count; ++i) results[i] = OpResult();
      if (shed_ != nullptr) shed_->Increment();
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_shed_nanos);
      }
      break;
    }
    {
      LSBENCH_TRACE_SPAN(tracer_, "execute");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kExecute);
      if (attempts_ != nullptr) attempts_->Increment();
      exec.ExecuteBatch(op, results);
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_service_nanos *
                             static_cast<int64_t>(count));
      }
    }
    // Aggregate the attempt: first non-OK element status classifies the
    // batch; rows sum across elements.
    uint32_t bad = count;
    uint64_t rows = 0;
    for (uint32_t i = 0; i < count; ++i) {
      if (bad == count && !results[i].status.ok()) bad = i;
      rows += results[i].rows;
    }
    out.result = OpResult();
    out.result.ok = bad == count;
    out.result.rows = rows;
    if (bad < count) out.result.status = results[bad].status;

    const int64_t now_rel = clock->NowNanos() - options_.run_start_nanos;
    const bool past_deadline = now_rel > deadline_rel;
    if (out.result.status.ok() && !past_deadline) {
      if (breaker_) breaker_->RecordSuccess(clock->NowNanos());
      break;
    }
    if (breaker_) breaker_->RecordFailure(clock->NowNanos());
    if (past_deadline) {
      out.timed_out = true;
      out.failed = true;
      if (timeouts_ != nullptr) timeouts_->Increment();
      break;
    }
    if (out.result.status.IsTransient() && out.retries < spec_.max_retries) {
      ++out.retries;
      if (retries_ != nullptr) retries_->Increment();
      LSBENCH_TRACE_SPAN(tracer_, "backoff");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kBackoff);
      pacer_.PaceUntil(clock->NowNanos() +
                       backoff_.NextDelayNanos(out.retries));
      continue;
    }
    out.failed = true;
    break;
  }
  if (out.failed && failures_ != nullptr) failures_->Increment();
  return out;
}

}  // namespace lsbench

#endif  // LSBENCH_CORE_EXECUTOR_H_
