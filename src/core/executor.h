#ifndef LSBENCH_CORE_EXECUTOR_H_
#define LSBENCH_CORE_EXECUTOR_H_

#include <cstdint>
#include <optional>

#include "core/resilience.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sut/sut.h"
#include "util/annotate.h"
#include "util/clock.h"
#include "workload/operation.h"

namespace lsbench {

/// Advances one worker's notion of time to an absolute instant: jumps the
/// VirtualClock in simulation mode, hybrid sleep-then-spins on the real
/// clock otherwise (sub-microsecond pacing without burning a core — see
/// SleepSpinUntil).
class Pacer {
 public:
  /// `clock` must be non-null; `virtual_clock`, when non-null, must be the
  /// same object as `clock` (simulation mode).
  Pacer(const Clock* clock, VirtualClock* virtual_clock)
      : clock_(clock), virtual_clock_(virtual_clock) {}

  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void PaceUntil(int64_t target_abs_nanos) const {
    if (virtual_clock_ != nullptr) {
      if (virtual_clock_->NowNanos() < target_abs_nanos) {
        virtual_clock_->SetNanos(target_abs_nanos);
      }
      return;
    }
    SleepSpinUntil(*clock_, target_abs_nanos);
  }

  const Clock* clock() const { return clock_; }
  VirtualClock* virtual_clock() const { return virtual_clock_; }

 private:
  const Clock* clock_;
  VirtualClock* virtual_clock_;
};

/// What resilient execution of one operation produced, beyond the SUT's own
/// OpResult: retries consumed and the failure classification the event
/// stream records.
struct ExecOutcome {
  OpResult result;
  uint16_t retries = 0;
  bool failed = false;     ///< Operation ultimately failed (any cause).
  bool timed_out = false;  ///< Exceeded its per-op timeout budget.
  bool shed = false;       ///< Dropped unexecuted by the open breaker.
};

/// Stage 2 of the execution core: the timeout/retry/circuit-breaker policy
/// around a single Execute call. One instance per worker — each worker gets
/// its own backoff jitter stream and breaker so fan-out never serializes on
/// resilience bookkeeping. Semantics are exactly the monolithic driver's
/// retry loop: deadline measured from the intended arrival, breaker checked
/// before every attempt, transient failures retried with seeded backoff
/// inside the deadline, open breaker shedding operations unexecuted.
class ResilientExecutor {
 public:
  struct Options {
    int64_t run_start_nanos = 0;
    /// Simulated service/shed cost per attempt (simulation mode only).
    int64_t virtual_service_nanos = 100000;
    int64_t virtual_shed_nanos = 1000;
  };

  /// `sut` must outlive the executor. A disabled breaker is expressed by
  /// passing nullopt-constructed state: pass `enable_breaker = false`.
  ResilientExecutor(SystemUnderTest* sut, const ResilienceSpec& spec,
                    Pacer pacer, uint64_t backoff_seed, bool enable_breaker,
                    Options options);

  /// Runs one operation through the resilience policy. `arrival_rel_nanos`
  /// is the operation's intended start (run-relative) from which its
  /// deadline is measured.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  ExecOutcome ExecuteOne(const Operation& op, int64_t arrival_rel_nanos);

  /// Breaker state for run-level accounting (null when disabled).
  const CircuitBreaker* breaker() const {
    return breaker_ ? &*breaker_ : nullptr;
  }

  /// Arms the execute/retry observability hooks: per-attempt spans on
  /// `tracer`, Stage::kExecute / Stage::kBackoff on `profiler`, and
  /// attempt/retry/timeout/shed/failure counters from `registry`. Any
  /// argument may be null. Observing execution never perturbs it — no
  /// clock writes, no extra RNG draws.
  void BindObservability(Tracer* tracer, StageProfiler* profiler,
                         MetricsRegistry* registry);

 private:
  SystemUnderTest* sut_;
  ResilienceSpec spec_;
  Pacer pacer_;
  RetryBackoff backoff_;
  std::optional<CircuitBreaker> breaker_;
  Options options_;

  // Observability hooks (null = disabled). Counters are resolved once at
  // bind time so the retry loop never touches the registry lock.
  Tracer* tracer_ = nullptr;
  StageProfiler* profiler_ = nullptr;
  Counter* attempts_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* timeouts_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* failures_ = nullptr;
};

}  // namespace lsbench

#endif  // LSBENCH_CORE_EXECUTOR_H_
