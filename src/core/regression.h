#ifndef LSBENCH_CORE_REGRESSION_H_
#define LSBENCH_CORE_REGRESSION_H_

#include <string>
#include <vector>

#include "core/driver.h"

namespace lsbench {

/// Benchmark-to-benchmark regression checking: compare a candidate run
/// against a baseline run of the same spec and flag the metrics that moved
/// past tolerance. This is how a benchmark gets used in practice — §IV's
/// "help developers compare systems and choose the right trade-offs"
/// includes comparing *versions of the same system* over time.

/// Tolerances for the comparison. Ratios are candidate/baseline bounds.
struct RegressionTolerances {
  double min_throughput_ratio = 0.95;   ///< Candidate may lose up to 5%.
  double max_p99_latency_ratio = 1.20;  ///< p99 may grow up to 20%.
  double max_violation_ratio = 1.50;    ///< SLA violations may grow 50%.
  /// Absolute slack added to violation comparison so tiny counts don't
  /// trip the ratio (5 -> 8 violations is noise).
  uint64_t violation_slack = 10;
  double max_train_seconds_ratio = 1.50;
};

/// One flagged metric.
struct RegressionFinding {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double limit = 0.0;  ///< The bound that was crossed.
};

struct RegressionReport {
  std::vector<RegressionFinding> findings;

  bool Passed() const { return findings.empty(); }
};

/// Compares candidate vs baseline under the tolerances. Both runs should
/// come from the same spec (same phases/ops); phase counts are compared as
/// a sanity check and mismatches are reported as a finding.
RegressionReport CheckRegression(const RunResult& baseline,
                                 const RunResult& candidate,
                                 const RegressionTolerances& tolerances = {});

/// Human-readable verdict ("PASS" or the findings, one line each).
std::string RenderRegressionReport(const RegressionReport& report);

}  // namespace lsbench

#endif  // LSBENCH_CORE_REGRESSION_H_
