#include "core/run_spec.h"

namespace lsbench {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashDouble(double d) {
  // Bit-cast; NaNs are not expected in specs.
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) h = MixHash(h, static_cast<uint8_t>(c));
  return h;
}

}  // namespace

std::string OverloadPolicyToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kDropNewest:
      return "drop_newest";
    case OverloadPolicy::kDropOldest:
      return "drop_oldest";
    case OverloadPolicy::kSloShed:
      return "slo_shed";
  }
  return "drop_newest";
}

bool operator==(const ServiceSpec& a, const ServiceSpec& b) {
  return a.enabled == b.enabled && a.queue_capacity == b.queue_capacity &&
         a.policy == b.policy && a.slo_p99_nanos == b.slo_p99_nanos &&
         a.max_shed_fraction == b.max_shed_fraction;
}

bool operator==(const DriftSpec& a, const DriftSpec& b) {
  return a.declared == b.declared && a.trajectory == b.trajectory &&
         a.tolerance == b.tolerance && a.sample_ops == b.sample_ops &&
         a.seed == b.seed;
}

Status RunSpec::Validate() const {
  if (datasets.empty()) {
    return Status::InvalidArgument("run spec has no datasets");
  }
  if (phases.empty()) {
    return Status::InvalidArgument("run spec has no phases");
  }
  for (size_t i = 0; i < datasets.size(); ++i) {
    if (datasets[i].empty()) {
      return Status::InvalidArgument("dataset " + std::to_string(i) +
                                     " is empty");
    }
  }
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& p = phases[i];
    if (p.dataset_index < 0 ||
        static_cast<size_t>(p.dataset_index) >= datasets.size()) {
      return Status::InvalidArgument("phase " + std::to_string(i) +
                                     " references missing dataset");
    }
    if (p.num_operations == 0) {
      return Status::InvalidArgument("phase " + std::to_string(i) +
                                     " has zero operations");
    }
    if (p.mix.Total() <= 0.0) {
      return Status::InvalidArgument("phase " + std::to_string(i) +
                                     " has an empty operation mix");
    }
    if (p.batch_size < 1 || p.batch_size > 4096) {
      return Status::InvalidArgument("phase " + std::to_string(i) +
                                     " batch_size must be in [1, 4096]");
    }
    if (p.mix.batch_get < 0.0 || p.mix.batch_put < 0.0) {
      return Status::InvalidArgument("phase " + std::to_string(i) +
                                     " has a negative batch_mix fraction");
    }
    if (p.transition_operations > p.num_operations) {
      return Status::InvalidArgument(
          "phase " + std::to_string(i) +
          " transition is longer than the phase itself");
    }
    if (const Status st = ValidateArrivalParams(
            p.arrival, p.arrival_rate_qps, p.arrival_amplitude,
            p.arrival_period_seconds);
        !st.ok()) {
      return Status::InvalidArgument("phase " + std::to_string(i) + ": " +
                                     st.message());
    }
    if (service.enabled && p.arrival == ArrivalPattern::kClosedLoop) {
      return Status::InvalidArgument(
          "phase " + std::to_string(i) +
          " uses closed-loop arrivals but [service] mode is enabled; "
          "admission control needs open-loop intended arrival times");
    }
  }
  if (service.enabled) {
    if (service.queue_capacity == 0 ||
        service.queue_capacity > (uint32_t{1} << 20)) {
      return Status::InvalidArgument(
          "service queue_capacity must be in [1, 2^20]");
    }
    if (service.max_shed_fraction < 0.0 || service.max_shed_fraction > 1.0) {
      return Status::InvalidArgument(
          "service max_shed_fraction must be in [0, 1]");
    }
    if (service.slo_p99_nanos < 0) {
      return Status::InvalidArgument("service slo_p99_ms must be >= 0");
    }
    if (service.policy == OverloadPolicy::kSloShed &&
        service.slo_p99_nanos == 0) {
      return Status::InvalidArgument(
          "service policy slo_shed requires slo_p99_ms > 0");
    }
  }
  if (interval_nanos <= 0 || boxplot_sample_nanos <= 0) {
    return Status::InvalidArgument("reporting intervals must be positive");
  }
  for (size_t i = 0; i < faults.windows.size(); ++i) {
    const FaultWindow& w = faults.windows[i];
    if (w.phase >= static_cast<int32_t>(phases.size())) {
      return Status::InvalidArgument("fault window " + std::to_string(i) +
                                     " references missing phase");
    }
    for (double rate :
         {w.execute_fail_rate, w.latency_spike_rate, w.stall_rate}) {
      if (rate < 0.0 || rate > 1.0) {
        return Status::InvalidArgument("fault window " + std::to_string(i) +
                                       " has a rate outside [0, 1]");
      }
    }
    if (w.latency_spike_nanos < 0 || w.stall_nanos < 0 ||
        w.train_hang_nanos < 0) {
      return Status::InvalidArgument("fault window " + std::to_string(i) +
                                     " has a negative duration");
    }
    if (w.execute_fail_code == StatusCode::kOk) {
      return Status::InvalidArgument("fault window " + std::to_string(i) +
                                     " cannot inject an OK failure");
    }
  }
  if (resilience.op_timeout_nanos < 0 ||
      resilience.backoff_initial_nanos < 0 ||
      resilience.backoff_max_nanos < 0 ||
      resilience.breaker_cooldown_nanos < 0) {
    return Status::InvalidArgument("resilience durations must be >= 0");
  }
  if (resilience.backoff_multiplier < 1.0) {
    return Status::InvalidArgument("backoff multiplier must be >= 1");
  }
  if (resilience.backoff_jitter < 0.0 || resilience.backoff_jitter >= 1.0) {
    return Status::InvalidArgument("backoff jitter must be in [0, 1)");
  }
  if (resilience.breaker_enabled) {
    if (resilience.breaker_window_ops == 0) {
      return Status::InvalidArgument("breaker window must be non-empty");
    }
    if (resilience.breaker_failure_threshold <= 0.0 ||
        resilience.breaker_failure_threshold > 1.0) {
      return Status::InvalidArgument("breaker threshold must be in (0, 1]");
    }
  }
  if (execution.workers == 0 || execution.workers > 1024) {
    return Status::InvalidArgument("execution workers must be in [1, 1024]");
  }
  if (drift.declared) {
    if (drift.trajectory.size() + 1 != phases.size()) {
      return Status::InvalidArgument(
          "drift trajectory must declare one factor per phase transition (" +
          std::to_string(phases.size() - 1) + " expected, " +
          std::to_string(drift.trajectory.size()) + " declared)");
    }
    for (size_t i = 0; i < drift.trajectory.size(); ++i) {
      if (!(drift.trajectory[i] >= 0.0 && drift.trajectory[i] <= 1.0)) {
        return Status::InvalidArgument("drift trajectory entry " +
                                       std::to_string(i) +
                                       " outside [0, 1]");
      }
    }
    if (!(drift.tolerance > 0.0 && drift.tolerance <= 1.0)) {
      return Status::InvalidArgument("drift tolerance must be in (0, 1]");
    }
    if (drift.sample_ops == 0) {
      return Status::InvalidArgument("drift sample_ops must be positive");
    }
  }
  return Status::OK();
}

uint64_t RunSpec::StructuralHash() const {
  uint64_t h = HashString(name);
  h = MixHash(h, seed);
  for (const Dataset& ds : datasets) {
    h = MixHash(h, HashString(ds.name));
    h = MixHash(h, ds.keys.size());
    h = MixHash(h, ds.seed);
    h = MixHash(h, ds.domain_max);
  }
  for (const PhaseSpec& p : phases) {
    h = MixHash(h, HashString(p.name));
    h = MixHash(h, static_cast<uint64_t>(p.dataset_index));
    h = MixHash(h, HashDouble(p.mix.get));
    h = MixHash(h, HashDouble(p.mix.scan));
    h = MixHash(h, HashDouble(p.mix.insert));
    h = MixHash(h, HashDouble(p.mix.update));
    h = MixHash(h, HashDouble(p.mix.del));
    h = MixHash(h, HashDouble(p.mix.range_count));
    h = MixHash(h, HashDouble(p.mix.batch_get));
    h = MixHash(h, HashDouble(p.mix.batch_put));
    h = MixHash(h, static_cast<uint64_t>(p.access));
    h = MixHash(h, HashDouble(p.access_param));
    h = MixHash(h, HashDouble(p.access_param2));
    h = MixHash(h, static_cast<uint64_t>(p.arrival));
    h = MixHash(h, HashDouble(p.arrival_rate_qps));
    h = MixHash(h, HashDouble(p.arrival_amplitude));
    h = MixHash(h, HashDouble(p.arrival_period_seconds));
    h = MixHash(h, p.num_operations);
    h = MixHash(h, static_cast<uint64_t>(p.transition_in));
    h = MixHash(h, p.transition_operations);
    h = MixHash(h, p.holdout ? 1 : 0);
    h = MixHash(h, p.scan_length);
    h = MixHash(h, HashDouble(p.range_selectivity));
    h = MixHash(h, p.batch_size);
  }
  h = MixHash(h, faults.seed);
  h = MixHash(h, faults.load_failures);
  for (const FaultWindow& w : faults.windows) {
    h = MixHash(h, static_cast<uint64_t>(static_cast<int64_t>(w.phase)));
    h = MixHash(h, HashDouble(w.execute_fail_rate));
    h = MixHash(h, static_cast<uint64_t>(w.execute_fail_code));
    h = MixHash(h, HashDouble(w.latency_spike_rate));
    h = MixHash(h, static_cast<uint64_t>(w.latency_spike_nanos));
    h = MixHash(h, HashDouble(w.stall_rate));
    h = MixHash(h, static_cast<uint64_t>(w.stall_nanos));
    h = MixHash(h, w.fail_train ? 1 : 0);
    h = MixHash(h, static_cast<uint64_t>(w.train_hang_nanos));
  }
  h = MixHash(h, static_cast<uint64_t>(resilience.op_timeout_nanos));
  h = MixHash(h, resilience.max_retries);
  h = MixHash(h, static_cast<uint64_t>(resilience.backoff_initial_nanos));
  h = MixHash(h, HashDouble(resilience.backoff_multiplier));
  h = MixHash(h, static_cast<uint64_t>(resilience.backoff_max_nanos));
  h = MixHash(h, HashDouble(resilience.backoff_jitter));
  h = MixHash(h, resilience.breaker_enabled ? 1 : 0);
  h = MixHash(h, resilience.breaker_window_ops);
  h = MixHash(h, HashDouble(resilience.breaker_failure_threshold));
  h = MixHash(h, static_cast<uint64_t>(resilience.breaker_cooldown_nanos));
  h = MixHash(h, resilience.breaker_half_open_probes);
  h = MixHash(h, service.enabled ? 1 : 0);
  h = MixHash(h, service.queue_capacity);
  h = MixHash(h, static_cast<uint64_t>(service.policy));
  h = MixHash(h, static_cast<uint64_t>(service.slo_p99_nanos));
  h = MixHash(h, HashDouble(service.max_shed_fraction));
  h = MixHash(h, execution.workers);
  return h;
}

}  // namespace lsbench
