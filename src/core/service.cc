#include "core/service.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace lsbench {

AdmissionQueue::AdmissionQueue(const ServiceSpec& spec)
    : capacity_(spec.queue_capacity),
      policy_(spec.policy),
      slo_nanos_(spec.slo_p99_nanos),
      max_shed_fraction_(spec.max_shed_fraction) {
  LSBENCH_ASSERT(capacity_ > 0);
  ring_.resize(capacity_);
}

void AdmissionQueue::BindObservability(Gauge* depth_gauge,
                                       Gauge* peak_depth_gauge,
                                       Counter* admitted_counter,
                                       Counter* shed_counter,
                                       FixedHistogram* queue_wait) {
  depth_gauge_ = depth_gauge;
  peak_depth_gauge_ = peak_depth_gauge;
  admitted_counter_ = admitted_counter;
  shed_counter_ = shed_counter;
  queue_wait_ = queue_wait;
}

bool AdmissionQueue::SloShed(const WorkloadStream::Issue& issue,
                             int64_t now_rel_nanos, bool degraded) const {
  // Predicted response time if admitted now: everything already queued must
  // drain first, one smoothed service time each, plus this operation's own.
  const int64_t backlog =
      static_cast<int64_t>(count_ + 1) * service_ema_nanos_;
  const int64_t predicted_completion = now_rel_nanos + backlog;
  const int64_t deadline = issue.arrival_rel_nanos + slo_nanos_;
  bool miss = predicted_completion > deadline;
  // While the breaker is degraded the smoothed service time lags reality
  // (sheds and failures are fast), so also shed anything already past its
  // deadline at admission time.
  if (degraded && now_rel_nanos >= deadline) miss = true;
  if (!miss) return false;
  // Budget check: predictive sheds may not push the realized shed fraction
  // past max_shed_fraction of offered load. offered_ already counts this
  // arrival.
  return static_cast<double>(shed_ + 1) <=
         max_shed_fraction_ * static_cast<double>(offered_);
}

void AdmissionQueue::CountShed(const WorkloadStream::Issue& issue) {
  (void)issue;
  ++shed_;
  if (shed_counter_ != nullptr) shed_counter_->Increment();
}

AdmissionQueue::Admission AdmissionQueue::Offer(
    const WorkloadStream::Issue& issue, int64_t now_rel_nanos,
    bool degraded) {
  ++offered_;
  Admission result;

  if (policy_ == OverloadPolicy::kSloShed && slo_nanos_ > 0 &&
      SloShed(issue, now_rel_nanos, degraded)) {
    CountShed(issue);
    result.admitted = false;
    result.shed = issue;
    return result;
  }

  if (count_ >= capacity_) {
    // Full queue: something must go, regardless of budget (the queue bound
    // is structural; max_shed_fraction only limits *predictive* sheds).
    if (policy_ == OverloadPolicy::kDropOldest) {
      result.shed = Front();
      DropFront();
      CountShed(*result.shed);
    } else {
      // kDropNewest, and kSloShed once its budget is spent.
      CountShed(issue);
      result.admitted = false;
      result.shed = issue;
      return result;
    }
  }

  PushBack(issue);
  peak_depth_ = std::max(peak_depth_, count_);
  ++admitted_;
  result.admitted = true;
  if (admitted_counter_ != nullptr) admitted_counter_->Increment();
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(count_));
  }
  if (peak_depth_gauge_ != nullptr) {
    peak_depth_gauge_->Set(static_cast<int64_t>(peak_depth_));
  }
  return result;
}

WorkloadStream::Issue AdmissionQueue::PopFront(int64_t now_rel_nanos) {
  LSBENCH_ASSERT(count_ > 0);
  WorkloadStream::Issue issue = Front();
  DropFront();
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(count_));
  }
  if (queue_wait_ != nullptr) {
    queue_wait_->Record(
        std::max<int64_t>(0, now_rel_nanos - issue.arrival_rel_nanos));
  }
  return issue;
}

void AdmissionQueue::RecordServiceTime(int64_t service_nanos) {
  if (service_nanos < 0) service_nanos = 0;
  // Integer EMA with alpha = 1/4 — deterministic, no floating-point drift
  // across platforms.
  service_ema_nanos_ = service_ema_nanos_ == 0
                           ? service_nanos
                           : (3 * service_ema_nanos_ + service_nanos) / 4;
}

}  // namespace lsbench
