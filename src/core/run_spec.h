#ifndef LSBENCH_CORE_RUN_SPEC_H_
#define LSBENCH_CORE_RUN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/resilience.h"
#include "data/dataset.h"
#include "obs/observability.h"
#include "sut/fault_plan.h"
#include "util/status.h"
#include "workload/spec.h"

namespace lsbench {

/// Service-level-agreement settings for the SLA-band metric (Fig. 1c).
struct SlaSpec {
  /// Fixed threshold; 0 selects calibration (`auto_percentile` of the
  /// first phase's latencies becomes the threshold, scaled by
  /// `auto_margin`). The paper recommends deriving the threshold from a
  /// baseline system's latency statistics.
  int64_t threshold_nanos = 0;
  double auto_percentile = 0.99;
  double auto_margin = 2.0;
};

/// What the admission queue does with an arriving operation once the queue
/// is full (and, for the SLO-aware policy, once the response-time target is
/// predicted to be missed).
enum class OverloadPolicy {
  kDropNewest,  ///< Shed the arriving operation.
  kDropOldest,  ///< Shed the head of the queue, admit the arrival.
  /// Shed arrivals predicted to miss `slo_p99_nanos` (queue-delay model,
  /// tightened while the circuit breaker is degraded), within the
  /// `max_shed_fraction` budget; falls back to drop-newest when full.
  kSloShed,
};

std::string OverloadPolicyToString(OverloadPolicy policy);

/// Open-loop service mode (`[service]` section): a bounded admission queue
/// in front of the resilient executor, with an overload policy and per-run
/// SLO targets. Disabled by default — the driver then paces inline exactly
/// as before. When enabled, every phase must use an open-loop arrival
/// process (admission decisions need intended arrival times).
struct ServiceSpec {
  bool enabled = false;
  /// Bounded admission-queue capacity, per worker. Overload never queues
  /// past this depth; the policy decides what to shed instead.
  uint32_t queue_capacity = 256;
  OverloadPolicy policy = OverloadPolicy::kDropNewest;
  /// Response-time target (intended arrival -> completion). Drives the
  /// SLO-aware shedder and the report's met/violated verdict. 0 = unset.
  int64_t slo_p99_nanos = 0;
  /// Budget for *predictive* sheds as a fraction of offered load, and the
  /// bound the report checks the realized shed fraction against. Forced
  /// full-queue sheds are exempt (the queue bound always holds).
  double max_shed_fraction = 1.0;
};

bool operator==(const ServiceSpec& a, const ServiceSpec& b);

/// Declared drift trajectory (`[drift]` section): the spec author's claim
/// about how far each phase transition moves the workload distribution,
/// verified against the DriftMeter by the scenario-matrix sweep. Purely an
/// annotation — it never changes what the run executes, so (like
/// observability) it is excluded from StructuralHash.
struct DriftSpec {
  bool declared = false;
  /// Intended drift factor per transition; length must be phases.size() - 1
  /// when declared. Values in [0, 1].
  std::vector<double> trajectory;
  /// |measured - declared| bound the sweep enforces per transition.
  double tolerance = 0.15;
  /// DriftMeter sampling budget and seed (see DriftMeterOptions).
  uint64_t sample_ops = 4096;
  uint64_t seed = 7;
};

bool operator==(const DriftSpec& a, const DriftSpec& b);

/// How the driver fans the operation stream out (`[execution]` section).
/// `workers = 1` is the serial staged pipeline and is bit-identical to the
/// historical monolithic driver; `workers = N` splits every phase's
/// operations across N workers, each with its own forked RNG stream and
/// event shard, merged deterministically by (timestamp, worker, seq).
struct ExecutionSpec {
  uint32_t workers = 1;
};

/// Provenance of one generated dataset: the `[dataset]` section that
/// produced it. Dataset itself keeps only the generated keys, so without
/// this record a parsed spec cannot be rendered back to text
/// (RenderRunSpecText needs the generation parameters, not the keys).
struct DatasetSourceSpec {
  std::string kind = "uniform";
  uint64_t num_keys = 100000;
  uint64_t seed = 42;
  double param1 = 0.0;
  double param2 = 0.0;
};

/// The complete description of one benchmark run: datasets, the phase
/// sequence over them, SLA, and reporting granularity. A RunSpec plus a
/// seed fully determines the operation stream.
struct RunSpec {
  std::string name = "unnamed_run";
  std::vector<Dataset> datasets;
  std::vector<PhaseSpec> phases;
  SlaSpec sla;
  /// Width of the reporting interval for bands/timelines, in nanoseconds.
  int64_t interval_nanos = 1000000000;  // 1 s, per the paper's example.
  /// Sub-interval used to sample throughput for box plots (Fig. 1a).
  int64_t boxplot_sample_nanos = 100000000;  // 100 ms.
  /// First N queries after a phase change considered by the
  /// adjustment-speed metric (§V-D2).
  uint64_t adjustment_window_ops = 1000;
  /// Run an offline training pass (timed) before execution.
  bool offline_training = true;
  uint64_t seed = 42;
  /// Deterministic fault schedule; an empty plan injects nothing and the
  /// driver runs the SUT unwrapped.
  FaultPlan faults;
  /// Timeout / retry / circuit-breaker policy; disabled by default.
  ResilienceSpec resilience;
  /// Open-loop service mode: admission queue + overload policy + SLO
  /// targets. Disabled by default.
  ServiceSpec service;
  /// Worker fan-out; defaults to the serial pipeline.
  ExecutionSpec execution;
  /// Tracing / profiling / metrics export ([observability] section).
  /// Deliberately excluded from StructuralHash: observing a run must not
  /// change its identity, and a determinism test pins that the op stream
  /// is byte-identical with observability on and off.
  ObservabilitySpec observability;
  /// Declared drift trajectory ([drift] section). Like observability, an
  /// annotation about the run rather than part of it — excluded from
  /// StructuralHash so declaring drift does not change run identity.
  DriftSpec drift;
  /// Generation provenance for `datasets`, parallel by index when the spec
  /// came from ParseRunSpecText. May be empty for programmatically built
  /// specs — then the spec cannot be rendered back to text.
  std::vector<DatasetSourceSpec> dataset_sources;

  /// Structural validation: phases reference valid datasets, lengths are
  /// nonzero, datasets are nonempty.
  Status Validate() const;

  /// Stable hash of the spec's structure — the identity under which the
  /// driver enforces single execution of hold-out phases (§V-A).
  uint64_t StructuralHash() const;
};

}  // namespace lsbench

#endif  // LSBENCH_CORE_RUN_SPEC_H_
