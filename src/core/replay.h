#ifndef LSBENCH_CORE_REPLAY_H_
#define LSBENCH_CORE_REPLAY_H_

#include <vector>

#include "core/driver.h"
#include "workload/trace.h"

namespace lsbench {

/// Executes a recorded operation trace against a SUT as a single closed-loop
/// phase: load, optional training, then one timed Execute per trace entry.
/// This is the replay half of the trace story — the exact stream archived
/// from one evaluation can be re-driven against a different system, which is
/// how a benchmark-as-a-service would evaluate SUTs on hidden hold-out
/// traces (§V-A).
struct ReplayOptions {
  bool offline_training = true;
  MetricsOptions metrics;
  /// Simulation mode, as in DriverOptions.
  VirtualClock* virtual_clock = nullptr;
  int64_t virtual_service_nanos = 100000;
};

Result<RunResult> ReplayTrace(const OperationTrace& trace,
                              const std::vector<KeyValue>& load_image,
                              SystemUnderTest* sut,
                              const Clock* clock = nullptr,
                              ReplayOptions options = {});

/// Records `count` operations from a generator into a trace (helper for
/// producing archives from phase specs).
OperationTrace RecordTrace(const Dataset& dataset, const PhaseSpec& phase,
                           size_t count, uint64_t seed);

}  // namespace lsbench

#endif  // LSBENCH_CORE_REPLAY_H_
