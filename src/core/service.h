#ifndef LSBENCH_CORE_SERVICE_H_
#define LSBENCH_CORE_SERVICE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/run_spec.h"
#include "core/workload_stream.h"
#include "obs/metrics_registry.h"
#include "util/annotate.h"

namespace lsbench {

/// Bounded admission queue in front of the resilient executor — the heart of
/// open-loop service mode. The driver offers every operation at its intended
/// arrival time; the queue either admits it (FIFO) or sheds it per the
/// configured OverloadPolicy. Shedding is what keeps an overloaded run
/// bounded: without it, an open-loop schedule faster than the SUT grows the
/// backlog (and every response time) without limit.
///
/// Entirely deterministic: decisions depend only on the offered sequence,
/// the current virtual/real time, and the policy — no RNG, no wall-clock
/// reads of its own. That is what lets the overload test assert shed counts
/// against a hand-computed schedule and the CI job demand byte-identical
/// traces across runs.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const ServiceSpec& spec);

  /// Outcome of offering one arrival. At most one operation is shed per
  /// offer: either the arrival itself (`admitted == false`) or, under
  /// drop-oldest, the previous head (`admitted == true` and `shed` set).
  struct Admission {
    bool admitted = false;
    std::optional<WorkloadStream::Issue> shed;
  };

  /// Offers the issue whose intended arrival is due at `now_rel_nanos`.
  /// `degraded` is the circuit breaker's view (non-closed state): the
  /// SLO-aware policy sheds more eagerly while the SUT is degraded, which is
  /// the coordination point between admission control and the resilience
  /// layer.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  Admission Offer(const WorkloadStream::Issue& issue, int64_t now_rel_nanos,
                  bool degraded);

  /// Dequeues the next admitted operation; records its queue wait relative
  /// to `now_rel_nanos`. Requires !empty().
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  WorkloadStream::Issue PopFront(int64_t now_rel_nanos);

  /// Feeds back the observed execution time of a completed operation. The
  /// SLO-aware shedder predicts queue delay as depth x a smoothed service
  /// time (integer EMA, deterministic).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void RecordServiceTime(int64_t service_nanos);

  bool empty() const { return count_ == 0; }
  size_t depth() const { return count_; }
  size_t peak_depth() const { return peak_depth_; }
  uint64_t offered() const { return offered_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t shed() const { return shed_; }

  /// Arms queue instruments (any may be null): current depth and high-water
  /// gauges, admitted/shed counters, queue-wait histogram. Reading the queue
  /// never changes its decisions.
  void BindObservability(Gauge* depth_gauge, Gauge* peak_depth_gauge,
                         Counter* admitted_counter, Counter* shed_counter,
                         FixedHistogram* queue_wait);

 private:
  /// Whether the SLO-aware policy sheds this arrival. Budgeted: predictive
  /// sheds stop once they would exceed `max_shed_fraction` of offered load
  /// (forced full-queue sheds are exempt — the queue bound always holds).
  bool SloShed(const WorkloadStream::Issue& issue, int64_t now_rel_nanos,
               bool degraded) const;

  void CountShed(const WorkloadStream::Issue& issue);

  WorkloadStream::Issue& Front() { return ring_[head_]; }
  void PushBack(const WorkloadStream::Issue& issue) {
    ring_[(head_ + count_) % ring_.size()] = issue;
    ++count_;
  }
  void DropFront() {
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }

  const uint32_t capacity_;
  const OverloadPolicy policy_;
  const int64_t slo_nanos_;
  const double max_shed_fraction_;

  /// Fixed ring of `capacity_` slots, allocated once at construction —
  /// Offer/PopFront stay allocation-free on the hot path (deepcheck rule
  /// hot-alloc). Issue is a POD, so slot writes are plain copies.
  std::vector<WorkloadStream::Issue> ring_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t peak_depth_ = 0;
  uint64_t offered_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  /// Smoothed service time in nanos; 0 until the first completion.
  int64_t service_ema_nanos_ = 0;

  Gauge* depth_gauge_ = nullptr;
  Gauge* peak_depth_gauge_ = nullptr;
  Counter* admitted_counter_ = nullptr;
  Counter* shed_counter_ = nullptr;
  FixedHistogram* queue_wait_ = nullptr;
};

}  // namespace lsbench

#endif  // LSBENCH_CORE_SERVICE_H_
