#include "core/specialization.h"

#include <algorithm>

#include "stats/similarity.h"
#include "util/assert.h"
#include "workload/generator.h"

namespace lsbench {

SpecializationReport BuildSpecializationReport(
    const RunSpec& spec, const RunResult& result,
    const SpecializationOptions& options) {
  LSBENCH_ASSERT(options.baseline_phase >= 0);
  LSBENCH_ASSERT(static_cast<size_t>(options.baseline_phase) <
                 spec.phases.size());
  SpecializationReport report;
  report.baseline_phase = options.baseline_phase;

  const PhaseSpec& base_phase = spec.phases[options.baseline_phase];
  const Dataset& base_dataset = spec.datasets[base_phase.dataset_index];
  const std::vector<double> base_keys =
      Subsample(base_dataset.NormalizedKeys(), options.ks_sample);
  const WorkloadSignature base_signature = ComputePhaseSignature(
      base_dataset, base_phase, options.similarity_sample, spec.seed + 17);

  for (size_t i = 0; i < spec.phases.size(); ++i) {
    const PhaseSpec& phase = spec.phases[i];
    const Dataset& dataset = spec.datasets[phase.dataset_index];

    SpecializationEntry entry;
    entry.phase = static_cast<int32_t>(i);
    entry.phase_name = phase.name.empty()
                           ? "phase" + std::to_string(i)
                           : phase.name;
    entry.holdout = phase.holdout;

    entry.data_ks =
        KolmogorovSmirnov(base_keys,
                          Subsample(dataset.NormalizedKeys(),
                                    options.ks_sample))
            .statistic;
    const WorkloadSignature sig = ComputePhaseSignature(
        dataset, phase, options.similarity_sample, spec.seed + 17);
    entry.workload_jaccard = base_signature.Similarity(sig);
    entry.phi = PhiDissimilarity(entry.data_ks, entry.workload_jaccard,
                                 options.data_weight);

    if (i < result.metrics.phases.size()) {
      entry.throughput_box = result.metrics.phases[i].throughput_box;
      entry.mean_throughput = result.metrics.phases[i].mean_throughput;
    }
    report.entries.push_back(std::move(entry));
  }

  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const SpecializationEntry& a,
                      const SpecializationEntry& b) { return a.phi < b.phi; });
  return report;
}

}  // namespace lsbench
