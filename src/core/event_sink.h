#ifndef LSBENCH_CORE_EVENT_SINK_H_
#define LSBENCH_CORE_EVENT_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"

namespace lsbench {

/// Stage 3 of the execution core: one worker's event shard. Each worker
/// records into its own sink with no synchronization; the sink stamps the
/// worker id and a per-shard issue sequence number so shards can later be
/// merged into one deterministic stream regardless of thread scheduling.
class EventSink {
 public:
  explicit EventSink(uint32_t worker) : worker_(worker) {}

  void Reserve(size_t n) { events_.reserve(n); }

  /// Records one completed operation, stamping provenance.
  void Record(OpEvent event) {
    LSBENCH_PROFILE_STAGE(profiler_, Stage::kRecord);
    if (events_recorded_ != nullptr) events_recorded_->Increment();
    event.worker = worker_;
    event.seq = next_seq_++;
    events_.push_back(event);
  }

  /// Arms the append profiling hook (Stage::kRecord) and the record
  /// counter. Either pointer may be null; observing the sink never changes
  /// what it records.
  void BindObservability(StageProfiler* profiler, Counter* events_recorded) {
    profiler_ = profiler;
    events_recorded_ = events_recorded;
  }

  uint32_t worker() const { return worker_; }
  EventStream& events() { return events_; }
  const EventStream& events() const { return events_; }

  /// Moves the shard out (the sink is spent afterwards).
  EventStream TakeEvents() { return std::move(events_); }

 private:
  uint32_t worker_;
  uint64_t next_seq_ = 0;
  EventStream events_;

  // Observability hooks (null = disabled).
  StageProfiler* profiler_ = nullptr;
  Counter* events_recorded_ = nullptr;
};

/// Merges per-worker event shards into one stream ordered by
/// (timestamp, worker, seq). The tie-break on provenance makes the merged
/// order a pure function of the shards' contents — two runs with identical
/// shards merge identically no matter how threads interleaved. A single
/// already-ordered shard passes through unchanged.
EventStream MergeEventShards(std::vector<EventStream> shards);

/// Canonical one-line-per-event text form of a merged stream. Two runs
/// produced identical event streams iff their serializations are
/// byte-identical — the representation the determinism tests hash.
std::string SerializeEventStream(const EventStream& events);

}  // namespace lsbench

#endif  // LSBENCH_CORE_EVENT_SINK_H_
