#ifndef LSBENCH_CORE_EVENT_SINK_H_
#define LSBENCH_CORE_EVENT_SINK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "sut/sut.h"
#include "util/annotate.h"

namespace lsbench {

/// Stage 3 of the execution core: one worker's event shard. Each worker
/// records into its own sink with no synchronization; the sink stamps the
/// worker id and a per-shard issue sequence number so shards can later be
/// merged into one deterministic stream regardless of thread scheduling.
class EventSink {
 public:
  explicit EventSink(uint32_t worker) : worker_(worker) {}

  /// Sizes the arena for `n` more events. All allocation happens here, off
  /// the measured loop; Record then fills slots by index.
  void Reserve(size_t n) { events_.resize(used_ + n); }

  /// Records one completed operation, stamping provenance. Allocation-free
  /// while the arena has room (the steady state — the driver Reserves the
  /// full phase up front); growth is delegated to the cold slow path.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void Record(OpEvent event) {
    LSBENCH_PROFILE_STAGE(profiler_, Stage::kRecord);
    if (events_recorded_ != nullptr) events_recorded_->Increment();
    event.worker = worker_;
    event.seq = next_seq_++;
    if (used_ < events_.size()) {
      events_[used_++] = event;
    } else {
      RecordSlow(event);
    }
  }

  /// Records one event per element of a completed batch op. `proto` carries
  /// the request-unit outcome shared by every element (timestamp, latency,
  /// issue, phase, type, retries, failure flags, batch size); each element
  /// contributes its own data-level ok/rows from `results[i]`. Elements get
  /// consecutive seqs from this shard, so the (timestamp, worker, seq)
  /// merge contract keeps a batch contiguous and deterministic.
  ///
  /// The whole-batch arena fast path stamps provenance once and writes
  /// slots directly: one proto copy plus three patched fields per element,
  /// instead of a full per-element copy through Record. Identical recorded
  /// bytes either way (pinned by the batch determinism tests).
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  void RecordBatch(const OpEvent& proto, const OpResult* results,
                   uint32_t count) {
    if (used_ + count <= events_.size()) {
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kRecord);
      if (events_recorded_ != nullptr) events_recorded_->Increment(count);
      OpEvent event = proto;
      event.worker = worker_;
      for (uint32_t i = 0; i < count; ++i) {
        event.ok = !proto.failed && results[i].ok;
        event.rows = results[i].rows;
        event.seq = next_seq_++;
        events_[used_++] = event;
      }
      return;
    }
    for (uint32_t i = 0; i < count; ++i) {
      OpEvent event = proto;
      event.ok = !proto.failed && results[i].ok;
      event.rows = results[i].rows;
      Record(event);
    }
  }

  /// Arms the append profiling hook (Stage::kRecord) and the record
  /// counter. Either pointer may be null; observing the sink never changes
  /// what it records.
  void BindObservability(StageProfiler* profiler, Counter* events_recorded) {
    profiler_ = profiler;
    events_recorded_ = events_recorded;
  }

  uint32_t worker() const { return worker_; }
  size_t recorded() const { return used_; }

  /// Moves the shard out, trimmed to what was actually recorded (the sink
  /// is spent afterwards).
  EventStream TakeEvents() {
    events_.resize(used_);
    used_ = 0;
    return std::move(events_);
  }

 private:
  /// Cold path: the arena is full. Grows the shard (allocates); out of line
  /// so the hot-alloc frontier is this function, not Record.
  void RecordSlow(const OpEvent& event);

  uint32_t worker_;
  uint64_t next_seq_ = 0;
  /// Arena: slots [0, used_) hold recorded events; the rest is headroom
  /// created by Reserve.
  EventStream events_;
  size_t used_ = 0;

  // Observability hooks (null = disabled).
  StageProfiler* profiler_ = nullptr;
  Counter* events_recorded_ = nullptr;
};

/// Merges per-worker event shards into one stream ordered by
/// (timestamp, worker, seq). The tie-break on provenance makes the merged
/// order a pure function of the shards' contents — two runs with identical
/// shards merge identically no matter how threads interleaved. A single
/// already-ordered shard passes through unchanged.
EventStream MergeEventShards(std::vector<EventStream> shards);

/// Canonical one-line-per-event text form of a merged stream. Two runs
/// produced identical event streams iff their serializations are
/// byte-identical — the representation the determinism tests hash.
std::string SerializeEventStream(const EventStream& events);

}  // namespace lsbench

#endif  // LSBENCH_CORE_EVENT_SINK_H_
