#ifndef LSBENCH_CORE_DRIFT_H_
#define LSBENCH_CORE_DRIFT_H_

#include <string>
#include <vector>

#include "core/run_spec.h"
#include "stats/drift.h"

namespace lsbench {

/// One phase transition's measured drift, paired with what the spec's
/// [drift] section declared for it (if anything).
struct DriftTransitionReport {
  std::string from_phase;
  std::string to_phase;
  DriftComponents components;
  /// Declared target from the spec's trajectory; negative when the spec
  /// declares no drift section.
  double declared = -1.0;
  /// |measured - declared| <= tolerance. Vacuously true when undeclared.
  bool within_tolerance = true;
};

/// The full per-transition drift trajectory of a run spec.
struct DriftTrajectoryReport {
  bool declared = false;   ///< Spec carried a [drift] section.
  double tolerance = 0.0;  ///< Bound used for the verdicts (0 if undeclared).
  std::vector<DriftTransitionReport> transitions;

  bool AllWithinTolerance() const {
    for (const DriftTransitionReport& t : transitions) {
      if (!t.within_tolerance) return false;
    }
    return true;
  }
};

/// Measures the drift factor of every phase transition in `spec` with a
/// DriftMeter configured from the spec's [drift] section (defaults when
/// undeclared) and checks each against the declared trajectory. Pure
/// offline measurement: samples throwaway generators, never touches a live
/// run. Deterministic for a given spec.
DriftTrajectoryReport MeasureDriftTrajectory(const RunSpec& spec);

}  // namespace lsbench

#endif  // LSBENCH_CORE_DRIFT_H_
