#ifndef LSBENCH_CORE_WORKLOAD_STREAM_H_
#define LSBENCH_CORE_WORKLOAD_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "core/run_spec.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "util/annotate.h"
#include "util/random.h"
#include "workload/arrival.h"
#include "workload/generator.h"
#include "workload/operation.h"

namespace lsbench {

/// Stage 1 of the execution core: turns a RunSpec's phase sequence into a
/// paced operation stream for one worker. Owns phase-transition blending
/// (the old phase's generator fades out per the configured ramp), arrival
/// pacing (open-loop intended arrivals vs. closed-loop issue-on-completion),
/// and the per-phase RNG forking discipline.
///
/// Determinism contract: a WorkloadStream seeded with `Rng(spec.seed)` and
/// rate_scale 1.0 reproduces the historical monolithic driver's draw
/// sequence bit-for-bit — generator seeds fork as `root.Fork(phase*2 + 1)`,
/// the blend/arrival stream as `root.Fork(phase*2 + 2)`, in that order, and
/// each operation consumes draws in the fixed order (blend?, op, inter-
/// arrival). Additional workers seed disjoint streams from further forks of
/// the run seed, so enabling fan-out never perturbs worker 0.
class WorkloadStream {
 public:
  /// `spec` must outlive the stream. `root` is this worker's RNG root;
  /// `rate_scale` divides open-loop arrival rates across workers (1/N so N
  /// workers still present the spec's aggregate offered load).
  WorkloadStream(const RunSpec* spec, Rng root, double rate_scale);

  WorkloadStream(const WorkloadStream&) = delete;
  WorkloadStream& operator=(const WorkloadStream&) = delete;
  WorkloadStream(WorkloadStream&&) = default;

  /// Enters phase `phase_idx` with this worker's share of the phase's
  /// operations and transition window. `now_rel_nanos` re-anchors open-loop
  /// pacing at the current run-relative time (matching the monolith, which
  /// reset intended arrivals at each phase start).
  void BeginPhase(size_t phase_idx, uint64_t num_operations,
                  uint64_t transition_operations, int64_t now_rel_nanos);

  /// Whether the current phase still has operations to issue.
  bool HasNext() const { return pending_.has_value() || issued_ < phase_ops_; }

  /// One issued operation and when it is intended to start (run-relative).
  struct Issue {
    Operation op;
    int64_t arrival_rel_nanos = 0;
    /// Closed-loop issues have no intended arrival of their own (they start
    /// at the previous completion); open-loop issues are paced.
    bool open_loop = false;
  };

  /// Draws the next operation of the current phase. Requires HasNext().
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  Issue Next();

  /// The operation Next() would return, without consuming it. The service
  /// driver uses this to decide whether the next intended arrival is due
  /// before admitting it to the queue. Drawing eagerly does not perturb the
  /// RNG sequence — the draws happen in the same order either way — and the
  /// issue counter still ticks once per operation, at Next().
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  const Issue& Peek();

  /// Feeds back the completion time of the last issued operation —
  /// closed-loop pacing issues the next operation at this instant.
  void RecordCompletion(int64_t completion_rel_nanos) {
    last_completion_rel_ = completion_rel_nanos;
  }

  /// Arms the generation profiling hook (Stage::kGenerate) and the issue
  /// counter. Either pointer may be null; observing the stream never
  /// perturbs its draw sequence. Call before the first Next().
  void BindObservability(StageProfiler* profiler, Counter* ops_issued) {
    profiler_ = profiler;
    ops_issued_ = ops_issued;
  }

 private:
  /// Draws one issue from the generators / arrival process (shared by
  /// Next() and Peek()); does not touch the issue counter.
  LSBENCH_HOT_PATH
  LSBENCH_DETERMINISTIC
  Issue Draw();

  const RunSpec* spec_;
  Rng root_;
  double rate_scale_;

  // Current-phase state.
  size_t phase_idx_ = 0;
  uint64_t phase_ops_ = 0;
  uint64_t transition_ops_ = 0;
  uint64_t issued_ = 0;
  bool blend_ = false;
  std::unique_ptr<OperationGenerator> generator_;
  std::unique_ptr<OperationGenerator> prev_generator_;
  std::unique_ptr<ArrivalProcess> arrival_;
  Rng mix_rng_;

  // Pacing state (persists across phases, like the monolith's locals).
  int64_t intended_rel_ = 0;
  int64_t last_completion_rel_ = 0;

  // Peek() cache: an issue drawn ahead of its Next() call.
  std::optional<Issue> pending_;

  // Observability hooks (null = disabled).
  StageProfiler* profiler_ = nullptr;
  Counter* ops_issued_ = nullptr;
};

}  // namespace lsbench

#endif  // LSBENCH_CORE_WORKLOAD_STREAM_H_
