#ifndef LSBENCH_CORE_COMPARISON_H_
#define LSBENCH_CORE_COMPARISON_H_

#include <string>
#include <vector>

#include "core/driver.h"
#include "core/run_spec.h"
#include "sut/sut.h"

namespace lsbench {

/// One system's row in a side-by-side comparison.
struct ComparisonRow {
  std::string sut_name;
  double mean_throughput = 0.0;
  double p50_latency_nanos = 0.0;
  double p99_latency_nanos = 0.0;
  uint64_t sla_violations = 0;
  double adjustment_excess_seconds = 0.0;  ///< Summed over all phases.
  double area_vs_ideal = 0.0;
  double offline_train_seconds = 0.0;
  double online_train_seconds = 0.0;
  uint64_t retrain_events = 0;
  size_t memory_bytes = 0;
};

/// The fair-comparison harness the paper calls for (§IV: "provide a factual
/// basis for comparing several systems, whether they be learned systems or
/// a mix of learned and traditional systems"): runs the *same* spec against
/// every SUT with identical seeds, collects a row per system, and keeps the
/// full per-system results for figure-level reports.
struct ComparisonReport {
  std::string run_name;
  std::vector<ComparisonRow> rows;
  std::vector<RunResult> results;  ///< Parallel to rows.

  /// Index of the row with the highest mean throughput.
  size_t BestThroughputIndex() const;
};

/// Runs `spec` against each SUT in order. Hold-out single-execution applies
/// to the spec as a whole, so either disable enforcement in `driver_options`
/// or compare SUTs under specs without hold-out phases.
Result<ComparisonReport> CompareSystems(
    const RunSpec& spec, const std::vector<SystemUnderTest*>& suts,
    const Clock* clock = nullptr, DriverOptions driver_options = {});

/// Extracts a comparison row from a finished run.
ComparisonRow MakeComparisonRow(const RunResult& result);

/// Monospace table of the comparison (one row per system).
std::string RenderComparison(const ComparisonReport& report);

}  // namespace lsbench

#endif  // LSBENCH_CORE_COMPARISON_H_
