#include "core/comparison.h"

#include <sstream>

#include "stats/ascii_chart.h"
#include "util/assert.h"
#include "util/string_util.h"

namespace lsbench {

size_t ComparisonReport::BestThroughputIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].mean_throughput > rows[best].mean_throughput) best = i;
  }
  return best;
}

ComparisonRow MakeComparisonRow(const RunResult& result) {
  ComparisonRow row;
  row.sut_name = result.sut_name;
  row.mean_throughput = result.metrics.mean_throughput;
  row.p50_latency_nanos = result.metrics.overall_latency.Median();
  row.p99_latency_nanos = result.metrics.overall_latency.P99();
  row.sla_violations = result.metrics.total_sla_violations;
  for (const PhaseMetrics& pm : result.metrics.phases) {
    row.adjustment_excess_seconds += pm.adjustment_excess_seconds;
  }
  row.area_vs_ideal = result.metrics.area_vs_ideal;
  row.offline_train_seconds = result.OfflineTrainSeconds();
  row.online_train_seconds = result.final_sut_stats.online_train_seconds;
  row.retrain_events = result.final_sut_stats.retrain_events;
  row.memory_bytes = result.final_sut_stats.memory_bytes;
  return row;
}

Result<ComparisonReport> CompareSystems(
    const RunSpec& spec, const std::vector<SystemUnderTest*>& suts,
    const Clock* clock, DriverOptions driver_options) {
  if (suts.empty()) {
    return Status::InvalidArgument("no systems to compare");
  }
  ComparisonReport report;
  report.run_name = spec.name;
  BenchmarkDriver driver(clock, driver_options);
  for (SystemUnderTest* sut : suts) {
    LSBENCH_ASSERT(sut != nullptr);
    Result<RunResult> result = driver.Run(spec, sut);
    if (!result.ok()) return result.status();
    report.rows.push_back(MakeComparisonRow(result.value()));
    report.results.push_back(std::move(result).value());
  }
  return report;
}

std::string RenderComparison(const ComparisonReport& report) {
  std::ostringstream os;
  os << "=== Comparison on run '" << report.run_name << "' ===\n";
  std::vector<std::vector<std::string>> rows;
  for (const ComparisonRow& r : report.rows) {
    rows.push_back({r.sut_name, HumanCount(r.mean_throughput),
                    HumanDuration(r.p50_latency_nanos),
                    HumanDuration(r.p99_latency_nanos),
                    std::to_string(r.sla_violations),
                    FormatDouble(r.adjustment_excess_seconds, 4),
                    FormatDouble(r.area_vs_ideal, 1),
                    FormatDouble(r.offline_train_seconds +
                                     r.online_train_seconds,
                                 3),
                    std::to_string(r.retrain_events),
                    HumanCount(static_cast<double>(r.memory_bytes))});
  }
  os << RenderTable({"system", "tput", "p50", "p99", "sla_viol",
                     "adj_excess_s", "area_ideal", "train_s", "retrains",
                     "mem_B"},
                    rows);
  if (!report.rows.empty()) {
    os << "best mean throughput: "
       << report.rows[report.BestThroughputIndex()].sut_name << "\n";
  }
  return os.str();
}

}  // namespace lsbench
