#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/run_spec.h"
#include "util/assert.h"

namespace lsbench {

std::vector<CumulativePoint> BuildCumulativeCurve(const EventStream& events,
                                                  int64_t interval_nanos) {
  LSBENCH_ASSERT(interval_nanos > 0);
  std::vector<CumulativePoint> curve;
  curve.push_back({0, 0});
  if (events.empty()) return curve;
  int64_t boundary = interval_nanos;
  uint64_t completed = 0;
  for (const OpEvent& e : events) {
    while (e.timestamp_nanos >= boundary) {
      curve.push_back({boundary, completed});
      boundary += interval_nanos;
    }
    ++completed;
  }
  curve.push_back({boundary, completed});
  return curve;
}

double AreaVsIdeal(const std::vector<CumulativePoint>& curve) {
  if (curve.size() < 2) return 0.0;
  const double t0 = static_cast<double>(curve.front().t_nanos) * 1e-9;
  const double t1 = static_cast<double>(curve.back().t_nanos) * 1e-9;
  const double total = static_cast<double>(curve.back().completed);
  if (t1 <= t0) return 0.0;
  const double ideal_rate = total / (t1 - t0);
  double area = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    const double ta = static_cast<double>(curve[i - 1].t_nanos) * 1e-9;
    const double tb = static_cast<double>(curve[i].t_nanos) * 1e-9;
    const double va = static_cast<double>(curve[i - 1].completed) -
                      ideal_rate * (ta - t0);
    const double vb = static_cast<double>(curve[i].completed) -
                      ideal_rate * (tb - t0);
    area += 0.5 * (va + vb) * (tb - ta);  // Trapezoid of the difference.
  }
  return area;
}

namespace {

/// Linear interpolation of a cumulative curve at time t (clamped).
double CurveAt(const std::vector<CumulativePoint>& curve, double t_nanos) {
  if (curve.empty()) return 0.0;
  if (t_nanos <= static_cast<double>(curve.front().t_nanos)) {
    return static_cast<double>(curve.front().completed);
  }
  if (t_nanos >= static_cast<double>(curve.back().t_nanos)) {
    return static_cast<double>(curve.back().completed);
  }
  const CumulativePoint probe{static_cast<int64_t>(t_nanos), 0};
  const auto it = std::lower_bound(
      curve.begin(), curve.end(), probe,
      [](const CumulativePoint& a, const CumulativePoint& b) {
        return a.t_nanos < b.t_nanos;
      });
  const size_t hi = it - curve.begin();
  const size_t lo = hi - 1;
  const double ta = static_cast<double>(curve[lo].t_nanos);
  const double tb = static_cast<double>(curve[hi].t_nanos);
  const double frac = tb > ta ? (t_nanos - ta) / (tb - ta) : 0.0;
  return static_cast<double>(curve[lo].completed) +
         frac * (static_cast<double>(curve[hi].completed) -
                 static_cast<double>(curve[lo].completed));
}

}  // namespace

double AreaBetweenCurves(const std::vector<CumulativePoint>& a,
                         const std::vector<CumulativePoint>& b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  const double start = std::min(static_cast<double>(a.front().t_nanos),
                                static_cast<double>(b.front().t_nanos));
  const double end = std::max(static_cast<double>(a.back().t_nanos),
                              static_cast<double>(b.back().t_nanos));
  if (end <= start) return 0.0;
  constexpr int kSteps = 512;
  const double dt = (end - start) / kSteps;
  double area = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double t = start + dt * i;
    const double diff = CurveAt(a, t) - CurveAt(b, t);
    const double weight = (i == 0 || i == kSteps) ? 0.5 : 1.0;
    area += weight * diff * dt * 1e-9;
  }
  return area;
}

std::vector<LatencyBand> BuildSlaBands(const EventStream& events,
                                       int64_t interval_nanos,
                                       int64_t sla_nanos) {
  LSBENCH_ASSERT(interval_nanos > 0);
  std::vector<LatencyBand> bands;
  if (events.empty()) return bands;
  const int64_t last = events.back().timestamp_nanos;
  const size_t num_bands =
      static_cast<size_t>(last / interval_nanos) + 1;
  bands.resize(num_bands);
  for (size_t i = 0; i < num_bands; ++i) {
    bands[i].start_nanos = static_cast<int64_t>(i) * interval_nanos;
  }
  for (const OpEvent& e : events) {
    const size_t idx =
        static_cast<size_t>(e.timestamp_nanos / interval_nanos);
    LSBENCH_ASSERT(idx < num_bands);
    if (e.latency_nanos <= sla_nanos) {
      ++bands[idx].within_sla;
    } else {
      ++bands[idx].violated;
    }
  }
  return bands;
}

uint64_t MultiBand::Total() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

std::vector<MultiBand> BuildMultiBands(
    const EventStream& events, int64_t interval_nanos,
    const std::vector<int64_t>& thresholds_nanos) {
  LSBENCH_ASSERT(interval_nanos > 0);
  LSBENCH_ASSERT(!thresholds_nanos.empty());
  for (size_t i = 1; i < thresholds_nanos.size(); ++i) {
    LSBENCH_ASSERT(thresholds_nanos[i - 1] < thresholds_nanos[i]);
  }
  std::vector<MultiBand> bands;
  if (events.empty()) return bands;
  const size_t num_bands =
      static_cast<size_t>(events.back().timestamp_nanos / interval_nanos) + 1;
  bands.resize(num_bands);
  for (size_t i = 0; i < num_bands; ++i) {
    bands[i].start_nanos = static_cast<int64_t>(i) * interval_nanos;
    bands[i].counts.assign(thresholds_nanos.size() + 1, 0);
  }
  for (const OpEvent& e : events) {
    const size_t idx =
        static_cast<size_t>(e.timestamp_nanos / interval_nanos);
    const size_t cls =
        std::lower_bound(thresholds_nanos.begin(), thresholds_nanos.end(),
                         e.latency_nanos) -
        thresholds_nanos.begin();
    ++bands[idx].counts[cls];
  }
  return bands;
}

int64_t CalibrateSla(const EventStream& events, double percentile,
                     double margin) {
  if (events.empty()) return 1000000;  // 1 ms fallback.
  std::vector<double> latencies;
  latencies.reserve(events.size());
  for (const OpEvent& e : events) {
    latencies.push_back(static_cast<double>(e.latency_nanos));
  }
  const double p = Quantile(std::move(latencies), percentile);
  const double threshold = std::max(1.0, p * margin);
  return static_cast<int64_t>(threshold);
}

MetricsOptions MetricsOptions::FromSpec(const RunSpec& spec) {
  MetricsOptions options;
  options.interval_nanos = spec.interval_nanos;
  options.boxplot_sample_nanos = spec.boxplot_sample_nanos;
  options.adjustment_window_ops = spec.adjustment_window_ops;
  options.sla_nanos = spec.sla.threshold_nanos;
  options.sla_auto_percentile = spec.sla.auto_percentile;
  options.sla_auto_margin = spec.sla.auto_margin;
  options.service_enabled = spec.service.enabled;
  options.service_policy = OverloadPolicyToString(spec.service.policy);
  options.service_queue_capacity = spec.service.queue_capacity;
  options.service_slo_p99_nanos = spec.service.slo_p99_nanos;
  options.service_max_shed_fraction = spec.service.max_shed_fraction;
  return options;
}

void ShardAccumulation::Accumulate(const OpEvent& event, int64_t sla_nanos) {
  ++operations;
  if (event.ok) ++ok_operations;
  latency.Record(static_cast<double>(event.latency_nanos));
  if (event.latency_nanos > sla_nanos) ++sla_violations;
  if (event.failed) ++failed_operations;
  if (event.timed_out) ++timeouts;
  if (event.shed) ++shed_operations;
  total_retries += event.retries;
  if (event.open_loop) {
    ++open_loop_operations;
    const int64_t intended = event.timestamp_nanos - event.latency_nanos;
    intended_min_nanos = std::min(intended_min_nanos, intended);
    intended_max_nanos = std::max(intended_max_nanos, intended);
    if (event.queue_shed) {
      ++queue_shed_operations;
    } else {
      // Executed ops only: a shed's "latency" is the policy's decision
      // delay, not a measurement of the SUT. Since issue >= intended
      // arrival, response >= service pointwise, so the p99 gap the report
      // prints — the coordinated-omission error — is nonnegative by
      // construction.
      response_latency.Record(static_cast<double>(event.latency_nanos));
      service_latency.Record(
          static_cast<double>(event.timestamp_nanos - event.issue_nanos));
      queue_wait.Record(
          static_cast<double>(event.issue_nanos - intended));
    }
  }
}

void ShardAccumulation::Merge(const ShardAccumulation& other) {
  operations += other.operations;
  ok_operations += other.ok_operations;
  sla_violations += other.sla_violations;
  failed_operations += other.failed_operations;
  timeouts += other.timeouts;
  shed_operations += other.shed_operations;
  total_retries += other.total_retries;
  latency.Merge(other.latency);
  open_loop_operations += other.open_loop_operations;
  queue_shed_operations += other.queue_shed_operations;
  response_latency.Merge(other.response_latency);
  service_latency.Merge(other.service_latency);
  queue_wait.Merge(other.queue_wait);
  intended_min_nanos = std::min(intended_min_nanos, other.intended_min_nanos);
  intended_max_nanos = std::max(intended_max_nanos, other.intended_max_nanos);
}

RunMetrics ComputeRunMetrics(const EventStream& events,
                             const std::vector<PhaseBoundary>& boundaries,
                             const MetricsOptions& options) {
  RunMetrics metrics;
  metrics.total_operations = events.size();
  if (!events.empty()) {
    metrics.wall_seconds =
        static_cast<double>(events.back().timestamp_nanos) * 1e-9;
    if (metrics.wall_seconds > 0.0) {
      metrics.mean_throughput =
          static_cast<double>(events.size()) / metrics.wall_seconds;
    }
  }

  // SLA threshold: fixed or calibrated on the first phase's events.
  int64_t sla = options.sla_nanos;
  if (sla <= 0) {
    EventStream first_phase;
    for (const OpEvent& e : events) {
      if (e.phase == 0) first_phase.push_back(e);
    }
    sla = CalibrateSla(first_phase, options.sla_auto_percentile,
                       options.sla_auto_margin);
  }
  metrics.sla_nanos = sla;

  // Whole-run totals go through the same mergeable accumulation the
  // multi-worker driver uses per shard, so the two paths cannot diverge.
  ShardAccumulation acc;
  for (const OpEvent& e : events) acc.Accumulate(e, sla);
  metrics.overall_latency = acc.latency;
  metrics.total_sla_violations = acc.sla_violations;
  metrics.resilience.failed_operations = acc.failed_operations;
  metrics.resilience.timeouts = acc.timeouts;
  metrics.resilience.shed_operations = acc.shed_operations;
  metrics.resilience.total_retries = acc.total_retries;
  if (!events.empty()) {
    metrics.resilience.availability =
        static_cast<double>(events.size() -
                            metrics.resilience.failed_operations) /
        static_cast<double>(events.size());
  }

  // Service-mode latency decomposition (populated from the same
  // accumulation; enabled is an explicit spec echo so a run with zero
  // open-loop events still reports the section).
  ServiceMetrics& svc = metrics.service;
  svc.enabled = options.service_enabled;
  svc.policy = options.service_policy;
  svc.queue_capacity = options.service_queue_capacity;
  svc.slo_p99_nanos = options.service_slo_p99_nanos;
  svc.max_shed_fraction = options.service_max_shed_fraction;
  svc.response_latency = acc.response_latency;
  svc.service_latency = acc.service_latency;
  svc.queue_wait = acc.queue_wait;
  svc.open_loop_operations = acc.open_loop_operations;
  svc.queue_shed_operations = acc.queue_shed_operations;
  if (acc.open_loop_operations > 0) {
    svc.shed_fraction = static_cast<double>(acc.queue_shed_operations) /
                        static_cast<double>(acc.open_loop_operations);
    const int64_t span = acc.intended_max_nanos - acc.intended_min_nanos;
    if (span > 0) {
      svc.offered_qps = static_cast<double>(acc.open_loop_operations) /
                        (static_cast<double>(span) * 1e-9);
    }
  }
  if (metrics.wall_seconds > 0.0) {
    svc.achieved_qps =
        static_cast<double>(acc.ok_operations) / metrics.wall_seconds;
  }
  svc.shed_bound_met = svc.shed_fraction <= svc.max_shed_fraction;
  svc.slo_met = svc.slo_p99_nanos <= 0 ||
                svc.response_latency.P99() <=
                    static_cast<double>(svc.slo_p99_nanos);

  metrics.cumulative = BuildCumulativeCurve(events, options.interval_nanos);
  metrics.area_vs_ideal = AreaVsIdeal(metrics.cumulative);
  metrics.bands = BuildSlaBands(events, options.interval_nanos, sla);

  // Per-op-type rollup: one row per operation class, batch classes counted
  // per element with effective (per-element) latency alongside the
  // request-unit latency.
  metrics.op_types.resize(kNumOpTypes);
  for (size_t i = 0; i < kNumOpTypes; ++i) {
    metrics.op_types[i].type = static_cast<OpType>(i);
  }
  for (const OpEvent& e : events) {
    const size_t idx = static_cast<size_t>(e.type);
    LSBENCH_ASSERT(idx < kNumOpTypes);
    OpTypeMetrics& ot = metrics.op_types[idx];
    ++ot.operations;
    if (e.ok) ++ot.ok_operations;
    if (e.failed) ++ot.failed_operations;
    ot.latency.Record(static_cast<double>(e.latency_nanos));
    const uint32_t batch = e.batch > 0 ? e.batch : 1;
    ot.effective_latency.Record(static_cast<double>(e.latency_nanos) /
                                static_cast<double>(batch));
    ot.batch_sum += batch;
  }

  // Per-phase metrics.
  metrics.phases.reserve(boundaries.size());
  size_t event_idx = 0;
  for (const PhaseBoundary& b : boundaries) {
    PhaseMetrics pm;
    pm.phase = b.phase;
    pm.holdout = b.holdout;
    pm.duration_seconds =
        static_cast<double>(b.end_nanos - b.start_nanos) * 1e-9;

    // Events are sorted; phases are contiguous.
    std::vector<double> per_sample_counts;
    int64_t sample_start = b.start_nanos;
    uint64_t sample_count = 0;
    uint64_t window_ops = 0;
    while (event_idx < events.size() &&
           events[event_idx].phase == b.phase) {
      const OpEvent& e = events[event_idx];
      ++pm.operations;
      pm.latency.Record(static_cast<double>(e.latency_nanos));
      if (e.latency_nanos > sla) ++pm.sla_violations;
      if (e.failed) ++pm.failed_operations;
      if (window_ops < options.adjustment_window_ops) {
        ++window_ops;
        if (e.latency_nanos > sla) {
          pm.adjustment_excess_seconds +=
              static_cast<double>(e.latency_nanos - sla) * 1e-9;
        }
      }
      while (e.timestamp_nanos >= sample_start + options.boxplot_sample_nanos) {
        per_sample_counts.push_back(static_cast<double>(sample_count));
        sample_count = 0;
        sample_start += options.boxplot_sample_nanos;
      }
      ++sample_count;
      ++event_idx;
    }
    // Convert per-sample counts to ops/s.
    const double sample_seconds =
        static_cast<double>(options.boxplot_sample_nanos) * 1e-9;
    for (double& c : per_sample_counts) c /= sample_seconds;
    // The trailing sample is partial: scale by its actual duration, and
    // drop it entirely when it covers too little of the interval to be a
    // meaningful throughput estimate (unless it is the only sample).
    if (sample_count > 0) {
      const double partial_seconds =
          static_cast<double>(b.end_nanos - sample_start) * 1e-9;
      if (partial_seconds >= 0.2 * sample_seconds ||
          per_sample_counts.empty()) {
        per_sample_counts.push_back(static_cast<double>(sample_count) /
                                    std::max(partial_seconds, 1e-9));
      }
    }
    pm.throughput_box = ComputeBoxPlot(std::move(per_sample_counts));
    if (pm.duration_seconds > 0.0) {
      pm.mean_throughput =
          static_cast<double>(pm.operations) / pm.duration_seconds;
    }
    metrics.phases.push_back(std::move(pm));
  }
  return metrics;
}

}  // namespace lsbench
