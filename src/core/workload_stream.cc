#include "core/workload_stream.h"

#include <utility>

#include "util/assert.h"

namespace lsbench {

WorkloadStream::WorkloadStream(const RunSpec* spec, Rng root,
                               double rate_scale)
    : spec_(spec), root_(root), rate_scale_(rate_scale) {
  LSBENCH_ASSERT(spec != nullptr);
  LSBENCH_ASSERT(rate_scale > 0.0);
}

void WorkloadStream::BeginPhase(size_t phase_idx, uint64_t num_operations,
                                uint64_t transition_operations,
                                int64_t now_rel_nanos) {
  LSBENCH_ASSERT(phase_idx < spec_->phases.size());
  const PhaseSpec& phase = spec_->phases[phase_idx];

  phase_idx_ = phase_idx;
  phase_ops_ = num_operations;
  transition_ops_ = transition_operations;
  issued_ = 0;

  prev_generator_ = std::move(generator_);
  // Batch-key arena sizing: a batch op's keys stay valid until the
  // generator reuses the slot's ring entry. Inline and service paths keep
  // at most one drawn-ahead issue (Peek) live, but the admission queue
  // stores issues by value up to its capacity — so in [service] mode the
  // ring must outlast queue_capacity in-flight batches (+ the popped issue
  // and the peeked one).
  const size_t batch_arena_slots =
      spec_->service.enabled
          ? static_cast<size_t>(spec_->service.queue_capacity) + 2
          : size_t{4};
  generator_ = std::make_unique<OperationGenerator>(
      &spec_->datasets[phase.dataset_index], phase,
      root_.Fork(phase_idx * 2 + 1).Next(), batch_arena_slots);
  mix_rng_ = root_.Fork(phase_idx * 2 + 2);
  arrival_ = MakeArrivalProcess(phase.arrival,
                                phase.arrival_rate_qps * rate_scale_,
                                phase.arrival_amplitude,
                                phase.arrival_period_seconds);
  LSBENCH_ASSERT(!pending_.has_value());

  blend_ = phase_idx > 0 && prev_generator_ != nullptr &&
           transition_ops_ > 0 &&
           phase.transition_in != TransitionKind::kAbrupt;

  intended_rel_ = now_rel_nanos;
}

WorkloadStream::Issue WorkloadStream::Next() {
  if (ops_issued_ != nullptr) ops_issued_->Increment();
  LSBENCH_ASSERT(HasNext());
  if (pending_.has_value()) {
    Issue issue = *std::move(pending_);
    pending_.reset();
    return issue;
  }
  return Draw();
}

const WorkloadStream::Issue& WorkloadStream::Peek() {
  LSBENCH_ASSERT(HasNext());
  if (!pending_.has_value()) pending_ = Draw();
  return *pending_;
}

WorkloadStream::Issue WorkloadStream::Draw() {
  LSBENCH_PROFILE_STAGE(profiler_, Stage::kGenerate);
  const PhaseSpec& phase = spec_->phases[phase_idx_];
  const uint64_t op_idx = issued_++;

  // Pick the source generator: during a transition window the old phase's
  // stream fades out per the configured ramp.
  OperationGenerator* source = generator_.get();
  if (blend_ && op_idx < transition_ops_) {
    const double progress =
        static_cast<double>(op_idx) / static_cast<double>(transition_ops_);
    const double new_fraction =
        TransitionMixFraction(phase.transition_in, progress);
    if (!mix_rng_.NextBool(new_fraction)) source = prev_generator_.get();
  }

  Issue issue;
  issue.op = source->Next();

  // Arrival pacing: open-loop streams fix the intended arrival times;
  // closed-loop issues immediately after the previous completion.
  const double inter = arrival_->NextInterarrivalSeconds(
      &mix_rng_, static_cast<double>(intended_rel_) * 1e-9);
  if (inter <= 0.0) {
    issue.arrival_rel_nanos = last_completion_rel_;
    issue.open_loop = false;
  } else {
    intended_rel_ += static_cast<int64_t>(inter * 1e9);
    issue.arrival_rel_nanos = intended_rel_;
    issue.open_loop = true;
  }
  return issue;
}

}  // namespace lsbench
