#ifndef LSBENCH_CORE_SPECIALIZATION_H_
#define LSBENCH_CORE_SPECIALIZATION_H_

#include <string>
#include <vector>

#include "core/driver.h"
#include "core/run_spec.h"
#include "stats/descriptive.h"

namespace lsbench {

/// One row of the Fig. 1a specialization chart: a (workload, data
/// distribution) phase with its dissimilarity Φ from the baseline phase and
/// the SUT's throughput distribution there.
struct SpecializationEntry {
  int32_t phase = 0;
  std::string phase_name;
  bool holdout = false;
  /// Φ dissimilarity vs the baseline phase (0 = identical, 1 = maximally
  /// different); combines the data KS statistic and workload Jaccard.
  double phi = 0.0;
  double data_ks = 0.0;            ///< KS statistic between the datasets.
  double workload_jaccard = 1.0;   ///< Plan-subtree Jaccard similarity.
  BoxPlotSummary throughput_box;
  double mean_throughput = 0.0;
};

/// The Fig. 1a report: entries sorted by ascending Φ (the paper: "it should
/// be sufficient to sort the results by Φ value").
struct SpecializationReport {
  int32_t baseline_phase = 0;
  std::vector<SpecializationEntry> entries;
};

/// Options for Φ computation.
struct SpecializationOptions {
  int32_t baseline_phase = 0;
  size_t similarity_sample = 2000;  ///< Ops sampled per phase signature.
  size_t ks_sample = 4096;          ///< Keys subsampled per dataset for KS.
  double data_weight = 0.5;         ///< Weight of the data term inside Φ.
};

/// Builds the specialization report from a completed run.
SpecializationReport BuildSpecializationReport(
    const RunSpec& spec, const RunResult& result,
    const SpecializationOptions& options = {});

}  // namespace lsbench

#endif  // LSBENCH_CORE_SPECIALIZATION_H_
