#ifndef LSBENCH_CORE_RESILIENCE_H_
#define LSBENCH_CORE_RESILIENCE_H_

#include <cstdint>
#include <vector>

#include "obs/metrics_registry.h"
#include "util/random.h"
#include "util/sync.h"

namespace lsbench {

/// How the driver responds to SUT failures: per-operation timeout budgets,
/// retry with exponential backoff (seeded jitter) for transient codes, and
/// a circuit breaker that sheds load in a degraded mode while the error
/// rate is above threshold. All defaults leave resilience off so existing
/// specs behave exactly as before.
struct ResilienceSpec {
  /// Per-operation latency budget measured from the intended arrival; an
  /// operation completing past its deadline counts as a timeout failure
  /// (retries share the same budget). 0 disables timeouts.
  int64_t op_timeout_nanos = 0;

  /// Retries for transient failures (kTimeout/kUnavailable/
  /// kResourceExhausted). 0 disables retries.
  uint32_t max_retries = 0;
  int64_t backoff_initial_nanos = 1000000;  // 1 ms.
  double backoff_multiplier = 2.0;
  int64_t backoff_max_nanos = 1000000000;  // 1 s cap.
  /// Jitter fraction in [0, 1): each delay is scaled by a seeded uniform
  /// factor in [1 - jitter, 1 + jitter].
  double backoff_jitter = 0.0;

  /// Circuit breaker: opens when the failure rate over the last
  /// `breaker_window_ops` outcomes reaches `breaker_failure_threshold`;
  /// while open, operations are shed (skip-and-count degraded mode). After
  /// `breaker_cooldown_nanos` it half-opens and `breaker_half_open_probes`
  /// consecutive successes close it again.
  bool breaker_enabled = false;
  uint64_t breaker_window_ops = 100;
  double breaker_failure_threshold = 0.5;
  int64_t breaker_cooldown_nanos = 100000000;  // 100 ms.
  uint64_t breaker_half_open_probes = 8;

  bool Enabled() const {
    return op_timeout_nanos > 0 || max_retries > 0 || breaker_enabled;
  }
};

bool operator==(const ResilienceSpec& a, const ResilienceSpec& b);

/// Deterministic exponential-backoff schedule with seeded jitter:
/// delay(attempt) = min(initial * multiplier^(attempt-1), max) * jitter
/// where jitter ~ U[1 - j, 1 + j] from the supplied seed. Attempts are
/// 1-based.
class RetryBackoff {
 public:
  RetryBackoff(const ResilienceSpec& spec, uint64_t seed)
      : spec_(spec), rng_(seed) {}

  int64_t NextDelayNanos(uint32_t attempt);

 private:
  ResilienceSpec spec_;
  Rng rng_;
};

/// Classic three-state circuit breaker over a sliding window of operation
/// outcomes. Thread-safe: state transitions are serialized by an internal
/// mutex so a breaker may be shared between workers (the multi-worker
/// driver normally gives each worker its own instance — that keeps fan-out
/// deterministic — but the class itself must not be the reason a shared
/// configuration races). The lock discipline is compiler-proven: every
/// mutable field is GUARDED_BY(mu_) and Clang Thread Safety Analysis
/// rejects any unlocked access (util/sync.h). Time comes in through the
/// call sites so it works identically under VirtualClock.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const ResilienceSpec& spec);

  /// Whether a request may proceed at `now_nanos`. May transition
  /// kOpen -> kHalfOpen when the cooldown has elapsed. Returns false only
  /// while open (the caller sheds the operation).
  bool AllowRequest(int64_t now_nanos) LSBENCH_EXCLUDES(mu_);

  void RecordSuccess(int64_t now_nanos) LSBENCH_EXCLUDES(mu_);
  void RecordFailure(int64_t now_nanos) LSBENCH_EXCLUDES(mu_);

  State state() const LSBENCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return state_;
  }

  /// Times the breaker left the closed state (degraded-mode entries).
  uint64_t open_count() const LSBENCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return open_count_;
  }

  /// Total nanoseconds spent outside the closed state up to `now_nanos`.
  int64_t DegradedNanos(int64_t now_nanos) const LSBENCH_EXCLUDES(mu_);

  /// Arms the registry mirror of the breaker's own tallies: `opens`
  /// increments on every closed -> open transition, `closes` on every
  /// return to closed. Either may be null. Counters are lock-free, so
  /// incrementing them under mu_ cannot deadlock.
  void BindObservability(Counter* opens, Counter* closes)
      LSBENCH_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    opens_counter_ = opens;
    closes_counter_ = closes;
  }

 private:
  void RecordOutcome(int64_t now_nanos, bool failed) LSBENCH_EXCLUDES(mu_);
  void Open(int64_t now_nanos) LSBENCH_REQUIRES(mu_);
  void Close(int64_t now_nanos) LSBENCH_REQUIRES(mu_);

  mutable Mutex mu_;
  const ResilienceSpec spec_;  ///< Immutable after construction; unguarded.
  State state_ LSBENCH_GUARDED_BY(mu_) = State::kClosed;
  /// Ring buffer of the last `breaker_window_ops` outcomes (1 = failure).
  std::vector<uint8_t> window_ LSBENCH_GUARDED_BY(mu_);
  size_t window_head_ LSBENCH_GUARDED_BY(mu_) = 0;
  size_t window_count_ LSBENCH_GUARDED_BY(mu_) = 0;
  uint64_t window_failures_ LSBENCH_GUARDED_BY(mu_) = 0;
  int64_t open_until_nanos_ LSBENCH_GUARDED_BY(mu_) = 0;
  uint64_t half_open_successes_ LSBENCH_GUARDED_BY(mu_) = 0;
  uint64_t open_count_ LSBENCH_GUARDED_BY(mu_) = 0;
  int64_t degraded_accum_nanos_ LSBENCH_GUARDED_BY(mu_) = 0;
  int64_t degraded_since_nanos_ LSBENCH_GUARDED_BY(mu_) = 0;
  Counter* opens_counter_ LSBENCH_GUARDED_BY(mu_) = nullptr;
  Counter* closes_counter_ LSBENCH_GUARDED_BY(mu_) = nullptr;
};

}  // namespace lsbench

#endif  // LSBENCH_CORE_RESILIENCE_H_
