#include "core/driver.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_set>

#include "sut/fault_injection.h"
#include "util/assert.h"
#include "workload/generator.h"

namespace lsbench {

namespace {

/// Process-wide registry of spec hashes whose hold-out phases have already
/// executed (§V-A: hold-out distributions may only run once). Heap-allocated
/// and never destroyed (trivial-destruction rule for statics).
std::unordered_set<uint64_t>& HoldoutRegistry() {
  static auto* registry = new std::unordered_set<uint64_t>();
  return *registry;
}

}  // namespace

double RunResult::OfflineTrainSeconds() const {
  double total = 0.0;
  for (const TrainEvent& t : train_events) total += t.Seconds();
  return total;
}

std::vector<KeyValue> BuildLoadImage(const RunSpec& spec) {
  LSBENCH_ASSERT(!spec.phases.empty());
  const Dataset& ds = spec.datasets[spec.phases[0].dataset_index];
  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  return pairs;
}

BenchmarkDriver::BenchmarkDriver(const Clock* clock, DriverOptions options)
    : clock_(clock != nullptr ? clock : &default_clock_), options_(options) {
  if (options_.virtual_clock != nullptr) {
    LSBENCH_ASSERT_MSG(clock == options_.virtual_clock,
                       "simulation mode requires clock == virtual_clock");
  }
}

void BenchmarkDriver::ResetHoldoutRegistryForTesting() {
  HoldoutRegistry().clear();
}

void BenchmarkDriver::WaitUntil(int64_t target_abs_nanos) {
  if (options_.virtual_clock != nullptr) {
    if (options_.virtual_clock->NowNanos() < target_abs_nanos) {
      options_.virtual_clock->SetNanos(target_abs_nanos);
    }
    return;
  }
  while (clock_->NowNanos() < target_abs_nanos) {
    // Spin: open-loop pacing needs sub-microsecond resolution.
  }
}

Result<RunResult> BenchmarkDriver::Run(const RunSpec& spec,
                                       SystemUnderTest* sut) {
  LSBENCH_ASSERT(sut != nullptr);
  LSBENCH_RETURN_IF_ERROR(spec.Validate());

  const bool has_holdout =
      std::any_of(spec.phases.begin(), spec.phases.end(),
                  [](const PhaseSpec& p) { return p.holdout; });
  if (has_holdout && options_.enforce_holdout_once) {
    const uint64_t hash = spec.StructuralHash();
    if (HoldoutRegistry().count(hash) > 0) {
      return Status::FailedPrecondition(
          "spec '" + spec.name +
          "' contains hold-out phases and has already executed once");
    }
    HoldoutRegistry().insert(hash);
  }

  RunResult result;
  result.sut_name = sut->name();
  result.run_name = spec.name;

  // ---- Fault injection (spec-driven, deterministic) ----
  std::optional<FaultInjectingSut> fault_wrapper;
  if (!spec.faults.Empty()) {
    fault_wrapper.emplace(sut, spec.faults, clock_, options_.virtual_clock);
    sut = &*fault_wrapper;
  }

  // ---- Load ----
  {
    Stopwatch watch(clock_);
    LSBENCH_RETURN_IF_ERROR(sut->Load(BuildLoadImage(spec)));
    result.load_seconds = watch.ElapsedSeconds();
  }

  // ---- Offline training (timed, first-class) ----
  uint64_t failed_trains = 0;
  if (spec.offline_training) {
    TrainEvent te;
    te.start_nanos = clock_->NowNanos();
    const TrainReport report = sut->Train();
    te.end_nanos = clock_->NowNanos();
    te.work_items = report.work_items;
    te.ok = report.status.ok();
    if (!te.ok) ++failed_trains;
    if (report.trained || !te.ok) result.train_events.push_back(te);
  }

  // ---- Execution ----
  const int64_t run_start = clock_->NowNanos();
  Rng master(spec.seed);
  result.events.reserve([&] {
    uint64_t total = 0;
    for (const PhaseSpec& p : spec.phases) total += p.num_operations;
    return total;
  }());

  // Resilience machinery: backoff jitter draws from a dedicated fork of the
  // master stream (so enabling retries never perturbs workload generation),
  // and the circuit breaker tracks health across phases.
  const ResilienceSpec& res = spec.resilience;
  RetryBackoff backoff(res, master.Fork(0x0ba2c0ffULL).Next());
  std::optional<CircuitBreaker> breaker;
  if (res.breaker_enabled) breaker.emplace(res);

  std::unique_ptr<OperationGenerator> prev_generator;
  int64_t last_completion_rel = 0;

  for (size_t phase_idx = 0; phase_idx < spec.phases.size(); ++phase_idx) {
    const PhaseSpec& phase = spec.phases[phase_idx];
    const Dataset& dataset = spec.datasets[phase.dataset_index];

    PhaseBoundary boundary;
    boundary.phase = static_cast<int32_t>(phase_idx);
    boundary.holdout = phase.holdout;
    boundary.start_nanos = clock_->NowNanos() - run_start;

    sut->OnPhaseStart(static_cast<int>(phase_idx), phase.holdout);

    auto generator = std::make_unique<OperationGenerator>(
        &dataset, phase, master.Fork(phase_idx * 2 + 1).Next());
    Rng mix_rng = master.Fork(phase_idx * 2 + 2);
    std::unique_ptr<ArrivalProcess> arrival =
        MakeArrivalProcess(phase.arrival, phase.arrival_rate_qps);

    const bool blend =
        phase_idx > 0 && prev_generator != nullptr &&
        phase.transition_operations > 0 &&
        phase.transition_in != TransitionKind::kAbrupt;

    int64_t intended_rel = clock_->NowNanos() - run_start;
    for (uint64_t op_idx = 0; op_idx < phase.num_operations; ++op_idx) {
      // Pick the source generator: during a transition window the old
      // phase's stream fades out per the configured ramp.
      OperationGenerator* source = generator.get();
      if (blend && op_idx < phase.transition_operations) {
        const double progress =
            static_cast<double>(op_idx) /
            static_cast<double>(phase.transition_operations);
        const double new_fraction =
            TransitionMixFraction(phase.transition_in, progress);
        if (!mix_rng.NextBool(new_fraction)) source = prev_generator.get();
      }
      const Operation op = source->Next();

      // Arrival pacing: open-loop streams fix the intended arrival times;
      // closed-loop issues immediately after the previous completion.
      const double inter = arrival->NextInterarrivalSeconds(
          &mix_rng, static_cast<double>(intended_rel) * 1e-9);
      int64_t arrival_rel;
      if (inter <= 0.0) {
        arrival_rel = last_completion_rel;
      } else {
        intended_rel += static_cast<int64_t>(inter * 1e9);
        arrival_rel = intended_rel;
      }
      WaitUntil(run_start + arrival_rel);

      // Resilient execution: attempt, classify, retry transient failures
      // with backoff inside the op's deadline, or shed when degraded.
      const int64_t deadline_rel =
          res.op_timeout_nanos > 0
              ? arrival_rel + res.op_timeout_nanos
              : std::numeric_limits<int64_t>::max();
      OpResult op_result;
      uint16_t retries = 0;
      bool timed_out = false;
      bool shed = false;
      bool op_failed = false;
      for (;;) {
        if (breaker && !breaker->AllowRequest(clock_->NowNanos())) {
          // Open breaker: degraded mode sheds the operation unexecuted.
          shed = true;
          op_failed = true;
          op_result = OpResult();
          if (options_.virtual_clock != nullptr) {
            options_.virtual_clock->AdvanceNanos(options_.virtual_shed_nanos);
          }
          break;
        }
        op_result = sut->Execute(op);
        if (options_.virtual_clock != nullptr) {
          options_.virtual_clock->AdvanceNanos(options_.virtual_service_nanos);
        }
        const int64_t now_rel = clock_->NowNanos() - run_start;
        const bool past_deadline = now_rel > deadline_rel;
        if (op_result.status.ok() && !past_deadline) {
          if (breaker) breaker->RecordSuccess(clock_->NowNanos());
          break;
        }
        // Failure: a SUT error, a blown latency budget, or both.
        if (breaker) breaker->RecordFailure(clock_->NowNanos());
        if (past_deadline) {
          // The deadline is spent; retrying cannot deliver in time.
          timed_out = true;
          op_failed = true;
          break;
        }
        if (op_result.status.IsTransient() && retries < res.max_retries) {
          ++retries;
          WaitUntil(clock_->NowNanos() + backoff.NextDelayNanos(retries));
          continue;
        }
        op_failed = true;
        break;
      }
      const int64_t completion_rel = clock_->NowNanos() - run_start;

      OpEvent event;
      event.timestamp_nanos = completion_rel;
      event.latency_nanos = std::max<int64_t>(0, completion_rel - arrival_rel);
      event.phase = static_cast<int32_t>(phase_idx);
      event.type = op.type;
      event.ok = !op_failed && op_result.ok;
      event.rows = op_result.rows;
      event.retries = retries;
      event.failed = op_failed;
      event.timed_out = timed_out;
      event.shed = shed;
      result.events.push_back(event);
      last_completion_rel = completion_rel;
    }

    boundary.end_nanos = clock_->NowNanos() - run_start;
    boundary.operations = phase.num_operations;
    result.boundaries.push_back(boundary);
    prev_generator = std::move(generator);
  }

  // ---- Metrics ----
  MetricsOptions mopts;
  mopts.interval_nanos = spec.interval_nanos;
  mopts.boxplot_sample_nanos = spec.boxplot_sample_nanos;
  mopts.adjustment_window_ops = spec.adjustment_window_ops;
  mopts.sla_nanos = spec.sla.threshold_nanos;
  mopts.sla_auto_percentile = spec.sla.auto_percentile;
  mopts.sla_auto_margin = spec.sla.auto_margin;
  result.metrics = ComputeRunMetrics(result.events, result.boundaries, mopts);
  // Driver-owned resilience state the metric layer cannot derive from the
  // event stream alone.
  result.metrics.resilience.failed_trains = failed_trains;
  if (breaker) {
    result.metrics.resilience.breaker_opens = breaker->open_count();
    result.metrics.resilience.degraded_seconds =
        static_cast<double>(breaker->DegradedNanos(clock_->NowNanos())) *
        1e-9;
  }
  result.final_sut_stats = sut->GetStats();
  if (fault_wrapper) result.fault_stats = fault_wrapper->fault_stats();
  return result;
}

}  // namespace lsbench
