#include "core/driver.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/event_sink.h"
#include "core/executor.h"
#include "core/service.h"
#include "core/workload_stream.h"
#include "obs/observability.h"
#include "sut/concurrent_kv.h"
#include "sut/fault_injection.h"
#include "sut/serializing.h"
#include "sut/systems.h"
#include "util/assert.h"
#include "util/sync.h"

namespace lsbench {

namespace {

/// Process-wide registry of spec hashes whose hold-out phases have already
/// executed (§V-A: hold-out distributions may only run once). Heap-allocated
/// and never destroyed (trivial-destruction rule for statics). The set is
/// process-global mutable state, so it carries its own mutex: two drivers
/// running concurrently on different threads must not race the check-insert
/// (the unguarded set was a latent data race the thread-safety pass
/// surfaced).
struct HoldoutRegistry {
  Mutex mu;
  std::unordered_set<uint64_t> executed LSBENCH_GUARDED_BY(mu);
};

HoldoutRegistry& Holdouts() {
  static auto* registry = new HoldoutRegistry();
  return *registry;
}

/// Atomically records `hash` as executed; returns false if it already was
/// (the spec must be rejected).
bool TryClaimHoldout(uint64_t hash) {
  HoldoutRegistry& registry = Holdouts();
  MutexLock lock(registry.mu);
  return registry.executed.insert(hash).second;
}

/// Stream tag for per-worker RNG roots. Worker 0's root is the master
/// itself, so enabling fan-out never perturbs the single-worker stream.
constexpr uint64_t kWorkerStreamTag = 0x3077ab5cULL;

/// Stream tag for the backoff-jitter fork (historical constant — worker 0
/// must reproduce the monolithic driver's backoff sequence).
constexpr uint64_t kBackoffStreamTag = 0x0ba2c0ffULL;

/// Routes one worker's Execute calls through its fault lane. Phase
/// notifications and lifecycle calls are orchestrator business — the
/// wrapped injector receives OnPhaseStart exactly once per phase, from the
/// driver, never per worker.
class LaneSut final : public SystemUnderTest {
 public:
  LaneSut(FaultInjectingSut* fault, size_t lane)
      : fault_(fault), lane_(lane) {}

  std::string name() const override { return fault_->name(); }
  SutConcurrency concurrency() const override {
    return fault_->concurrency();
  }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    return fault_->Load(sorted_pairs);
  }
  TrainReport Train() override { return fault_->Train(); }
  OpResult Execute(const Operation& op) override {
    return fault_->ExecuteLane(lane_, op);
  }
  void ExecuteBatch(const Operation& op, OpResult* results) override {
    fault_->ExecuteLaneBatch(lane_, op, results);
  }
  void OnPhaseStart(int phase_index, bool holdout) override {
    // Intentionally empty: the orchestrator notifies the injector directly.
    (void)phase_index;
    (void)holdout;
  }
  SutStats GetStats() const override { return fault_->GetStats(); }

 private:
  FaultInjectingSut* fault_;
  size_t lane_;
};

/// One worker's slice of the staged execution core: its workload stream,
/// resilient executor, event shard, clocks, and (under fan-out) its lane
/// adapter and private virtual clock.
struct WorkerContext {
  uint32_t worker_id = 0;
  const Clock* clock = nullptr;
  /// The virtual clock this worker paces against in simulation mode: the
  /// driver's own clock at workers == 1, a private per-worker clock under
  /// fan-out, nullptr on the real clock.
  VirtualClock* sim_clock = nullptr;
  std::optional<VirtualClock> private_clock;  ///< Simulation fan-out only.
  std::optional<LaneSut> lane;
  std::optional<WorkloadStream> stream;
  std::optional<ResilientExecutor> executor;
  /// The SUT (or per-worker lane adapter) the executor targets. Engine
  /// selection monomorphizes against this pointer's proven runtime type.
  SystemUnderTest* exec_target = nullptr;
  /// Per-element result arena for batch ops, sized once (off the measured
  /// loop) to the run's largest batch so the hot loop never allocates.
  std::vector<OpResult> batch_results;
  /// Armed only in [service] mode; persists across phases (the shed budget
  /// and the smoothed service time are run-scoped, like the breaker).
  std::optional<AdmissionQueue> admission;
  EventSink sink{0};
  int32_t current_phase = 0;
  /// Armed only when the spec enables observability (and the build keeps
  /// hooks). Heap-held: WorkerObs is immovable (it owns a Mutex) while
  /// WorkerContext lives in a resizable vector.
  std::unique_ptr<WorkerObs> obs;
};

/// Drains one worker's current phase: issue, pace, execute resiliently,
/// record. This is the inner loop both the serial path and every worker
/// thread run; at workers == 1 with the generic engine it reproduces the
/// monolithic driver's loop bit-for-bit.
///
/// The loop is a template over the executor's attempt-dispatch policy: the
/// driver selects — once per phase — either the generic VirtualExec engine
/// or a MonoExec<SutT> instantiation with the proven final SUT type baked
/// in, so the steady state makes zero virtual calls per operation.
template <typename Exec>
void RunWorkerPhaseT(WorkerContext* ctx, int64_t run_start_nanos,
                     const Exec exec) {
  WorkloadStream& stream = *ctx->stream;
  ResilientExecutor& executor = *ctx->executor;
  const Pacer pacer(ctx->clock, ctx->sim_clock);
#if !defined(LSBENCH_NO_TRACING)
  StageProfiler* profiler =
      ctx->obs != nullptr ? &ctx->obs->profiler : nullptr;
#endif
  while (stream.HasNext()) {
    const WorkloadStream::Issue issue = stream.Next();
    {
      LSBENCH_PROFILE_STAGE(profiler, Stage::kPace);
      pacer.PaceUntil(run_start_nanos + issue.arrival_rel_nanos);
    }

    if (IsBatchOp(issue.op.type)) {
      // Batch ops: one request unit (breaker check, deadline, retries, and
      // coordinated-omission charge all happen once), one recorded event
      // per element with distinct seqs.
      OpResult* results = ctx->batch_results.data();
      const ExecOutcome outcome = executor.ExecuteBatchWith(
          exec, issue.op, issue.arrival_rel_nanos, results);
      const int64_t completion_rel = ctx->clock->NowNanos() - run_start_nanos;

      OpEvent proto;
      proto.timestamp_nanos = completion_rel;
      proto.latency_nanos =
          std::max<int64_t>(0, completion_rel - issue.arrival_rel_nanos);
      proto.issue_nanos = completion_rel - proto.latency_nanos;
      proto.phase = ctx->current_phase;
      proto.type = issue.op.type;
      proto.retries = outcome.retries;
      proto.failed = outcome.failed;
      proto.timed_out = outcome.timed_out;
      proto.shed = outcome.shed;
      proto.open_loop = issue.open_loop;
      proto.batch = issue.op.batch_size;
      ctx->sink.RecordBatch(proto, results, issue.op.batch_size);
      stream.RecordCompletion(completion_rel);
      continue;
    }

    const ExecOutcome outcome =
        executor.ExecuteOneWith(exec, issue.op, issue.arrival_rel_nanos);
    const int64_t completion_rel = ctx->clock->NowNanos() - run_start_nanos;

    OpEvent event;
    event.timestamp_nanos = completion_rel;
    event.latency_nanos =
        std::max<int64_t>(0, completion_rel - issue.arrival_rel_nanos);
    // Inline pacing issues the op the moment its arrival is due, so the
    // issue time IS the (clamped) intended arrival — no queueing here.
    event.issue_nanos = completion_rel - event.latency_nanos;
    event.phase = ctx->current_phase;
    event.type = issue.op.type;
    event.ok = !outcome.failed && outcome.result.ok;
    event.rows = outcome.result.rows;
    event.retries = outcome.retries;
    event.failed = outcome.failed;
    event.timed_out = outcome.timed_out;
    event.shed = outcome.shed;
    event.open_loop = issue.open_loop;
    ctx->sink.Record(event);
    stream.RecordCompletion(completion_rel);
  }
}

/// Drains one worker's current phase in [service] mode: arrivals fire at
/// their intended times into the bounded admission queue, the executor
/// drains the queue as fast as the SUT allows, and the overload policy
/// sheds what cannot be served. Unlike RunWorkerPhase, an operation's issue
/// time can lag its intended arrival — that gap (queue wait) is exactly
/// what coordinated-omission-correct latency must include.
template <typename Exec>
void RunWorkerServicePhaseT(WorkerContext* ctx, int64_t run_start_nanos,
                            const Exec exec) {
  WorkloadStream& stream = *ctx->stream;
  ResilientExecutor& executor = *ctx->executor;
  AdmissionQueue& queue = *ctx->admission;
  const Pacer pacer(ctx->clock, ctx->sim_clock);
#if !defined(LSBENCH_NO_TRACING)
  StageProfiler* profiler =
      ctx->obs != nullptr ? &ctx->obs->profiler : nullptr;
#endif

  // Sheds complete instantly at the decision point: no SUT work happens,
  // and the virtual clock does not advance (that keeps overload schedules
  // hand-computable). Their response time still counts from the intended
  // arrival — a dropped request is a served-badly request, not a missing
  // sample. A shed batch op sheds all of its elements: one event each,
  // sharing the request unit's timestamps.
  const auto record_shed = [ctx](const WorkloadStream::Issue& issue,
                                 int64_t now_rel) {
    OpEvent event;
    event.timestamp_nanos = now_rel;
    event.latency_nanos =
        std::max<int64_t>(0, now_rel - issue.arrival_rel_nanos);
    event.issue_nanos = now_rel;
    event.phase = ctx->current_phase;
    event.type = issue.op.type;
    event.ok = false;
    event.failed = true;
    event.queue_shed = true;
    event.open_loop = issue.open_loop;
    event.batch = OpResultCount(issue.op);
    for (uint32_t i = 0; i < event.batch; ++i) ctx->sink.Record(event);
  };

  while (stream.HasNext() || !queue.empty()) {
    const int64_t now_rel = ctx->clock->NowNanos() - run_start_nanos;

    // Fire every arrival that is due. Admission consults the breaker: a
    // non-closed state means the SUT is degraded and the SLO-aware policy
    // sheds more eagerly.
    while (stream.HasNext() &&
           stream.Peek().arrival_rel_nanos <= now_rel) {
      const CircuitBreaker* breaker = executor.breaker();
      const bool degraded = breaker != nullptr &&
                            breaker->state() != CircuitBreaker::State::kClosed;
      const WorkloadStream::Issue arrival = stream.Next();
      const AdmissionQueue::Admission admission =
          queue.Offer(arrival, now_rel, degraded);
      if (admission.shed.has_value()) record_shed(*admission.shed, now_rel);
    }

    if (queue.empty()) {
      if (!stream.HasNext()) break;
      {
        LSBENCH_PROFILE_STAGE(profiler, Stage::kPace);
        pacer.PaceUntil(run_start_nanos + stream.Peek().arrival_rel_nanos);
      }
      continue;
    }

    const WorkloadStream::Issue issue = queue.PopFront(now_rel);

    if (IsBatchOp(issue.op.type)) {
      OpResult* results = ctx->batch_results.data();
      const ExecOutcome outcome = executor.ExecuteBatchWith(
          exec, issue.op, issue.arrival_rel_nanos, results);
      const int64_t completion_rel = ctx->clock->NowNanos() - run_start_nanos;
      queue.RecordServiceTime(completion_rel - now_rel);

      OpEvent proto;
      proto.timestamp_nanos = completion_rel;
      proto.latency_nanos =
          std::max<int64_t>(0, completion_rel - issue.arrival_rel_nanos);
      proto.issue_nanos = now_rel;
      proto.phase = ctx->current_phase;
      proto.type = issue.op.type;
      proto.retries = outcome.retries;
      proto.failed = outcome.failed;
      proto.timed_out = outcome.timed_out;
      proto.shed = outcome.shed;
      proto.open_loop = issue.open_loop;
      proto.batch = issue.op.batch_size;
      ctx->sink.RecordBatch(proto, results, issue.op.batch_size);
      stream.RecordCompletion(completion_rel);
      continue;
    }

    const ExecOutcome outcome =
        executor.ExecuteOneWith(exec, issue.op, issue.arrival_rel_nanos);
    const int64_t completion_rel = ctx->clock->NowNanos() - run_start_nanos;
    queue.RecordServiceTime(completion_rel - now_rel);

    OpEvent event;
    event.timestamp_nanos = completion_rel;
    event.latency_nanos =
        std::max<int64_t>(0, completion_rel - issue.arrival_rel_nanos);
    event.issue_nanos = now_rel;
    event.phase = ctx->current_phase;
    event.type = issue.op.type;
    event.ok = !outcome.failed && outcome.result.ok;
    event.rows = outcome.result.rows;
    event.retries = outcome.retries;
    event.failed = outcome.failed;
    event.timed_out = outcome.timed_out;
    event.shed = outcome.shed;
    event.open_loop = issue.open_loop;
    ctx->sink.Record(event);
    stream.RecordCompletion(completion_rel);
  }
}

// ---- Engine selection ----
// One inline-loop and one service-loop entry point per engine, with a
// uniform signature so phase orchestration stays a plain function-pointer
// call. The monomorphized wrappers re-derive the typed SUT pointer with a
// static_cast that is only reached after SelectEngines proved the runtime
// type via dynamic_cast.

using PhaseFn = void (*)(WorkerContext*, int64_t);

void RunWorkerPhaseVirtual(WorkerContext* ctx, int64_t run_start_nanos) {
  RunWorkerPhaseT(ctx, run_start_nanos, VirtualExec{ctx->exec_target});
}

void RunWorkerServicePhaseVirtual(WorkerContext* ctx,
                                  int64_t run_start_nanos) {
  RunWorkerServicePhaseT(ctx, run_start_nanos, VirtualExec{ctx->exec_target});
}

template <typename SutT>
void RunWorkerPhaseMono(WorkerContext* ctx, int64_t run_start_nanos) {
  RunWorkerPhaseT(ctx, run_start_nanos,
                  MonoExec<SutT>{static_cast<SutT*>(ctx->exec_target)});
}

template <typename SutT>
void RunWorkerServicePhaseMono(WorkerContext* ctx, int64_t run_start_nanos) {
  RunWorkerServicePhaseT(ctx, run_start_nanos,
                         MonoExec<SutT>{static_cast<SutT*>(ctx->exec_target)});
}

struct PhaseEngines {
  PhaseFn inline_loop = nullptr;
  PhaseFn service_loop = nullptr;
};

template <typename SutT>
constexpr PhaseEngines MonoEngines() {
  return {&RunWorkerPhaseMono<SutT>, &RunWorkerServicePhaseMono<SutT>};
}

/// Picks the execution engine for the phase about to run. Monomorphization
/// is sound only on a proven exact runtime type — all cases below are
/// final classes, so a successful dynamic_cast is such a proof. The
/// driver's own SerializingSut wrapper is itself in the chain: the mono
/// engine binds the *wrapper's* Execute/ExecuteBatch statically (the lock
/// still guards every call; only the outer virtual dispatch is removed),
/// so serial SUTs under fan-out keep a monomorphized loop. Fault lanes and
/// user-supplied decorators fail every cast and fall back to the generic
/// virtual engine, preserving their must-see-every-call semantics.
PhaseEngines SelectEngines(SystemUnderTest* target) {
  if (dynamic_cast<BTreeSystem*>(target) != nullptr) {
    return MonoEngines<BTreeSystem>();
  }
  if (dynamic_cast<LearnedKvSystem*>(target) != nullptr) {
    return MonoEngines<LearnedKvSystem>();
  }
  if (dynamic_cast<PartitionedKvSystem*>(target) != nullptr) {
    return MonoEngines<PartitionedKvSystem>();
  }
  if (dynamic_cast<SerializingSut*>(target) != nullptr) {
    return MonoEngines<SerializingSut>();
  }
  return {&RunWorkerPhaseVirtual, &RunWorkerServicePhaseVirtual};
}

}  // namespace

double RunResult::OfflineTrainSeconds() const {
  double total = 0.0;
  for (const TrainEvent& t : train_events) total += t.Seconds();
  return total;
}

std::vector<KeyValue> BuildLoadImage(const RunSpec& spec) {
  LSBENCH_ASSERT(!spec.phases.empty());
  const Dataset& ds = spec.datasets[spec.phases[0].dataset_index];
  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  return pairs;
}

uint64_t WorkerShare(uint64_t total, uint32_t workers, uint32_t worker) {
  LSBENCH_ASSERT(workers > 0 && worker < workers);
  return total / workers + (worker < total % workers ? 1 : 0);
}

BenchmarkDriver::BenchmarkDriver(const Clock* clock, DriverOptions options)
    : clock_(clock != nullptr ? clock : &default_clock_), options_(options) {
  if (options_.virtual_clock != nullptr) {
    LSBENCH_ASSERT_MSG(clock == options_.virtual_clock,
                       "simulation mode requires clock == virtual_clock");
  }
}

void BenchmarkDriver::ResetHoldoutRegistryForTesting() {
  HoldoutRegistry& registry = Holdouts();
  MutexLock lock(registry.mu);
  registry.executed.clear();
}

Result<RunResult> BenchmarkDriver::Run(const RunSpec& spec,
                                       SystemUnderTest* sut) {
  LSBENCH_ASSERT(sut != nullptr);
  LSBENCH_RETURN_IF_ERROR(spec.Validate());

  const bool has_holdout =
      std::any_of(spec.phases.begin(), spec.phases.end(),
                  [](const PhaseSpec& p) { return p.holdout; });
  if (has_holdout && options_.enforce_holdout_once) {
    if (!TryClaimHoldout(spec.StructuralHash())) {
      return Status::FailedPrecondition(
          "spec '" + spec.name +
          "' contains hold-out phases and has already executed once");
    }
  }

  RunResult result;
  result.sut_name = sut->name();
  result.run_name = spec.name;

  const uint32_t workers = spec.execution.workers;

  // ---- SUT concurrency contract ----
  // Serial systems keep working under fan-out behind a driver-side lock;
  // thread-safe systems run bare.
  std::optional<SerializingSut> serializer;
  if (workers > 1 && sut->concurrency() == SutConcurrency::kSerial) {
    serializer.emplace(sut);
    sut = &*serializer;
  }

  // ---- Fault injection (spec-driven, deterministic) ----
  std::optional<FaultInjectingSut> fault_wrapper;
  if (!spec.faults.Empty()) {
    fault_wrapper.emplace(sut, spec.faults, clock_, options_.virtual_clock);
    sut = &*fault_wrapper;
  }

  // ---- Observability arming (driver level) ----
  // The driver's own instruments carry run-scoped work: load/train before
  // the phases, merge/metrics after, plus the SUT's registry instruments
  // (the SUT is shared across workers, so it binds into this registry —
  // its instruments are thread-safe by construction). Workers get private
  // shards below. Compiled out entirely under LSBENCH_NO_TRACING.
  const ObservabilitySpec& obs_spec = spec.observability;
#if !defined(LSBENCH_NO_TRACING)
  std::unique_ptr<WorkerObs> driver_obs;
  if (obs_spec.Enabled()) {
    driver_obs = std::make_unique<WorkerObs>(kDriverTraceWorker);
    if (obs_spec.profile) driver_obs->profiler.Bind(clock_);
    if (obs_spec.metrics) sut->BindObservability(&driver_obs->registry);
  }
#endif

  // ---- Load ----
  {
    Stopwatch watch(clock_);
    LSBENCH_RETURN_IF_ERROR(sut->Load(BuildLoadImage(spec)));
    result.load_seconds = watch.ElapsedSeconds();
#if !defined(LSBENCH_NO_TRACING)
    if (driver_obs != nullptr) {
      driver_obs->profiler.Add(Stage::kLoad, watch.ElapsedNanos());
    }
#endif
  }

  // ---- Offline training (timed, first-class) ----
  uint64_t failed_trains = 0;
  if (spec.offline_training) {
    TrainEvent te;
    te.start_nanos = clock_->NowNanos();
    const TrainReport report = sut->Train();
    te.end_nanos = clock_->NowNanos();
    te.work_items = report.work_items;
    te.ok = report.status.ok();
    if (!te.ok) ++failed_trains;
    if (report.trained || !te.ok) result.train_events.push_back(te);
#if !defined(LSBENCH_NO_TRACING)
    if (driver_obs != nullptr) {
      driver_obs->profiler.Add(Stage::kTrain, te.end_nanos - te.start_nanos);
    }
#endif
  }

  // ---- Execution ----
  const int64_t run_start = clock_->NowNanos();
#if !defined(LSBENCH_NO_TRACING)
  if (driver_obs != nullptr && obs_spec.trace) {
    driver_obs->tracer.Bind(clock_, run_start);
  }
#endif
  const Rng master(spec.seed);
  const bool simulated = options_.virtual_clock != nullptr;

  ResilientExecutor::Options exec_options;
  exec_options.run_start_nanos = run_start;
  exec_options.virtual_service_nanos = options_.virtual_service_nanos;
  exec_options.virtual_shed_nanos = options_.virtual_shed_nanos;

  std::vector<WorkerContext> contexts(workers);
  uint64_t total_ops = 0;
  for (const PhaseSpec& p : spec.phases) total_ops += p.num_operations;

  // Batch accounting: a batch issue expands into batch_size per-element
  // events, and transition blending can carry the previous phase's batch
  // class into this phase's window — so each phase's event multiplier is
  // the largest batch its window can draw.
  const auto phase_has_batch = [](const PhaseSpec& p) {
    return p.mix.batch_get > 0.0 || p.mix.batch_put > 0.0;
  };
  uint32_t max_batch = 1;
  std::vector<uint64_t> phase_event_mult(spec.phases.size(), 1);
  for (size_t i = 0; i < spec.phases.size(); ++i) {
    uint64_t mult = 1;
    if (phase_has_batch(spec.phases[i])) mult = spec.phases[i].batch_size;
    if (i > 0 && phase_has_batch(spec.phases[i - 1])) {
      mult = std::max<uint64_t>(mult, spec.phases[i - 1].batch_size);
    }
    phase_event_mult[i] = mult;
    max_batch = std::max<uint32_t>(max_batch,
                                   static_cast<uint32_t>(mult));
  }

  for (uint32_t w = 0; w < workers; ++w) {
    WorkerContext& ctx = contexts[w];
    ctx.worker_id = w;
    ctx.sink = EventSink(w);
    uint64_t worker_events = 0;
    for (size_t i = 0; i < spec.phases.size(); ++i) {
      worker_events +=
          WorkerShare(spec.phases[i].num_operations, workers, w) *
          phase_event_mult[i];
    }
    ctx.sink.Reserve(worker_events + workers);
    ctx.batch_results.resize(max_batch);

    // Clocks: the single worker shares the driver's; under simulated
    // fan-out each worker advances a private virtual clock, synchronized
    // at phase boundaries.
    if (workers > 1 && simulated) {
      ctx.private_clock.emplace();
      ctx.private_clock->SetNanos(run_start);
      ctx.clock = &*ctx.private_clock;
      ctx.sim_clock = &*ctx.private_clock;
    } else {
      ctx.clock = clock_;
      ctx.sim_clock = options_.virtual_clock;  // nullptr on the real clock.
    }

    // RNG roots: worker 0 IS the master stream (bit-identity), workers
    // w > 0 fork disjoint streams.
    const Rng root = w == 0 ? master : master.Fork(kWorkerStreamTag + w);
    ctx.stream.emplace(&spec, root, 1.0 / static_cast<double>(workers));

    SystemUnderTest* target = sut;
    if (workers > 1 && fault_wrapper) {
      ctx.lane.emplace(&*fault_wrapper, w);
      target = &*ctx.lane;
    }
    ctx.exec_target = target;
    ctx.executor.emplace(target, spec.resilience,
                         Pacer(ctx.clock, ctx.sim_clock),
                         root.Fork(kBackoffStreamTag).Next(),
                         spec.resilience.breaker_enabled, exec_options);
    if (spec.service.enabled) ctx.admission.emplace(spec.service);

#if !defined(LSBENCH_NO_TRACING)
    // Per-worker observability shard. The hooks only *read* the worker's
    // clock — they never advance it or draw randomness — so arming them
    // cannot perturb the operation stream (pinned by test).
    if (obs_spec.Enabled()) {
      ctx.obs = std::make_unique<WorkerObs>(w);
      Tracer* tracer = nullptr;
      StageProfiler* profiler = nullptr;
      MetricsRegistry* registry = nullptr;
      if (obs_spec.trace) {
        ctx.obs->tracer.Bind(ctx.clock, run_start);
        ctx.obs->tracer.Reserve(static_cast<size_t>(std::min<uint64_t>(
            WorkerShare(total_ops, workers, w), uint64_t{1} << 20)));
        tracer = &ctx.obs->tracer;
      }
      if (obs_spec.profile) {
        ctx.obs->profiler.Bind(ctx.clock);
        profiler = &ctx.obs->profiler;
      }
      if (obs_spec.metrics) registry = &ctx.obs->registry;
      ctx.stream->BindObservability(
          profiler, registry != nullptr
                        ? registry->GetCounter("stream.ops_issued")
                        : nullptr);
      ctx.sink.BindObservability(
          profiler, registry != nullptr
                        ? registry->GetCounter("sink.events_recorded")
                        : nullptr);
      ctx.executor->BindObservability(tracer, profiler, registry);
      if (ctx.admission.has_value() && registry != nullptr) {
        ctx.admission->BindObservability(
            registry->GetGauge("service.queue_depth"),
            registry->GetGauge("service.queue_peak_depth"),
            registry->GetCounter("service.admitted"),
            registry->GetCounter("service.shed"),
            registry->GetHistogram("service.queue_wait"));
      }
    }
#endif
  }

  // Under fan-out, bind one fault lane (with its clocks) per worker.
  if (workers > 1 && fault_wrapper) {
    std::vector<FaultInjectingSut::LaneClocks> lanes(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      lanes[w].clock = contexts[w].clock;
      lanes[w].virtual_clock = contexts[w].sim_clock;
    }
    fault_wrapper->ConfigureLanes(std::move(lanes));
  }

  for (size_t phase_idx = 0; phase_idx < spec.phases.size(); ++phase_idx) {
    const PhaseSpec& phase = spec.phases[phase_idx];

    PhaseBoundary boundary;
    boundary.phase = static_cast<int32_t>(phase_idx);
    boundary.holdout = phase.holdout;
    boundary.start_nanos = clock_->NowNanos() - run_start;

    // Exactly one notification per phase, through the full wrapper chain.
    sut->OnPhaseStart(static_cast<int>(phase_idx), phase.holdout);

    for (uint32_t w = 0; w < workers; ++w) {
      WorkerContext& ctx = contexts[w];
      ctx.current_phase = static_cast<int32_t>(phase_idx);
#if !defined(LSBENCH_NO_TRACING)
      if (ctx.obs != nullptr) {
        ctx.obs->tracer.set_phase(static_cast<int32_t>(phase_idx));
        ctx.obs->profiler.set_phase(static_cast<int32_t>(phase_idx));
      }
#endif
      ctx.stream->BeginPhase(
          phase_idx, WorkerShare(phase.num_operations, workers, w),
          WorkerShare(phase.transition_operations, workers, w),
          ctx.clock->NowNanos() - run_start);
    }

    // Engine selection, once at phase start: if every worker drives the
    // bare SUT (no wrappers, no lanes), monomorphize the whole inner loop
    // on its proven final type — zero virtual calls per op in the steady
    // state. Workers always share the target's runtime type, so worker 0
    // decides for all. Service mode swaps the inner loop: arrivals fire
    // into the admission queue instead of pacing inline. Everything around
    // it (barriers, merge, clocks) is unchanged.
    const PhaseEngines engines = SelectEngines(contexts[0].exec_target);
    const PhaseFn run_worker =
        spec.service.enabled ? engines.service_loop : engines.inline_loop;

    if (workers == 1) {
      run_worker(&contexts[0], run_start);
    } else if (simulated) {
      // Deterministic simulated fan-out: workers run sequentially on
      // private virtual clocks, then a *virtual barrier* advances every
      // clock to the phase's maximum. Event order is recovered at merge.
      for (WorkerContext& ctx : contexts) run_worker(&ctx, run_start);
      int64_t max_nanos = options_.virtual_clock->NowNanos();
      for (const WorkerContext& ctx : contexts) {
        max_nanos = std::max(max_nanos, ctx.clock->NowNanos());
      }
      for (WorkerContext& ctx : contexts) {
        if (ctx.private_clock->NowNanos() < max_nanos) {
          ctx.private_clock->SetNanos(max_nanos);
        }
      }
      if (options_.virtual_clock->NowNanos() < max_nanos) {
        options_.virtual_clock->SetNanos(max_nanos);
      }
    } else {
      // Real-clock fan-out: one joined thread per worker; the join is the
      // phase barrier. Threads are never detached (lsbench-lint:
      // no-detached-thread).
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (WorkerContext& ctx : contexts) {
        threads.emplace_back(run_worker, &ctx, run_start);
      }
      for (std::thread& t : threads) t.join();
    }

    boundary.end_nanos = clock_->NowNanos() - run_start;
    boundary.operations = phase.num_operations;
    result.boundaries.push_back(boundary);

#if !defined(LSBENCH_NO_TRACING)
    // Orchestrator-level phase span, recorded from the already-measured
    // boundary so it costs nothing extra. No-op while the tracer is unbound.
    if (driver_obs != nullptr) {
      driver_obs->tracer.set_phase(static_cast<int32_t>(phase_idx));
      driver_obs->tracer.Record("phase", boundary.start_nanos,
                                boundary.end_nanos);
    }
#endif
  }

  // ---- Merge shards ----
  Stopwatch merge_watch(clock_);
  std::vector<EventStream> shards;
  shards.reserve(workers);
  for (WorkerContext& ctx : contexts) {
    shards.push_back(ctx.sink.TakeEvents());
  }
  result.events = MergeEventShards(std::move(shards));
#if !defined(LSBENCH_NO_TRACING)
  if (driver_obs != nullptr) {
    driver_obs->profiler.set_phase(PhaseStageBreakdown::kRunLevelPhase);
    driver_obs->profiler.Add(Stage::kMerge, merge_watch.ElapsedNanos());
  }
#endif

  // ---- Metrics ----
  Stopwatch metrics_watch(clock_);
  result.metrics = ComputeRunMetrics(result.events, result.boundaries,
                                     MetricsOptions::FromSpec(spec));
#if !defined(LSBENCH_NO_TRACING)
  if (driver_obs != nullptr) {
    driver_obs->profiler.Add(Stage::kMetrics, metrics_watch.ElapsedNanos());
  }
#endif
  // Driver-owned resilience state the metric layer cannot derive from the
  // event stream alone.
  result.metrics.resilience.failed_trains = failed_trains;
  for (const WorkerContext& ctx : contexts) {
    const CircuitBreaker* breaker = ctx.executor->breaker();
    if (breaker == nullptr) continue;
    result.metrics.resilience.breaker_opens += breaker->open_count();
    result.metrics.resilience.degraded_seconds +=
        static_cast<double>(breaker->DegradedNanos(ctx.clock->NowNanos())) *
        1e-9;
  }
  result.final_sut_stats = sut->GetStats();
  if (fault_wrapper) result.fault_stats = fault_wrapper->fault_stats();

  // ---- Observability collection ----
  // Worker shards plus the driver's own shard merge exactly like event
  // shards: the result is a pure function of shard contents.
  result.observability.spec = obs_spec;
#if !defined(LSBENCH_NO_TRACING)
  if (obs_spec.Enabled()) {
    std::vector<TraceStream> trace_shards;
    std::vector<MetricsSnapshot> metric_shards;
    for (WorkerContext& ctx : contexts) {
      if (ctx.obs == nullptr) continue;
      trace_shards.push_back(ctx.obs->tracer.TakeSpans());
      MergeStageBreakdown(&result.observability.stages,
                          ctx.obs->profiler.Breakdown());
      metric_shards.push_back(ctx.obs->registry.Snapshot());
    }
    if (driver_obs != nullptr) {
      trace_shards.push_back(driver_obs->tracer.TakeSpans());
      MergeStageBreakdown(&result.observability.stages,
                          driver_obs->profiler.Breakdown());
      metric_shards.push_back(driver_obs->registry.Snapshot());
    }
    if (obs_spec.trace) {
      result.observability.trace = MergeTraceShards(std::move(trace_shards));
    }
    if (obs_spec.metrics) {
      LSBENCH_ASSIGN_OR_RETURN(result.observability.metrics,
                               MergeMetricsShards(metric_shards));
    }
  }
#endif
  return result;
}

}  // namespace lsbench
