#include "core/regression.h"

#include <sstream>

#include "util/string_util.h"

namespace lsbench {

namespace {

void Flag(RegressionReport* report, const std::string& metric,
          double baseline, double candidate, double limit) {
  report->findings.push_back({metric, baseline, candidate, limit});
}

}  // namespace

RegressionReport CheckRegression(const RunResult& baseline,
                                 const RunResult& candidate,
                                 const RegressionTolerances& tolerances) {
  RegressionReport report;

  if (baseline.metrics.phases.size() != candidate.metrics.phases.size()) {
    Flag(&report, "phase_count",
         static_cast<double>(baseline.metrics.phases.size()),
         static_cast<double>(candidate.metrics.phases.size()), 0.0);
    return report;  // Further comparisons would be apples-to-oranges.
  }

  // Throughput floor.
  const double base_tput = baseline.metrics.mean_throughput;
  const double cand_tput = candidate.metrics.mean_throughput;
  if (base_tput > 0.0 &&
      cand_tput < base_tput * tolerances.min_throughput_ratio) {
    Flag(&report, "mean_throughput", base_tput, cand_tput,
         base_tput * tolerances.min_throughput_ratio);
  }

  // p99 latency ceiling.
  const double base_p99 = baseline.metrics.overall_latency.P99();
  const double cand_p99 = candidate.metrics.overall_latency.P99();
  if (base_p99 > 0.0 &&
      cand_p99 > base_p99 * tolerances.max_p99_latency_ratio) {
    Flag(&report, "p99_latency_nanos", base_p99, cand_p99,
         base_p99 * tolerances.max_p99_latency_ratio);
  }

  // SLA violations ceiling (with absolute slack for small counts).
  const double base_viol =
      static_cast<double>(baseline.metrics.total_sla_violations);
  const double cand_viol =
      static_cast<double>(candidate.metrics.total_sla_violations);
  const double viol_limit =
      base_viol * tolerances.max_violation_ratio +
      static_cast<double>(tolerances.violation_slack);
  if (cand_viol > viol_limit) {
    Flag(&report, "sla_violations", base_viol, cand_viol, viol_limit);
  }

  // Training budget ceiling.
  const double base_train = baseline.OfflineTrainSeconds() +
                            baseline.final_sut_stats.online_train_seconds;
  const double cand_train = candidate.OfflineTrainSeconds() +
                            candidate.final_sut_stats.online_train_seconds;
  if (base_train > 0.0 &&
      cand_train > base_train * tolerances.max_train_seconds_ratio) {
    Flag(&report, "train_seconds", base_train, cand_train,
         base_train * tolerances.max_train_seconds_ratio);
  }

  // Per-phase throughput floors (a phase-local regression can hide inside
  // a healthy global mean — the Lesson-2 failure mode).
  for (size_t i = 0; i < baseline.metrics.phases.size(); ++i) {
    const double b = baseline.metrics.phases[i].mean_throughput;
    const double c = candidate.metrics.phases[i].mean_throughput;
    if (b > 0.0 && c < b * tolerances.min_throughput_ratio) {
      Flag(&report, "phase" + std::to_string(i) + "_throughput", b, c,
           b * tolerances.min_throughput_ratio);
    }
  }
  return report;
}

std::string RenderRegressionReport(const RegressionReport& report) {
  if (report.Passed()) return "regression check: PASS\n";
  std::ostringstream os;
  os << "regression check: FAIL (" << report.findings.size()
     << " finding(s))\n";
  for (const RegressionFinding& f : report.findings) {
    os << "  " << f.metric << ": baseline=" << FormatDouble(f.baseline, 2)
       << " candidate=" << FormatDouble(f.candidate, 2)
       << " limit=" << FormatDouble(f.limit, 2) << "\n";
  }
  return os.str();
}

}  // namespace lsbench
