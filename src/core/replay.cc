#include "core/replay.h"

#include "util/assert.h"
#include "workload/generator.h"

namespace lsbench {

OperationTrace RecordTrace(const Dataset& dataset, const PhaseSpec& phase,
                           size_t count, uint64_t seed) {
  OperationGenerator generator(&dataset, phase, seed);
  OperationTrace trace;
  for (size_t i = 0; i < count; ++i) trace.Append(generator.Next());
  return trace;
}

Result<RunResult> ReplayTrace(const OperationTrace& trace,
                              const std::vector<KeyValue>& load_image,
                              SystemUnderTest* sut, const Clock* clock,
                              ReplayOptions options) {
  LSBENCH_ASSERT(sut != nullptr);
  if (trace.empty()) {
    return Status::InvalidArgument("empty trace");
  }
  RealClock default_clock;
  if (clock == nullptr) clock = &default_clock;
  if (options.virtual_clock != nullptr) {
    LSBENCH_ASSERT_MSG(clock == options.virtual_clock,
                       "simulation mode requires clock == virtual_clock");
  }

  RunResult result;
  result.sut_name = sut->name();
  result.run_name = "trace_replay";

  {
    Stopwatch watch(clock);
    LSBENCH_RETURN_IF_ERROR(sut->Load(load_image));
    result.load_seconds = watch.ElapsedSeconds();
  }
  if (options.offline_training) {
    TrainEvent te;
    te.start_nanos = clock->NowNanos();
    const TrainReport report = sut->Train();
    te.end_nanos = clock->NowNanos();
    te.work_items = report.work_items;
    if (report.trained) result.train_events.push_back(te);
  }

  sut->OnPhaseStart(0, /*holdout=*/false);
  const int64_t run_start = clock->NowNanos();
  int64_t last_completion_rel = 0;
  result.events.reserve(trace.size());
  for (const Operation& op : trace.operations()) {
    const int64_t arrival_rel = last_completion_rel;  // Closed loop.
    const OpResult op_result = sut->Execute(op);
    if (options.virtual_clock != nullptr) {
      options.virtual_clock->AdvanceNanos(options.virtual_service_nanos);
    }
    const int64_t completion_rel = clock->NowNanos() - run_start;
    OpEvent event;
    event.timestamp_nanos = completion_rel;
    event.latency_nanos = std::max<int64_t>(0, completion_rel - arrival_rel);
    event.phase = 0;
    event.type = op.type;
    event.ok = op_result.ok;
    event.rows = op_result.rows;
    result.events.push_back(event);
    last_completion_rel = completion_rel;
  }

  PhaseBoundary boundary;
  boundary.phase = 0;
  boundary.start_nanos = 0;
  boundary.end_nanos = clock->NowNanos() - run_start;
  boundary.operations = trace.size();
  result.boundaries.push_back(boundary);

  result.metrics =
      ComputeRunMetrics(result.events, result.boundaries, options.metrics);
  result.final_sut_stats = sut->GetStats();
  return result;
}

}  // namespace lsbench
