#ifndef LSBENCH_CORE_DRIVER_H_
#define LSBENCH_CORE_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/events.h"
#include "core/metrics.h"
#include "core/run_spec.h"
#include "obs/observability.h"
#include "sut/fault_plan.h"
#include "sut/sut.h"
#include "util/clock.h"
#include "util/status.h"

namespace lsbench {

/// Everything a single benchmark run produces.
struct RunResult {
  std::string sut_name;
  std::string run_name;
  RunMetrics metrics;
  EventStream events;
  std::vector<PhaseBoundary> boundaries;
  /// Timed offline/load work (not part of the event stream).
  double load_seconds = 0.0;
  std::vector<TrainEvent> train_events;
  SutStats final_sut_stats;
  /// What the fault injector did (all zero when the spec has no faults).
  FaultStats fault_stats;
  /// Merged observability output (trace, metrics snapshot, stage times);
  /// empty apart from the echoed spec when observability is off or the
  /// build compiled hooks out (LSBENCH_NO_TRACING).
  ObsReport observability;

  /// Total offline training wall time across train_events, seconds.
  double OfflineTrainSeconds() const;
};

/// Driver configuration beyond the RunSpec.
struct DriverOptions {
  /// When non-null, the driver runs in *simulation mode*: it never spins on
  /// wall time; instead it advances this clock to each intended arrival and
  /// by `virtual_service_nanos` per executed operation. The same object
  /// must be the driver's clock. Deterministic end-to-end runs for tests.
  /// Under `workers > 1` each worker advances a private virtual clock and
  /// the driver synchronizes them (and this clock) to the maximum at every
  /// phase boundary — a virtual barrier, so simulated multi-worker runs
  /// are deterministic too.
  VirtualClock* virtual_clock = nullptr;
  int64_t virtual_service_nanos = 100000;  // 100 us.
  /// Enforce the paper's single-execution rule for hold-out phases via the
  /// process-wide registry.
  bool enforce_holdout_once = true;
  /// Simulated cost of shedding one operation while the circuit breaker is
  /// open (fast-fail is cheap but not free; this also keeps virtual time
  /// moving so the breaker's cooldown can elapse in closed-loop phases).
  int64_t virtual_shed_nanos = 1000;  // 1 us.
};

/// The LSBench benchmark driver: executes a RunSpec against a SUT, producing
/// a timestamped event stream and the full metric suite. Implements the
/// paper's execution model — phase sequencing with configurable transitions,
/// training as a timed first-class step, open/closed-loop arrivals, and
/// hold-out phases that are never trained on and run at most once.
///
/// Execution is staged (docs/ARCHITECTURE.md): WorkloadStream issues and
/// paces operations, ResilientExecutor applies the timeout/retry/breaker
/// policy around each Execute, and EventSink shards completed events per
/// worker. `spec.execution.workers` fans the stream out to N workers, each
/// with a forked RNG stream, its own executor, and its own event shard;
/// shards merge deterministically by (timestamp, worker, seq) before
/// metrics. `workers == 1` is bit-identical to the historical serial
/// driver. Serial SUTs run under fan-out behind a driver-side lock
/// (SerializingSut); thread-safe SUTs opt in via
/// SystemUnderTest::concurrency().
///
/// When the spec carries a FaultPlan the SUT is transparently wrapped in a
/// FaultInjectingSut (one fault lane per worker), and the spec's
/// ResilienceSpec governs how the driver responds to failures: per-op
/// timeout budgets (deadline measured from the intended arrival), retry
/// with exponential backoff and seeded jitter for transient codes, and a
/// circuit breaker per worker that sheds load (skip-and-count degraded
/// mode) while the error rate is above threshold.
class BenchmarkDriver {
 public:
  /// `clock` must outlive the driver; nullptr selects an internal RealClock.
  explicit BenchmarkDriver(const Clock* clock = nullptr,
                           DriverOptions options = {});

  /// Runs the full benchmark. The SUT is loaded, optionally trained, then
  /// driven through every phase.
  Result<RunResult> Run(const RunSpec& spec, SystemUnderTest* sut);

  /// Clears the process-wide hold-out registry (tests only).
  static void ResetHoldoutRegistryForTesting();

 private:
  RealClock default_clock_;
  const Clock* clock_;
  DriverOptions options_;
};

/// Builds the initial load image for a spec: the first phase's dataset as
/// (key, ordinal) pairs.
std::vector<KeyValue> BuildLoadImage(const RunSpec& spec);

/// This worker's share of `total` items under the driver's round-robin
/// split: total/workers plus one of the first (total % workers) remainders.
/// Shares over all workers always sum to `total`.
uint64_t WorkerShare(uint64_t total, uint32_t workers, uint32_t worker);

}  // namespace lsbench

#endif  // LSBENCH_CORE_DRIVER_H_
