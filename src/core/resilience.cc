#include "core/resilience.h"

#include <algorithm>

#include "util/assert.h"

namespace lsbench {

bool operator==(const ResilienceSpec& a, const ResilienceSpec& b) {
  return a.op_timeout_nanos == b.op_timeout_nanos &&
         a.max_retries == b.max_retries &&
         a.backoff_initial_nanos == b.backoff_initial_nanos &&
         a.backoff_multiplier == b.backoff_multiplier &&
         a.backoff_max_nanos == b.backoff_max_nanos &&
         a.backoff_jitter == b.backoff_jitter &&
         a.breaker_enabled == b.breaker_enabled &&
         a.breaker_window_ops == b.breaker_window_ops &&
         a.breaker_failure_threshold == b.breaker_failure_threshold &&
         a.breaker_cooldown_nanos == b.breaker_cooldown_nanos &&
         a.breaker_half_open_probes == b.breaker_half_open_probes;
}

int64_t RetryBackoff::NextDelayNanos(uint32_t attempt) {
  LSBENCH_ASSERT(attempt >= 1);
  double delay = static_cast<double>(spec_.backoff_initial_nanos);
  for (uint32_t i = 1; i < attempt; ++i) delay *= spec_.backoff_multiplier;
  delay = std::min(delay, static_cast<double>(spec_.backoff_max_nanos));
  if (spec_.backoff_jitter > 0.0) {
    const double factor =
        1.0 + spec_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
    delay *= factor;
  }
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

CircuitBreaker::CircuitBreaker(const ResilienceSpec& spec) : spec_(spec) {
  LSBENCH_ASSERT(spec.breaker_window_ops > 0);
  window_.assign(spec.breaker_window_ops, 0);
}

bool CircuitBreaker::AllowRequest(int64_t now_nanos) {
  MutexLock lock(mu_);
  if (state_ == State::kOpen) {
    if (now_nanos < open_until_nanos_) return false;
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
  }
  return true;
}

void CircuitBreaker::RecordOutcome(int64_t now_nanos, bool failed) {
  MutexLock lock(mu_);
  if (state_ == State::kHalfOpen) {
    if (failed) {
      Open(now_nanos);  // A probe failed: back to open, fresh cooldown.
    } else if (++half_open_successes_ >= spec_.breaker_half_open_probes) {
      Close(now_nanos);
    }
    return;
  }
  if (state_ != State::kClosed) return;  // Shed requests are not recorded.
  window_failures_ -= window_[window_head_];
  window_[window_head_] = failed ? 1 : 0;
  window_failures_ += window_[window_head_];
  window_head_ = (window_head_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
  if (window_count_ == window_.size() &&
      static_cast<double>(window_failures_) /
              static_cast<double>(window_count_) >=
          spec_.breaker_failure_threshold) {
    Open(now_nanos);
  }
}

void CircuitBreaker::RecordSuccess(int64_t now_nanos) {
  RecordOutcome(now_nanos, /*failed=*/false);
}

void CircuitBreaker::RecordFailure(int64_t now_nanos) {
  RecordOutcome(now_nanos, /*failed=*/true);
}

void CircuitBreaker::Open(int64_t now_nanos) {
  if (state_ == State::kClosed) degraded_since_nanos_ = now_nanos;
  state_ = State::kOpen;
  open_until_nanos_ = now_nanos + spec_.breaker_cooldown_nanos;
  ++open_count_;
  if (opens_counter_ != nullptr) opens_counter_->Increment();
  half_open_successes_ = 0;
}

void CircuitBreaker::Close(int64_t now_nanos) {
  state_ = State::kClosed;
  if (closes_counter_ != nullptr) closes_counter_->Increment();
  degraded_accum_nanos_ += now_nanos - degraded_since_nanos_;
  std::fill(window_.begin(), window_.end(), 0);
  window_head_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
}

int64_t CircuitBreaker::DegradedNanos(int64_t now_nanos) const {
  MutexLock lock(mu_);
  int64_t total = degraded_accum_nanos_;
  if (state_ != State::kClosed) total += now_nanos - degraded_since_nanos_;
  return total;
}

}  // namespace lsbench
