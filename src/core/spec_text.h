#ifndef LSBENCH_CORE_SPEC_TEXT_H_
#define LSBENCH_CORE_SPEC_TEXT_H_

#include <string>

#include "core/run_spec.h"
#include "util/status.h"

namespace lsbench {

/// Parses the LSBench textual spec format into a RunSpec (datasets are
/// generated eagerly from their described distributions). The format is a
/// line-based INI dialect:
///
/// ```
/// # top-level keys before any section
/// name = demo
/// seed = 42
/// interval_ms = 1000
/// offline_training = true
///
/// [dataset]                 # one section per dataset, in index order
/// kind = clustered          # uniform|gaussian|lognormal|pareto|clustered|emails
/// num_keys = 50000
/// seed = 7
/// param1 = 5                # kind-specific (see below)
/// param2 = 0.01
///
/// [phase]                   # one section per phase, in execution order
/// name = warm
/// dataset = 0
/// ops = 50000
/// mix = get:0.7,insert:0.3  # get,scan,insert,update,delete,range_count
/// access = zipfian          # uniform|zipfian|hotspot|latest|sequential
/// access_param = 0.99
/// access_param2 = 0         # hotspot: hot region start in [0, 1)
/// arrival = closed          # closed|poisson|diurnal|bursty
/// arrival_qps = 10000
/// transition = linear       # abrupt|linear|cosine
/// transition_ops = 5000
/// holdout = false
/// scan_length = 100
/// range_selectivity = 0.001
/// ```
///
/// Fault-injection and resilience blocks (all optional):
///
/// ```
/// fault_seed = 77            # top-level: seeds the injector's RNG
/// fault_load_failures = 0    # first N Load calls fail with an I/O error
///
/// [faults]                   # one section per fault window
/// seed = 77                  # plan-level alternatives to the fault_*
/// load_failures = 0          # top-level keys (usable in any window)
/// phase = -1                 # -1 = every phase; exact match wins
/// execute_fail_rate = 0.01   # P(injected transient Execute failure)
/// execute_fail_code = unavailable  # unavailable|timeout|
///                            # resource_exhausted|io_error|internal
/// latency_spike_rate = 0.001
/// latency_spike_us = 2000
/// stall_rate = 0
/// stall_us = 0
/// fail_train = false
/// train_hang_us = 0
///
/// [resilience]               # driver policy (single section)
/// op_timeout_us = 10000      # per-op budget from intended arrival; 0 = off
/// max_retries = 3
/// backoff_initial_us = 500
/// backoff_multiplier = 2.0
/// backoff_max_us = 100000
/// backoff_jitter = 0.2
/// breaker_enabled = true
/// breaker_window_ops = 200
/// breaker_threshold = 0.5
/// breaker_cooldown_us = 250000
/// breaker_halfopen_probes = 10
///
/// [execution]                # driver fan-out (single section, optional)
/// workers = 4                # concurrent workers, in [1, 1024]; 1 (the
///                            # default) reproduces the serial driver
///
/// [observability]            # tracing / profiling / metrics (optional)
/// trace = false              # record LSBENCH_TRACE_SPAN shards
/// profile = false            # per-phase stage-time breakdown
/// metrics = true             # export the metrics registry snapshot
///
/// [drift]                    # declared drift trajectory (optional)
/// trajectory = 0.0, 0.3, 0.8 # intended drift factor per phase transition
/// tolerance = 0.15           # |measured - declared| bound per transition
/// sample_ops = 4096          # DriftMeter sampling budget per phase
/// seed = 7                   # DriftMeter sampling seed
/// ```
///
/// Dataset kind parameters: gaussian(param1=mean, param2=stddev),
/// lognormal(param1=mu, param2=sigma), pareto(param1=alpha),
/// clustered(param1=num_clusters, param2=spread); uniform and emails take
/// none. Unknown keys are rejected (typo safety).
Result<RunSpec> ParseRunSpecText(const std::string& text);

/// Renders a spec's fault-injection and resilience configuration back into
/// spec text (the `fault_*` top-level keys plus `[faults]` / `[resilience]`
/// sections). parse -> render -> parse is lossless for these blocks; note
/// durations are emitted in whole microseconds, matching what the parser
/// accepts. Returns "" when the spec has no faults and default resilience.
std::string RenderResilienceText(const RunSpec& spec);

/// Renders a complete RunSpec back into parseable spec text. Requires
/// generation provenance (`dataset_sources`, filled by ParseRunSpecText);
/// programmatically built specs without it get FailedPrecondition. For any
/// spec that came from ParseRunSpecText, parse → render → parse yields a
/// spec with the same StructuralHash and identical dataset keys, and
/// render is a fixpoint (render(parse(render(s))) == render(s)) — the
/// round-trip property the spec robustness tests pin.
Result<std::string> RenderRunSpecText(const RunSpec& spec);

}  // namespace lsbench

#endif  // LSBENCH_CORE_SPEC_TEXT_H_
