#ifndef LSBENCH_CORE_SPEC_TEXT_H_
#define LSBENCH_CORE_SPEC_TEXT_H_

#include <string>

#include "core/run_spec.h"
#include "util/status.h"

namespace lsbench {

/// Parses the LSBench textual spec format into a RunSpec (datasets are
/// generated eagerly from their described distributions). The format is a
/// line-based INI dialect:
///
/// ```
/// # top-level keys before any section
/// name = demo
/// seed = 42
/// interval_ms = 1000
/// offline_training = true
///
/// [dataset]                 # one section per dataset, in index order
/// kind = clustered          # uniform|gaussian|lognormal|pareto|clustered|emails
/// num_keys = 50000
/// seed = 7
/// param1 = 5                # kind-specific (see below)
/// param2 = 0.01
///
/// [phase]                   # one section per phase, in execution order
/// name = warm
/// dataset = 0
/// ops = 50000
/// mix = get:0.7,insert:0.3  # get,scan,insert,update,delete,range_count
/// access = zipfian          # uniform|zipfian|hotspot|latest|sequential
/// access_param = 0.99
/// arrival = closed          # closed|poisson|diurnal|bursty
/// arrival_qps = 10000
/// transition = linear       # abrupt|linear|cosine
/// transition_ops = 5000
/// holdout = false
/// scan_length = 100
/// range_selectivity = 0.001
/// ```
///
/// Dataset kind parameters: gaussian(param1=mean, param2=stddev),
/// lognormal(param1=mu, param2=sigma), pareto(param1=alpha),
/// clustered(param1=num_clusters, param2=spread); uniform and emails take
/// none. Unknown keys are rejected (typo safety).
Result<RunSpec> ParseRunSpecText(const std::string& text);

}  // namespace lsbench

#endif  // LSBENCH_CORE_SPEC_TEXT_H_
