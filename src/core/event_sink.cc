#include "core/event_sink.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace lsbench {

// lsbench-deepcheck: allow(hot-alloc, hot-throw)
void EventSink::RecordSlow(const OpEvent& event) {
  // Only reached when Reserve undersized the arena (e.g. retries exceeding
  // the per-worker headroom). Doubling keeps repeat spills amortized.
  events_.reserve(std::max<size_t>(events_.size() * 2, 64));
  events_.push_back(event);
  used_ = events_.size();
}

EventStream MergeEventShards(std::vector<EventStream> shards) {
  if (shards.empty()) return {};
  if (shards.size() == 1) return std::move(shards[0]);

  size_t total = 0;
  for (const EventStream& s : shards) total += s.size();
  EventStream merged;
  merged.reserve(total);
  for (EventStream& s : shards) {
    merged.insert(merged.end(), s.begin(), s.end());
    s.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const OpEvent& a, const OpEvent& b) {
              if (a.timestamp_nanos != b.timestamp_nanos) {
                return a.timestamp_nanos < b.timestamp_nanos;
              }
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.seq < b.seq;
            });
  return merged;
}

std::string SerializeEventStream(const EventStream& events) {
  std::ostringstream out;
  out << "# lsbench-events v3 events=" << events.size() << "\n";
  for (const OpEvent& e : events) {
    out << e.timestamp_nanos << ' ' << e.latency_nanos << ' ' << e.issue_nanos
        << ' ' << e.phase << ' ' << static_cast<int>(e.type) << ' '
        << (e.ok ? 1 : 0) << ' ' << e.rows << ' ' << e.retries << ' '
        << (e.failed ? 1 : 0) << ' ' << (e.timed_out ? 1 : 0) << ' '
        << (e.shed ? 1 : 0) << ' ' << (e.queue_shed ? 1 : 0) << ' '
        << (e.open_loop ? 1 : 0) << ' ' << e.batch << ' ' << e.worker << ' '
        << e.seq << '\n';
  }
  return out.str();
}

}  // namespace lsbench
