#include "core/drift.h"

#include <cmath>
#include <utility>

namespace lsbench {

DriftTrajectoryReport MeasureDriftTrajectory(const RunSpec& spec) {
  DriftTrajectoryReport report;
  report.declared = spec.drift.declared;
  report.tolerance = spec.drift.declared ? spec.drift.tolerance : 0.0;
  if (spec.phases.size() < 2 || spec.datasets.empty()) return report;

  DriftMeterOptions options;
  if (spec.drift.declared) {
    options.sample_ops = spec.drift.sample_ops;
    options.seed = spec.drift.seed;
  }
  const DriftMeter meter(options);

  auto dataset_for = [&](const PhaseSpec& phase) -> const Dataset& {
    const size_t idx = static_cast<size_t>(phase.dataset_index);
    return spec.datasets[idx < spec.datasets.size() ? idx : 0];
  };

  // Each phase is sampled once and reused for both of its transitions.
  PhaseDistributionSample prev =
      meter.SamplePhase(dataset_for(spec.phases[0]), spec.phases[0]);
  for (size_t i = 1; i < spec.phases.size(); ++i) {
    PhaseDistributionSample cur =
        meter.SamplePhase(dataset_for(spec.phases[i]), spec.phases[i]);
    DriftTransitionReport t;
    t.from_phase = spec.phases[i - 1].name;
    t.to_phase = spec.phases[i].name;
    t.components = meter.Measure(prev, cur);
    if (spec.drift.declared && i - 1 < spec.drift.trajectory.size()) {
      t.declared = spec.drift.trajectory[i - 1];
      t.within_tolerance =
          std::fabs(t.components.factor - t.declared) <= spec.drift.tolerance;
    }
    report.transitions.push_back(std::move(t));
    prev = std::move(cur);
  }
  return report;
}

}  // namespace lsbench
