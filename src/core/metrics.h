#ifndef LSBENCH_CORE_METRICS_H_
#define LSBENCH_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.h"
#include "stats/descriptive.h"
#include "util/histogram.h"

namespace lsbench {

struct RunSpec;

/// One point of the Fig. 1b cumulative-completions curve.
struct CumulativePoint {
  int64_t t_nanos = 0;
  uint64_t completed = 0;
};

/// Samples the cumulative completed-queries curve at interval boundaries.
/// `events` must be sorted by timestamp (the driver emits them sorted).
std::vector<CumulativePoint> BuildCumulativeCurve(const EventStream& events,
                                                  int64_t interval_nanos);

/// Signed area (in query-seconds) between the measured cumulative curve and
/// the ideal constant-throughput line through (start, 0) -> (end, total):
/// negative means the system lagged the ideal early and caught up late (the
/// paper's single-value adaptability summary for Fig. 1b).
double AreaVsIdeal(const std::vector<CumulativePoint>& curve);

/// Signed area between two cumulative curves (a - b), interpolating where
/// sample times differ. Positive means `a` stayed ahead.
double AreaBetweenCurves(const std::vector<CumulativePoint>& a,
                         const std::vector<CumulativePoint>& b);

/// One reporting interval of the Fig. 1c SLA-band chart.
struct LatencyBand {
  int64_t start_nanos = 0;
  uint64_t within_sla = 0;
  uint64_t violated = 0;

  uint64_t Total() const { return within_sla + violated; }
};

/// Buckets completions into `interval_nanos` bands split by the SLA
/// threshold. Empty trailing intervals are preserved up to the last event.
std::vector<LatencyBand> BuildSlaBands(const EventStream& events,
                                       int64_t interval_nanos,
                                       int64_t sla_nanos);

/// SLA threshold calibrated from observed latencies: percentile * margin
/// (§V-D2: derive the threshold from a baseline's latency statistics).
int64_t CalibrateSla(const EventStream& events, double percentile,
                     double margin);

/// §V-D2's extension of Fig. 1c: "Increasing the number of bands and
/// color-coding them appropriately (e.g., green-yellow-orange-red) could
/// provide additional visual insight." One interval's completions split
/// into K+1 latency classes given K ascending thresholds: counts[0] holds
/// latencies <= thresholds[0], ..., counts[K] holds latencies above the
/// last threshold.
struct MultiBand {
  int64_t start_nanos = 0;
  std::vector<uint64_t> counts;

  uint64_t Total() const;
};

/// Buckets completions into multi-threshold bands. `thresholds_nanos` must
/// be non-empty and strictly ascending.
std::vector<MultiBand> BuildMultiBands(
    const EventStream& events, int64_t interval_nanos,
    const std::vector<int64_t>& thresholds_nanos);

/// Per-phase performance summary — the ingredients of one Fig. 1a box.
struct PhaseMetrics {
  int32_t phase = 0;
  bool holdout = false;
  uint64_t operations = 0;
  double duration_seconds = 0.0;
  double mean_throughput = 0.0;  ///< ops/s over the whole phase.
  /// Box-plot statistics over per-sample throughput (ops/s measured in
  /// sub-intervals of boxplot_sample_nanos).
  BoxPlotSummary throughput_box;
  Histogram latency;
  uint64_t sla_violations = 0;
  /// Adjustment-speed metric: sum of latency above the SLA threshold over
  /// the first `adjustment_window_ops` operations of the phase, seconds.
  double adjustment_excess_seconds = 0.0;
  /// Operations that ultimately failed in this phase (errors, timeouts,
  /// and load shed by the circuit breaker).
  uint64_t failed_operations = 0;
};

/// Health metrics under injected or organic failures (§III Lesson 2: a
/// benchmark must expose stalls and outages that averages hide). Counts are
/// pure functions of the event stream; degraded-mode duration and breaker/
/// training counters are stamped by the driver, which owns that state.
struct ResilienceMetrics {
  uint64_t failed_operations = 0;  ///< Errors + timeouts + shed.
  uint64_t timeouts = 0;           ///< Ops that blew their latency budget.
  uint64_t shed_operations = 0;    ///< Dropped by the open circuit breaker.
  uint64_t total_retries = 0;      ///< Retry attempts across all ops.
  uint64_t breaker_opens = 0;      ///< Entries into the open state.
  uint64_t failed_trains = 0;      ///< Training passes that failed.
  double degraded_seconds = 0.0;   ///< Time with the breaker not closed.
  /// Fraction of operations that completed successfully: the headline
  /// availability number (1.0 on a healthy run).
  double availability = 1.0;
};

/// Open-loop service-mode metrics ([service] section), separating the two
/// latencies coordinated omission conflates:
///   response time  = completion - *intended arrival*  (what a client felt)
///   service time   = completion - actual issue        (what the SUT did)
/// Under overload the gap between their p99s IS the coordinated-omission
/// error a closed-loop harness silently drops. Histograms cover executed
/// open-loop operations only; shed arrivals are tallied separately (their
/// "latency" is a policy decision, not a measurement of the SUT).
struct ServiceMetrics {
  bool enabled = false;
  std::string policy;            ///< Overload policy label from the spec.
  uint32_t queue_capacity = 0;   ///< Per-worker admission-queue bound.
  Histogram response_latency;    ///< Completion minus intended arrival.
  Histogram service_latency;     ///< Completion minus actual issue.
  Histogram queue_wait;          ///< Actual issue minus intended arrival.
  uint64_t open_loop_operations = 0;  ///< Offered open-loop arrivals.
  uint64_t queue_shed_operations = 0; ///< Dropped by the admission queue.
  double shed_fraction = 0.0;    ///< queue sheds / offered arrivals.
  /// Offered load: open-loop arrivals over their intended-arrival span.
  double offered_qps = 0.0;
  /// Achieved goodput: successful operations over the wall-clock span.
  double achieved_qps = 0.0;
  // Verdicts against the spec's targets (echoed for the report).
  int64_t slo_p99_nanos = 0;
  double max_shed_fraction = 1.0;
  bool slo_met = true;        ///< response p99 <= slo (when an SLO is set).
  bool shed_bound_met = true; ///< shed_fraction <= max_shed_fraction.
};

/// Per-op-class rollup for the report's operation-type table. One row per
/// OpType (the table is always sized kNumOpTypes; unused classes render as
/// zero rows or are skipped by the renderer). Batch classes (kBatchGet /
/// kBatchPut) count per-element events — a batch of 64 contributes 64
/// operations — and additionally report *effective per-op latency*, the
/// request-unit latency divided by the batch size, which is the number a
/// batch row must be judged by when compared against scalar rows.
struct OpTypeMetrics {
  OpType type = OpType::kGet;
  uint64_t operations = 0;        ///< Events (batch classes: elements).
  uint64_t ok_operations = 0;     ///< Data-level successes.
  uint64_t failed_operations = 0; ///< Errors, timeouts, sheds.
  Histogram latency;              ///< Request-unit latency per event.
  /// latency / batch per event; identical to `latency` for scalar classes.
  Histogram effective_latency;
  /// Sum of each event's `batch` field (== operations for scalar classes).
  uint64_t batch_sum = 0;

  double MeanBatchSize() const {
    return operations > 0
               ? static_cast<double>(batch_sum) /
                     static_cast<double>(operations)
               : 1.0;
  }
};

/// Everything the benchmark reports about one run, computed purely from the
/// event stream and phase boundaries.
struct RunMetrics {
  uint64_t total_operations = 0;
  double wall_seconds = 0.0;
  double mean_throughput = 0.0;
  int64_t sla_nanos = 0;
  uint64_t total_sla_violations = 0;
  Histogram overall_latency;
  /// Always exactly kNumOpTypes rows, indexed by static_cast<size_t>(type).
  std::vector<OpTypeMetrics> op_types;
  std::vector<PhaseMetrics> phases;
  std::vector<CumulativePoint> cumulative;
  std::vector<LatencyBand> bands;
  double area_vs_ideal = 0.0;
  ResilienceMetrics resilience;
  ServiceMetrics service;
};

/// Parameters mirrored from the RunSpec (kept separate so metric code does
/// not depend on workload specs).
struct MetricsOptions {
  int64_t interval_nanos = 1000000000;
  int64_t boxplot_sample_nanos = 100000000;
  uint64_t adjustment_window_ops = 1000;
  /// Fixed SLA threshold; 0 requests calibration from phase 0.
  int64_t sla_nanos = 0;
  double sla_auto_percentile = 0.99;
  double sla_auto_margin = 2.0;
  // [service] echo (string label, not the enum, so the metric layer keeps
  // its independence from workload specs).
  bool service_enabled = false;
  std::string service_policy;
  uint32_t service_queue_capacity = 0;
  int64_t service_slo_p99_nanos = 0;
  double service_max_shed_fraction = 1.0;

  /// The one mirroring point from a RunSpec's reporting/SLA fields — every
  /// consumer (driver, per-shard accumulation, tools) goes through this so
  /// the two layers cannot drift apart.
  static MetricsOptions FromSpec(const RunSpec& spec);
};

/// Order-independent aggregates of one event shard. Each worker can fold
/// its own events into a ShardAccumulation without synchronization; merging
/// the per-worker accumulations yields exactly the totals ComputeRunMetrics
/// derives from the merged stream (every field is a sum, so accumulation
/// commutes with the shard merge). ComputeRunMetrics itself routes its
/// whole-run totals through this type to machine-enforce that property.
struct ShardAccumulation {
  uint64_t operations = 0;
  uint64_t ok_operations = 0;
  uint64_t sla_violations = 0;
  uint64_t failed_operations = 0;
  uint64_t timeouts = 0;
  uint64_t shed_operations = 0;
  uint64_t total_retries = 0;
  Histogram latency;
  // Open-loop / service-mode aggregates (untouched on closed-loop events).
  uint64_t open_loop_operations = 0;
  uint64_t queue_shed_operations = 0;
  Histogram response_latency;  ///< Executed open-loop ops only.
  Histogram service_latency;   ///< Executed open-loop ops only.
  Histogram queue_wait;        ///< Executed open-loop ops only.
  /// Intended-arrival span of open-loop events (recovered as
  /// timestamp - latency); INT64_MAX/MIN sentinels while empty.
  int64_t intended_min_nanos = INT64_MAX;
  int64_t intended_max_nanos = INT64_MIN;

  /// Folds one event in. `sla_nanos` must be the run's resolved threshold.
  void Accumulate(const OpEvent& event, int64_t sla_nanos);

  /// Adds another shard's aggregates into this one.
  void Merge(const ShardAccumulation& other);
};

/// Computes the full metric suite. `events` must be sorted by timestamp and
/// each event's phase must match one of `boundaries`.
RunMetrics ComputeRunMetrics(const EventStream& events,
                             const std::vector<PhaseBoundary>& boundaries,
                             const MetricsOptions& options);

}  // namespace lsbench

#endif  // LSBENCH_CORE_METRICS_H_
