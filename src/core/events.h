#ifndef LSBENCH_CORE_EVENTS_H_
#define LSBENCH_CORE_EVENTS_H_

#include <cstdint>
#include <vector>

#include "workload/operation.h"

namespace lsbench {

/// One completed operation, as observed by the benchmark driver. Every
/// metric in LSBench is a pure function of a stream of these (plus phase
/// boundaries), which keeps the metric layer deterministic and testable
/// against synthetic streams.
struct OpEvent {
  int64_t timestamp_nanos = 0;  ///< Completion time (run-relative).
  /// Completion minus *intended arrival* — the response time. On open-loop
  /// runs this includes any queueing delay, which is what makes the metric
  /// coordinated-omission-correct: the intended arrival is recoverable as
  /// `timestamp_nanos - latency_nanos` even for operations that waited.
  int64_t latency_nanos = 0;
  /// When the operation actually started executing (run-relative). On
  /// closed-loop runs this equals the intended arrival; on open-loop runs
  /// `issue_nanos - (timestamp_nanos - latency_nanos)` is the queue wait
  /// and `timestamp_nanos - issue_nanos` the service time.
  int64_t issue_nanos = 0;
  int32_t phase = 0;
  OpType type = OpType::kGet;
  bool ok = false;
  uint64_t rows = 0;
  // Resilience outcome (all zero on healthy runs).
  uint16_t retries = 0;   ///< Retry attempts consumed by this operation.
  bool failed = false;    ///< Operation ultimately failed (any cause).
  bool timed_out = false; ///< Exceeded its per-op timeout budget.
  bool shed = false;      ///< Dropped unexecuted by the open circuit breaker.
  /// Dropped unexecuted by the admission queue's overload policy
  /// ([service] mode). Distinct from `shed` (breaker) — both imply failed.
  bool queue_shed = false;
  /// Scheduled by an open-loop arrival process (latency is a response
  /// time); false on closed-loop phases (latency is a service time).
  bool open_loop = false;
  /// Elements in the request unit this event belongs to: 1 for scalar ops,
  /// the batch size for every per-element event of a batch op. A batch is
  /// ONE request unit — its elements share one intended arrival, issue,
  /// completion, latency, and resilience outcome (coordinated-omission
  /// accounting charges the batch once) but carry their own data-level
  /// ok/rows and consecutive seqs. Effective per-op latency for batch rows
  /// is latency_nanos / batch.
  uint32_t batch = 1;
  // Provenance (multi-worker runs): which worker shard produced the event
  // and its issue order within that shard. Together with the timestamp they
  // define the deterministic merge order (timestamp, worker, seq) — ties
  // between workers never depend on thread scheduling.
  uint32_t worker = 0;
  uint64_t seq = 0;
};

/// When a phase ran, and whether it was out-of-sample.
struct PhaseBoundary {
  int32_t phase = 0;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  bool holdout = false;
  uint64_t operations = 0;
};

/// Timing of a training invocation (offline or between phases).
struct TrainEvent {
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  uint64_t work_items = 0;
  bool ok = true;  ///< False when the training pass reported failure.

  double Seconds() const {
    return static_cast<double>(end_nanos - start_nanos) * 1e-9;
  }
};

using EventStream = std::vector<OpEvent>;

}  // namespace lsbench

#endif  // LSBENCH_CORE_EVENTS_H_
