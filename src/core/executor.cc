#include "core/executor.h"

#include <limits>

#include "util/assert.h"

namespace lsbench {

ResilientExecutor::ResilientExecutor(SystemUnderTest* sut,
                                     const ResilienceSpec& spec, Pacer pacer,
                                     uint64_t backoff_seed,
                                     bool enable_breaker, Options options)
    : sut_(sut),
      spec_(spec),
      pacer_(pacer),
      backoff_(spec, backoff_seed),
      options_(options) {
  LSBENCH_ASSERT(sut != nullptr);
  if (enable_breaker && spec.breaker_enabled) breaker_.emplace(spec);
}

void ResilientExecutor::BindObservability(Tracer* tracer,
                                          StageProfiler* profiler,
                                          MetricsRegistry* registry) {
  tracer_ = tracer;
  profiler_ = profiler;
  if (registry != nullptr) {
    attempts_ = registry->GetCounter("executor.attempts");
    retries_ = registry->GetCounter("executor.retries");
    timeouts_ = registry->GetCounter("executor.timeouts");
    shed_ = registry->GetCounter("executor.shed");
    failures_ = registry->GetCounter("executor.failures");
    if (breaker_) {
      breaker_->BindObservability(registry->GetCounter("breaker.opens"),
                                  registry->GetCounter("breaker.closes"));
    }
  }
}

ExecOutcome ResilientExecutor::ExecuteOne(const Operation& op,
                                          int64_t arrival_rel_nanos) {
  const Clock* clock = pacer_.clock();
  VirtualClock* vclock = pacer_.virtual_clock();
  const int64_t deadline_rel =
      spec_.op_timeout_nanos > 0
          ? arrival_rel_nanos + spec_.op_timeout_nanos
          : std::numeric_limits<int64_t>::max();

  ExecOutcome out;
  for (;;) {
    if (breaker_ && !breaker_->AllowRequest(clock->NowNanos())) {
      // Open breaker: degraded mode sheds the operation unexecuted.
      out.shed = true;
      out.failed = true;
      out.result = OpResult();
      if (shed_ != nullptr) shed_->Increment();
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_shed_nanos);
      }
      break;
    }
    {
      LSBENCH_TRACE_SPAN(tracer_, "execute");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kExecute);
      if (attempts_ != nullptr) attempts_->Increment();
      out.result = sut_->Execute(op);
      if (vclock != nullptr) {
        vclock->AdvanceNanos(options_.virtual_service_nanos);
      }
    }
    const int64_t now_rel = clock->NowNanos() - options_.run_start_nanos;
    const bool past_deadline = now_rel > deadline_rel;
    if (out.result.status.ok() && !past_deadline) {
      if (breaker_) breaker_->RecordSuccess(clock->NowNanos());
      break;
    }
    // Failure: a SUT error, a blown latency budget, or both.
    if (breaker_) breaker_->RecordFailure(clock->NowNanos());
    if (past_deadline) {
      // The deadline is spent; retrying cannot deliver in time.
      out.timed_out = true;
      out.failed = true;
      if (timeouts_ != nullptr) timeouts_->Increment();
      break;
    }
    if (out.result.status.IsTransient() && out.retries < spec_.max_retries) {
      ++out.retries;
      if (retries_ != nullptr) retries_->Increment();
      LSBENCH_TRACE_SPAN(tracer_, "backoff");
      LSBENCH_PROFILE_STAGE(profiler_, Stage::kBackoff);
      pacer_.PaceUntil(clock->NowNanos() + backoff_.NextDelayNanos(out.retries));
      continue;
    }
    out.failed = true;
    break;
  }
  if (out.failed && failures_ != nullptr) failures_->Increment();
  return out;
}

}  // namespace lsbench
