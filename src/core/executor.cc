#include "core/executor.h"

#include "util/assert.h"

namespace lsbench {

ResilientExecutor::ResilientExecutor(SystemUnderTest* sut,
                                     const ResilienceSpec& spec, Pacer pacer,
                                     uint64_t backoff_seed,
                                     bool enable_breaker, Options options)
    : sut_(sut),
      spec_(spec),
      pacer_(pacer),
      backoff_(spec, backoff_seed),
      options_(options) {
  LSBENCH_ASSERT(sut != nullptr);
  if (enable_breaker && spec.breaker_enabled) breaker_.emplace(spec);
}

void ResilientExecutor::BindObservability(Tracer* tracer,
                                          StageProfiler* profiler,
                                          MetricsRegistry* registry) {
  tracer_ = tracer;
  profiler_ = profiler;
  if (registry != nullptr) {
    attempts_ = registry->GetCounter("executor.attempts");
    retries_ = registry->GetCounter("executor.retries");
    timeouts_ = registry->GetCounter("executor.timeouts");
    shed_ = registry->GetCounter("executor.shed");
    failures_ = registry->GetCounter("executor.failures");
    if (breaker_) {
      breaker_->BindObservability(registry->GetCounter("breaker.opens"),
                                  registry->GetCounter("breaker.closes"));
    }
  }
}

ExecOutcome ResilientExecutor::ExecuteOne(const Operation& op,
                                          int64_t arrival_rel_nanos) {
  return ExecuteOneWith(VirtualExec{sut_}, op, arrival_rel_nanos);
}

}  // namespace lsbench
