#include "core/spec_text.h"

#include <cstdlib>

#include "util/string_util.h"

namespace lsbench {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseDouble(const std::string& value,
                           const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number for '" + key + "': " + value);
  }
  return v;
}

Result<uint64_t> ParseU64(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  return static_cast<uint64_t>(v);
}

Result<bool> ParseBool(const std::string& value, const std::string& key) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  return Status::InvalidArgument("bad bool for '" + key + "': " + value);
}

/// Accumulated description of one [dataset] section.
struct DatasetDesc {
  std::string kind = "uniform";
  size_t num_keys = 100000;
  uint64_t seed = 42;
  double param1 = 0.0;
  double param2 = 0.0;
};

Result<Dataset> BuildDataset(const DatasetDesc& desc) {
  if (desc.kind == "emails") {
    return GenerateEmailDataset(desc.num_keys, desc.seed);
  }
  DatasetOptions options;
  options.num_keys = desc.num_keys;
  options.seed = desc.seed;
  std::unique_ptr<UnitDistribution> dist;
  if (desc.kind == "uniform") {
    dist = MakeUniform();
  } else if (desc.kind == "gaussian") {
    dist = MakeGaussian(desc.param1 > 0 ? desc.param1 : 0.5,
                        desc.param2 > 0 ? desc.param2 : 0.1);
  } else if (desc.kind == "lognormal") {
    dist = MakeLognormal(desc.param1, desc.param2 > 0 ? desc.param2 : 1.0);
  } else if (desc.kind == "pareto") {
    dist = MakePareto(desc.param1 > 0 ? desc.param1 : 1.5);
  } else if (desc.kind == "clustered") {
    dist = MakeClustered(desc.param1 > 0 ? static_cast<int>(desc.param1) : 8,
                         desc.param2 > 0 ? desc.param2 : 0.01, desc.seed);
  } else {
    return Status::InvalidArgument("unknown dataset kind: " + desc.kind);
  }
  return GenerateDataset(*dist, options);
}

Status ParseMix(const std::string& value, OperationMix* mix) {
  *mix = OperationMix();
  mix->get = 0.0;
  for (const std::string& part : Split(value, ',')) {
    const std::vector<std::string> kv = Split(Trim(part), ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad mix component: " + part);
    }
    const Result<double> frac = ParseDouble(Trim(kv[1]), "mix");
    if (!frac.ok()) return frac.status();
    const std::string op = Trim(kv[0]);
    if (op == "get") {
      mix->get = frac.value();
    } else if (op == "scan") {
      mix->scan = frac.value();
    } else if (op == "insert") {
      mix->insert = frac.value();
    } else if (op == "update") {
      mix->update = frac.value();
    } else if (op == "delete") {
      mix->del = frac.value();
    } else if (op == "range_count") {
      mix->range_count = frac.value();
    } else {
      return Status::InvalidArgument("unknown op in mix: " + op);
    }
  }
  return Status::OK();
}

Result<AccessPattern> ParseAccess(const std::string& value) {
  if (value == "uniform") return AccessPattern::kUniform;
  if (value == "zipfian") return AccessPattern::kZipfian;
  if (value == "hotspot") return AccessPattern::kHotSpot;
  if (value == "latest") return AccessPattern::kLatest;
  if (value == "sequential") return AccessPattern::kSequential;
  return Status::InvalidArgument("unknown access pattern: " + value);
}

Result<ArrivalPattern> ParseArrival(const std::string& value) {
  if (value == "closed") return ArrivalPattern::kClosedLoop;
  if (value == "poisson") return ArrivalPattern::kPoisson;
  if (value == "diurnal") return ArrivalPattern::kDiurnal;
  if (value == "bursty") return ArrivalPattern::kBursty;
  return Status::InvalidArgument("unknown arrival pattern: " + value);
}

Result<TransitionKind> ParseTransition(const std::string& value) {
  if (value == "abrupt") return TransitionKind::kAbrupt;
  if (value == "linear") return TransitionKind::kLinear;
  if (value == "cosine") return TransitionKind::kCosine;
  return Status::InvalidArgument("unknown transition kind: " + value);
}

}  // namespace

Result<RunSpec> ParseRunSpecText(const std::string& text) {
  RunSpec spec;
  enum class Section { kTop, kDataset, kPhase };
  Section section = Section::kTop;
  DatasetDesc dataset_desc;
  bool dataset_open = false;
  PhaseSpec phase;
  bool phase_open = false;

  auto close_dataset = [&]() -> Status {
    if (!dataset_open) return Status::OK();
    Result<Dataset> ds = BuildDataset(dataset_desc);
    if (!ds.ok()) return ds.status();
    spec.datasets.push_back(std::move(ds).value());
    dataset_desc = DatasetDesc();
    dataset_open = false;
    return Status::OK();
  };
  auto close_phase = [&]() -> Status {
    if (!phase_open) return Status::OK();
    spec.phases.push_back(phase);
    phase = PhaseSpec();
    phase_open = false;
    return Status::OK();
  };

  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line == "[dataset]") {
      LSBENCH_RETURN_NOT_OK(close_dataset());
      LSBENCH_RETURN_NOT_OK(close_phase());
      section = Section::kDataset;
      dataset_open = true;
      continue;
    }
    if (line == "[phase]") {
      LSBENCH_RETURN_NOT_OK(close_dataset());
      LSBENCH_RETURN_NOT_OK(close_phase());
      section = Section::kPhase;
      phase_open = true;
      continue;
    }
    if (line.front() == '[') {
      return Status::InvalidArgument("unknown section at line " +
                                     std::to_string(line_no) + ": " + line);
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key = value at line " +
                                     std::to_string(line_no));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    switch (section) {
      case Section::kTop: {
        if (key == "name") {
          spec.name = value;
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.seed = v.value();
        } else if (key == "interval_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.interval_nanos = static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "boxplot_sample_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.boxplot_sample_nanos =
              static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "offline_training") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          spec.offline_training = v.value();
        } else if (key == "sla_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.sla.threshold_nanos = static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "sla_auto_percentile") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_percentile = v.value();
        } else if (key == "sla_auto_margin") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_margin = v.value();
        } else if (key == "adjustment_window_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.adjustment_window_ops = v.value();
        } else {
          return Status::InvalidArgument("unknown top-level key: " + key);
        }
        break;
      }
      case Section::kDataset: {
        if (key == "kind") {
          dataset_desc.kind = value;
        } else if (key == "num_keys") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.num_keys = v.value();
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.seed = v.value();
        } else if (key == "param1") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param1 = v.value();
        } else if (key == "param2") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param2 = v.value();
        } else {
          return Status::InvalidArgument("unknown dataset key: " + key);
        }
        break;
      }
      case Section::kPhase: {
        if (key == "name") {
          phase.name = value;
        } else if (key == "dataset") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.dataset_index = static_cast<int>(v.value());
        } else if (key == "ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.num_operations = v.value();
        } else if (key == "mix") {
          LSBENCH_RETURN_NOT_OK(ParseMix(value, &phase.mix));
        } else if (key == "access") {
          const auto v = ParseAccess(value);
          if (!v.ok()) return v.status();
          phase.access = v.value();
        } else if (key == "access_param") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.access_param = v.value();
        } else if (key == "arrival") {
          const auto v = ParseArrival(value);
          if (!v.ok()) return v.status();
          phase.arrival = v.value();
        } else if (key == "arrival_qps") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.arrival_rate_qps = v.value();
        } else if (key == "transition") {
          const auto v = ParseTransition(value);
          if (!v.ok()) return v.status();
          phase.transition_in = v.value();
        } else if (key == "transition_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.transition_operations = v.value();
        } else if (key == "holdout") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          phase.holdout = v.value();
        } else if (key == "scan_length") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.scan_length = static_cast<uint32_t>(v.value());
        } else if (key == "range_selectivity") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.range_selectivity = v.value();
        } else {
          return Status::InvalidArgument("unknown phase key: " + key);
        }
        break;
      }
    }
  }
  LSBENCH_RETURN_NOT_OK(close_dataset());
  LSBENCH_RETURN_NOT_OK(close_phase());
  LSBENCH_RETURN_NOT_OK(spec.Validate());
  return spec;
}

}  // namespace lsbench
