#include "core/spec_text.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace lsbench {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseDouble(const std::string& value,
                           const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number for '" + key + "': " + value);
  }
  return v;
}

Result<uint64_t> ParseU64(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  return static_cast<uint64_t>(v);
}

Result<bool> ParseBool(const std::string& value, const std::string& key) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  return Status::InvalidArgument("bad bool for '" + key + "': " + value);
}

Result<int64_t> ParseI64(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  return static_cast<int64_t>(v);
}

Result<StatusCode> ParseFailCode(const std::string& value) {
  if (value == "unavailable") return StatusCode::kUnavailable;
  if (value == "timeout") return StatusCode::kTimeout;
  if (value == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (value == "io_error") return StatusCode::kIoError;
  if (value == "internal") return StatusCode::kInternal;
  return Status::InvalidArgument("unknown fault code: " + value);
}

std::string FailCodeToSpecString(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kIoError:
      return "io_error";
    default:
      return "internal";
  }
}

/// Shortest decimal representation that strtod round-trips exactly.
std::string FullDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips (keeps specs readable).
  for (int precision = 1; precision <= 16; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) == v) return candidate;
  }
  return buf;
}

/// Accumulated description of one [dataset] section.
struct DatasetDesc {
  std::string kind = "uniform";
  size_t num_keys = 100000;
  uint64_t seed = 42;
  double param1 = 0.0;
  double param2 = 0.0;
};

Result<Dataset> BuildDataset(const DatasetDesc& desc) {
  if (desc.kind == "emails") {
    return GenerateEmailDataset(desc.num_keys, desc.seed);
  }
  DatasetOptions options;
  options.num_keys = desc.num_keys;
  options.seed = desc.seed;
  std::unique_ptr<UnitDistribution> dist;
  if (desc.kind == "uniform") {
    dist = MakeUniform();
  } else if (desc.kind == "gaussian") {
    dist = MakeGaussian(desc.param1 > 0 ? desc.param1 : 0.5,
                        desc.param2 > 0 ? desc.param2 : 0.1);
  } else if (desc.kind == "lognormal") {
    dist = MakeLognormal(desc.param1, desc.param2 > 0 ? desc.param2 : 1.0);
  } else if (desc.kind == "pareto") {
    dist = MakePareto(desc.param1 > 0 ? desc.param1 : 1.5);
  } else if (desc.kind == "clustered") {
    dist = MakeClustered(desc.param1 > 0 ? static_cast<int>(desc.param1) : 8,
                         desc.param2 > 0 ? desc.param2 : 0.01, desc.seed);
  } else {
    return Status::InvalidArgument("unknown dataset kind: " + desc.kind);
  }
  return GenerateDataset(*dist, options);
}

Status ParseMix(const std::string& value, OperationMix* mix) {
  *mix = OperationMix();
  mix->get = 0.0;
  for (const std::string& part : Split(value, ',')) {
    const std::vector<std::string> kv = Split(Trim(part), ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad mix component: " + part);
    }
    const Result<double> frac = ParseDouble(Trim(kv[1]), "mix");
    if (!frac.ok()) return frac.status();
    const std::string op = Trim(kv[0]);
    if (op == "get") {
      mix->get = frac.value();
    } else if (op == "scan") {
      mix->scan = frac.value();
    } else if (op == "insert") {
      mix->insert = frac.value();
    } else if (op == "update") {
      mix->update = frac.value();
    } else if (op == "delete") {
      mix->del = frac.value();
    } else if (op == "range_count") {
      mix->range_count = frac.value();
    } else {
      return Status::InvalidArgument("unknown op in mix: " + op);
    }
  }
  return Status::OK();
}

Result<AccessPattern> ParseAccess(const std::string& value) {
  if (value == "uniform") return AccessPattern::kUniform;
  if (value == "zipfian") return AccessPattern::kZipfian;
  if (value == "hotspot") return AccessPattern::kHotSpot;
  if (value == "latest") return AccessPattern::kLatest;
  if (value == "sequential") return AccessPattern::kSequential;
  return Status::InvalidArgument("unknown access pattern: " + value);
}

Result<ArrivalPattern> ParseArrival(const std::string& value) {
  if (value == "closed") return ArrivalPattern::kClosedLoop;
  if (value == "poisson") return ArrivalPattern::kPoisson;
  if (value == "diurnal") return ArrivalPattern::kDiurnal;
  if (value == "bursty") return ArrivalPattern::kBursty;
  return Status::InvalidArgument("unknown arrival pattern: " + value);
}

Result<TransitionKind> ParseTransition(const std::string& value) {
  if (value == "abrupt") return TransitionKind::kAbrupt;
  if (value == "linear") return TransitionKind::kLinear;
  if (value == "cosine") return TransitionKind::kCosine;
  return Status::InvalidArgument("unknown transition kind: " + value);
}

}  // namespace

Result<RunSpec> ParseRunSpecText(const std::string& text) {
  RunSpec spec;
  enum class Section {
    kTop,
    kDataset,
    kPhase,
    kFaults,
    kResilience,
    kExecution
  };
  Section section = Section::kTop;
  DatasetDesc dataset_desc;
  bool dataset_open = false;
  PhaseSpec phase;
  bool phase_open = false;
  FaultWindow fault_window;
  bool fault_window_open = false;

  auto close_dataset = [&]() -> Status {
    if (!dataset_open) return Status::OK();
    Result<Dataset> ds = BuildDataset(dataset_desc);
    if (!ds.ok()) return ds.status();
    spec.datasets.push_back(std::move(ds).value());
    dataset_desc = DatasetDesc();
    dataset_open = false;
    return Status::OK();
  };
  auto close_phase = [&]() -> Status {
    if (!phase_open) return Status::OK();
    spec.phases.push_back(phase);
    phase = PhaseSpec();
    phase_open = false;
    return Status::OK();
  };
  auto close_fault_window = [&]() -> Status {
    if (!fault_window_open) return Status::OK();
    // An all-default window is a no-op carrier for plan-level keys
    // (seed / load_failures) and is not recorded.
    if (!(fault_window == FaultWindow())) {
      spec.faults.windows.push_back(fault_window);
    }
    fault_window = FaultWindow();
    fault_window_open = false;
    return Status::OK();
  };
  auto close_sections = [&]() -> Status {
    LSBENCH_RETURN_IF_ERROR(close_dataset());
    LSBENCH_RETURN_IF_ERROR(close_phase());
    return close_fault_window();
  };

  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line == "[dataset]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kDataset;
      dataset_open = true;
      continue;
    }
    if (line == "[phase]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kPhase;
      phase_open = true;
      continue;
    }
    if (line == "[faults]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kFaults;
      fault_window_open = true;
      continue;
    }
    if (line == "[resilience]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kResilience;
      continue;
    }
    if (line == "[execution]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kExecution;
      continue;
    }
    if (line.front() == '[') {
      return Status::InvalidArgument("unknown section at line " +
                                     std::to_string(line_no) + ": " + line);
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key = value at line " +
                                     std::to_string(line_no));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    switch (section) {
      case Section::kTop: {
        if (key == "name") {
          spec.name = value;
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.seed = v.value();
        } else if (key == "interval_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.interval_nanos = static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "boxplot_sample_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.boxplot_sample_nanos =
              static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "offline_training") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          spec.offline_training = v.value();
        } else if (key == "sla_ms") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.sla.threshold_nanos = static_cast<int64_t>(v.value()) * 1000000;
        } else if (key == "sla_auto_percentile") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_percentile = v.value();
        } else if (key == "sla_auto_margin") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_margin = v.value();
        } else if (key == "adjustment_window_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.adjustment_window_ops = v.value();
        } else if (key == "fault_seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.seed = v.value();
        } else if (key == "fault_load_failures") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.load_failures = static_cast<uint32_t>(v.value());
        } else {
          return Status::InvalidArgument("unknown top-level key: " + key);
        }
        break;
      }
      case Section::kDataset: {
        if (key == "kind") {
          dataset_desc.kind = value;
        } else if (key == "num_keys") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.num_keys = v.value();
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.seed = v.value();
        } else if (key == "param1") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param1 = v.value();
        } else if (key == "param2") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param2 = v.value();
        } else {
          return Status::InvalidArgument("unknown dataset key: " + key);
        }
        break;
      }
      case Section::kPhase: {
        if (key == "name") {
          phase.name = value;
        } else if (key == "dataset") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.dataset_index = static_cast<int>(v.value());
        } else if (key == "ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.num_operations = v.value();
        } else if (key == "mix") {
          LSBENCH_RETURN_IF_ERROR(ParseMix(value, &phase.mix));
        } else if (key == "access") {
          const auto v = ParseAccess(value);
          if (!v.ok()) return v.status();
          phase.access = v.value();
        } else if (key == "access_param") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.access_param = v.value();
        } else if (key == "arrival") {
          const auto v = ParseArrival(value);
          if (!v.ok()) return v.status();
          phase.arrival = v.value();
        } else if (key == "arrival_qps") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.arrival_rate_qps = v.value();
        } else if (key == "transition") {
          const auto v = ParseTransition(value);
          if (!v.ok()) return v.status();
          phase.transition_in = v.value();
        } else if (key == "transition_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.transition_operations = v.value();
        } else if (key == "holdout") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          phase.holdout = v.value();
        } else if (key == "scan_length") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.scan_length = static_cast<uint32_t>(v.value());
        } else if (key == "range_selectivity") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.range_selectivity = v.value();
        } else {
          return Status::InvalidArgument("unknown phase key: " + key);
        }
        break;
      }
      case Section::kFaults: {
        if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.seed = v.value();
        } else if (key == "load_failures") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.load_failures = static_cast<uint32_t>(v.value());
        } else if (key == "phase") {
          const auto v = ParseI64(value, key);
          if (!v.ok()) return v.status();
          fault_window.phase = static_cast<int32_t>(v.value());
        } else if (key == "execute_fail_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.execute_fail_rate = v.value();
        } else if (key == "execute_fail_code") {
          const auto v = ParseFailCode(value);
          if (!v.ok()) return v.status();
          fault_window.execute_fail_code = v.value();
        } else if (key == "latency_spike_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.latency_spike_rate = v.value();
        } else if (key == "latency_spike_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          fault_window.latency_spike_nanos =
              static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "stall_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.stall_rate = v.value();
        } else if (key == "stall_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          fault_window.stall_nanos = static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "fail_train") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          fault_window.fail_train = v.value();
        } else if (key == "train_hang_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          fault_window.train_hang_nanos =
              static_cast<int64_t>(v.value()) * 1000;
        } else {
          return Status::InvalidArgument("unknown faults key: " + key);
        }
        break;
      }
      case Section::kResilience: {
        ResilienceSpec& r = spec.resilience;
        if (key == "op_timeout_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.op_timeout_nanos = static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "max_retries") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.max_retries = static_cast<uint32_t>(v.value());
        } else if (key == "backoff_initial_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.backoff_initial_nanos = static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "backoff_multiplier") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.backoff_multiplier = v.value();
        } else if (key == "backoff_max_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.backoff_max_nanos = static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "backoff_jitter") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.backoff_jitter = v.value();
        } else if (key == "breaker_enabled") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          r.breaker_enabled = v.value();
        } else if (key == "breaker_window_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.breaker_window_ops = static_cast<uint32_t>(v.value());
        } else if (key == "breaker_threshold") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.breaker_failure_threshold = v.value();
        } else if (key == "breaker_cooldown_us") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.breaker_cooldown_nanos = static_cast<int64_t>(v.value()) * 1000;
        } else if (key == "breaker_halfopen_probes") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          r.breaker_half_open_probes = static_cast<uint32_t>(v.value());
        } else {
          return Status::InvalidArgument("unknown resilience key: " + key);
        }
        break;
      }
      case Section::kExecution: {
        if (key == "workers") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.execution.workers = static_cast<uint32_t>(v.value());
        } else {
          return Status::InvalidArgument("unknown execution key: " + key);
        }
        break;
      }
    }
  }
  LSBENCH_RETURN_IF_ERROR(close_sections());
  LSBENCH_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

std::string RenderResilienceText(const RunSpec& spec) {
  std::string out;
  const FaultPlan defaults_plan;
  const ResilienceSpec defaults_res;
  auto emit = [&](const std::string& line) {
    out += line;
    out += '\n';
  };
  auto emit_u64 = [&](const char* key, uint64_t v) {
    emit(std::string(key) + " = " + std::to_string(v));
  };
  auto emit_us = [&](const char* key, int64_t nanos) {
    emit(std::string(key) + " = " + std::to_string(nanos / 1000));
  };
  auto emit_dbl = [&](const char* key, double v) {
    emit(std::string(key) + " = " + FullDouble(v));
  };
  auto emit_bool = [&](const char* key, bool v) {
    emit(std::string(key) + std::string(v ? " = true" : " = false"));
  };

  if (!spec.faults.Empty() || spec.faults.seed != defaults_plan.seed) {
    // Plan-level keys ride in the first [faults] section so the rendered
    // text can be appended to any spec; an all-default carrier section is
    // dropped again on parse.
    bool plan_keys_pending = spec.faults.seed != defaults_plan.seed ||
                             spec.faults.load_failures != 0;
    auto emit_plan_keys = [&]() {
      if (!plan_keys_pending) return;
      if (spec.faults.seed != defaults_plan.seed) {
        emit_u64("seed", spec.faults.seed);
      }
      if (spec.faults.load_failures != 0) {
        emit_u64("load_failures", spec.faults.load_failures);
      }
      plan_keys_pending = false;
    };
    for (const FaultWindow& w : spec.faults.windows) {
      if (!out.empty()) emit("");
      emit("[faults]");
      emit_plan_keys();
      emit("phase = " + std::to_string(w.phase));
      emit_dbl("execute_fail_rate", w.execute_fail_rate);
      emit("execute_fail_code = " +
           FailCodeToSpecString(w.execute_fail_code));
      emit_dbl("latency_spike_rate", w.latency_spike_rate);
      emit_us("latency_spike_us", w.latency_spike_nanos);
      emit_dbl("stall_rate", w.stall_rate);
      emit_us("stall_us", w.stall_nanos);
      emit_bool("fail_train", w.fail_train);
      emit_us("train_hang_us", w.train_hang_nanos);
    }
    if (plan_keys_pending) {
      emit("[faults]");
      emit_plan_keys();
    }
  }

  if (!(spec.resilience == defaults_res)) {
    if (!out.empty()) emit("");
    emit("[resilience]");
    const ResilienceSpec& r = spec.resilience;
    emit_us("op_timeout_us", r.op_timeout_nanos);
    emit_u64("max_retries", r.max_retries);
    emit_us("backoff_initial_us", r.backoff_initial_nanos);
    emit_dbl("backoff_multiplier", r.backoff_multiplier);
    emit_us("backoff_max_us", r.backoff_max_nanos);
    emit_dbl("backoff_jitter", r.backoff_jitter);
    emit_bool("breaker_enabled", r.breaker_enabled);
    emit_u64("breaker_window_ops", r.breaker_window_ops);
    emit_dbl("breaker_threshold", r.breaker_failure_threshold);
    emit_us("breaker_cooldown_us", r.breaker_cooldown_nanos);
    emit_u64("breaker_halfopen_probes", r.breaker_half_open_probes);
  }
  return out;
}

}  // namespace lsbench
